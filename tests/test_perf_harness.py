"""Perf-harness regressions: non-finite speedups must not leak.

Pre-fix behavior being pinned down: a ~0s baseline from ``measure``
produced ``speedup: inf``, which (a) made ``best_speedup`` infinite and
marked the workload "met" in ``build_report``, and (b) serialized as
``Infinity`` — a JSON extension no strict parser accepts.
"""

import json
import math

import pytest

from repro.perf.harness import (
    SPEEDUP_TARGET,
    WorkloadResult,
    build_report,
    write_report,
)


def _workload(speedups):
    wl = WorkloadResult(name="wl", description="test workload")
    wl.sweep = [{"point": i, "speedup": s} for i, s in enumerate(speedups)]
    return wl


class TestBestSpeedup:
    def test_non_finite_entries_are_ignored(self):
        assert _workload([math.inf, 2.0, 1.0]).best_speedup == 2.0
        assert _workload([math.nan, 1.5]).best_speedup == 1.5
        assert _workload([-math.inf, 0.5]).best_speedup == 0.5

    def test_all_non_finite_means_no_speedup(self):
        assert _workload([math.inf, math.nan]).best_speedup is None

    def test_finite_behavior_unchanged(self):
        assert _workload([1.0, 3.5, 2.0]).best_speedup == 3.5
        assert _workload([]).best_speedup is None


class TestBuildReport:
    def test_inf_does_not_mark_the_target_met(self):
        report = build_report([_workload([math.inf])])
        assert report["summary"]["workloads_meeting_target"] == []
        assert report["summary"]["best_speedups"]["wl"] is None

    def test_genuine_speedup_still_meets_the_target(self):
        report = build_report([_workload([SPEEDUP_TARGET + 1.0])])
        assert report["summary"]["workloads_meeting_target"] == ["wl"]


class TestSerialization:
    def test_report_with_inf_sweep_entry_is_valid_json(self, tmp_path):
        report = build_report([_workload([math.inf, 2.0])])
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text
        parsed = json.loads(text)
        sweep = parsed["workloads"]["wl"]["sweep"]
        assert sweep[0]["speedup"] is None  # non-finite became null
        assert sweep[1]["speedup"] == 2.0

    def test_write_report_refuses_raw_non_finite_values(self, tmp_path):
        # Belt and braces: a non-finite smuggled around the sanitizer
        # (e.g. in a hand-built dict) fails loudly at write time.
        with pytest.raises(ValueError):
            write_report(
                {"schema": "x", "oops": math.inf},
                str(tmp_path / "bad.json"),
            )


def _assertion_workload(name="cap"):
    wl = WorkloadResult(name=name, description="capacity workload")
    wl.sweep = [
        {"family": "grid", "n": 100, "wall_s": 0.5},
        {"family": "grid", "kind": "ceiling", "ceiling_n": 100},
    ]
    return wl


class TestAssertionOnlyWorkloads:
    """PR-6 regression: workloads with no speedup race must not read as
    failed measurements (``"serve": null``) or crash the compare tool."""

    def test_property(self):
        assert _assertion_workload().assertion_only
        assert not _workload([1.0]).assertion_only
        # One measured speedup anywhere makes it a racing workload.
        mixed = _assertion_workload()
        mixed.sweep.append({"speedup": 2.0})
        assert not mixed.assertion_only

    def test_excluded_from_best_speedups_summary(self):
        report = build_report([_workload([3.0]), _assertion_workload()])
        assert report["summary"]["best_speedups"] == {"wl": 3.0}
        assert report["summary"]["assertion_only"] == ["cap"]
        assert report["workloads"]["cap"]["assertion_only"] is True

    def test_format_summary_labels_it(self):
        from repro.perf.harness import format_summary

        report = build_report([_assertion_workload()])
        assert "cap: assertion-only" in format_summary(report)

    def test_compare_reports_handles_assertion_only(self):
        from repro.perf.compare import compare_reports

        report = build_report([_assertion_workload()])
        out = compare_reports(report, report)
        assert "cap: assertion-only workload" in out
        assert "n/a" not in out

    def test_compare_reports_survives_null_timings(self):
        from repro.perf.compare import compare_reports

        old = build_report([_workload([2.0])])
        new = build_report([_workload([2.5])])
        # Simulate a serialized non-finite: to_json turned it into null.
        old["workloads"]["wl"]["sweep"][0]["wall_s"] = None
        new["workloads"]["wl"]["sweep"][0]["wall_s"] = 0.25
        out = compare_reports(old, new)
        assert "not comparable" in out

    def test_compare_reports_skips_rate_keys(self):
        from repro.perf.compare import compare_reports

        report = build_report([_assertion_workload()])
        report["workloads"]["cap"]["sweep"][0]["nodes_per_s"] = 1e6
        out = compare_reports(report, report)
        assert "nodes_per_s" not in out
        assert "wall_s" in out
