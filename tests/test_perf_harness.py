"""Perf-harness regressions: non-finite speedups must not leak.

Pre-fix behavior being pinned down: a ~0s baseline from ``measure``
produced ``speedup: inf``, which (a) made ``best_speedup`` infinite and
marked the workload "met" in ``build_report``, and (b) serialized as
``Infinity`` — a JSON extension no strict parser accepts.
"""

import json
import math

import pytest

from repro.perf.harness import (
    SPEEDUP_TARGET,
    WorkloadResult,
    build_report,
    write_report,
)


def _workload(speedups):
    wl = WorkloadResult(name="wl", description="test workload")
    wl.sweep = [{"point": i, "speedup": s} for i, s in enumerate(speedups)]
    return wl


class TestBestSpeedup:
    def test_non_finite_entries_are_ignored(self):
        assert _workload([math.inf, 2.0, 1.0]).best_speedup == 2.0
        assert _workload([math.nan, 1.5]).best_speedup == 1.5
        assert _workload([-math.inf, 0.5]).best_speedup == 0.5

    def test_all_non_finite_means_no_speedup(self):
        assert _workload([math.inf, math.nan]).best_speedup is None

    def test_finite_behavior_unchanged(self):
        assert _workload([1.0, 3.5, 2.0]).best_speedup == 3.5
        assert _workload([]).best_speedup is None


class TestBuildReport:
    def test_inf_does_not_mark_the_target_met(self):
        report = build_report([_workload([math.inf])])
        assert report["summary"]["workloads_meeting_target"] == []
        assert report["summary"]["best_speedups"]["wl"] is None

    def test_genuine_speedup_still_meets_the_target(self):
        report = build_report([_workload([SPEEDUP_TARGET + 1.0])])
        assert report["summary"]["workloads_meeting_target"] == ["wl"]


class TestSerialization:
    def test_report_with_inf_sweep_entry_is_valid_json(self, tmp_path):
        report = build_report([_workload([math.inf, 2.0])])
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text
        parsed = json.loads(text)
        sweep = parsed["workloads"]["wl"]["sweep"]
        assert sweep[0]["speedup"] is None  # non-finite became null
        assert sweep[1]["speedup"] == 2.0

    def test_write_report_refuses_raw_non_finite_values(self, tmp_path):
        # Belt and braces: a non-finite smuggled around the sanitizer
        # (e.g. in a hand-built dict) fails loudly at write time.
        with pytest.raises(ValueError):
            write_report(
                {"schema": "x", "oops": math.inf},
                str(tmp_path / "bad.json"),
            )
