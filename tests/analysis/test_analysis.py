"""Tests for fitting, report tables, and graph ground-truth utilities."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.fitting import (
    fit_power_law,
    geometric_ratio,
    within_constant_factor,
)
from repro.analysis.graphtruth import (
    cycle_value,
    girth,
    has_heavy_vertex_on_min_cycle,
    light_subgraph,
    min_cycle_at_most,
    shortest_cycle_through,
)
from repro.analysis.report import ExperimentTable
from repro.congest import topologies


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_close(self, rng):
        xs = np.array([16, 32, 64, 128, 256, 512], dtype=float)
        ys = 2.0 * xs ** (2 / 3) * np.exp(rng.normal(0, 0.05, size=len(xs)))
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 2 / 3) < 0.1

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_geometric_ratio(self):
        assert geometric_ratio([1, 2, 4, 8]) == pytest.approx(2.0)

    def test_within_constant_factor(self):
        assert within_constant_factor([5, 10], [3, 6], 2.0)
        assert not within_constant_factor([7, 10], [3, 6], 2.0)


class TestExperimentTable:
    def test_render_contains_data(self):
        table = ExperimentTable("E1", "demo", ["x", "y"])
        table.add_row(1, 2.5)
        table.add_note("hello")
        text = table.render()
        assert "E1" in text and "2.5" in text and "hello" in text

    def test_row_arity_checked(self):
        table = ExperimentTable("E1", "demo", ["x", "y"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_bool_formatting(self):
        table = ExperimentTable("E", "t", ["ok"])
        table.add_row(True)
        assert "yes" in table.render()


class TestGraphTruth:
    def test_girth_of_cycle(self):
        assert girth(nx.cycle_graph(9)) == 9

    def test_girth_of_tree_none(self):
        assert girth(nx.balanced_tree(2, 3)) is None

    def test_girth_petersen(self):
        assert girth(nx.petersen_graph()) == 5

    def test_girth_complete(self):
        assert girth(nx.complete_graph(5)) == 3

    def test_girth_matches_planted(self):
        for g in [4, 5, 6, 8]:
            net = topologies.planted_cycle(30, g, seed=g)
            assert girth(net.graph) == g

    def test_shortest_cycle_through_vertex(self):
        g = nx.cycle_graph(6)
        g.add_edge(0, 3)  # chord creating two 4-cycles through 0 and 3
        assert shortest_cycle_through(g, 0) == 4
        assert shortest_cycle_through(g, 1) == 4
        # vertex 2 lies on the 4-cycle 0-1-2-3.
        assert shortest_cycle_through(g, 2) == 4

    def test_shortest_cycle_through_acyclic_vertex(self):
        g = nx.cycle_graph(5)
        g.add_edge(0, 99)
        assert shortest_cycle_through(g, 99) is None

    def test_shortest_cycle_cap(self):
        g = nx.cycle_graph(10)
        assert shortest_cycle_through(g, 0, cap=5) is None
        assert shortest_cycle_through(g, 0, cap=10) == 10

    def test_min_cycle_at_most(self):
        g = nx.petersen_graph()
        assert min_cycle_at_most(g, 4) is None
        assert min_cycle_at_most(g, 5) == 5

    def test_cycle_value_sentinel(self):
        g = nx.balanced_tree(2, 3)
        assert cycle_value(g, 0, 6) == 7

    def test_cycle_value_through_neighbor(self):
        g = nx.cycle_graph(4)
        g.add_edge(0, 4)  # vertex 4 hangs off the cycle
        assert cycle_value(g, 4, 5) == 4  # neighbor 0 is on the C4

    def test_light_subgraph(self):
        g = nx.star_graph(10)
        sub = light_subgraph(g, degree_cap=2)
        assert 0 not in sub.nodes()
        assert sub.number_of_nodes() == 10

    def test_heavy_detection(self):
        g = nx.star_graph(20)
        g.add_edge(1, 2)
        assert has_heavy_vertex_on_min_cycle(g, 4, degree_cap=3) is True
        assert has_heavy_vertex_on_min_cycle(nx.cycle_graph(4), 4, 5) is False
        assert has_heavy_vertex_on_min_cycle(nx.path_graph(4), 4, 5) is None
