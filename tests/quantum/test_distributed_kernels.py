"""PR-7 distributed-register kernels agree with their dense oracles.

``apply_local_phase_oracle`` became a broadcast multiply over a reshaped
statevector view and ``_leader_diffusion`` a matrix-free mean reflection;
the ``*_dense`` functions keep the original matrix routes as reference
oracles.  The phase oracle must agree *exactly* (same ±1 scalar per
amplitude); the diffusion only reorders the summation inside the mean,
so it is bounded at 1e-12.
"""

import numpy as np
import pytest

from repro.quantum.distributed import (
    DistributedRegisters,
    _leader_diffusion,
    _leader_diffusion_dense,
    apply_local_phase_oracle,
    apply_local_phase_oracle_dense,
)

ATOL = 1e-12


def _random_registers(num_nodes, qubits_per_node, rng):
    regs = DistributedRegisters.all_zero(num_nodes, qubits_per_node)
    dim = 1 << regs.state.num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    regs.state.data = vec / np.linalg.norm(vec)
    return regs


def _clone(regs):
    copy = DistributedRegisters.all_zero(regs.num_nodes, regs.qubits_per_node)
    copy.state.data = regs.state.data.copy()
    return copy


class TestPhaseOracleKernel:
    @pytest.mark.parametrize("num_nodes,q", [(3, 2), (4, 2), (2, 3), (5, 1)])
    def test_exact_agreement_on_every_node(self, num_nodes, q):
        rng = np.random.default_rng(11)
        for node in range(num_nodes):
            regs = _random_registers(num_nodes, q, rng)
            ref = _clone(regs)
            bits = rng.integers(0, 2, size=1 << q).tolist()
            apply_local_phase_oracle(regs, node, bits)
            apply_local_phase_oracle_dense(ref, node, bits)
            # Same ±1 scalar touches each amplitude: exact, not approx.
            assert np.array_equal(regs.state.data, ref.state.data)

    def test_all_zero_bits_is_identity(self):
        rng = np.random.default_rng(3)
        regs = _random_registers(3, 2, rng)
        before = regs.state.data.copy()
        apply_local_phase_oracle(regs, 1, [0, 0, 0, 0])
        assert np.array_equal(regs.state.data, before)

    def test_wrong_bit_count_rejected(self):
        regs = DistributedRegisters.all_zero(2, 2)
        with pytest.raises(ValueError):
            apply_local_phase_oracle(regs, 0, [0, 1])


class TestLeaderDiffusionKernel:
    @pytest.mark.parametrize("num_nodes,q", [(3, 2), (4, 2), (2, 3)])
    def test_matches_dense_on_every_leader(self, num_nodes, q):
        rng = np.random.default_rng(7)
        for leader in range(num_nodes):
            regs = _random_registers(num_nodes, q, rng)
            ref = _clone(regs)
            qubits = regs.node_qubits(leader)
            _leader_diffusion(regs, qubits)
            _leader_diffusion_dense(ref, qubits)
            np.testing.assert_allclose(
                regs.state.data, ref.state.data, atol=ATOL, rtol=0
            )

    def test_involution_up_to_tolerance(self):
        # (2|s><s| - I)^2 = I: applying the reflection twice restores
        # the state, a self-contained sanity check on the kernel.
        rng = np.random.default_rng(5)
        regs = _random_registers(3, 2, rng)
        before = regs.state.data.copy()
        qubits = regs.node_qubits(1)
        _leader_diffusion(regs, qubits)
        _leader_diffusion(regs, qubits)
        np.testing.assert_allclose(regs.state.data, before, atol=ATOL, rtol=0)

    def test_non_contiguous_qubits_use_dense_route(self):
        regs = _random_registers(2, 2, np.random.default_rng(9))
        ref = _clone(regs)
        qubits = [0, 2]  # straddles the node boundary: not one register
        _leader_diffusion(regs, qubits)
        _leader_diffusion_dense(ref, qubits)
        np.testing.assert_allclose(
            regs.state.data, ref.state.data, atol=ATOL, rtol=0
        )
