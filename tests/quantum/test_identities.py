"""Property-based quantum identities on random states and circuits."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.quantum import gates
from repro.quantum.amplitude import amplification_iterate, good_probability
from repro.quantum.circuits import Circuit, inverse_qft_matrix, qft_matrix
from repro.quantum.statevector import Statevector

FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def random_states(draw, max_qubits=4):
    n = draw(st.integers(min_value=1, max_value=max_qubits))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = np.random.default_rng(seed)
    amps = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    amps /= np.linalg.norm(amps)
    return Statevector(n, amps)


class TestInvolutions:
    @FAST
    @given(random_states(), st.sampled_from(["H", "X", "Y", "Z"]))
    def test_self_inverse_gates(self, state, gate_name):
        gate = getattr(gates, gate_name)
        before = state.data.copy()
        target = state.num_qubits - 1
        state.apply(gate, [target]).apply(gate, [target])
        assert np.allclose(state.data, before, atol=1e-9)

    @FAST
    @given(random_states(max_qubits=3))
    def test_qft_roundtrip(self, state):
        before = state.data.copy()
        n = state.num_qubits
        state.apply(qft_matrix(n), list(range(n)))
        state.apply(inverse_qft_matrix(n), list(range(n)))
        assert np.allclose(state.data, before, atol=1e-9)

    @FAST
    @given(random_states(max_qubits=3), st.integers(min_value=0, max_value=10**6))
    def test_random_circuit_inverse(self, state, seed):
        rng = np.random.default_rng(seed)
        n = state.num_qubits
        circ = Circuit(n)
        for _ in range(6):
            q = int(rng.integers(0, n))
            circ.add(
                [gates.H, gates.S, gates.T, gates.X][int(rng.integers(0, 4))],
                [q],
            )
            if n > 1:
                a, b = rng.choice(n, size=2, replace=False)
                circ.cnot(int(a), int(b))
        before = state.data.copy()
        circ.run(state)
        circ.inverse().run(state)
        assert np.allclose(state.data, before, atol=1e-8)


class TestNormPreservation:
    @FAST
    @given(random_states(), st.integers(min_value=0, max_value=10**6))
    def test_any_gate_sequence_preserves_norm(self, state, seed):
        rng = np.random.default_rng(seed)
        pool = [gates.H, gates.X, gates.S, gates.T, gates.Z]
        for _ in range(8):
            q = int(rng.integers(0, state.num_qubits))
            state.apply(pool[int(rng.integers(0, len(pool)))], [q])
        assert state.is_normalized()


class TestKickbackAndRotation:
    @FAST
    @given(st.floats(min_value=0.01, max_value=0.49))
    def test_grover_iterate_eigenphase(self, p):
        """The amplification iterate rotates by 2θ: its eigenvalues on the
        2D search plane are e^{±2iθ} with sin²θ = p."""
        import math

        dim = 8
        # State prep: |0> -> √(1−p)|bad> + √p|good> with good = {dim-1}.
        prep = np.eye(dim, dtype=complex)
        prep[0, 0] = math.sqrt(1 - p)
        prep[dim - 1, 0] = math.sqrt(p)
        prep[0, dim - 1] = -math.sqrt(p)
        prep[dim - 1, dim - 1] = math.sqrt(1 - p)
        assert gates.is_unitary(prep)
        q = amplification_iterate(prep, {dim - 1})
        eigenvalues = np.linalg.eigvals(q)
        theta = math.asin(math.sqrt(p))
        target = np.exp(2j * theta)
        closest = min(abs(ev - target) for ev in eigenvalues)
        assert closest < 1e-8

    @FAST
    @given(st.integers(min_value=1, max_value=3), st.data())
    def test_phase_kickback(self, n, data):
        """Controlled-phase on |+>|1> kicks the phase to the control."""
        import math

        theta = data.draw(st.floats(min_value=0.1, max_value=3.0))
        sv = Statevector(2)
        sv.apply(gates.H, [0])
        sv.apply(gates.X, [1])
        sv.apply_controlled(gates.phase(theta), [0], [1])
        # control amplitudes: (|0> + e^{iθ}|1>)/√2 (joint with target |1>)
        ratio = sv.data[0b11] / sv.data[0b01]
        assert ratio == pytest.approx(np.exp(1j * theta), abs=1e-9)
