"""Exact Grover tests: the amplitude law the Level-S emulation relies on.

The critical cross-validation of DESIGN.md §3: the statevector-simulated
success probability must match sin²((2j+1)·asin(√(t/N))) exactly, because
that closed form is what the stochastic emulation layer samples from.
"""

import math

import numpy as np
import pytest

from repro.quantum import grover
from repro.quantum.statevector import uniform_superposition


class TestAmplitudeLaw:
    @pytest.mark.parametrize("num_qubits,marked", [
        (3, {5}),
        (4, {1, 2}),
        (5, {0, 7, 21}),
        (6, {63}),
        (4, set(range(8))),  # t = N/2
    ])
    @pytest.mark.parametrize("iterations", [0, 1, 2, 4])
    def test_exact_matches_closed_form(self, num_qubits, marked, iterations):
        exact = grover.success_probability(num_qubits, marked, iterations)
        theory = grover.theoretical_success_probability(
            1 << num_qubits, len(marked), iterations
        )
        assert exact == pytest.approx(theory, abs=1e-10)

    def test_no_marked_items_zero_probability(self):
        assert grover.success_probability(4, set(), 3) == pytest.approx(0.0)

    def test_optimal_iterations_near_one(self):
        """At the optimal count the success probability is ≥ 1 − t/N."""
        for num_qubits, t in [(6, 1), (7, 2), (8, 3)]:
            n_items = 1 << num_qubits
            marked = set(range(t))
            j = grover.optimal_iterations(n_items, t)
            p = grover.success_probability(num_qubits, marked, j)
            assert p >= 1 - t / n_items - 0.05

    def test_uniform_over_marked(self):
        """Measurement collapses uniformly over the marked set."""
        marked = {3, 9, 12}
        state = grover.grover_state(4, marked, grover.optimal_iterations(16, 3))
        probs = state.probabilities()
        marked_probs = [probs[i] for i in marked]
        assert max(marked_probs) == pytest.approx(min(marked_probs), rel=1e-9)

    def test_overshooting_decreases_probability(self):
        n_q, marked = 6, {5}
        j_opt = grover.optimal_iterations(64, 1)
        at_opt = grover.success_probability(n_q, marked, j_opt)
        past = grover.success_probability(n_q, marked, 2 * j_opt + 1)
        assert past < at_opt


class TestDiffusion:
    def test_diffusion_preserves_uniform(self):
        sv = uniform_superposition(3)
        grover.diffusion(sv)
        assert np.allclose(np.abs(sv.data) ** 2, 1 / 8)

    def test_oracle_flips_sign_only(self):
        sv = uniform_superposition(3)
        grover.oracle_phase_flip(sv, {2})
        assert sv.data[2].real == pytest.approx(-1 / math.sqrt(8))
        assert sv.data[0].real == pytest.approx(1 / math.sqrt(8))


class TestSearch:
    def test_search_finds_marked(self, rng):
        run = grover.search(6, {42}, rng)
        assert run.result == 42

    def test_search_reports_iterations(self, rng):
        run = grover.search(6, {1}, rng)
        assert run.iterations_used == grover.optimal_iterations(64, 1)

    def test_bbht_finds_unknown_t(self, rng):
        hits = 0
        for seed in range(10):
            r = grover.bbht_search(6, {11, 50}, np.random.default_rng(seed))
            hits += r.result in {11, 50}
        assert hits >= 8

    def test_bbht_empty_marked_terminates(self, rng):
        run = grover.bbht_search(6, set(), rng)
        assert run.result is None
        assert run.oracle_calls <= 20 * 64

    def test_bbht_expected_calls_scale(self):
        """Average oracle calls ≈ O(√(N/t)): quadruple N, double calls."""
        def avg_calls(num_qubits):
            total = 0
            for seed in range(30):
                r = grover.bbht_search(
                    num_qubits, {0}, np.random.default_rng(seed)
                )
                total += r.oracle_calls
            return total / 30

        small = avg_calls(4)
        large = avg_calls(8)
        ratio = large / small
        assert 2.0 < ratio < 9.0  # ideal 4 (√16), generous envelope
