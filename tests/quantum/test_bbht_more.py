"""Additional exact-Grover/BBHT behaviour tests."""

import numpy as np
import pytest

from repro.quantum import grover


class TestSearchDefaults:
    def test_search_with_explicit_iterations(self, rng):
        run = grover.search(5, {7}, rng, iterations=0)
        # j = 0: uniform measurement, success probability 1/32.
        assert run.iterations_used == 0

    def test_search_empty_marked(self, rng):
        run = grover.search(4, set(), rng)
        assert run.result is None
        assert run.iterations_used == 0

    def test_optimal_iterations_monotone_in_n(self):
        assert grover.optimal_iterations(256, 1) > grover.optimal_iterations(16, 1)

    def test_optimal_iterations_decrease_with_t(self):
        assert grover.optimal_iterations(256, 16) < grover.optimal_iterations(256, 1)

    def test_optimal_iterations_zero_marked(self):
        assert grover.optimal_iterations(64, 0) == 0


class TestBBHTBehaviour:
    def test_growth_parameter_respected(self):
        """Slower growth (closer to 1) must still find the item."""
        hits = 0
        for seed in range(10):
            run = grover.bbht_search(
                6, {13}, np.random.default_rng(seed), growth=1.1
            )
            hits += run.result == 13
        assert hits >= 8

    def test_max_oracle_calls_cap(self, rng):
        run = grover.bbht_search(6, {1}, rng, max_oracle_calls=5)
        assert run.oracle_calls <= 5 + int(np.sqrt(64)) + 1

    def test_more_marked_fewer_calls(self):
        def avg_calls(marked):
            total = 0
            for seed in range(20):
                run = grover.bbht_search(
                    7, marked, np.random.default_rng(seed)
                )
                total += run.oracle_calls
            return total / 20

        sparse = avg_calls({3})
        dense = avg_calls(set(range(0, 64, 2)))
        assert dense < sparse / 2

    def test_found_item_always_marked(self):
        for seed in range(15):
            marked = {5, 40, 99}
            run = grover.bbht_search(7, marked, np.random.default_rng(seed))
            if run.result is not None:
                assert run.result in marked


class TestStateHelpers:
    def test_grover_state_normalized(self):
        state = grover.grover_state(5, {3, 4}, 3)
        assert state.is_normalized()

    def test_zero_iterations_is_uniform(self):
        state = grover.grover_state(4, {2}, 0)
        assert np.allclose(state.probabilities(), 1 / 16)

    def test_oracle_is_involution(self):
        state = grover.grover_state(4, set(), 0)
        before = state.data.copy()
        grover.oracle_phase_flip(state, {5, 9})
        grover.oracle_phase_flip(state, {5, 9})
        assert np.allclose(state.data, before)
