"""Exact tests for Deutsch–Jozsa, phase estimation, amplitude techniques."""

import math

import numpy as np
import pytest

from repro.quantum import amplitude as amp
from repro.quantum import deutsch_jozsa as dj
from repro.quantum import phase_estimation as pe
from repro.quantum.circuits import qft_matrix


class TestDeutschJozsa:
    def test_constant_zero(self):
        out = dj.run([0] * 16)
        assert out.constant
        assert out.zero_amplitude_probability == pytest.approx(1.0)

    def test_constant_one(self):
        out = dj.run([1] * 8)
        assert out.constant
        assert out.zero_amplitude_probability == pytest.approx(1.0)

    @pytest.mark.parametrize("bits", [
        [0, 1] * 8,
        [1, 1, 0, 0] * 2,
        [0, 1, 1, 0, 1, 0, 0, 1],
    ])
    def test_balanced_zero_amplitude_exactly_zero(self, bits):
        out = dj.run(bits)
        assert not out.constant
        assert out.zero_amplitude_probability == pytest.approx(0.0, abs=1e-12)

    def test_promise_violation_raises(self):
        with pytest.raises(dj.PromiseViolation):
            dj.run([1, 0, 0, 0])

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            dj.run([0, 1, 0])

    def test_single_query(self):
        assert dj.run([0] * 4).oracle_calls == 1

    def test_classify_strings(self):
        assert dj.classify([0, 0, 1, 1]) == "balanced"
        assert dj.classify([1, 1, 1, 1]) == "constant"


class TestPhaseEstimation:
    def test_exact_phase_recovered(self, rng):
        theta = 3 / 16
        u = np.diag([np.exp(2j * np.pi * theta), 1.0])
        est = pe.estimate_phase(u, np.array([1, 0]), 4, rng)
        assert est.theta == pytest.approx(theta)

    def test_inexact_phase_within_resolution(self, rng):
        theta = 0.237
        u = np.diag([np.exp(2j * np.pi * theta), 1.0])
        errors = []
        for seed in range(20):
            est = pe.estimate_phase(
                u, np.array([1, 0]), 6, np.random.default_rng(seed)
            )
            err = min(abs(est.theta - theta), 1 - abs(est.theta - theta))
            errors.append(err)
        assert sorted(errors)[10] <= 1 / 64  # median within one bin

    def test_boosted_accuracy(self, rng):
        theta = 0.41
        u = np.diag([np.exp(2j * np.pi * theta), 1.0])
        est = pe.estimate_phase_boosted(
            u, np.array([1, 0]), epsilon=0.02, delta=0.05, rng=rng
        )
        err = min(abs(est.theta - theta), 1 - abs(est.theta - theta))
        assert err <= 0.02

    def test_unitary_application_count(self, rng):
        u = np.eye(2, dtype=complex)
        est = pe.estimate_phase(u, np.array([1, 0]), 5, rng)
        assert est.unitary_applications == 2**5 - 1

    def test_rejects_bad_dimension(self, rng):
        with pytest.raises(ValueError):
            pe.estimate_phase(np.eye(3, dtype=complex), np.ones(3) / math.sqrt(3), 3, rng)


class TestAmplitudeAmplification:
    @pytest.fixture
    def prep_and_good(self):
        q = 3
        return qft_matrix(q), {1, 6}  # column 0 uniform, p = 2/8

    def test_good_probability(self, prep_and_good):
        a, good = prep_and_good
        assert amp.good_probability(a, good) == pytest.approx(0.25)

    def test_iterate_unitary(self, prep_and_good):
        a, good = prep_and_good
        q = amp.amplification_iterate(a, good)
        assert np.allclose(q @ q.conj().T, np.eye(8), atol=1e-9)

    @pytest.mark.parametrize("iterations", [0, 1, 2, 3])
    def test_amplified_probability_law(self, prep_and_good, iterations):
        a, good = prep_and_good
        p = amp.good_probability(a, good)
        q = amp.amplification_iterate(a, good)
        vec = a[:, 0].copy()
        for _ in range(iterations):
            vec = q @ vec
        measured = sum(abs(vec[i]) ** 2 for i in good)
        assert measured == pytest.approx(
            amp.theoretical_amplified_probability(p, iterations), abs=1e-10
        )

    def test_amplify_boosts_success(self, prep_and_good, rng):
        a, good = prep_and_good
        result = amp.amplify(a, good, rng)
        assert result.success_probability > amp.good_probability(a, good)

    def test_amplify_handles_p_zero(self, rng):
        a = qft_matrix(2)
        result = amp.amplify(a, set(), rng, iterations=2)
        assert not result.good


class TestAmplitudeEstimation:
    def test_estimates_within_resolution(self):
        a = qft_matrix(3)
        good = {2, 5}
        p = amp.good_probability(a, good)
        errors = []
        for seed in range(20):
            est = amp.estimate_amplitude(a, good, 7, np.random.default_rng(seed))
            errors.append(abs(est.p_estimate - p))
        assert sorted(errors)[10] <= 0.02

    def test_iterate_applications_counted(self, rng):
        a = qft_matrix(2)
        est = amp.estimate_amplitude(a, {1}, 5, rng)
        assert est.iterate_applications == 2**5 - 1
