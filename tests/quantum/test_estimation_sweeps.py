"""Accuracy-vs-resources sweeps for the exact estimation primitives.

Phase estimation's error halves per extra ancilla and amplitude
estimation inherits it — the quantitative backbone of Lemmas 29/30.
"""

import math

import numpy as np
import pytest

from repro.quantum.amplitude import estimate_amplitude, good_probability
from repro.quantum.circuits import qft_matrix
from repro.quantum.phase_estimation import estimate_phase


def median_error(fn, trials=15):
    errors = sorted(fn(seed) for seed in range(trials))
    return errors[len(errors) // 2]


class TestPhaseEstimationSweep:
    def test_error_halves_per_ancilla(self):
        theta = 0.2371
        u = np.diag([np.exp(2j * np.pi * theta), 1.0])

        def err_at(t):
            def one(seed):
                est = estimate_phase(
                    u, np.array([1, 0]), t, np.random.default_rng(seed)
                )
                return min(abs(est.theta - theta), 1 - abs(est.theta - theta))

            return median_error(one)

        errors = {t: err_at(t) for t in [3, 5, 7]}
        assert errors[5] <= errors[3]
        assert errors[7] <= errors[5]
        assert errors[7] <= 2 ** -6  # within two bins at t = 7

    def test_cost_doubles_per_ancilla(self, rng):
        u = np.diag([1.0, -1.0]).astype(complex)
        costs = {
            t: estimate_phase(u, np.array([1, 0]), t, rng).unitary_applications
            for t in [3, 4, 5]
        }
        assert costs[4] == 2 * costs[3] + 1
        assert costs[5] == 2 * costs[4] + 1


class TestAmplitudeEstimationSweep:
    def test_error_shrinks_with_ancillas(self):
        a = qft_matrix(3)
        good = {1, 4, 6}
        p = good_probability(a, good)

        def err_at(t):
            def one(seed):
                est = estimate_amplitude(a, good, t, np.random.default_rng(seed))
                return abs(est.p_estimate - p)

            return median_error(one)

        coarse, fine = err_at(4), err_at(8)
        assert fine <= coarse
        assert fine <= 0.02

    def test_bhmt_error_bound(self):
        """|p̂ − p| ≤ 2π√(p(1−p))/2^t + π²/4^t for the median estimate."""
        a = qft_matrix(3)
        good = {2}
        p = good_probability(a, good)
        t = 7
        bound = 2 * math.pi * math.sqrt(p * (1 - p)) / 2**t + math.pi**2 / 4**t
        errors = sorted(
            abs(
                estimate_amplitude(a, good, t, np.random.default_rng(seed)).p_estimate
                - p
            )
            for seed in range(25)
        )
        assert errors[12] <= 2 * bound  # median comfortably within
