"""The dispatched gate kernels agree with the generic moveaxis path.

``Statevector.apply`` routes 1- and 2-qubit gates (and single-target
controlled gates) through strided in-place kernels;
``Statevector.apply_generic`` keeps the original dense route as the
oracle.  These tests drive both over random states, random (not even
unitary) matrices, every qubit position, and the named special-case
families (diagonal, anti-diagonal, Hadamard-structure), asserting
agreement to 1e-12.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.quantum.statevector import (
    Statevector,
    control_mask,
    qubit_indices,
    uniform_superposition,
)

ATOL = 1e-12

H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.diag([1, -1]).astype(np.complex128)
S = np.diag([1, 1j]).astype(np.complex128)
T = np.diag([1, np.exp(1j * np.pi / 4)]).astype(np.complex128)
NAMED_1Q = [H, X, Y, Z, S, T]


def random_state(n, rng):
    vec = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    vec /= np.linalg.norm(vec)
    return vec


def random_matrix(k, rng):
    d = 1 << k
    return rng.normal(size=(d, d)) + 1j * rng.normal(size=(d, d))


def assert_pair_equal(fast, ref):
    err = float(np.abs(fast.data - ref.data).max())
    assert err <= ATOL, f"kernel deviates from generic path by {err:g}"


class TestSingleQubitKernels:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_named_gates_every_position(self, n):
        rng = np.random.default_rng(100 + n)
        vec = random_state(n, rng)
        fast, ref = Statevector(n, vec), Statevector(n, vec)
        for gate in NAMED_1Q:
            for q in range(n):
                fast.apply(gate, [q])
                ref.apply_generic(gate, [q])
                assert_pair_equal(fast, ref)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_random_matrices(self, n, seed):
        rng = np.random.default_rng(seed)
        vec = random_state(n, rng)
        fast, ref = Statevector(n, vec), Statevector(n, vec)
        for q in range(n):
            gate = random_matrix(1, rng)
            fast.apply(gate, [q])
            ref.apply_generic(gate, [q])
        assert_pair_equal(fast, ref)


class TestTwoQubitKernel:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n=st.integers(2, 8), seed=st.integers(0, 1000))
    def test_random_pairs(self, n, seed):
        rng = np.random.default_rng(seed)
        vec = random_state(n, rng)
        fast, ref = Statevector(n, vec), Statevector(n, vec)
        for _ in range(4):
            q0, q1 = rng.choice(n, size=2, replace=False)
            gate = random_matrix(2, rng)
            fast.apply(gate, [int(q0), int(q1)])
            ref.apply_generic(gate, [int(q0), int(q1)])
        assert_pair_equal(fast, ref)

    @pytest.mark.parametrize("n", range(2, 7))
    def test_cnot_cz_every_ordered_pair(self, n):
        rng = np.random.default_rng(5)
        cnot = np.eye(4, dtype=np.complex128)[[0, 1, 3, 2]]
        cz = np.diag([1, 1, 1, -1]).astype(np.complex128)
        vec = random_state(n, rng)
        fast, ref = Statevector(n, vec), Statevector(n, vec)
        for q0 in range(n):
            for q1 in range(n):
                if q0 == q1:
                    continue
                for gate in (cnot, cz):
                    fast.apply(gate, [q0, q1])
                    ref.apply_generic(gate, [q0, q1])
        assert_pair_equal(fast, ref)


class TestControlledKernel:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n=st.integers(2, 8), seed=st.integers(0, 1000),
           num_controls=st.integers(1, 3))
    def test_multi_controlled_single_target(self, n, seed, num_controls):
        num_controls = min(num_controls, n - 1)
        rng = np.random.default_rng(seed)
        qubits = rng.permutation(n)[: num_controls + 1]
        controls = [int(q) for q in qubits[:-1]]
        target = int(qubits[-1])
        gate = random_matrix(1, rng)
        vec = random_state(n, rng)
        fast, ref = Statevector(n, vec), Statevector(n, vec)
        fast.apply_controlled(gate, controls, [target])
        # Reference: embed into the full controlled unitary.
        full = np.eye(1 << (num_controls + 1), dtype=np.complex128)
        full[-2:, -2:] = gate
        ref.apply_generic(full, controls + [target])
        assert_pair_equal(fast, ref)


class TestDiagonalPaths:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_apply_diagonal_matches_generic(self, n):
        rng = np.random.default_rng(n)
        phases = np.exp(1j * rng.uniform(0, 2 * np.pi, size=1 << n))
        vec = random_state(n, rng)
        fast, ref = Statevector(n, vec), Statevector(n, vec)
        fast.apply_diagonal(phases)
        ref.data *= phases  # the mathematical definition
        assert_pair_equal(fast, ref)

    @pytest.mark.parametrize("n", range(1, 7))
    def test_apply_phase_matches_1q_diagonal(self, n):
        rng = np.random.default_rng(n)
        vec = random_state(n, rng)
        for q in range(n):
            phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
            fast, ref = Statevector(n, vec), Statevector(n, vec)
            fast.apply_phase(q, phase)
            ref.apply_generic(np.diag([1, phase]), [q])
            assert_pair_equal(fast, ref)


class TestIndexTables:
    def test_qubit_indices_partition(self):
        zeros, ones = qubit_indices(4, 1)
        assert len(zeros) == len(ones) == 8
        assert sorted(np.concatenate([zeros, ones])) == list(range(16))
        # qubit 1 of 4 has place value 2^{4-1-1} = 4
        assert all((i & 4) == 0 for i in zeros)
        assert all((i & 4) != 0 for i in ones)
        with pytest.raises(ValueError):
            qubit_indices(3, 3)

    def test_control_mask_counts(self):
        mask = control_mask(4, (0, 2))
        assert mask.sum() == 4  # both bits fixed to 1 leaves 2 free qubits
        with pytest.raises(ValueError):
            control_mask(3, (5,))

    def test_tables_are_read_only(self):
        zeros, _ = qubit_indices(5, 2)
        with pytest.raises(ValueError):
            zeros[0] = 99


class TestNormPreservation:
    def test_long_unitary_circuit_stays_normalized(self):
        sv = uniform_superposition(6)
        rng = np.random.default_rng(0)
        for _ in range(50):
            gate = NAMED_1Q[int(rng.integers(len(NAMED_1Q)))]
            sv.apply(gate, [int(rng.integers(6))])
        assert sv.is_normalized()
