"""Unit tests for the dense statevector simulator."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.statevector import (
    Statevector,
    basis_state,
    uniform_superposition,
)


class TestConstruction:
    def test_starts_in_zero_state(self):
        sv = Statevector(3)
        assert sv.probability_of(0) == pytest.approx(1.0)

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            Statevector(0)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            Statevector(1, np.array([1.0, 1.0]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Statevector(2, np.array([1.0, 0.0]))

    def test_basis_state(self):
        sv = basis_state(3, 5)
        assert sv.probability_of(5) == pytest.approx(1.0)

    def test_uniform_superposition(self):
        sv = uniform_superposition(4)
        assert np.allclose(sv.probabilities(), 1 / 16)


class TestGateApplication:
    def test_x_flips(self):
        sv = Statevector(1).apply(gates.X, [0])
        assert sv.probability_of(1) == pytest.approx(1.0)

    def test_h_creates_superposition(self):
        sv = Statevector(1).apply(gates.H, [0])
        assert np.allclose(sv.probabilities(), [0.5, 0.5])

    def test_hh_identity(self):
        sv = Statevector(1).apply(gates.H, [0]).apply(gates.H, [0])
        assert sv.probability_of(0) == pytest.approx(1.0)

    def test_qubit_ordering_msb(self):
        """Qubit 0 is the most significant bit."""
        sv = Statevector(2).apply(gates.X, [0])
        assert sv.probability_of(0b10) == pytest.approx(1.0)
        sv = Statevector(2).apply(gates.X, [1])
        assert sv.probability_of(0b01) == pytest.approx(1.0)

    def test_cnot_entangles(self):
        sv = Statevector(2).apply(gates.H, [0]).apply(gates.CNOT, [0, 1])
        probs = sv.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)
        assert probs[0b01] == pytest.approx(0.0)

    def test_two_qubit_gate_on_swapped_indices(self):
        sv = Statevector(2).apply(gates.X, [1]).apply(gates.CNOT, [1, 0])
        assert sv.probability_of(0b11) == pytest.approx(1.0)

    def test_apply_controlled(self):
        sv = Statevector(2).apply(gates.X, [0])
        sv.apply_controlled(gates.X, [0], [1])
        assert sv.probability_of(0b11) == pytest.approx(1.0)

    def test_controlled_does_nothing_without_control(self):
        sv = Statevector(2)
        sv.apply_controlled(gates.X, [0], [1])
        assert sv.probability_of(0b00) == pytest.approx(1.0)

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Statevector(2).apply(gates.CNOT, [0, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Statevector(2).apply(gates.X, [2])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Statevector(2).apply(gates.CNOT, [0])

    def test_norm_preserved_by_random_circuit(self, rng):
        sv = Statevector(4)
        from scipy.stats import unitary_group

        for _ in range(10):
            u = unitary_group.rvs(4, random_state=rng)
            q = sorted(rng.choice(4, size=2, replace=False))
            sv.apply(u, [int(q[0]), int(q[1])])
        assert sv.is_normalized()


class TestDiagonal:
    def test_phase_oracle(self):
        sv = uniform_superposition(2)
        sv.apply_diagonal(np.array([1, -1, 1, 1], dtype=complex))
        assert np.allclose(sv.probabilities(), 0.25)
        assert sv.data[1].real == pytest.approx(-0.5)

    def test_rejects_non_unit_modulus(self):
        sv = Statevector(1)
        with pytest.raises(ValueError):
            sv.apply_diagonal(np.array([2.0, 1.0], dtype=complex))


class TestMeasurement:
    def test_deterministic_measure(self, rng):
        sv = basis_state(3, 6)
        assert sv.measure(rng) == 6

    def test_sampling_distribution(self, rng):
        sv = Statevector(1).apply(gates.H, [0])
        samples = sv.sample(rng, shots=2000)
        ones = int(np.sum(samples))
        assert 800 < ones < 1200

    def test_marginal_probabilities(self):
        sv = Statevector(2).apply(gates.H, [0]).apply(gates.CNOT, [0, 1])
        marg = sv.marginal_probabilities([0])
        assert np.allclose(marg, [0.5, 0.5])

    def test_marginal_of_product_state(self):
        sv = Statevector(2).apply(gates.X, [1])
        marg = sv.marginal_probabilities([1])
        assert np.allclose(marg, [0.0, 1.0])


class TestInnerProduct:
    def test_self_fidelity_one(self):
        sv = uniform_superposition(3)
        assert sv.fidelity(sv.copy()) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        assert basis_state(2, 0).fidelity(basis_state(2, 3)) == pytest.approx(0.0)

    def test_qubit_count_mismatch(self):
        with pytest.raises(ValueError):
            basis_state(2, 0).inner(basis_state(3, 0))
