"""Tests for the exact distributed quantum state module (Lemma 7 / Thm 17)."""

import numpy as np
import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import bfs_with_echo
from repro.quantum.distributed import (
    DistributedRegisters,
    apply_local_phase_oracle,
    distributed_deutsch_jozsa_exact,
    is_shared_state,
    load_leader_state,
    share_register,
    unshare_register,
)


def random_state(rng, q):
    amps = rng.normal(size=1 << q) + 1j * rng.normal(size=1 << q)
    return amps / np.linalg.norm(amps)


class TestRegisters:
    def test_all_zero_start(self):
        regs = DistributedRegisters.all_zero(3, 2)
        assert regs.state.probability_of(0) == pytest.approx(1.0)

    def test_qubit_budget_enforced(self):
        with pytest.raises(ValueError):
            DistributedRegisters.all_zero(12, 2)

    def test_node_qubit_ownership(self):
        regs = DistributedRegisters.all_zero(3, 2)
        assert regs.node_qubits(0) == [0, 1]
        assert regs.node_qubits(2) == [4, 5]

    def test_load_leader_state(self, rng):
        regs = DistributedRegisters.all_zero(3, 2)
        amps = random_state(rng, 2)
        load_leader_state(regs, 1, amps)
        marginal = regs.node_marginal(1)
        assert np.allclose(marginal, np.abs(amps) ** 2)

    def test_load_rejects_unnormalized(self):
        regs = DistributedRegisters.all_zero(2, 1)
        with pytest.raises(ValueError):
            load_leader_state(regs, 0, [1.0, 1.0])


class TestLemma7Exact:
    @pytest.mark.parametrize("maker,root", [
        (lambda: topologies.path(5), 0),
        (lambda: topologies.path(5), 2),
        (lambda: topologies.star(5), 0),
        (lambda: topologies.cycle(5), 1),
    ])
    def test_share_produces_ghz_extension(self, maker, root, rng):
        net = maker()
        tree = bfs_with_echo(net, root)
        amps = random_state(rng, 2)
        regs = DistributedRegisters.all_zero(net.n, 2)
        load_leader_state(regs, root, amps)
        share_register(regs, tree)
        assert is_shared_state(regs, amps)

    def test_share_layers_equal_depth(self, rng):
        net = topologies.path(6)
        tree = bfs_with_echo(net, 0)
        regs = DistributedRegisters.all_zero(net.n, 1)
        load_leader_state(regs, 0, random_state(rng, 1))
        assert share_register(regs, tree) == tree.eccentricity

    def test_unshare_inverts_share(self, rng):
        net = topologies.star(6)
        tree = bfs_with_echo(net, 0)
        amps = random_state(rng, 2)
        regs = DistributedRegisters.all_zero(net.n, 2)
        load_leader_state(regs, 0, amps)
        share_register(regs, tree)
        unshare_register(regs, tree)
        reference = DistributedRegisters.all_zero(net.n, 2)
        load_leader_state(reference, 0, amps)
        assert np.allclose(regs.state.data, reference.state.data, atol=1e-9)

    def test_marginal_of_shared_state_uniform_copy(self, rng):
        """Every node's local marginal equals the leader's distribution."""
        net = topologies.path(4)
        tree = bfs_with_echo(net, 0)
        amps = random_state(rng, 2)
        regs = DistributedRegisters.all_zero(net.n, 2)
        load_leader_state(regs, 0, amps)
        share_register(regs, tree)
        for v in net.nodes():
            assert np.allclose(regs.node_marginal(v), np.abs(amps) ** 2)


class TestLocalPhaseOracle:
    def test_phase_applied_to_basis_state(self):
        regs = DistributedRegisters.all_zero(2, 1)
        load_leader_state(regs, 0, [0.0, 1.0])  # leader in |1>
        apply_local_phase_oracle(regs, 0, [0, 1])
        # amplitude of |1>_0 |0>_1 = index 0b10 got a minus sign
        assert regs.state.data[0b10].real == pytest.approx(-1.0)

    def test_wrong_length_rejected(self):
        regs = DistributedRegisters.all_zero(2, 1)
        with pytest.raises(ValueError):
            apply_local_phase_oracle(regs, 0, [0, 1, 0])

    def test_phases_multiply_across_nodes(self, rng):
        """XOR semantics: two nodes flipping the same index cancel."""
        net = topologies.path(3)
        tree = bfs_with_echo(net, 0)
        inputs = {v: [0, 0] for v in net.nodes()}
        inputs[1] = [0, 1]
        inputs[2] = [0, 1]  # cancels node 1 -> constant-zero aggregate
        out = distributed_deutsch_jozsa_exact(net, tree, inputs)
        assert out.constant


class TestTheorem17Exact:
    @pytest.mark.parametrize("seed", range(5))
    def test_balanced_exact_zero(self, seed):
        net = topologies.path(4)
        tree = bfs_with_echo(net, 1)
        rng = np.random.default_rng(seed)
        k = 4
        inputs = {v: [int(b) for b in rng.integers(0, 2, size=k)]
                  for v in net.nodes()}
        xor = [0] * k
        for vec in inputs.values():
            xor = [a ^ b for a, b in zip(xor, vec)]
        target = [1, 1, 0, 0]
        inputs[0] = [a ^ b ^ c for a, b, c in zip(inputs[0], xor, target)]
        out = distributed_deutsch_jozsa_exact(net, tree, inputs)
        assert not out.constant
        assert out.leader_zero_probability == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("ones", [False, True])
    def test_constant_exact_one(self, ones):
        net = topologies.star(5)
        tree = bfs_with_echo(net, 0)
        k = 4
        inputs = {v: [0] * k for v in net.nodes()}
        if ones:
            inputs[3] = [1] * k
        out = distributed_deutsch_jozsa_exact(net, tree, inputs)
        assert out.constant
        assert out.leader_zero_probability == pytest.approx(1.0)

    def test_matches_level_s_decision(self):
        """The exact circuit and the emulated app agree on the same input."""
        from repro.apps.deutsch_jozsa import solve_distributed_dj

        net = topologies.path(4)
        tree = bfs_with_echo(net, 0)
        inputs = {v: [0, 0, 0, 0] for v in net.nodes()}
        inputs[2] = [1, 0, 1, 0]
        exact = distributed_deutsch_jozsa_exact(net, tree, inputs)
        emulated = solve_distributed_dj(net, inputs, seed=1)
        assert exact.constant == emulated.constant

    def test_non_power_of_two_rejected(self):
        net = topologies.path(3)
        tree = bfs_with_echo(net, 0)
        inputs = {v: [0, 0, 0] for v in net.nodes()}
        with pytest.raises(ValueError):
            distributed_deutsch_jozsa_exact(net, tree, inputs)


class TestDistributedGroverExact:
    """The full Theorem 8 loop as a genuine quantum computation."""

    def _inputs(self, net, k, marked_positions):
        inputs = {v: [0] * k for v in net.nodes()}
        # Spread the marking over two nodes so the XOR matters.
        for pos in marked_positions:
            inputs[1][pos] ^= 1
        inputs[2][0] ^= 1
        inputs[1][0] ^= 1  # cancels: index 0 unmarked
        return inputs

    @pytest.mark.parametrize("iterations", [0, 1, 2])
    def test_success_probability_matches_law(self, iterations):
        from repro.quantum.distributed import distributed_grover_exact
        from repro.quantum.grover import theoretical_success_probability

        net = topologies.path(4)
        tree = bfs_with_echo(net, 0)
        k = 8
        inputs = self._inputs(net, k, marked_positions=[2, 5])
        out = distributed_grover_exact(
            net, tree, inputs, iterations=iterations,
            rng=np.random.default_rng(0),
        )
        law = theoretical_success_probability(k, 2, iterations)
        assert out.success_probability == pytest.approx(law, abs=1e-9)

    def test_optimal_iterations_find_marked(self):
        from repro.quantum.distributed import distributed_grover_exact
        from repro.quantum.grover import optimal_iterations

        net = topologies.star(4)
        tree = bfs_with_echo(net, 0)
        k = 8
        inputs = {v: [0] * k for v in net.nodes()}
        inputs[3] = [0, 0, 0, 0, 0, 0, 1, 0]  # single marked index 6
        j = optimal_iterations(k, 1)
        hits = 0
        for seed in range(10):
            out = distributed_grover_exact(
                net, tree, inputs, iterations=j,
                rng=np.random.default_rng(seed),
            )
            hits += out.marked and out.measured_index == 6
        assert hits >= 8  # p_success = sin²((2·2+1)·asin(√(1/8))) ≈ 0.88

    def test_share_layers_equal_tree_depth(self):
        from repro.quantum.distributed import distributed_grover_exact

        net = topologies.path(4)
        tree = bfs_with_echo(net, 1)
        inputs = {v: [0, 1] * 2 for v in net.nodes()}
        out = distributed_grover_exact(
            net, tree, inputs, iterations=1, rng=np.random.default_rng(1)
        )
        assert out.share_layers_per_query == tree.eccentricity

    def test_rejects_bad_k(self):
        from repro.quantum.distributed import distributed_grover_exact

        net = topologies.path(3)
        tree = bfs_with_echo(net, 0)
        inputs = {v: [0, 1, 0] for v in net.nodes()}
        with pytest.raises(ValueError):
            distributed_grover_exact(net, tree, inputs, iterations=1)
