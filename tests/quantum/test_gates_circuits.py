"""Tests for gate matrices and the circuit container."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.circuits import Circuit, inverse_qft_matrix, qft_matrix
from repro.quantum.statevector import Statevector


class TestGateMatrices:
    @pytest.mark.parametrize(
        "gate",
        [gates.I2, gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.T,
         gates.CNOT, gates.CZ, gates.SWAP],
        ids=["I", "X", "Y", "Z", "H", "S", "T", "CNOT", "CZ", "SWAP"],
    )
    def test_all_unitary(self, gate):
        assert gates.is_unitary(gate)

    @pytest.mark.parametrize("theta", [0.0, 0.7, np.pi, 2.5])
    def test_rotations_unitary(self, theta):
        assert gates.is_unitary(gates.rx(theta))
        assert gates.is_unitary(gates.ry(theta))
        assert gates.is_unitary(gates.rz(theta))
        assert gates.is_unitary(gates.phase(theta))

    def test_pauli_relations(self):
        assert np.allclose(gates.X @ gates.X, gates.I2)
        assert np.allclose(gates.X @ gates.Y - gates.Y @ gates.X, 2j * gates.Z)

    def test_hzh_equals_x(self):
        assert np.allclose(gates.H @ gates.Z @ gates.H, gates.X)

    def test_multi_controlled_z(self):
        mcz = gates.multi_controlled_z(3)
        assert gates.is_unitary(mcz)
        diag = np.diag(mcz)
        assert diag[-1] == -1
        assert np.all(diag[:-1] == 1)

    def test_is_unitary_rejects_non_unitary(self):
        assert not gates.is_unitary(np.array([[1, 1], [0, 1]], dtype=complex))


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_unitary(self, n):
        assert gates.is_unitary(qft_matrix(n))

    def test_inverse_is_conjugate_transpose(self):
        q = qft_matrix(3)
        assert np.allclose(q @ inverse_qft_matrix(3), np.eye(8))

    def test_qft_of_zero_is_uniform(self):
        col = qft_matrix(3)[:, 0]
        assert np.allclose(col, 1 / np.sqrt(8))

    def test_qft_frequency_readout(self):
        """QFT maps a pure frequency phase ramp back to a basis state."""
        n, freq = 3, 5
        dim = 1 << n
        ramp = np.exp(2j * np.pi * freq * np.arange(dim) / dim) / np.sqrt(dim)
        out = inverse_qft_matrix(n) @ ramp
        assert np.argmax(np.abs(out)) == freq
        assert abs(out[freq]) == pytest.approx(1.0)


class TestCircuit:
    def test_bell_pair(self, rng):
        circ = Circuit(2).h(0).cnot(0, 1)
        sv = circ.run(Statevector(2))
        assert sv.probability_of(0) == pytest.approx(0.5)
        assert sv.probability_of(3) == pytest.approx(0.5)

    def test_inverse_undoes(self):
        circ = Circuit(3).h(0).cnot(0, 1).h(2).z(1)
        sv = Statevector(3)
        circ.run(sv)
        circ.inverse().run(sv)
        assert sv.probability_of(0) == pytest.approx(1.0)

    def test_rejects_non_unitary_ops(self):
        with pytest.raises(ValueError):
            Circuit(1).add(np.array([[1, 1], [0, 1]]), [0])

    def test_to_matrix_matches_composition(self):
        circ = Circuit(2).h(0).cnot(0, 1)
        m = circ.to_matrix()
        assert gates.is_unitary(m)
        sv = circ.run(Statevector(2))
        direct = m @ np.eye(4)[:, 0]
        assert np.allclose(sv.data, direct)

    def test_controlled_builder(self):
        circ = Circuit(2).x(0).controlled(gates.X, [0], [1])
        sv = circ.run(Statevector(2))
        assert sv.probability_of(0b11) == pytest.approx(1.0)

    def test_qubit_count_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2).run(Statevector(3))
