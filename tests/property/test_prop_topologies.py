"""Property tests: every topology generator yields a valid CONGEST network."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import topologies

FAST = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _check_valid(net):
    assert set(net.graph.nodes()) == set(range(net.n))
    assert nx.is_connected(net.graph)
    assert net.bandwidth >= 1
    for v in net.nodes():
        assert all(net.has_edge(v, u) for u in net.neighbors(v))


class TestGeneratorsValid:
    @FAST
    @given(st.integers(min_value=1, max_value=40))
    def test_path(self, n):
        _check_valid(topologies.path(n))

    @FAST
    @given(st.integers(min_value=3, max_value=40))
    def test_cycle(self, n):
        net = topologies.cycle(n)
        _check_valid(net)
        assert net.m == n

    @FAST
    @given(st.integers(min_value=2, max_value=40))
    def test_star(self, n):
        net = topologies.star(n)
        _check_valid(net)
        assert net.diameter <= 2

    @FAST
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    def test_grid(self, rows, cols):
        net = topologies.grid(rows, cols)
        _check_valid(net)
        assert net.n == rows * cols
        assert net.diameter == rows + cols - 2

    @FAST
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=8))
    def test_two_stars(self, a, b):
        net = topologies.two_stars(a, b)
        _check_valid(net)
        assert net.n == a + b + 2

    @FAST
    @given(st.integers(min_value=1, max_value=30))
    def test_path_with_endpoints(self, d):
        net = topologies.path_with_endpoints(d)
        _check_valid(net)
        assert net.distances_from(0)[d] == d

    @FAST
    @given(st.integers(min_value=2, max_value=25), st.data())
    def test_diameter_controlled(self, d, data):
        n = data.draw(st.integers(min_value=d + 1, max_value=3 * d + 20))
        net = topologies.diameter_controlled(n, d, seed=data.draw(
            st.integers(min_value=0, max_value=100)))
        _check_valid(net)
        assert net.n == n
        assert d - 1 <= net.diameter <= d + 4

    @FAST
    @given(st.integers(min_value=3, max_value=10), st.data())
    def test_planted_cycle(self, g, data):
        n = data.draw(st.integers(min_value=g, max_value=g + 30))
        net = topologies.planted_cycle(n, g, seed=data.draw(
            st.integers(min_value=0, max_value=100)))
        _check_valid(net)
        from repro.analysis.graphtruth import girth

        assert girth(net.graph) == g

    @FAST
    @given(st.integers(min_value=3, max_value=8),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=5))
    def test_known_girth(self, g, copies, tail):
        net = topologies.known_girth(g, copies=copies, tail=tail)
        _check_valid(net)
        from repro.analysis.graphtruth import girth

        assert girth(net.graph) == g
        assert net.n == g * copies + tail
