"""Property: the vectorized schedule is bit-identical to per-node runs.

The column-major bulk loop (``Engine(schedule="vectorized")``) is an
*oracle-checked optimization*: over random topologies, seeds, and program
parameters it must reproduce the active-set schedule exactly — rounds,
outputs, traffic statistics, observability events (delivery order
included), and per-phase round-ledger charges.  ``mode`` on RoundEvents
is the one sanctioned difference and is excluded by construction.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import topologies
from repro.congest.algorithms.aggregate import (
    pipelined_downcast,
    pipelined_upcast,
)
from repro.congest.algorithms.bfs import BFSEchoProgram, bfs_with_echo
from repro.congest.algorithms.multibfs import MultiSourceBFSProgram
from repro.congest.engine import Engine
from repro.core.semigroup import (
    combine_max,
    combine_min,
    combine_sum,
    combine_xor,
)
from repro.obs import MemorySink, Recorder, install

_SETTINGS = dict(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _make_network(draw):
    kind = draw(st.sampled_from(["grid", "cycle", "regular", "star", "tree"]))
    if kind == "grid":
        return topologies.grid(draw(st.integers(2, 5)), draw(st.integers(2, 5)))
    if kind == "cycle":
        return topologies.cycle(draw(st.integers(3, 24)))
    if kind == "regular":
        n = draw(st.integers(4, 16).filter(lambda v: v % 2 == 0))
        return topologies.random_regular(n, 3, seed=draw(st.integers(0, 5)))
    if kind == "star":
        return topologies.star(draw(st.integers(3, 20)))
    return topologies.balanced_tree(2, draw(st.integers(1, 3)))


def _make_program_factory(draw, net, family):
    if family == "bfs":
        root = draw(st.integers(0, net.n - 1))
        return (
            lambda: {v: BFSEchoProgram(v, root) for v in net.nodes()},
            {},
        )
    count = draw(st.integers(1, min(3, net.n)))
    sources = draw(
        st.lists(st.integers(0, net.n - 1), min_size=count,
                 max_size=count, unique=True)
    )
    return (
        lambda: {v: MultiSourceBFSProgram(v, sources) for v in net.nodes()},
        {"stop_on_quiescence": True},
    )


def _assert_identical(res_a, res_b):
    assert res_a.rounds == res_b.rounds
    assert res_a.outputs == res_b.outputs
    assert res_a.stats == res_b.stats


def _strip_mode(events):
    return [
        dataclasses.replace(e, mode="") if hasattr(e, "mode") else e
        for e in events
    ]


class TestVectorizedEquivalence:
    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_flood_families(self, data):
        net = _make_network(data.draw)
        family = data.draw(st.sampled_from(["bfs", "multibfs"]))
        seed = data.draw(st.integers(0, 100))
        make, kwargs = _make_program_factory(data.draw, net, family)
        active = Engine(
            net, make(), seed=seed, schedule="active", **kwargs
        ).run()
        engine = Engine(net, make(), seed=seed, schedule="vectorized", **kwargs)
        vec = engine.run()
        _assert_identical(active, vec)
        # The audited families never fall back, and every round of a
        # fast-path run is a vectorized round.
        assert engine.vectorized_fallback is None
        assert engine.vectorized_rounds == vec.rounds

    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_obs_event_streams_identical(self, data):
        net = _make_network(data.draw)
        family = data.draw(st.sampled_from(["bfs", "multibfs"]))
        seed = data.draw(st.integers(0, 100))
        make, kwargs = _make_program_factory(data.draw, net, family)
        streams = []
        for schedule in ("active", "vectorized"):
            sink = MemorySink()
            with install(Recorder([sink])):
                Engine(
                    net, make(), seed=seed, schedule=schedule, **kwargs
                ).run()
            streams.append(sink)
        active_sink, vec_sink = streams
        # Deliveries: same events in the same canonical order.
        assert (
            active_sink.events_of_kind("deliver")
            == vec_sink.events_of_kind("deliver")
        )
        # Rounds: identical up to the advisory `mode` tag.
        assert _strip_mode(active_sink.events_of_kind("round")) == _strip_mode(
            vec_sink.events_of_kind("round")
        )
        assert all(
            e.mode == "vectorized" for e in vec_sink.events_of_kind("round")
        )

    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_tree_transfers(self, data):
        net = _make_network(data.draw)
        root = data.draw(st.integers(0, net.n - 1))
        tree = bfs_with_echo(net, root)
        length = data.draw(st.integers(0, 3))
        domain = 1 << 20  # roomy: a summed 255-per-node vector stays in range
        combine = data.draw(st.sampled_from(
            [combine_sum, combine_max, combine_min, combine_xor]
        ))
        values = {
            v: [
                data.draw(st.integers(0, 255)) for _ in range(length)
            ]
            for v in net.nodes()
        }
        up_active = pipelined_upcast(
            net, tree, values, combine, domain, schedule="active"
        )
        up_vec = pipelined_upcast(
            net, tree, values, combine, domain, schedule="vectorized"
        )
        assert up_active == up_vec
        payload = [data.draw(st.integers(0, 255)) for _ in range(length)]
        down_active = pipelined_downcast(
            net, tree, payload, domain, schedule="active"
        )
        down_vec = pipelined_downcast(
            net, tree, payload, domain, schedule="vectorized"
        )
        assert down_active == down_vec
