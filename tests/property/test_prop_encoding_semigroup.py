"""Property-based tests: payload encoding and semigroup laws."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.encoding import Field, bits_for_domain, payload_bits, unwrap
from repro.core.semigroup import (
    max_semigroup,
    min_semigroup,
    sum_semigroup,
    xor_semigroup,
)


class TestEncodingProperties:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_bits_for_domain_covers_domain(self, domain):
        bits = bits_for_domain(domain)
        assert (1 << bits) >= domain
        # One bit fewer would not cover (except the degenerate domain 1).
        if domain > 2:
            assert (1 << (bits - 1)) < domain

    @given(st.integers(min_value=1, max_value=10**6), st.data())
    def test_field_bits_independent_of_value(self, domain, data):
        v1 = data.draw(st.integers(min_value=0, max_value=domain - 1))
        v2 = data.draw(st.integers(min_value=0, max_value=domain - 1))
        assert Field(v1, domain).bits == Field(v2, domain).bits

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=8))
    def test_tuple_bits_additive(self, values):
        fields = tuple(Field(v, 256) for v in values)
        assert payload_bits(fields) == 8 * len(values)

    @given(st.lists(st.integers(min_value=0, max_value=99), max_size=6))
    def test_unwrap_roundtrip(self, values):
        wrapped = tuple(Field(v, 100) for v in values)
        assert unwrap(wrapped) == tuple(values)


SEMIGROUPS = {
    "sum": sum_semigroup(10**6),
    "xor": xor_semigroup(16),
    "max": max_semigroup(10**4),
    "min": min_semigroup(10**4),
}

elements = st.integers(min_value=0, max_value=10**4)


class TestSemigroupLaws:
    @given(st.sampled_from(sorted(SEMIGROUPS)), elements, elements)
    def test_commutativity(self, name, a, b):
        sg = SEMIGROUPS[name]
        assert sg.combine(a, b) == sg.combine(b, a)

    @given(st.sampled_from(sorted(SEMIGROUPS)), elements, elements, elements)
    def test_associativity(self, name, a, b, c):
        sg = SEMIGROUPS[name]
        assert sg.combine(sg.combine(a, b), c) == sg.combine(a, sg.combine(b, c))

    @given(st.sampled_from(sorted(SEMIGROUPS)), elements)
    def test_identity(self, name, a):
        sg = SEMIGROUPS[name]
        assert sg.combine(sg.identity, a) == a

    @given(
        st.sampled_from(sorted(SEMIGROUPS)),
        st.lists(elements, min_size=1, max_size=20),
    )
    def test_fold_order_independent(self, name, values):
        sg = SEMIGROUPS[name]
        assert sg.fold(values) == sg.fold(list(reversed(values)))

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30))
    def test_sum_fold_is_sum(self, values):
        assert sum_semigroup(10**5).fold(values) == sum(values)
