"""Property-based tests for the CONGEST protocols on random topologies."""

import networkx as nx
import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.algorithms.aggregate import pipelined_upcast
from repro.congest.algorithms.bfs import bfs_with_echo
from repro.congest.algorithms.leader import elect_leader
from repro.congest.algorithms.multibfs import multi_source_bfs
from repro.congest.network import Network

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, max_nodes=16):
    """A random connected graph: a random tree plus random extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        w = draw(st.integers(min_value=0, max_value=n - 1))
        if u != w:
            edges.add((min(u, w), max(u, w)))
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return Network(g)


class TestBFSProperties:
    @SLOW
    @given(connected_graphs(), st.data())
    def test_bfs_distances_always_exact(self, net, data):
        root = data.draw(st.integers(min_value=0, max_value=net.n - 1))
        result = bfs_with_echo(net, root)
        assert result.dist == net.distances_from(root)
        assert result.eccentricity == net.eccentricities[root]

    @SLOW
    @given(connected_graphs())
    def test_bfs_rounds_linear_in_ecc(self, net):
        result = bfs_with_echo(net, 0)
        assert result.rounds <= 3 * max(net.eccentricities[0], 1) + 4

    @SLOW
    @given(connected_graphs())
    def test_parent_edges_exist(self, net):
        result = bfs_with_echo(net, 0)
        for v, p in result.parent.items():
            if p is not None:
                assert net.has_edge(v, p)


class TestLeaderProperties:
    @SLOW
    @given(connected_graphs())
    def test_leader_is_always_max_id(self, net):
        assert elect_leader(net, seed=0).leader == net.n - 1


class TestMultiBFSProperties:
    @SLOW
    @given(connected_graphs(), st.data())
    def test_multi_bfs_exact_for_random_sources(self, net, data):
        count = data.draw(st.integers(min_value=1, max_value=min(4, net.n)))
        sources = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=net.n - 1),
                min_size=count, max_size=count, unique=True,
            )
        )
        result = multi_source_bfs(net, sources, seed=1)
        for s in result.sources:
            assert result.dist[s] == net.distances_from(s)

    @SLOW
    @given(connected_graphs(), st.data())
    def test_multi_bfs_round_bound(self, net, data):
        count = data.draw(st.integers(min_value=1, max_value=min(5, net.n)))
        sources = list(range(count))
        result = multi_source_bfs(net, sources, seed=2)
        assert result.rounds <= count + net.diameter + 3


class TestUpcastProperties:
    @SLOW
    @given(connected_graphs(), st.data())
    def test_upcast_equals_central_sum(self, net, data):
        t = data.draw(st.integers(min_value=1, max_value=4))
        values = {
            v: [
                data.draw(st.integers(min_value=0, max_value=50))
                for _ in range(t)
            ]
            for v in net.nodes()
        }
        tree = bfs_with_echo(net, 0)
        # Domain sized to the true maximum so the payload always fits the
        # (small-n) bandwidth: 50·n ≤ 800 → ≤ 10 bits per value.
        combined, _ = pipelined_upcast(
            net, tree, values, combine=lambda a, b: a + b, domain=50 * net.n + 1
        )
        for i in range(t):
            assert combined[i] == sum(values[v][i] for v in net.nodes())
