"""Property-based tests for the coalescing scheduler's invariants.

Hypothesis drives the cases the hand-written suite can't enumerate:
adversarial arrival orders, the ``deadline_rounds=None`` / ``0``
extremes, charge conservation, and bit-identity to serial execution
when ``submit`` and explicit ``flush`` calls interleave arbitrarily
(the daemon's ``auto_flush=False`` discipline).  Formula mode keeps
each drawn case cheap; the engine-mode equivalence is pinned separately
in the deterministic suite.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import topologies
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    run_framework,
)
from repro.core.semigroup import sum_semigroup
from repro.sched import CoalescingScheduler
from repro.sched.verify import verify_coalescing
from repro.core.operation import Operation

FAST = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

NET = topologies.grid(2, 3)
K = 12
P = 4

_rnd = random.Random(5)
VECTORS = {v: [_rnd.randint(0, 5) for _ in range(K)] for v in NET.nodes()}
CONFIG = FrameworkConfig(
    parallelism=P,
    dist_input=DistributedInput(
        vectors=VECTORS, semigroup=sum_semigroup(6 * NET.n)
    ),
    mode="formula",
    seed=3,
    leader=0,
)

callers = st.sampled_from(["alice", "bob", "carol"])
indices = st.lists(
    st.integers(min_value=0, max_value=K - 1), min_size=1, max_size=P
)
labels = st.sampled_from(["", "probe", "grover"])
workloads = st.lists(
    st.tuples(callers, indices, labels), min_size=1, max_size=12
)


def _serial_values(workload):
    """Each submission's values on a private per-caller serial oracle."""
    by_caller = {}
    for slot, (caller, idx, label) in enumerate(workload):
        by_caller.setdefault(caller, []).append((slot, idx, label))
    out = {}
    for caller, items in by_caller.items():
        def algorithm(oracle, _rng, items=items):
            return [
                (slot, oracle.query_batch(list(idx), label=label))
                for slot, idx, label in items
            ]

        run = run_framework(NET, algorithm, config=CONFIG)
        for slot, vals in run.result:
            out[slot] = vals
    return out


class TestArrivalOrders:
    @FAST
    @given(workloads, st.data())
    def test_any_arrival_permutation_is_serial_identical(self, wl, data):
        shuffled = data.draw(st.permutations(wl))
        verdict = verify_coalescing(NET, CONFIG, shuffled)
        assert verdict.identical, verdict.detail


class TestDeadlineExtremes:
    @FAST
    @given(workloads)
    def test_unbounded_and_zero_deadlines_both_hold(self, wl):
        lazy = verify_coalescing(NET, CONFIG, wl, deadline_rounds=None)
        assert lazy.identical, lazy.detail
        # deadline 0 additionally activates the serial-degeneracy clause:
        # every submission executes immediately and per-caller attributed
        # rounds equal the serial query-round totals exactly.
        eager = verify_coalescing(NET, CONFIG, wl, deadline_rounds=0)
        assert eager.identical, eager.detail
        # Immediate execution can never beat packed execution on rounds.
        assert (
            lazy.coalesced_query_rounds <= eager.coalesced_query_rounds
        )


class TestChargeConservation:
    @FAST
    @given(workloads)
    def test_attribution_sums_to_physical_rounds(self, wl):
        sched = CoalescingScheduler(NET, CONFIG, memo=False)
        for caller, idx, label in wl:
            sched.submit(Operation.query(caller, idx, label=label))
        sched.drain()
        report = sched.report()
        assert report.attributed_rounds == report.physical_query_rounds
        assert report.total_queries == sum(len(idx) for _, idx, _ in wl)
        assert report.submissions == len(wl)


class TestInterleavedSubmitFlush:
    @FAST
    @given(
        workloads,
        st.lists(st.booleans(), min_size=12, max_size=12),
        st.booleans(),
    )
    def test_interleaving_flushes_is_bit_identical(self, wl, flushes, memo):
        """Arbitrary submit/flush interleavings return serial values.

        ``memo`` toggles the result cache: hits answer from the memo in
        zero rounds but must still be bit-identical.
        """
        sched = CoalescingScheduler(
            NET, CONFIG, auto_flush=False, memo=memo
        )
        tickets = []
        for i, (caller, idx, label) in enumerate(wl):
            tickets.append(
                sched.submit(Operation.query(caller, idx, label=label))
            )
            if flushes[i % len(flushes)]:
                sched.flush()
        sched.drain()
        assert sched.pack_would_be_empty()
        want = _serial_values(wl)
        for slot, ticket in enumerate(tickets):
            assert sched.done(ticket)
            assert sched.result(ticket) == want[slot]
