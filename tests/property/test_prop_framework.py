"""Property-based tests for the Theorem 8 framework invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import topologies
from repro.core.cost import CostModel
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    run_framework,
)
from repro.core.semigroup import max_semigroup, sum_semigroup, xor_semigroup

FAST = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

NETWORKS = {
    "path": topologies.path(7),
    "grid": topologies.grid(3, 3),
    "star": topologies.star(8),
}


@st.composite
def framework_cases(draw):
    name = draw(st.sampled_from(sorted(NETWORKS)))
    net = NETWORKS[name]
    k = draw(st.integers(min_value=2, max_value=24))
    semigroup_name = draw(st.sampled_from(["sum", "xor", "max"]))
    if semigroup_name == "sum":
        sg = sum_semigroup(net.n)
        value_range = 2
    elif semigroup_name == "xor":
        sg = xor_semigroup(3)
        value_range = 8
    else:
        sg = max_semigroup(31)
        value_range = 32
    vectors = {
        v: [
            draw(st.integers(min_value=0, max_value=value_range - 1))
            for _ in range(k)
        ]
        for v in net.nodes()
    }
    return net, DistributedInput(vectors, sg)


class TestOracleTruth:
    @FAST
    @given(framework_cases(), st.data())
    def test_every_query_answer_is_the_true_aggregate(self, case, data):
        net, di = case
        truth = di.aggregated()
        p = data.draw(st.integers(min_value=1, max_value=min(di.k, 6)))
        queries = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=di.k - 1),
                min_size=1, max_size=p,
            )
        )

        def algorithm(oracle, _rng):
            return oracle.query_batch(queries)

        run = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=p, dist_input=di, seed=0, leader=0,
        ))
        assert run.result == [truth[j] for j in queries]

    @FAST
    @given(framework_cases(), st.data())
    def test_total_rounds_decompose_exactly(self, case, data):
        """formula mode: total = setup + Σ per-batch charges, always."""
        net, di = case
        p = data.draw(st.integers(min_value=1, max_value=min(di.k, 5)))
        batches = data.draw(st.integers(min_value=0, max_value=4))

        def algorithm(oracle, _rng):
            for _ in range(batches):
                oracle.query_batch(list(range(p)), label="b")
            return None

        run = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=p, dist_input=di, seed=0, leader=0,
        ))
        cm = CostModel.for_network(net)
        expected_batches = batches * cm.batch_rounds(p, di.semigroup.bits, di.k)
        phases = run.rounds.by_phase()
        assert phases.get("batch:b", 0) == expected_batches
        assert run.total_rounds == phases["setup:bfs-tree"] + expected_batches

    @FAST
    @given(framework_cases())
    def test_peek_never_charges_rounds(self, case):
        net, di = case

        def algorithm(oracle, _rng):
            oracle.peek_all()
            return None

        run = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=1, dist_input=di, seed=0, leader=0,
        ))
        assert all(
            phase.startswith("setup") for phase, _ in run.rounds.charges
        )

    @FAST
    @given(framework_cases(), st.data())
    def test_engine_and_formula_values_agree(self, case, data):
        net, di = case
        p = data.draw(st.integers(min_value=1, max_value=min(di.k, 4)))
        queries = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=di.k - 1),
                min_size=1, max_size=p,
            )
        )

        def algorithm(oracle, _rng):
            return oracle.query_batch(queries)

        cfg = FrameworkConfig(parallelism=p, dist_input=di, seed=0,
                              leader=0)
        f = run_framework(net, algorithm, config=cfg)
        e = run_framework(net, algorithm, config=cfg.replace(mode="engine"))
        assert f.result == e.result
