"""Property-based tests for the fault-model determinism contract.

:mod:`repro.faults.models` promises "same seed ⇒ identical fault
schedule" for *any* parameterization, and PR 9's ``bind()`` reset
extends that promise to reused instances.  The regression tests in
``tests/faults/test_model_reuse.py`` pin specific historical bugs;
this module lets hypothesis roam the parameter space:

* ``bind(s); run; bind(s); run`` yields byte-identical verdict streams
  for every :class:`~repro.faults.models.ChannelFaultModel` (including
  the scenario layer's :class:`~repro.scenarios.ByzantineNodes` and
  arbitrary :class:`~repro.faults.models.CompositeFaults` chains);
* a re-bound instance is indistinguishable from a fresh instance with
  the same parameters and seed;
* after a completed run — all traffic applied, delays drained —
  ``pending()`` is False, and a re-bind drops any undrained state.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.encoding import Field
from repro.congest.messages import Message
from repro.faults.models import (
    BernoulliLoss,
    BitCorruption,
    BoundedDelay,
    CompositeFaults,
    GilbertElliottLoss,
    NoFaults,
)
from repro.scenarios import ByzantineNodes

FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

MAX_DELAY_BOUND = 4  # every generated BoundedDelay drains within this

probs = st.floats(min_value=0.0, max_value=1.0)
open_probs = st.floats(min_value=0.05, max_value=1.0)


@st.composite
def atomic_models(draw):
    kind = draw(st.sampled_from(
        ["none", "bernoulli", "burst", "corrupt", "delay", "byzantine"]
    ))
    if kind == "none":
        return NoFaults()
    if kind == "bernoulli":
        return BernoulliLoss(draw(probs))
    if kind == "burst":
        return GilbertElliottLoss(
            p_enter_burst=draw(probs),
            p_exit_burst=draw(open_probs),
            loss_good=draw(st.floats(min_value=0.0, max_value=0.3)),
            loss_bad=draw(probs),
        )
    if kind == "corrupt":
        return BitCorruption(draw(probs))
    if kind == "delay":
        return BoundedDelay(
            draw(probs),
            max_delay=draw(st.integers(min_value=1,
                                       max_value=MAX_DELAY_BOUND)),
        )
    return ByzantineNodes(
        nodes=draw(st.sets(st.integers(min_value=0, max_value=3),
                           min_size=1, max_size=3)),
        p=draw(open_probs),
    )


@st.composite
def fault_models(draw):
    chain = draw(st.lists(atomic_models(), min_size=1, max_size=3))
    if len(chain) == 1:
        return chain[0]
    return CompositeFaults(chain)


@st.composite
def traffic_schedules(draw):
    """(round, Message) pairs over a 4-node edge set, rounds ascending."""
    rounds = draw(st.integers(min_value=1, max_value=10))
    edges = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]
    msgs = []
    for r in range(1, rounds + 1):
        for src, dst in draw(
            st.lists(st.sampled_from(edges), min_size=0, max_size=4)
        ):
            value = draw(st.integers(min_value=0, max_value=7))
            msgs.append((r, Message.make(src, dst, Field(value, 8), r)))
    return msgs


def drive(model, seed, msgs):
    """bind, apply the schedule, drain delays; return the verdict stream."""
    model.bind(np.random.SeedSequence(seed))
    last_round = max((r for r, _ in msgs), default=1)
    stream = []
    for r in range(1, last_round + MAX_DELAY_BOUND + 2):
        for released in model.release(r):
            stream.append(("release", r, released.src, released.dst,
                           released.payload))
        for round_no, msg in msgs:
            if round_no != r:
                continue
            verdict, out = model.apply(msg, r)
            stream.append(
                (verdict, r, msg.src, msg.dst,
                 out.payload if out is not None else None)
            )
    return stream


class TestRebindDeterminism:
    @FAST
    @given(fault_models(), traffic_schedules(),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_bind_run_bind_run_identical(self, model, msgs, seed):
        assert drive(model, seed, msgs) == drive(model, seed, msgs)

    @FAST
    @given(atomic_models(), traffic_schedules(),
           st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_rebound_matches_fresh_instance(self, model, msgs, pollute, seed):
        import copy

        fresh = copy.deepcopy(model)
        drive(model, pollute, msgs)  # a polluting first run
        assert drive(model, seed, msgs) == drive(fresh, seed, msgs)


class TestPendingDrains:
    @FAST
    @given(fault_models(), traffic_schedules(),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_pending_false_after_completed_run(self, model, msgs, seed):
        drive(model, seed, msgs)
        assert not model.pending()

    @FAST
    @given(st.integers(min_value=1, max_value=MAX_DELAY_BOUND),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_rebind_discards_undrained_state(self, max_delay, seed):
        model = BoundedDelay(1.0, max_delay=max_delay)
        model.bind(np.random.SeedSequence(seed))
        model.apply(Message.make(0, 1, Field(1, 8), 1), 1)
        model.bind(np.random.SeedSequence(seed))
        assert not model.pending()
        assert all(
            model.release(r) == []
            for r in range(1, MAX_DELAY_BOUND + 3)
        )
