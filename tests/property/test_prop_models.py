"""Property: the default communication model is a bit-identical no-op.

PR 8 threads a :class:`~repro.congest.models.CommModel` through the
network, engine, CSR cache, and observability spine.  The contract that
makes the refactor safe is that the *default* ``CongestModel()`` changes
nothing: over random topologies, seeds, and schedules, a network built
with an explicit default model must reproduce the plain pre-PR-8 network
exactly — rounds, outputs, traffic statistics, fingerprints, and
observability event streams, with no ``model`` tag anywhere.

A second suite pins the CONGEST-CLIQUE admission/routing invariants over
random physical graphs: over-budget messages are rejected for every
pair, and delivered bits scale with the physical hop count.
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.engine import Engine
from repro.congest.models import CongestModel
from repro.congest.network import Network
from repro.obs import MemorySink, Recorder, install

_SETTINGS = dict(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _make_network_pair(draw):
    """The same random topology, built plain and with an explicit default."""
    kind = draw(st.sampled_from(["grid", "cycle", "star", "tree", "complete"]))
    if kind == "grid":
        r, c = draw(st.integers(2, 5)), draw(st.integers(2, 5))
        g = nx.grid_2d_graph(r, c)
        mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
        g = nx.relabel_nodes(g, mapping)
    elif kind == "cycle":
        g = nx.cycle_graph(draw(st.integers(3, 20)))
    elif kind == "star":
        g = nx.star_graph(draw(st.integers(2, 15)))
    elif kind == "tree":
        g = nx.balanced_tree(2, draw(st.integers(1, 3)))
    else:
        g = nx.complete_graph(draw(st.integers(2, 12)))
    return Network(g), Network(g, comm_model=CongestModel())


def _run(net, seed, schedule):
    programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
    engine = Engine(net, programs, seed=seed, schedule=schedule)
    sink = MemorySink()
    with install(Recorder([sink])):
        result = engine.run()
    return result, sink, engine


class TestDefaultModelBitIdentity:
    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_engine_identical_across_schedules(self, data):
        plain, explicit = _make_network_pair(data.draw)
        seed = data.draw(st.integers(0, 100))
        schedule = data.draw(st.sampled_from(["dense", "active", "vectorized"]))
        a, sink_a, _ = _run(plain, seed, schedule)
        b, sink_b, _ = _run(explicit, seed, schedule)
        assert a.rounds == b.rounds
        assert a.outputs == b.outputs
        assert a.stats == b.stats
        assert sink_a.events == sink_b.events
        # The default model never tags events.
        assert all(
            getattr(e, "model", "") == ""
            for e in sink_a.events + sink_b.events
        )

    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_fingerprints_and_metadata_identical(self, data):
        plain, explicit = _make_network_pair(data.draw)
        assert (
            plain.topology_fingerprint() == explicit.topology_fingerprint()
        )
        assert plain.bandwidth == explicit.bandwidth
        for v in plain.nodes():
            assert plain.peers(v) is plain.neighbors(v)
            assert explicit.peers(v) == plain.peers(v)

    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_vectorized_stays_on_fast_path(self, data):
        _, explicit = _make_network_pair(data.draw)
        seed = data.draw(st.integers(0, 100))
        _, _, engine = _run(explicit, seed, "vectorized")
        assert engine.vectorized_fallback is None


def _random_connected(draw):
    n = draw(st.integers(3, 14))
    g = nx.cycle_graph(n)
    extra = draw(st.integers(0, 3))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.add_edge(u, v)
    return g


class TestCliqueAdmissionProperties:
    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_every_distinct_pair_admitted_within_budget(self, data):
        net = Network(_random_connected(data.draw), comm_model="congest-clique")
        src = data.draw(st.integers(0, net.n - 1))
        dst = data.draw(
            st.integers(0, net.n - 1).filter(lambda v: v != src)
        )
        net.admit(src, dst, net.bandwidth)  # never raises
        assert dst in net.peers(src)

    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_over_budget_rejected_for_every_pair(self, data):
        import pytest

        from repro.congest.errors import MessageTooLargeError

        net = Network(_random_connected(data.draw), comm_model="congest-clique")
        src = data.draw(st.integers(0, net.n - 1))
        dst = data.draw(
            st.integers(0, net.n - 1).filter(lambda v: v != src)
        )
        with pytest.raises(MessageTooLargeError):
            net.admit(src, dst, net.bandwidth + 1)

    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_router_charges_hops_times_bits(self, data):
        net = Network(_random_connected(data.draw), comm_model="congest-clique")
        router = net.model.router(net)
        src = data.draw(st.integers(0, net.n - 1))
        dst = data.draw(
            st.integers(0, net.n - 1).filter(lambda v: v != src)
        )
        hops = router.hops(src, dst)
        assert hops >= 1
        assert router.hops(dst, src) == hops
        truth = net.distances_from(src)[dst]
        assert hops == truth
