"""Property-based tests for the amplitude-sketch invariants.

Hypothesis pins the three contracts the ISSUE names:

* **bit-identity across fidelity levels** — on overlapping widths
  (``m ≤ 10``) the exact statevector backend and the stochastic
  phase-vector emulation agree on raw overlaps to 1e-9 and *exactly*
  on decision-level outputs (membership verdicts, count estimates),
  for arbitrary insert streams and probes;
* **insert-order invariance** — for families the taxonomy marks
  order-invariant (unit-weight rotations commute), any permutation of
  the stream yields the bit-identical emulated state;
* **compose error propagation** — composing sketches with overlap
  errors ε₁, ε₂ against their stream-union truth never exceeds the
  pure-state angle triangle bound ε₁ + ε₂ + 2√(ε₁ε₂), the exact form
  of the ε₁ + ε₂ + O(ε₁·ε₂) claim.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.sketches import TAXONOMY, AmplitudeSketch, SketchSpec

FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

keys = st.integers(min_value=0, max_value=30).map(lambda i: f"key-{i}")
streams = st.lists(keys, min_size=0, max_size=12)
probe_lists = st.lists(keys, min_size=1, max_size=6)


def build(family, m, seed, backend, stream):
    sk = AmplitudeSketch(
        SketchSpec(family=family, m=m, k=3, seed=seed, backend=backend)
    )
    for x in stream:
        sk.insert(x)
    return sk


@FAST
@given(stream=streams, probes=probe_lists, m=st.sampled_from([8, 10]),
       seed=st.integers(0, 7))
def test_exact_emulated_bit_identity(stream, probes, m, seed):
    ex = build("qcount", m, seed, "exact", stream)
    em = build("qcount", m, seed, "emulated", stream)
    for y in probes + stream:
        assert abs(ex.query(y) - em.query(y)) <= 1e-9
        assert ex.contains(y) == em.contains(y)
        assert ex.bucket_count(0) == em.bucket_count(0)


@FAST
@given(stream=streams, seed=st.integers(0, 7),
       family=st.sampled_from(["qcount", "qsimhash"]),
       shuffle_seed=st.integers(0, 1000))
def test_insert_order_invariance_for_unit_weight_families(
    stream, seed, family, shuffle_seed
):
    assert TAXONOMY[family].order_invariant
    forward = build(family, 64, seed, "emulated", stream)
    rng = np.random.default_rng(shuffle_seed)
    permuted_stream = list(stream)
    rng.shuffle(permuted_stream)
    permuted = build(family, 64, seed, "emulated", permuted_stream)
    assert np.array_equal(
        forward._state.counts, permuted._state.counts
    )
    assert forward.state_fidelity(permuted) == 1.0


@FAST
@given(a_stream=streams, b_stream=streams, probes=probe_lists,
       seed=st.integers(0, 7))
def test_compose_error_triangle_bound(a_stream, b_stream, probes, seed):
    a = build("qcount", 64, seed, "emulated", a_stream)
    b = build("qcount", 64, seed, "emulated", b_stream)
    union = build("qcount", 64, seed, "emulated", a_stream + b_stream)
    composed = a.compose(b)
    # Component errors: each side's overlap deficit against the union
    # truth, measured per probe so the bound is checked pointwise.
    for y in probes:
        truth = union.query(y)
        got = composed.query(y)
        eps1 = abs(a.query(y) - truth)
        eps2 = abs(b.query(y) - truth)
        bound = eps1 + eps2 + 2.0 * math.sqrt(eps1 * eps2)
        assert abs(got - truth) <= bound + 1e-9


@FAST
@given(a_stream=streams, b_stream=streams, seed=st.integers(0, 7))
def test_compose_is_bit_identical_to_union_stream(a_stream, b_stream, seed):
    a = build("qcount", 64, seed, "emulated", a_stream)
    b = build("qcount", 64, seed, "emulated", b_stream)
    union = build("qcount", 64, seed, "emulated", a_stream + b_stream)
    composed = a.compose(b)
    assert np.array_equal(composed._state.counts, union._state.counts)
