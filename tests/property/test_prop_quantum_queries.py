"""Property-based tests: quantum laws and query-algorithm invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.quantum import grover as exact_grover
from repro.quantum.deutsch_jozsa import classify
from repro.queries.grover import find_one, marked_subset_fraction
from repro.queries.ledger import QueryLedger
from repro.queries.minimum import find_minimum
from repro.queries.oracle import StringOracle

FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestGroverLawProperty:
    @FAST
    @given(
        st.integers(min_value=2, max_value=6),
        st.data(),
        st.integers(min_value=0, max_value=5),
    )
    def test_statevector_matches_closed_form(self, num_qubits, data, iterations):
        n_items = 1 << num_qubits
        t = data.draw(st.integers(min_value=1, max_value=n_items - 1))
        marked = set(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_items - 1),
                    min_size=t, max_size=t, unique=True,
                )
            )
        )
        exact = exact_grover.success_probability(num_qubits, marked, iterations)
        theory = exact_grover.theoretical_success_probability(
            n_items, len(marked), iterations
        )
        assert abs(exact - theory) < 1e-9


class TestSubsetFractionProperty:
    @FAST
    @given(
        st.integers(min_value=2, max_value=10**4),
        st.data(),
    )
    def test_fraction_in_unit_interval_and_monotone(self, k, data):
        t = data.draw(st.integers(min_value=0, max_value=k))
        p = data.draw(st.integers(min_value=1, max_value=k))
        f = marked_subset_fraction(k, t, p)
        assert 0.0 <= f <= 1.0
        if t > 0:
            f_more = marked_subset_fraction(k, min(t + 1, k), p)
            assert f_more >= f - 1e-12


class TestDeutschJozsaProperty:
    @FAST
    @given(st.integers(min_value=1, max_value=5), st.data())
    def test_balanced_strings_always_balanced(self, q, data):
        k = 1 << q
        ones = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=k - 1),
                min_size=k // 2, max_size=k // 2, unique=True,
            )
        )
        bits = [1 if i in set(ones) else 0 for i in range(k)]
        assert classify(bits) == "balanced"

    @FAST
    @given(st.integers(min_value=1, max_value=6), st.booleans())
    def test_constant_strings_always_constant(self, q, ones):
        bits = [int(ones)] * (1 << q)
        assert classify(bits) == "constant"


class TestQueryAlgorithmInvariants:
    @FAST
    @given(
        st.integers(min_value=8, max_value=256),
        st.integers(min_value=1, max_value=32),
        st.data(),
    )
    def test_find_one_never_lies(self, k, p, data):
        """If find_one reports an index, that index is truly marked."""
        t = data.draw(st.integers(min_value=0, max_value=3))
        marked = set(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=k - 1),
                    min_size=min(t, k), max_size=min(t, k), unique=True,
                )
            )
        )
        values = [1 if i in marked else 0 for i in range(k)]
        oracle = StringOracle(values, QueryLedger(p))
        seed = data.draw(st.integers(min_value=0, max_value=100))
        out = find_one(oracle, lambda v: v == 1, np.random.default_rng(seed))
        if out.found:
            assert out.index in marked
        if not marked:
            assert not out.found

    @FAST
    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=4, max_size=200),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=50),
    )
    def test_minimum_outcome_is_real_value(self, values, p, seed):
        """The reported (index, value) pair is always consistent."""
        oracle = StringOracle(values, QueryLedger(p))
        out = find_minimum(oracle, np.random.default_rng(seed))
        assert values[out.index] == out.value

    @FAST
    @given(
        st.integers(min_value=8, max_value=128),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=20),
    )
    def test_ledger_batches_never_exceed_parallelism(self, k, p, seed):
        values = list(range(k))
        oracle = StringOracle(values, QueryLedger(p))
        find_minimum(oracle, np.random.default_rng(seed))
        assert all(r.size <= p for r in oracle.ledger.records)
