"""FrameworkConfig: validation, shim↔config equivalence, cache tripwire."""

import dataclasses

import pytest

from repro.congest import topologies
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    StalePreparedNetworkError,
    invalidate_prepared,
    prepare_network,
    run_framework,
)
from repro.core.semigroup import sum_semigroup


K = 12


@pytest.fixture
def network():
    return topologies.grid(3, 4)


@pytest.fixture
def di(network):
    vectors = {
        v: [(v + 2 * j) % 4 for j in range(K)] for v in network.nodes()
    }
    return DistributedInput(vectors, sum_semigroup(4 * network.n))


def algorithm(oracle, _rng):
    first = oracle.query_batch([0, 1], label="a")
    second = oracle.query_batch([2, 3], label="b")
    return first + second


class TestConfigValidation:
    def test_parallelism_must_be_positive(self):
        with pytest.raises(ValueError, match="parallelism"):
            FrameworkConfig(parallelism=0)

    def test_mode_must_be_known(self):
        with pytest.raises(ValueError, match="mode"):
            FrameworkConfig(parallelism=1, mode="quantum")

    def test_frozen(self):
        cfg = FrameworkConfig(parallelism=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.parallelism = 3

    def test_replace_builds_variant(self, di):
        base = FrameworkConfig(parallelism=2, dist_input=di, seed=0)
        variant = base.replace(seed=7, mode="engine")
        assert (variant.seed, variant.mode) == (7, "engine")
        assert base.seed == 0 and base.mode == "formula"
        assert variant.dist_input is di

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            FrameworkConfig(parallelism=2).replace(parallelism=-1)


class TestShimEquivalence:
    """The legacy flat signature must be a pure spelling of config=."""

    @pytest.mark.parametrize("mode", ["formula", "engine"])
    def test_bit_identical_results(self, network, di, mode):
        canonical = run_framework(
            network, algorithm, config=FrameworkConfig(
                parallelism=2, dist_input=di, mode=mode, seed=9,
            ),
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = run_framework(
                network, algorithm, parallelism=2, dist_input=di,
                mode=mode, seed=9,
            )
        assert legacy.result == canonical.result
        assert legacy.rounds.by_phase() == canonical.rounds.by_phase()
        assert (
            legacy.query_ledger.signature()
            == canonical.query_ledger.signature()
        )
        assert legacy.leader == canonical.leader

    def test_positional_legacy_args_accepted(self, network, di):
        with pytest.warns(DeprecationWarning):
            run = run_framework(network, algorithm, 2, di)
        assert run.query_ledger.batches == 2

    def test_config_plus_legacy_rejected(self, network, di):
        cfg = FrameworkConfig(parallelism=2, dist_input=di)
        with pytest.raises(TypeError, match="not both"):
            run_framework(network, algorithm, parallelism=2, config=cfg)

    def test_no_arguments_rejected(self, network):
        with pytest.raises(TypeError, match="config="):
            run_framework(network, algorithm)

    def test_unknown_keyword_rejected(self, network, di):
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_framework(
                network, algorithm, parallelism=2, dist_input=di,
                typo_field=1,
            )

    def test_duplicated_argument_rejected(self, network, di):
        with pytest.raises(TypeError, match="multiple values"):
            run_framework(network, algorithm, 2, parallelism=2, dist_input=di)

    def test_missing_parallelism_rejected(self, network, di):
        with pytest.raises(TypeError, match="parallelism"):
            run_framework(network, algorithm, dist_input=di)


class TestStaleCacheTripwire:
    def test_in_place_mutation_detected(self):
        net = topologies.grid(3, 3)
        invalidate_prepared(net)
        prepare_network(net, seed=0)
        net.graph.add_edge(0, 8)  # mutate the topology in place
        try:
            with pytest.raises(StalePreparedNetworkError):
                prepare_network(net, seed=0)
        finally:
            invalidate_prepared(net)

    def test_unmutated_network_still_cached(self):
        net = topologies.grid(3, 3)
        invalidate_prepared(net)
        first = prepare_network(net, seed=0)
        assert prepare_network(net, seed=0) is first
        invalidate_prepared(net)

    def test_run_framework_surfaces_tripwire(self, di):
        net = topologies.grid(3, 4)
        invalidate_prepared(net)
        cfg = FrameworkConfig(parallelism=2, dist_input=di, seed=4)
        run_framework(net, algorithm, config=cfg)
        net.graph.add_edge(0, 11)
        try:
            with pytest.raises(StalePreparedNetworkError):
                run_framework(net, algorithm, config=cfg)
        finally:
            invalidate_prepared(net)
