"""FrameworkConfig.engine_schedule: validation, threading, equivalence.

PR 7 lets a framework run ask its engine-mode protocols (BFS setup,
upcast convergecast, downcast broadcast) to execute column-major.  The
knob must validate, reach the oracle, and — being an oracle-checked
optimization — leave every measured quantity bit-identical.
"""

import pytest

from repro.congest import topologies
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    invalidate_prepared,
    run_framework,
)
from repro.core.semigroup import sum_semigroup

K = 12


@pytest.fixture
def network():
    return topologies.grid(3, 4)


@pytest.fixture
def di(network):
    vectors = {
        v: [(v + 2 * j) % 4 for j in range(K)] for v in network.nodes()
    }
    return DistributedInput(vectors, sum_semigroup(4 * network.n))


def algorithm(oracle, _rng):
    first = oracle.query_batch([0, 1], label="a")
    second = oracle.query_batch([2, 3], label="b")
    return first + second


class TestValidation:
    def test_config_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="engine_schedule"):
            FrameworkConfig(parallelism=1, engine_schedule="eager")

    def test_default_is_active(self):
        assert FrameworkConfig(parallelism=1).engine_schedule == "active"

    def test_legacy_shim_does_not_accept_it(self, network, di):
        # The flat pre-config signature is frozen; new knobs are
        # config-only so the shim never grows.
        with pytest.raises(TypeError, match="engine_schedule"):
            run_framework(
                network, algorithm, parallelism=2, dist_input=di,
                engine_schedule="vectorized",
            )


class TestEquivalence:
    @pytest.mark.parametrize("mode", ["formula", "engine"])
    def test_vectorized_run_is_bit_identical(self, network, di, mode):
        invalidate_prepared()
        runs = {}
        for schedule in ("active", "vectorized"):
            config = FrameworkConfig(
                parallelism=3, dist_input=di, seed=1, mode=mode,
                engine_schedule=schedule,
            )
            runs[schedule] = run_framework(network, algorithm, config=config)
        a, v = runs["active"], runs["vectorized"]
        assert a.result == v.result
        assert a.total_rounds == v.total_rounds
        assert a.rounds.by_phase() == v.rounds.by_phase()
        assert a.batches == v.batches
        invalidate_prepared()

    def test_replace_builds_vectorized_variant(self, di):
        base = FrameworkConfig(parallelism=2, dist_input=di)
        variant = base.replace(engine_schedule="vectorized")
        assert variant.engine_schedule == "vectorized"
        assert base.engine_schedule == "active"
