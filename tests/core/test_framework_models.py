"""PR 8: FrameworkConfig.comm_model declaration and ledger model tags."""

import networkx as nx
import pytest

from repro.congest.errors import CongestError
from repro.congest.models import CongestCliqueModel, CongestModel
from repro.congest.network import Network
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    run_framework,
)
from repro.core.semigroup import sum_semigroup
from repro.obs import MemorySink, Recorder, install


def _grid(comm_model=None):
    g = nx.grid_2d_graph(4, 5)
    mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
    return Network(nx.relabel_nodes(g, mapping), comm_model=comm_model)


def _input(net):
    vectors = {v: [v % 3, (v + 1) % 3] for v in net.nodes()}
    return DistributedInput(vectors, sum_semigroup(net.n))


def _algorithm(oracle, rng):
    return oracle.query_batch([0, 1])


class TestConfigNormalization:
    def test_string_model_resolved_at_construction(self):
        cfg = FrameworkConfig(parallelism=2, comm_model="congest-clique")
        assert cfg.comm_model == CongestCliqueModel()

    def test_instance_passes_through(self):
        model = CongestModel(bandwidth=9)
        cfg = FrameworkConfig(parallelism=2, comm_model=model)
        assert cfg.comm_model is model

    def test_unknown_model_rejected_at_construction(self):
        with pytest.raises(CongestError, match="unknown communication model"):
            FrameworkConfig(parallelism=2, comm_model="telepathy")

    def test_replace_preserves_model(self):
        cfg = FrameworkConfig(parallelism=2, comm_model="local")
        assert cfg.replace(seed=7).comm_model == cfg.comm_model


class TestModelDeclarationCheck:
    def test_matching_declaration_accepted(self):
        net = _grid()
        cfg = FrameworkConfig(
            parallelism=2, dist_input=_input(net), seed=1,
            comm_model=CongestModel(),
        )
        run = run_framework(net, _algorithm, config=cfg)
        assert run.result is not None

    def test_mismatched_declaration_rejected(self):
        net = _grid()  # default CONGEST
        cfg = FrameworkConfig(
            parallelism=2, dist_input=_input(net), seed=1,
            comm_model="congest-clique",
        )
        with pytest.raises(CongestError, match="comm_model"):
            run_framework(net, _algorithm, config=cfg)

    def test_undeclared_config_accepts_any_network(self):
        net = _grid(comm_model="local")
        cfg = FrameworkConfig(parallelism=2, dist_input=_input(net), seed=1)
        run = run_framework(net, _algorithm, config=cfg)
        assert run.result is not None

    def test_declared_run_matches_undeclared_bit_for_bit(self):
        net = _grid()
        base = dict(parallelism=2, dist_input=_input(net), seed=1)
        plain = run_framework(net, _algorithm, config=FrameworkConfig(**base))
        declared = run_framework(
            net, _algorithm,
            config=FrameworkConfig(**base, comm_model=CongestModel()),
        )
        assert plain.result == declared.result
        assert plain.total_rounds == declared.total_rounds
        assert plain.rounds.by_phase() == declared.rounds.by_phase()


class TestLedgerModelTag:
    def test_default_model_charges_untagged(self):
        net = _grid()
        cfg = FrameworkConfig(parallelism=2, dist_input=_input(net), seed=1)
        sink = MemorySink()
        with install(Recorder([sink])):
            run_framework(net, _algorithm, config=cfg)
        charges = sink.events_of_kind("charge")
        assert charges
        assert all(e.model == "" for e in charges)

    def test_non_default_model_tags_charges(self):
        net = _grid(comm_model="local")
        cfg = FrameworkConfig(parallelism=2, dist_input=_input(net), seed=1)
        sink = MemorySink()
        with install(Recorder([sink])):
            run_framework(net, _algorithm, config=cfg)
        charges = sink.events_of_kind("charge")
        assert charges
        assert all(e.model == "local" for e in charges)
