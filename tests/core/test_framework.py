"""Tests for the Theorem 8 / Corollary 9 framework runner."""

import pytest

from repro.congest import topologies
from repro.core.cost import CostModel
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    ValueComputer,
    run_framework,
)
from repro.core.semigroup import max_semigroup, sum_semigroup, xor_semigroup
from repro.queries import minimum as parallel_minimum


def sum_input(net, k, rng):
    vectors = {
        v: [int(rng.integers(0, 2)) for _ in range(k)] for v in net.nodes()
    }
    return DistributedInput(vectors, sum_semigroup(net.n))


class TestDistributedInput:
    def test_aggregated_sums(self, grid45, rng):
        di = sum_input(grid45, 6, rng)
        agg = di.aggregated()
        for j in range(6):
            assert agg[j] == sum(di.vectors[v][j] for v in grid45.nodes())

    def test_rejects_unequal_lengths(self, grid45):
        vectors = {v: [0] for v in grid45.nodes()}
        vectors[0] = [0, 1]
        with pytest.raises(ValueError):
            DistributedInput(vectors, sum_semigroup(10))

    def test_rejects_empty_vectors(self, grid45):
        vectors = {v: [] for v in grid45.nodes()}
        with pytest.raises(ValueError):
            DistributedInput(vectors, sum_semigroup(10))

    def test_xor_aggregation(self, path8):
        vectors = {v: [v & 1, 1] for v in path8.nodes()}
        di = DistributedInput(vectors, xor_semigroup(1))
        assert di.aggregated() == [0, 0]


class TestOracleSemantics:
    def test_values_are_aggregates(self, grid45, rng):
        di = sum_input(grid45, 10, rng)
        agg = di.aggregated()

        def algorithm(oracle, _rng):
            return oracle.query_batch([0, 3, 7])

        run = run_framework(grid45, algorithm, config=FrameworkConfig(
            parallelism=4, dist_input=di, seed=1,
        ))
        assert run.result == [agg[0], agg[3], agg[7]]

    def test_out_of_range_query_rejected(self, grid45, rng):
        di = sum_input(grid45, 4, rng)

        def algorithm(oracle, _rng):
            return oracle.query_batch([4])

        with pytest.raises(IndexError):
            run_framework(grid45, algorithm, config=FrameworkConfig(
                parallelism=2, dist_input=di, seed=1,
            ))

    def test_parallelism_enforced(self, grid45, rng):
        di = sum_input(grid45, 10, rng)

        def algorithm(oracle, _rng):
            return oracle.query_batch(list(range(5)))

        from repro.queries.ledger import ParallelismViolation

        with pytest.raises(ParallelismViolation):
            run_framework(grid45, algorithm, config=FrameworkConfig(
                parallelism=3, dist_input=di, seed=1,
            ))

    def test_needs_input_or_computer(self, grid45):
        def algorithm(oracle, _rng):
            return None

        with pytest.raises(ValueError):
            run_framework(grid45, algorithm, config=FrameworkConfig(
                parallelism=2, seed=1,
            ))


class TestRoundCharging:
    def test_setup_phase_charged(self, grid45, rng):
        di = sum_input(grid45, 8, rng)
        run = run_framework(
            grid45, lambda o, r: o.query_batch([0]),
            config=FrameworkConfig(parallelism=2, dist_input=di, seed=1),
        )
        phases = run.rounds.by_phase()
        assert "setup:leader-election" in phases
        assert "setup:bfs-tree" in phases

    def test_designated_leader_skips_election(self, grid45, rng):
        di = sum_input(grid45, 8, rng)
        run = run_framework(
            grid45, lambda o, r: o.query_batch([0]),
            config=FrameworkConfig(
                parallelism=2, dist_input=di, seed=1, leader=0,
            ),
        )
        assert "setup:leader-election" not in run.rounds.by_phase()
        assert run.leader == 0

    def test_formula_charge_matches_cost_model(self, grid45, rng):
        di = sum_input(grid45, 16, rng)
        cm = CostModel.for_network(grid45)
        p = 4

        def algorithm(oracle, _rng):
            oracle.query_batch([0, 1, 2, 3], label="t")
            return None

        run = run_framework(grid45, algorithm, config=FrameworkConfig(
            parallelism=p, dist_input=di, seed=1,
        ))
        expected = cm.batch_rounds(p, di.semigroup.bits, di.k)
        assert run.rounds.by_phase()["batch:t"] == expected

    def test_rounds_scale_with_batches(self, grid45, rng):
        di = sum_input(grid45, 16, rng)

        def algo_n(n):
            def algorithm(oracle, _rng):
                for _ in range(n):
                    oracle.query_batch([0, 1])
                return None
            return algorithm

        cfg = FrameworkConfig(parallelism=2, dist_input=di, seed=1)
        one = run_framework(grid45, algo_n(1), config=cfg)
        five = run_framework(grid45, algo_n(5), config=cfg)
        setup = one.total_rounds - one.rounds.by_phase().get("batch:query", 0)
        per_batch = one.rounds.by_phase()["batch:query"]
        assert five.total_rounds == setup + 5 * per_batch


class TestEngineMode:
    def test_engine_values_match_formula_values(self, grid45, rng):
        di = sum_input(grid45, 12, rng)

        def algorithm(oracle, _rng):
            return oracle.query_batch([1, 5, 9])

        cfg = FrameworkConfig(parallelism=3, dist_input=di, seed=2)
        f = run_framework(grid45, algorithm, config=cfg)
        e = run_framework(grid45, algorithm,
                          config=cfg.replace(mode="engine"))
        assert f.result == e.result

    def test_engine_rounds_within_constant_of_formula(self, grid45, rng):
        di = sum_input(grid45, 12, rng)

        def algorithm(oracle, _rng):
            oracle.query_batch(list(range(6)))
            oracle.query_batch(list(range(6, 12)))
            return None

        cfg = FrameworkConfig(parallelism=6, dist_input=di, seed=2)
        f = run_framework(grid45, algorithm, config=cfg)
        e = run_framework(grid45, algorithm,
                          config=cfg.replace(mode="engine"))
        assert e.total_rounds <= 4 * f.total_rounds
        assert f.total_rounds <= 4 * e.total_rounds

    def test_engine_phase_breakdown(self, grid45, rng):
        di = sum_input(grid45, 8, rng)
        run = run_framework(
            grid45, lambda o, r: o.query_batch([0, 1]),
            config=FrameworkConfig(
                parallelism=2, dist_input=di, mode="engine", seed=2,
            ),
        )
        phases = run.rounds.by_phase()
        for phase in ("index-distribute", "value-upcast",
                      "value-uncompute", "index-uncompute"):
            assert phases[phase] > 0

    def test_invalid_mode_rejected(self, grid45, rng):
        di = sum_input(grid45, 4, rng)
        with pytest.raises(ValueError):
            run_framework(grid45, lambda o, r: None, config=FrameworkConfig(
                parallelism=1, dist_input=di, mode="quantum", seed=1,
            ))


class FixedComputer(ValueComputer):
    """Test computer: x_j = j², contributed by node j mod n."""

    def __init__(self, net, k, alpha_value=7):
        self.net = net
        self.k = k
        self.alpha_value = alpha_value
        self.calls = 0

    def compute(self, indices):
        self.calls += 1
        return {j: {j % self.net.n: j * j} for j in indices}, self.alpha_value

    def alpha(self, p):
        return self.alpha_value


class TestOnTheFly:
    def test_computed_values_served(self, grid45):
        computer = FixedComputer(grid45, 30)

        def algorithm(oracle, _rng):
            return oracle.query_batch([2, 5])

        run = run_framework(
            grid45, algorithm, config=FrameworkConfig(
                parallelism=2, computer=computer, k=30, seed=1,
                semigroup=max_semigroup(1000),
            ),
        )
        assert run.result == [4, 25]

    def test_alpha_charged_every_batch(self, grid45):
        computer = FixedComputer(grid45, 30, alpha_value=11)
        cm = CostModel.for_network(grid45)

        def algorithm(oracle, _rng):
            oracle.query_batch([1], label="q")
            oracle.query_batch([1], label="q")  # cached value, α still due
            return None

        run = run_framework(
            grid45, algorithm, config=FrameworkConfig(
                parallelism=1, computer=computer, k=30, seed=1,
                semigroup=max_semigroup(1000),
            ),
        )
        per_batch = cm.batch_rounds(1, max_semigroup(1000).bits, 30, alpha=11)
        assert run.rounds.by_phase()["batch:q"] == 2 * per_batch
        assert computer.calls == 1  # value itself computed once

    def test_peek_all_computes_everything(self, grid45):
        computer = FixedComputer(grid45, 10)

        def algorithm(oracle, _rng):
            return list(oracle.peek_all())

        run = run_framework(
            grid45, algorithm, config=FrameworkConfig(
                parallelism=1, computer=computer, k=10, seed=1,
                semigroup=max_semigroup(1000),
            ),
        )
        assert run.result == [j * j for j in range(10)]

    def test_minimum_over_computed_values(self, grid45):
        computer = FixedComputer(grid45, 40)

        def algorithm(oracle, rng):
            return parallel_minimum.find_minimum(oracle, rng)

        run = run_framework(
            grid45, algorithm, config=FrameworkConfig(
                parallelism=5, computer=computer, k=40, seed=3,
                semigroup=max_semigroup(10**4),
            ),
        )
        assert run.result.value == 0
