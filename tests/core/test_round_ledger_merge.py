"""Tests for RoundLedger.merge: prefixes and phase-key collision control."""

import pytest

from repro.core.cost import RoundLedger


def _ledger(*charges):
    ledger = RoundLedger()
    for phase, rounds in charges:
        ledger.charge(phase, rounds)
    return ledger


class TestMergePrefix:
    def test_prefix_applied_to_every_incoming_phase(self):
        parent = _ledger(("setup", 5))
        child = _ledger(("bfs", 3), ("echo", 2))
        parent.merge(child, prefix="sub:")
        assert parent.by_phase() == {"setup": 5, "sub:bfs": 3, "sub:echo": 2}
        assert parent.total == 10

    def test_empty_prefix_keeps_keys(self):
        parent = _ledger(("a", 1))
        parent.merge(_ledger(("b", 2)))
        assert parent.by_phase() == {"a": 1, "b": 2}

    def test_child_unmodified(self):
        child = _ledger(("x", 1))
        _ledger(("a", 1)).merge(child, prefix="p:")
        assert child.charges == [("x", 1)]


class TestMergeCollisions:
    def test_default_add_aggregates_shared_keys(self):
        parent = _ledger(("setup", 5))
        parent.merge(_ledger(("setup", 3)))
        # Both charges survive in the list; by_phase adds them.
        assert parent.charges == [("setup", 5), ("setup", 3)]
        assert parent.by_phase() == {"setup": 8}

    def test_error_mode_raises_on_collision(self):
        parent = _ledger(("sub:bfs", 5), ("other", 1))
        child = _ledger(("bfs", 3))
        with pytest.raises(ValueError, match="sub:bfs"):
            parent.merge(child, prefix="sub:", on_collision="error")

    def test_error_mode_lists_every_colliding_key(self):
        parent = _ledger(("b", 1), ("a", 1))
        child = _ledger(("a", 2), ("b", 2), ("c", 2))
        with pytest.raises(ValueError, match=r"\['a', 'b'\]"):
            parent.merge(child, on_collision="error")

    def test_error_mode_leaves_parent_untouched_on_collision(self):
        parent = _ledger(("a", 1))
        child = _ledger(("a", 2), ("b", 2))
        with pytest.raises(ValueError):
            parent.merge(child, on_collision="error")
        assert parent.charges == [("a", 1)]

    def test_error_mode_passes_when_disjoint(self):
        parent = _ledger(("a", 1))
        parent.merge(_ledger(("a", 2)), prefix="sub:", on_collision="error")
        assert parent.by_phase() == {"a": 1, "sub:a": 2}

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_collision"):
            _ledger().merge(_ledger(), on_collision="overwrite")
