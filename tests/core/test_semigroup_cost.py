"""Tests for semigroups and the cost model / round ledger."""

import math

import pytest

from repro.congest import topologies
from repro.core.cost import CostModel, RoundLedger
from repro.core.semigroup import (
    and_semigroup,
    max_semigroup,
    min_semigroup,
    or_semigroup,
    sum_semigroup,
    xor_semigroup,
)


class TestSemigroups:
    @pytest.mark.parametrize("sg,values,expected", [
        (sum_semigroup(100), [3, 4, 5], 12),
        (xor_semigroup(4), [0b1010, 0b0110], 0b1100),
        (max_semigroup(50), [7, 40, 2], 40),
        (min_semigroup(50), [7, 40, 2], 2),
        (and_semigroup(), [1, 1, 0], 0),
        (or_semigroup(), [0, 0, 1], 1),
    ])
    def test_fold(self, sg, values, expected):
        assert sg.fold(values) == expected

    def test_fold_empty_uses_identity(self):
        assert sum_semigroup(10).fold([]) == 0
        assert min_semigroup(10).fold([]) == 10

    def test_bits_of_sum(self):
        assert sum_semigroup(255).bits == 8
        assert sum_semigroup(256).bits == 9

    def test_bits_of_xor(self):
        assert xor_semigroup(12).bits == 12

    @pytest.mark.parametrize("sg", [
        sum_semigroup(1000), xor_semigroup(8), max_semigroup(99),
        min_semigroup(99), and_semigroup(), or_semigroup(),
    ])
    def test_identity_is_neutral(self, sg):
        for v in [0, 1, min(5, (sg.domain_size or 2) - 1)]:
            assert sg.combine(sg.identity, v) == v
            assert sg.combine(v, sg.identity) == v

    @pytest.mark.parametrize("sg", [
        sum_semigroup(1000), xor_semigroup(8), max_semigroup(99), min_semigroup(99),
    ])
    def test_commutative_and_associative_samples(self, sg):
        samples = [0, 1, 5, 17]
        for a in samples:
            for b in samples:
                assert sg.combine(a, b) == sg.combine(b, a)
                for c in samples:
                    assert sg.combine(sg.combine(a, b), c) == sg.combine(
                        a, sg.combine(b, c)
                    )


class TestCostModel:
    @pytest.fixture
    def cm(self):
        return CostModel(n=1024, diameter=10, word_bits=10)

    def test_words(self, cm):
        assert cm.words(10) == 1
        assert cm.words(11) == 2
        assert cm.words(1) == 1

    def test_index_words(self, cm):
        assert cm.index_words(1024) == 1
        assert cm.index_words(2**20) == 2

    def test_state_distribution_pipelined(self, cm):
        assert cm.state_distribution_rounds(100) == 10 + 10

    def test_state_distribution_naive(self, cm):
        assert cm.state_distribution_rounds(100, pipelined=False) == 100

    def test_batch_rounds_formula(self, cm):
        # (D + p)·⌈q/w⌉ + p·⌈log k/w⌉ + α
        assert cm.batch_rounds(p=10, q_bits=10, k=1024, alpha=5) == (
            (10 + 10) * 1 + 10 * 1 + 5
        )

    def test_framework_rounds(self, cm):
        batch = cm.batch_rounds(p=10, q_bits=10, k=1024)
        assert cm.framework_rounds(b=3, p=10, q_bits=10, k=1024) == 10 + 3 * batch

    def test_for_network(self):
        net = topologies.grid(4, 5)
        cm = CostModel.for_network(net)
        assert cm.n == 20
        assert cm.diameter == 7
        assert cm.word_bits == 5

    def test_clustering_rounds_scale(self, cm):
        assert cm.clustering_rounds(8) == 2 * cm.clustering_rounds(4)

    def test_triangle_rounds_sublinear(self):
        small = CostModel(100, 5, 7).quantum_triangle_rounds()
        large = CostModel(100000, 5, 17).quantum_triangle_rounds()
        assert large < 100000 ** 0.5  # far below √n


class TestRoundLedger:
    def test_total(self):
        ledger = RoundLedger()
        ledger.charge("a", 5)
        ledger.charge("b", 7)
        assert ledger.total == 12

    def test_by_phase_merges_same_label(self):
        ledger = RoundLedger()
        ledger.charge("x", 1)
        ledger.charge("x", 2)
        ledger.charge("y", 3)
        assert ledger.by_phase() == {"x": 3, "y": 3}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge("bad", -1)

    def test_merge_with_prefix(self):
        a, b = RoundLedger(), RoundLedger()
        b.charge("inner", 4)
        a.merge(b, prefix="sub:")
        assert a.by_phase() == {"sub:inner": 4}
