"""Focused tests for Corollary 9's on-the-fly value computation."""

import pytest

from repro.apps.eccentricity import EccentricityComputer
from repro.congest import topologies
from repro.core.framework import FrameworkConfig, run_framework
from repro.core.semigroup import max_semigroup


class TestEccentricityComputer:
    def test_formula_mode_values_exact(self, grid45):
        computer = EccentricityComputer(grid45, mode="formula")
        values, rounds = computer.compute([0, 5, 12])
        for j in (0, 5, 12):
            assert values[j] == {j: grid45.eccentricities[j]}
        assert rounds == 3 + 2 * grid45.diameter

    def test_engine_mode_values_exact(self):
        net = topologies.grid(3, 3)
        computer = EccentricityComputer(net, mode="engine", seed=1)
        values, rounds = computer.compute([0, 4, 8])
        for j in (0, 4, 8):
            assert values[j] == {j: net.eccentricities[j]}
        assert rounds > 0

    def test_engine_alpha_reflects_measurement(self):
        net = topologies.grid(3, 3)
        computer = EccentricityComputer(net, mode="engine", seed=2)
        computer.compute([0, 1])
        assert computer.alpha(2) == computer.measured_alpha[-1]

    def test_formula_alpha_is_lemma20_bound(self, grid45):
        computer = EccentricityComputer(grid45, mode="formula")
        assert computer.alpha(5) == 5 + 2 * grid45.diameter
        assert computer.alpha(1) < computer.alpha(10)


class TestOnTheFlyFrameworkIntegration:
    def test_alpha_appears_in_batch_charge(self):
        net = topologies.grid(3, 4)
        computer = EccentricityComputer(net, mode="formula")

        def algorithm(oracle, _rng):
            oracle.query_batch([0, 1], label="probe")
            return None

        with_alpha = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=2, computer=computer, k=net.n, seed=1, leader=0,
            semigroup=max_semigroup(2 * net.n),
        ))
        from repro.core.cost import CostModel

        cm = CostModel.for_network(net)
        charged = with_alpha.rounds.by_phase()["batch:probe"]
        base = cm.batch_rounds(2, max_semigroup(2 * net.n).bits, net.n)
        assert charged == base + computer.alpha(2)

    def test_values_served_through_semigroup_fold(self):
        """Sparse per-node contributions fold correctly under max."""
        net = topologies.grid(3, 3)
        computer = EccentricityComputer(net, mode="formula")

        def algorithm(oracle, _rng):
            return oracle.query_batch(list(range(net.n)))

        run = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=net.n, computer=computer, k=net.n, seed=1, leader=0,
            semigroup=max_semigroup(2 * net.n),
        ))
        assert run.result == [net.eccentricities[j] for j in range(net.n)]

    def test_engine_mode_end_to_end(self):
        net = topologies.grid(3, 3)
        computer = EccentricityComputer(net, mode="engine", seed=3)

        def algorithm(oracle, _rng):
            return oracle.query_batch([2, 6])

        run = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=2, computer=computer, k=net.n, mode="engine",
            seed=3, leader=0, semigroup=max_semigroup(2 * net.n),
        ))
        assert run.result == [net.eccentricities[2], net.eccentricities[6]]
