"""Operation/OperationStream: validation, and legacy-shim equivalence."""

import pytest

from repro.core.operation import OPERATION_KINDS, Operation, OperationStream
from repro.sched import CoalescingScheduler
from repro.serve import QueryService, TenantQuota, build_profile

NET, CFG = build_profile(rows=2, cols=2, k=8, parallelism=4)


class TestOperation:
    def test_query_constructor(self):
        op = Operation.query("alice", [3, 1, 4], label="probe")
        assert op.kind == "query"
        assert op.indices == (3, 1, 4)
        assert op.items == ()
        assert op.size == 3
        assert not op.is_write

    def test_sketch_query_constructor(self):
        op = Operation.sketch_query("bob", ["key-1", "key-2"])
        assert op.kind == "query"
        assert op.indices == ()
        assert op.items == ("key-1", "key-2")
        assert op.size == 2
        assert not op.is_write

    def test_insert_constructor(self):
        op = Operation.insert("carol", ["key-9"])
        assert op.kind == "insert"
        assert op.is_write
        assert op.size == 1

    def test_frozen_and_hashable(self):
        op = Operation.query("a", [0, 1])
        with pytest.raises(AttributeError):
            op.caller = "b"
        assert op == Operation.query("a", [0, 1])
        assert len({op, Operation.query("a", [0, 1])}) == 1

    def test_replace_revalidates(self):
        op = Operation.query("a", [0, 1])
        assert op.replace(label="x").label == "x"
        with pytest.raises(ValueError):
            op.replace(indices=())  # empty operation

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown operation kind"):
            Operation(kind="compose", caller="a", items=("x",))
        assert OPERATION_KINDS == ("query", "insert")

    def test_empty_caller_rejected(self):
        with pytest.raises(ValueError, match="caller"):
            Operation.query("", [0])

    def test_both_payloads_rejected(self):
        with pytest.raises(ValueError, match="never both"):
            Operation(kind="query", caller="a", indices=(0,), items=("x",))

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError, match="empty operation"):
            Operation.query("a", [])

    def test_insert_needs_items(self):
        with pytest.raises(ValueError, match="carry items"):
            Operation(kind="insert", caller="a", indices=(0,))

    def test_indices_must_be_ints(self):
        with pytest.raises(ValueError, match="plain ints"):
            Operation.query("a", [0, True])


class TestOperationStream:
    def test_order_and_access(self):
        ops = [
            Operation.insert("a", ["x"]),
            Operation.sketch_query("a", ["x"]),
        ]
        stream = OperationStream(ops)
        assert list(stream) == ops
        assert len(stream) == 2
        assert stream[0].is_write

    def test_counts_and_fraction(self):
        stream = OperationStream([
            Operation.insert("a", ["x"]),
            Operation.sketch_query("a", ["x"]),
            Operation.sketch_query("b", ["y"]),
            Operation.insert("b", ["y"]),
        ])
        assert stream.counts == {"insert": 2, "query": 2}
        assert stream.insert_fraction == 0.5
        assert OperationStream().insert_fraction == 0.0

    def test_extended_is_new_stream(self):
        base = OperationStream([Operation.query("a", [0])])
        grown = base.extended([Operation.query("b", [1])])
        assert len(base) == 1
        assert len(grown) == 2

    def test_non_operation_rejected(self):
        with pytest.raises(TypeError):
            OperationStream([("a", [0], "")])


class TestSchedulerShim:
    """The legacy positional signature warns but stays equivalent."""

    def make(self):
        return CoalescingScheduler(NET, CFG, memo=False)

    def test_legacy_submit_warns_and_matches(self):
        canonical = self.make()
        t1 = canonical.submit(Operation.query("a", [0, 3, 5], label="x"))
        canonical.drain()

        legacy = self.make()
        with pytest.warns(DeprecationWarning):
            t2 = legacy.submit("a", [0, 3, 5], label="x")
        legacy.drain()

        assert canonical.result(t1) == legacy.result(t2)
        assert t2.caller == "a"

    def test_operation_plus_indices_is_an_error(self):
        sched = self.make()
        with pytest.raises(TypeError):
            sched.submit(Operation.query("a", [0]), [1, 2])

    def test_write_op_rejected_by_oracle_lane(self):
        sched = self.make()
        with pytest.raises(ValueError, match="SketchScheduler"):
            sched.submit(Operation.insert("a", ["key-1"]))

    def test_items_op_rejected_by_oracle_lane(self):
        sched = self.make()
        with pytest.raises(ValueError, match="SketchScheduler"):
            sched.submit(Operation.sketch_query("a", ["key-1"]))


class TestDaemonShim:
    def test_legacy_submit_warns_and_matches(self):
        import asyncio

        async def drive():
            service = QueryService(
                default_quota=TenantQuota("default", max_pending=64),
                flush_after_ms=1.0,
            )
            service.add_profile(NET, CFG)
            canonical = await service.submit(Operation.query("t", [1, 2]))
            with pytest.warns(DeprecationWarning):
                legacy_fut = service.submit("t", [1, 2])
            legacy = await legacy_fut
            await service.drain()
            return canonical, legacy

        canonical, legacy = asyncio.run(drive())
        assert canonical.values == legacy.values
