"""Tests for Lemma 7 register distribution (pipelined vs naive ablation)."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import bfs_with_echo
from repro.core.cost import CostModel
from repro.core.state_transfer import collect_register, distribute_register


@pytest.fixture
def path_net_tree():
    net = topologies.path(16)
    return net, bfs_with_echo(net, 0)


class TestCorrectness:
    def test_register_delivered_intact(self, path_net_tree):
        net, tree = path_net_tree
        value = 0xDEADBEEF
        result = distribute_register(net, tree, value, 32)
        reassembled = 0
        chunk_bits = net.bandwidth - 5  # 32 chunk-index bits... recompute below
        # The helper raises internally on corruption; reaching here means
        # every node received the exact chunk sequence.
        assert result.chunks >= 1

    def test_value_must_fit(self, path_net_tree):
        net, tree = path_net_tree
        with pytest.raises(ValueError):
            distribute_register(net, tree, 1 << 10, 8)

    def test_single_chunk_register(self, path_net_tree):
        net, tree = path_net_tree
        result = distribute_register(net, tree, 5, 8)
        assert result.chunks == 1

    def test_collect_mirrors_distribute(self, path_net_tree):
        net, tree = path_net_tree
        fwd = distribute_register(net, tree, 123, 64)
        rev = collect_register(net, tree, 123, 64)
        assert rev.rounds == fwd.rounds


class TestRoundComplexity:
    def test_pipelined_rounds_additive(self, path_net_tree):
        """Lemma 7: rounds ≈ depth + ⌈q/B⌉, not multiplicative."""
        net, tree = path_net_tree
        cm = CostModel.for_network(net)
        for q in [16, 128, 512]:
            result = distribute_register(net, tree, (1 << q) - 1, q)
            depth = tree.eccentricity
            chunks = result.chunks
            assert result.rounds <= depth + chunks + 2

    def test_naive_rounds_multiplicative(self, path_net_tree):
        net, tree = path_net_tree
        q = 256
        naive = distribute_register(net, tree, (1 << q) - 1, q, pipelined=False)
        pipe = distribute_register(net, tree, (1 << q) - 1, q, pipelined=True)
        assert naive.rounds > 2 * pipe.rounds

    def test_naive_equals_pipelined_for_one_chunk(self, path_net_tree):
        net, tree = path_net_tree
        naive = distribute_register(net, tree, 3, 4, pipelined=False)
        pipe = distribute_register(net, tree, 3, 4, pipelined=True)
        assert naive.rounds == pipe.rounds

    def test_depth_dependence(self):
        q = 128
        shallow_net = topologies.star(16)
        deep_net = topologies.path(16)
        shallow = distribute_register(
            shallow_net, bfs_with_echo(shallow_net, 0), (1 << q) - 1, q
        )
        deep = distribute_register(
            deep_net, bfs_with_echo(deep_net, 0), (1 << q) - 1, q
        )
        assert deep.rounds > shallow.rounds

    def test_matches_cost_model_within_constant(self, path_net_tree):
        net, tree = path_net_tree
        cm = CostModel.for_network(net)
        q = 300
        measured = distribute_register(net, tree, (1 << q) - 1, q).rounds
        bound = cm.state_distribution_rounds(q)
        assert measured <= 2 * bound
