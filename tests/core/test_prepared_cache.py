"""PreparedNetwork: cached setup is charge- and result-transparent."""

import random

import pytest

from repro.congest import topologies
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    PreparedCache,
    PreparedNetwork,
    configure_prepared_cache,
    invalidate_prepared,
    prepare_network,
    prepared_cache_stats,
    run_framework,
)
from repro.core.semigroup import sum_semigroup


@pytest.fixture
def case():
    net = topologies.random_regular(20, 4, seed=2)
    rnd = random.Random(1)
    vectors = {v: [rnd.randint(0, 3) for _ in range(6)] for v in net.nodes()}
    di = DistributedInput(vectors=vectors, semigroup=sum_semigroup(100))
    invalidate_prepared()
    yield net, di
    invalidate_prepared()


def algorithm(oracle, _rng):
    return tuple(oracle.query_batch([0, 3, 5]))


class TestPrepareNetwork:
    def test_repeated_calls_return_cached_object(self, case):
        net, _ = case
        first = prepare_network(net, seed=7)
        second = prepare_network(net, seed=7)
        assert first is second

    def test_seed_and_leader_key_the_cache(self, case):
        net, _ = case
        by_seed = {s: prepare_network(net, seed=s) for s in (1, 2)}
        assert by_seed[1] is not by_seed[2]
        designated = prepare_network(net, seed=1, leader=5)
        assert designated is not by_seed[1]
        assert designated.leader == 5
        assert designated.election_rounds is None
        assert by_seed[1].election_rounds is not None

    def test_invalidate_single_network(self, case):
        net, _ = case
        before = prepare_network(net, seed=7)
        invalidate_prepared(net)
        after = prepare_network(net, seed=7)
        assert before is not after
        # Deterministic setup: the recomputed tree matches the dropped one.
        assert before.leader == after.leader
        assert before.tree.parent == after.tree.parent

    def test_invalidate_all(self, case):
        net, _ = case
        other = topologies.grid(3, 3)
        a = prepare_network(net, seed=1)
        b = prepare_network(other, seed=1)
        invalidate_prepared()
        assert prepare_network(net, seed=1) is not a
        assert prepare_network(other, seed=1) is not b

    def test_equal_topologies_share_an_entry(self, case):
        """Fingerprint keying: two Network objects, one cached setup.

        This is what lets the serving daemon's warm pool survive tenants
        that each construct their own Network for the same topology.
        """
        net, _ = case
        twin = topologies.random_regular(20, 4, seed=2)
        assert twin is not net
        assert prepare_network(net, seed=7) is prepare_network(twin, seed=7)


class TestPreparedCacheLRU:
    def _nets(self, count):
        return [topologies.cycle(3 + i) for i in range(count)]

    def test_eviction_at_capacity(self):
        cache = PreparedCache(max_entries=2)
        n1, n2, n3 = self._nets(3)
        p1 = cache.prepare(n1, seed=0)
        cache.prepare(n2, seed=0)
        cache.prepare(n3, seed=0)  # evicts n1 (least recently used)
        assert cache.stats() == {
            "entries": 2, "max_entries": 2,
            "hits": 0, "misses": 3, "evictions": 1,
        }
        # n1 must be recomputed (deterministically identical, new object);
        # that insert evicts n2 in turn.
        again = cache.prepare(n1, seed=0)
        assert again is not p1
        assert again.tree.parent == p1.tree.parent
        assert cache.evictions == 2

    def test_lookup_hit_refreshes_recency(self):
        cache = PreparedCache(max_entries=2)
        n1, n2, n3 = self._nets(3)
        p1 = cache.prepare(n1, seed=0)
        cache.prepare(n2, seed=0)
        assert cache.prepare(n1, seed=0) is p1  # refresh: n2 is now LRU
        cache.prepare(n3, seed=0)  # evicts n2, not n1
        assert cache.prepare(n1, seed=0) is p1
        assert cache.hits == 2

    def test_invalidate_single_hits_eviction_path(self):
        """invalidate(network) drops exactly that topology's entries."""
        cache = PreparedCache(max_entries=8)
        n1, n2 = self._nets(2)
        a = cache.prepare(n1, seed=0)
        b = cache.prepare(n1, seed=1)
        c = cache.prepare(n2, seed=0)
        cache.invalidate(n1)
        assert len(cache) == 1
        assert cache.prepare(n2, seed=0) is c  # untouched entry survives
        assert cache.prepare(n1, seed=0) is not a
        assert cache.prepare(n1, seed=1) is not b

    def test_unbounded_when_none(self):
        cache = PreparedCache(max_entries=None)
        for net in self._nets(5):
            cache.prepare(net, seed=0)
        assert len(cache) == 5 and cache.evictions == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="positive"):
            PreparedCache(max_entries=0)
        with pytest.raises(ValueError, match="positive"):
            configure_prepared_cache(-1)

    def test_configure_shrinks_global_cache_live(self, case):
        net, _ = case
        try:
            for i in range(4):
                prepare_network(topologies.cycle(4 + i), seed=0)
            stats = prepared_cache_stats()
            assert stats["entries"] == 4
            configure_prepared_cache(2)
            stats = prepared_cache_stats()
            assert stats["entries"] == 2
            assert stats["evictions"] >= 2
            assert stats["max_entries"] == 2
        finally:
            from repro.core.framework import DEFAULT_PREPARED_CACHE_ENTRIES

            configure_prepared_cache(DEFAULT_PREPARED_CACHE_ENTRIES)


class TestRunFrameworkCaching:
    @pytest.mark.parametrize("mode", ["formula", "engine"])
    def test_cached_setup_is_transparent(self, case, mode):
        net, di = case
        cfg = FrameworkConfig(parallelism=3, dist_input=di, mode=mode,
                              seed=9)
        runs = [
            run_framework(net, algorithm,
                          config=cfg.replace(reuse_setup=False)),
            run_framework(net, algorithm, config=cfg),  # fills the cache
            run_framework(net, algorithm, config=cfg),  # hits the cache
        ]
        baseline = runs[0]
        for run in runs[1:]:
            assert run.result == baseline.result
            assert run.leader == baseline.leader
            assert run.tree_depth == baseline.tree_depth
            # Charge-for-charge identical ledgers, not just equal totals.
            assert run.rounds.charges == baseline.rounds.charges

    def test_explicit_prepared_object(self, case):
        net, di = case
        prepared = prepare_network(net, seed=9)
        assert isinstance(prepared, PreparedNetwork)
        cfg = FrameworkConfig(parallelism=3, dist_input=di, mode="engine",
                              seed=9)
        via_prepared = run_framework(
            net, algorithm, config=cfg.replace(prepared=prepared),
        )
        fresh = run_framework(
            net, algorithm, config=cfg.replace(reuse_setup=False),
        )
        assert via_prepared.rounds.charges == fresh.rounds.charges
        assert via_prepared.result == fresh.result

    def test_designated_leader_skips_election_charge(self, case):
        net, di = case
        run = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=3, dist_input=di, mode="engine", seed=9, leader=4,
        ))
        phases = run.rounds.by_phase()
        assert "setup:leader-election" not in phases
        assert "setup:bfs-tree" in phases
        assert run.leader == 4
