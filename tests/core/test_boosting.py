"""Tests for the success-probability boosting combinators."""

import numpy as np
import pytest

from repro.core.boosting import (
    boost_first_found,
    boost_majority,
    boost_maximum,
    boost_median,
    boost_minimum,
    repetitions_for,
)


def flaky_protocol(success_rate, good_value, bad_value, cost=10):
    """A 'protocol' that succeeds with the given rate per run."""

    def run(seed):
        rng = np.random.default_rng(seed)
        value = good_value if rng.random() < success_rate else bad_value
        return value, cost

    return run


class TestRepetitions:
    def test_formula(self):
        # (1/3)^r <= delta
        assert repetitions_for(1 / 3) == 1
        assert repetitions_for(1 / 9) == 2
        assert repetitions_for(0.001) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            repetitions_for(0.0)
        with pytest.raises(ValueError):
            repetitions_for(0.5, base_failure=1.5)


class TestBoostExtremes:
    def test_minimum_keeps_best(self):
        protocol = flaky_protocol(0.5, good_value=3, bad_value=17)
        out = boost_minimum(protocol, delta=0.001, seed=0)
        assert out.value == 3
        assert out.rounds == 10 * out.repetitions

    def test_maximum_keeps_best(self):
        protocol = flaky_protocol(0.5, good_value=99, bad_value=1)
        out = boost_maximum(protocol, delta=0.001, seed=0)
        assert out.value == 99

    def test_all_none_propagates(self):
        out = boost_minimum(lambda s: (None, 5), delta=0.01, seed=0)
        assert out.value is None
        assert out.rounds == 5 * out.repetitions

    def test_boosted_failure_probability_drops(self):
        """Empirically: 2/3-per-run success becomes near-certain."""
        failures = 0
        for base_seed in range(0, 400, 8):
            protocol = flaky_protocol(2 / 3, good_value=1, bad_value=None)
            out = boost_first_found(protocol, delta=0.01, seed=base_seed)
            failures += out.value is None
        assert failures <= 2


class TestFirstFound:
    def test_stops_early(self):
        protocol = flaky_protocol(1.0, good_value="hit", bad_value=None)
        out = boost_first_found(protocol, delta=0.001, seed=0)
        assert out.value == "hit"
        assert out.repetitions == 1
        assert out.rounds == 10

    def test_pays_only_used_runs(self):
        calls = []

        def protocol(seed):
            calls.append(seed)
            return ("found" if len(calls) == 3 else None), 7

        out = boost_first_found(protocol, delta=0.0001, seed=0)
        assert out.value == "found"
        assert out.rounds == 21
        assert len(calls) == 3


class TestMajorityMedian:
    def test_majority_recovers_truth(self):
        protocol = flaky_protocol(0.7, good_value=True, bad_value=False)
        out = boost_majority(protocol, delta=0.05, seed=0)
        assert out.value is True
        assert out.repetitions % 2 == 1

    def test_median_concentrates(self):
        def protocol(seed):
            rng = np.random.default_rng(seed)
            return 5.0 + float(rng.normal(0, 0.5)), 3

        out = boost_median(protocol, delta=0.05, seed=0)
        assert abs(out.value - 5.0) < 0.5

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            boost_majority(lambda s: (1, 1), delta=1.5)
        with pytest.raises(ValueError):
            boost_median(lambda s: (1.0, 1), delta=0.0)


class TestEndToEndBoosting:
    def test_boosted_diameter_near_certain(self):
        """Boost Lemma 21 diameter: min/max combiner over 2/3-runs."""
        from repro.apps.eccentricity import compute_diameter
        from repro.congest import topologies

        net = topologies.grid(4, 4)

        def protocol(seed):
            res = compute_diameter(net, seed=seed)
            return res.value, res.rounds

        out = boost_maximum(protocol, delta=0.01, seed=0)
        assert out.value == net.diameter
        assert out.rounds > 0
