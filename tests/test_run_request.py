"""RunRequest: validation, target resolution, and runner shim equivalence."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import (
    RunRequest,
    run_experiment,
    verify_all,
    verify_experiment,
    verify_sweep,
)


class TestValidation:
    def test_defaults(self):
        request = RunRequest()
        assert request.quick and request.seed == 0 and request.jobs == 1
        assert request.experiments == ()

    def test_experiment_ids_coerced_and_uppercased(self):
        request = RunRequest(experiments=("e15", "e17"))
        assert request.experiments == ("E15", "E17")

    def test_single_string_coerced_to_tuple(self):
        assert RunRequest(experiments="e15").experiments == ("E15",)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            RunRequest(jobs=0)

    def test_retries_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="retries"):
            RunRequest(retries=-1)

    def test_unknown_experiment_raises_on_targets(self):
        request = RunRequest(experiments=("E15", "E99"))
        with pytest.raises(KeyError, match="E99"):
            request.targets

    def test_empty_experiments_means_all(self):
        assert RunRequest().targets == list(ALL_EXPERIMENTS)

    def test_replace_builds_variant(self):
        base = RunRequest(experiments=("E15",), quick=True)
        variant = base.replace(seed=3, jobs=2)
        assert (variant.seed, variant.jobs) == (3, 2)
        assert base.seed == 0 and base.jobs == 1
        assert variant.experiments == ("E15",)

    def test_single_target_requires_exactly_one(self):
        assert RunRequest(experiments=("E15",)).single_target() == "E15"
        with pytest.raises(ValueError):
            RunRequest(experiments=("E15", "E17")).single_target()


class TestShimEquivalence:
    """The legacy flat runner signatures must match RunRequest verbatim."""

    def test_verify_experiment_shim(self):
        canonical = verify_experiment(RunRequest(experiments=("E15",)))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = verify_experiment("E15", quick=True, seed=0)
        assert legacy == canonical

    def test_verify_all_shim(self):
        canonical = verify_all(RunRequest(experiments=("E15", "E17")))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = verify_all(only=["E15", "E17"])
        assert legacy == canonical

    def test_run_experiment_shim(self):
        canonical = run_experiment(RunRequest(experiments=("E15",)))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = run_experiment("E15", quick=True, seed=0)
        assert list(legacy) == list(canonical) == ["E15"]
        assert type(legacy["E15"]) is type(canonical["E15"])

    def test_request_plus_flat_params_rejected(self):
        with pytest.raises(TypeError, match="ride on the RunRequest"):
            run_experiment(RunRequest(experiments=("E15",)), quick=False)

    def test_unknown_legacy_experiment_rejected(self):
        # Validated against the registry before the shim warns.
        with pytest.raises(KeyError):
            verify_experiment("E99")


class TestVerifySweep:
    def test_serial_sweep_matches_verify_all(self):
        request = RunRequest(experiments=("E15", "E17"))
        sweep = verify_sweep(request)
        assert [v.experiment for v in sweep.verdicts] == ["E15", "E17"]
        assert sweep.metrics is None and sweep.jsonl_path is None
        assert sweep.verdicts == verify_all(request)

    def test_parallel_sweep_bit_identical_to_serial(self):
        request = RunRequest(experiments=("E15", "E17"))
        serial = verify_sweep(request).verdicts
        parallel = verify_sweep(request.replace(jobs=2)).verdicts
        assert [
            (v.experiment, v.passed, v.detail) for v in serial
        ] == [
            (v.experiment, v.passed, v.detail) for v in parallel
        ]
