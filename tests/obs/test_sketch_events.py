"""The ``sketch`` event: schema, validator, and MetricsSink counters."""

import json

import pytest

from repro.obs import (
    SKETCH,
    JSONLSink,
    MemorySink,
    MetricsSink,
    Recorder,
    SketchEvent,
)
from repro.obs.events import CoalesceEvent, to_json
from repro.obs.jsonl import validate_jsonl


class TestSketchEvent:
    def test_kind_and_fields(self):
        e = SketchEvent(sketch="lane0", op="insert", count=3)
        assert e.kind == SKETCH == "sketch"
        assert e.memo == ""

    def test_to_json_omits_empty_memo(self):
        physical = to_json(SketchEvent("lane0", "insert", 3))
        assert "memo" not in physical
        edge = to_json(SketchEvent("lane0", "query", 2, memo="hit"))
        assert edge["memo"] == "hit"
        assert edge["type"] == "sketch"

    def test_jsonl_round_trip_validates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        recorder = Recorder([JSONLSink(path)])
        recorder.sketch("lane0", "insert", 2)
        recorder.sketch("lane0", "query", 1, memo="hit")
        recorder.close()
        counts = validate_jsonl(path)
        assert counts["sketch"] == 2
        lines = [json.loads(s) for s in open(path) if s.strip()]
        sketch_lines = [d for d in lines if d.get("type") == "sketch"]
        assert {d["op"] for d in sketch_lines} == {"insert", "query"}

    def test_validator_rejects_missing_field(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        recorder = Recorder([JSONLSink(path)])
        recorder.sketch("lane0", "insert", 1)
        recorder.close()
        lines = open(path).read().splitlines()
        doc = json.loads(lines[-1])
        del doc["count"]
        lines[-1] = json.dumps(doc)
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="count"):
            validate_jsonl(path)


class TestMetricsSink:
    def make(self):
        sink = MetricsSink()
        recorder = Recorder([sink])
        return sink, recorder

    def test_physical_ops_sum_payload_widths(self):
        sink, recorder = self.make()
        recorder.sketch("lane0", "insert", 3)
        recorder.sketch("lane0", "insert", 2)
        recorder.sketch("lane0", "query", 4)
        assert sink.sketch_ops == {"insert": 5, "query": 4}
        assert sink.sketch_memo == {}

    def test_memo_edges_counted_separately(self):
        sink, recorder = self.make()
        recorder.sketch("lane0", "query", 4, memo="hit")
        recorder.sketch("lane0", "insert", 9, memo="invalidate")
        assert sink.sketch_ops == {}
        assert sink.sketch_memo == {"hit": 1, "invalidate": 1}

    def test_invalidation_coalesce_not_a_miss(self):
        sink, recorder = self.make()
        recorder.emit(
            CoalesceEvent(size=5, submissions=0, callers=0, rounds=0,
                          memo="invalidate")
        )
        assert sink.memo_invalidations == 5
        assert sink.memo_misses == 0
        assert sink.memo_evictions == 0

    def test_merge_sums_sketch_counters(self):
        a, ra = self.make()
        b, rb = self.make()
        ra.sketch("lane0", "insert", 2)
        ra.sketch("lane0", "query", 1, memo="hit")
        rb.sketch("lane0", "insert", 3)
        rb.emit(
            CoalesceEvent(size=2, submissions=0, callers=0, rounds=0,
                          memo="invalidate")
        )
        a.merge(b)
        assert a.sketch_ops == {"insert": 5}
        assert a.sketch_memo == {"hit": 1}
        assert a.memo_invalidations == 2

    def test_state_round_trip(self):
        sink, recorder = self.make()
        recorder.sketch("lane0", "insert", 2)
        recorder.sketch("lane0", "query", 3, memo="hit")
        restored = MetricsSink.from_state(sink.to_state())
        assert restored.sketch_ops == sink.sketch_ops
        assert restored.sketch_memo == sink.sketch_memo
        assert restored.memo_invalidations == sink.memo_invalidations

    def test_from_state_backward_compat(self):
        """Pre-PR-10 snapshots (no sketch keys) still restore."""
        sink, recorder = self.make()
        recorder.sketch("lane0", "insert", 2)
        state = sink.to_state()
        for key in ("sketch_ops", "sketch_memo", "memo_invalidations"):
            state.pop(key, None)
        restored = MetricsSink.from_state(state)
        assert restored.sketch_ops == {}
        assert restored.sketch_memo == {}
        assert restored.memo_invalidations == 0

    def test_summary_includes_sketch_counters(self):
        sink, recorder = self.make()
        recorder.sketch("lane0", "insert", 2)
        summary = sink.summary()
        assert summary["sketch_ops"] == {"insert": 2}
        assert "memo_invalidations" in summary


class TestMemorySink:
    def test_events_of_kind_finds_sketch(self):
        sink = MemorySink()
        recorder = Recorder([sink])
        recorder.sketch("lane0", "query", 1)
        events = sink.events_of_kind(SKETCH)
        assert len(events) == 1
        assert events[0].sketch == "lane0"
