"""Tests for the shipped sinks: memory, metrics, and the JSONL stream."""

import json

import pytest

from repro.obs import (
    JSONLSink,
    MemorySink,
    MetricsSink,
    Recorder,
    validate_jsonl,
)
from repro.obs.jsonl import SCHEMA


def _emit_sample(rec: Recorder) -> None:
    """A small but complete event stream: every kind, two spans."""
    with rec.span("setup"):
        rec.charge("setup:bfs", 10)
    with rec.span("query"):
        rec.round(1, 2, 16)
        rec.deliver(1, 0, 1, 8, value=5)
        rec.deliver(1, 1, 2, 8, value=None)
        rec.round(2, 1, 4)
        rec.deliver(2, 0, 1, 4)
        rec.fault("drop", 2, 1, 0, 8)
        rec.fault("drop", 2, 2, 1, 8)
        rec.fault("delay", 3, 0, 1, 4)
        rec.query_batch(16, label="grover")
        rec.query_batch(8, label="grover")
        rec.charge("batch:grover", 7)
        rec.charge("batch:grover", 3)


class TestMemorySink:
    def test_order_and_kind_filter(self):
        sink = MemorySink()
        _emit_sample(Recorder([sink]))
        assert len(sink.events_of_kind("deliver")) == 3
        assert len(sink.events_of_kind("fault")) == 3
        assert len(sink.events_of_kind("span")) == 4  # 2 spans x begin/end
        # Emission order is preserved.
        deliver_rounds = [e.round_no for e in sink.events_of_kind("deliver")]
        assert deliver_rounds == [1, 1, 2]


class TestMetricsSink:
    def test_aggregation(self):
        metrics = MetricsSink()
        _emit_sample(Recorder([metrics]))
        assert metrics.engine_rounds == 2
        assert metrics.messages == 3
        assert metrics.bits == 20
        assert metrics.fault_counts == {"drop": 2, "delay": 1}
        assert metrics.total_faults == 3
        assert metrics.query_batches == 2
        assert metrics.total_queries == 24
        assert metrics.batches_by_label == {"grover": 2}
        assert metrics.charges_by_phase == {"setup:bfs": 10, "batch:grover": 10}
        assert metrics.total_charged == 20
        assert metrics.phase_span == {"setup:bfs": "setup", "batch:grover": "query"}
        assert metrics.charged_by_span == {"setup": 10, "query": 10}
        assert metrics.span_names == ["setup", "query"]

    def test_busiest_edge(self):
        metrics = MetricsSink()
        _emit_sample(Recorder([metrics]))
        edge, bits = metrics.busiest_edge()
        assert edge == (0, 1) and bits == 12

    def test_busiest_edge_tie_breaks_to_lowest_edge(self):
        metrics = MetricsSink()
        rec = Recorder([metrics])
        # (2, 3) first, then (0, 1): both carry 8 bits.
        rec.deliver(1, 2, 3, 8)
        rec.deliver(2, 0, 1, 8)
        assert metrics.busiest_edge() == ((0, 1), 8)

    def test_busiest_edge_empty(self):
        assert MetricsSink().busiest_edge() == (None, 0)

    def test_summary_is_plain_data(self):
        metrics = MetricsSink()
        _emit_sample(Recorder([metrics]))
        summary = metrics.summary()
        assert summary["engine_rounds"] == 2
        assert summary["busiest_edge"] == (0, 1)
        assert summary["charged_rounds"] == 20


class TestJSONL:
    def test_round_trip_validates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        rec = Recorder([JSONLSink(path)])
        _emit_sample(rec)
        rec.close()
        counts = validate_jsonl(path)
        assert counts == {
            "meta": 1, "span": 4, "charge": 3, "round": 2,
            "deliver": 3, "fault": 3, "query_batch": 2,
        }

    def test_header_is_schema_meta(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        rec = Recorder([JSONLSink(path)])
        rec.close()
        first = json.loads(open(path).read().splitlines()[0])
        assert first == {"type": "meta", "schema": SCHEMA}

    def test_non_jsonable_value_coerced(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        rec = Recorder([JSONLSink(path)])
        rec.deliver(1, 0, 1, 8, value=object())
        rec.close()
        validate_jsonl(path)  # the value column never breaks the schema

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "round", "round": 1, "messages": 0, '
                        '"bits": 0, "span": ""}\n')
        with pytest.raises(ValueError, match="meta header"):
            validate_jsonl(str(path))

    def test_rejects_unknown_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": SCHEMA}) + "\n"
            + '{"type": "warp", "span": ""}\n'
        )
        with pytest.raises(ValueError, match="unknown type"):
            validate_jsonl(str(path))

    def test_rejects_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": SCHEMA}) + "\n"
            + '{"type": "charge", "phase": "x", "span": ""}\n'  # no rounds
        )
        with pytest.raises(ValueError, match="missing 'rounds'"):
            validate_jsonl(str(path))

    def test_rejects_mistyped_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": SCHEMA}) + "\n"
            + '{"type": "charge", "phase": "x", "rounds": "12", "span": ""}\n'
        )
        with pytest.raises(ValueError, match="should be int"):
            validate_jsonl(str(path))

    def test_rejects_bool_masquerading_as_int(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": SCHEMA}) + "\n"
            + '{"type": "charge", "phase": "x", "rounds": true, "span": ""}\n'
        )
        with pytest.raises(ValueError, match="should be int"):
            validate_jsonl(str(path))

    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": SCHEMA}) + "\n{not json\n"
        )
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_jsonl(str(path))

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty stream"):
            validate_jsonl(str(path))
