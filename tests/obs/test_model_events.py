"""PR 8: the optional ``model`` tag on round/charge events and sinks."""

import json

from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.engine import Engine
from repro.congest.network import Network
from repro.obs import (
    JSONLSink,
    MemorySink,
    MetricsSink,
    Recorder,
    install,
)
from repro.obs.events import ChargeEvent, RoundEvent
from repro.obs.jsonl import to_json, validate_jsonl


def _flood(comm_model, sinks):
    import networkx as nx

    net = Network(nx.cycle_graph(6), comm_model=comm_model)
    programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
    with install(Recorder(sinks)):
        Engine(net, programs, seed=0).run()


class TestEventSerialization:
    def test_default_model_omitted_from_json(self):
        event = RoundEvent(round_no=1, messages=2, bits=10)
        assert "model" not in to_json(event)
        charge = ChargeEvent(phase="setup", rounds=3)
        assert "model" not in to_json(charge)

    def test_non_default_model_serialized(self):
        event = RoundEvent(
            round_no=1, messages=2, bits=10, model="congest-clique"
        )
        assert to_json(event)["model"] == "congest-clique"
        charge = ChargeEvent(phase="setup", rounds=3, model="local")
        assert to_json(charge)["model"] == "local"

    def test_jsonl_stream_validates_with_model_field(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _flood("congest-clique", [JSONLSink(path)])
        counts = validate_jsonl(path)
        assert counts["round"] > 0
        with open(path) as fh:
            rounds = [
                record for record in map(json.loads, fh)
                if record["type"] == "round"
            ]
        assert all(r["model"] == "congest-clique" for r in rounds)

    def test_default_stream_has_no_model_keys(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _flood(None, [JSONLSink(path)])
        validate_jsonl(path)
        with open(path) as fh:
            assert all("model" not in json.loads(line) for line in fh)


class TestMetricsSinkModelCounters:
    def test_rounds_counted_per_model(self):
        sink = MemorySink()
        metrics = MetricsSink()
        _flood("congest-clique", [sink, metrics])
        rounds = len(sink.events_of_kind("round"))
        assert metrics.rounds_by_model == {"congest-clique": rounds}
        assert metrics.summary()["rounds_by_model"] == {
            "congest-clique": rounds
        }

    def test_default_model_leaves_counters_empty(self):
        # The default model is untagged, so per-model counters stay
        # empty and a default run's sink state is byte-stable vs PR 7.
        metrics = MetricsSink()
        _flood(None, [metrics])
        assert metrics.rounds_by_model == {}
        assert metrics.charged_by_model == {}

    def test_merge_sums_model_counters(self):
        a, b = MetricsSink(), MetricsSink()
        _flood("congest-clique", [a])
        _flood("local", [b])
        _flood("local", [b])
        merged = a.merge(b)
        assert (
            merged.rounds_by_model["congest-clique"]
            == a.rounds_by_model["congest-clique"]
        )
        assert merged.rounds_by_model["local"] == b.rounds_by_model["local"]

    def test_state_roundtrip_preserves_model_counters(self):
        metrics = MetricsSink()
        _flood("congest-clique", [metrics])
        restored = MetricsSink.from_state(metrics.to_state())
        assert restored.rounds_by_model == metrics.rounds_by_model
        assert restored.charged_by_model == metrics.charged_by_model

    def test_from_state_tolerates_pre_pr8_states(self):
        metrics = MetricsSink()
        _flood(None, [metrics])
        state = metrics.to_state()
        state.pop("rounds_by_model")
        state.pop("charged_by_model")
        restored = MetricsSink.from_state(state)
        assert restored.rounds_by_model == {}
        assert restored.charged_by_model == {}
