"""Integration tests: every layer emits into one attributed event stream.

The spine's acceptance criteria: one installed recorder collects engine
rounds, deliveries, faults, query batches, and ledger charges from a real
run with consistent span attribution — and with the null recorder the
refactored emitters change nothing observable.
"""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.engine import Engine
from repro.congest.tracing import TraceSink, TracingEngine
from repro.core.cost import RoundLedger
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    run_framework,
)
from repro.core.semigroup import min_semigroup
from repro.faults.engine import run_with_faults
from repro.faults.models import BoundedDelay
from repro.obs import (
    MemorySink,
    MetricsSink,
    Recorder,
    install,
)
from repro.queries.ledger import ParallelismViolation, QueryLedger


def _bfs_programs(net):
    return {v: BFSEchoProgram(v, 0) for v in net.nodes()}


class TestEngineEmission:
    def test_round_events_match_traffic_stats(self, grid45):
        sink = MemorySink()
        result = Engine(
            grid45, _bfs_programs(grid45), seed=1, recorder=Recorder([sink])
        ).run()
        rounds = sink.events_of_kind("round")
        assert [e.round_no for e in rounds] == list(range(1, result.rounds + 1))
        assert [e.messages for e in rounds] == result.stats.per_round_messages
        assert sum(e.messages for e in rounds) == result.stats.messages
        assert sum(e.bits for e in rounds) == result.stats.bits

    def test_deliver_events_match_round_totals(self, grid45):
        sink = MemorySink()
        Engine(
            grid45, _bfs_programs(grid45), seed=1, recorder=Recorder([sink])
        ).run()
        deliveries = sink.events_of_kind("deliver")
        by_round = {}
        for e in deliveries:
            by_round[e.round_no] = by_round.get(e.round_no, 0) + 1
        for r in sink.events_of_kind("round"):
            assert by_round.get(r.round_no, 0) == r.messages

    @pytest.mark.parametrize("schedule", ["dense", "active"])
    def test_null_recorder_run_identical_to_recorded(self, grid45, schedule):
        """Recording must never change behaviour, on either schedule."""
        plain = Engine(
            grid45, _bfs_programs(grid45), seed=2, schedule=schedule
        ).run()
        recorded = Engine(
            grid45, _bfs_programs(grid45), seed=2, schedule=schedule,
            recorder=Recorder([MemorySink()]),
        ).run()
        assert plain.rounds == recorded.rounds
        assert plain.outputs == recorded.outputs
        assert plain.stats.messages == recorded.stats.messages
        assert plain.stats.bits == recorded.stats.bits
        assert plain.stats.per_round_messages == recorded.stats.per_round_messages

    def test_schedules_emit_identical_streams(self, grid45):
        streams = {}
        for schedule in ("dense", "active"):
            sink = MemorySink()
            Engine(
                grid45, _bfs_programs(grid45), seed=3, schedule=schedule,
                recorder=Recorder([sink]),
            ).run()
            streams[schedule] = sink.events
        assert streams["dense"] == streams["active"]


class TestTracingShim:
    def test_tracing_engine_trace_matches_direct_sink(self, grid45):
        sink = TraceSink()
        Engine(
            grid45, _bfs_programs(grid45), seed=4, recorder=Recorder([sink])
        ).run()
        engine = TracingEngine(grid45, _bfs_programs(grid45), seed=4)
        engine.run()
        assert engine.trace.events == sink.trace.events

    def test_tracing_engine_forwards_to_ambient_sinks(self, grid45):
        """The shim forks: ambient sinks keep seeing the engine's events."""
        ambient = MemorySink()
        with install(Recorder([ambient])):
            engine = TracingEngine(grid45, _bfs_programs(grid45), seed=4)
            engine.run()
        assert len(ambient.events_of_kind("deliver")) == len(
            engine.trace.deliveries()
        )

    def test_faulty_run_identical_under_null_recorder(self, grid45):
        """Fault injection's RNG stream must not depend on recording."""
        kwargs = dict(
            fault_model=BoundedDelay(0.3, max_delay=2), seed=5, fault_seed=6
        )
        plain, plain_trace, plain_stats = run_with_faults(
            grid45, _bfs_programs(grid45), **kwargs
        )
        recorded, rec_trace, rec_stats = run_with_faults(
            grid45, _bfs_programs(grid45),
            recorder=Recorder([MemorySink()]), **kwargs,
        )
        assert plain.rounds == recorded.rounds
        assert plain.outputs == recorded.outputs
        assert plain_stats == rec_stats
        assert plain_trace.events == rec_trace.events


class TestLedgerEmission:
    def test_query_ledger_emits_after_validation(self):
        sink = MemorySink()
        ledger = QueryLedger(parallelism=4, recorder=Recorder([sink]))
        ledger.record(3, label="grover")
        with pytest.raises(ParallelismViolation):
            ledger.record(5)
        batches = sink.events_of_kind("query_batch")
        assert [(e.size, e.label) for e in batches] == [(3, "grover")]

    def test_query_ledger_resolves_ambient_late(self):
        """A ledger built before install() still reports into the bus."""
        ledger = QueryLedger(parallelism=4)
        sink = MemorySink()
        with install(Recorder([sink])):
            ledger.record(2)
        ledger.record(2)  # outside: null recorder, not emitted
        assert len(sink.events_of_kind("query_batch")) == 1
        assert ledger.batches == 2

    def test_round_ledger_emits_charges(self):
        sink = MemorySink()
        ledger = RoundLedger(recorder=Recorder([sink]))
        ledger.charge("setup", 10)
        ledger.charge("setup", 5)
        charges = sink.events_of_kind("charge")
        assert [(e.phase, e.rounds) for e in charges] == [("setup", 10), ("setup", 5)]

    def test_merge_does_not_reemit(self):
        sink = MemorySink()
        rec = Recorder([sink])
        parent = RoundLedger(recorder=rec)
        child = RoundLedger(recorder=rec)
        parent.charge("a", 1)
        child.charge("b", 2)
        parent.merge(child, prefix="sub:")
        charges = sink.events_of_kind("charge")
        assert [(e.phase, e.rounds) for e in charges] == [("a", 1), ("b", 2)]
        assert parent.by_phase() == {"a": 1, "sub:b": 2}


class TestUnifiedStream:
    def test_framework_and_faults_share_one_stream(self, grid45):
        """One recorder, one run of each layer: all six kinds, attributed."""
        vectors = {v: [v + j for j in range(6)] for v in grid45.nodes()}
        di = DistributedInput(vectors, min_semigroup(64))

        def algorithm(oracle, _rng):
            return oracle.query_batch([0, 2], label="probe")

        sink, metrics = MemorySink(), MetricsSink()
        rec = Recorder([sink, metrics])
        with install(rec):
            run = run_framework(grid45, algorithm, config=FrameworkConfig(
                parallelism=4, dist_input=di, mode="engine", seed=7,
            ))
            with rec.span("faulty"):
                run_with_faults(
                    grid45, _bfs_programs(grid45),
                    fault_model=BoundedDelay(0.3, max_delay=2),
                    seed=7, fault_seed=8,
                )

        kinds = {e.kind for e in sink.events}
        assert kinds == {"round", "deliver", "fault", "query_batch",
                         "charge", "span"}
        # Span attribution: setup charges under "setup", batch work under
        # "query/..." sub-spans, fault events under "faulty".
        charge_spans = {e.span for e in sink.events_of_kind("charge")}
        assert any(s == "setup" for s in charge_spans)
        assert any(s.startswith("query/") for s in charge_spans)
        assert all(e.span == "faulty" for e in sink.events_of_kind("fault"))
        # The metrics registry aggregates the same stream.
        assert metrics.total_charged == run.rounds.total
        assert metrics.query_batches == run.query_ledger.batches
        assert metrics.total_faults == len(sink.events_of_kind("fault")) > 0
        assert metrics.engine_rounds > 0 and metrics.messages > 0

    def test_framework_result_unchanged_by_recording(self, grid45):
        vectors = {v: [v + j for j in range(4)] for v in grid45.nodes()}

        def algorithm(oracle, _rng):
            return oracle.query_batch([1, 3])

        def once(recorder):
            di = DistributedInput(vectors, min_semigroup(64))
            return run_framework(grid45, algorithm, config=FrameworkConfig(
                parallelism=4, dist_input=di, mode="engine", seed=9,
                reuse_setup=False, recorder=recorder,
            ))

        plain = once(None)
        recorded = once(Recorder([MemorySink()]))
        assert plain.result == recorded.result
        assert plain.rounds.charges == recorded.rounds.charges
        assert plain.query_ledger.records == recorded.query_ledger.records


class TestEngineRecorderResolution:
    def test_engine_adopts_ambient_at_construction(self):
        net = topologies.path(4)
        sink = MemorySink()
        with install(Recorder([sink])):
            engine = Engine(net, _bfs_programs(net), seed=1)
        # Constructed inside install(): still records after the block.
        engine.run()
        assert sink.events_of_kind("round")

    def test_engine_built_outside_install_stays_silent(self):
        net = topologies.path(4)
        sink = MemorySink()
        engine = Engine(net, _bfs_programs(net), seed=1)
        with install(Recorder([sink])):
            # The recorder is resolved at construction, not at run time.
            engine.run()
        assert sink.events == []
