"""Cross-process merge primitives: MetricsSink.merge / to_state, and
JSONL shard stitching.

The merge invariant under test: ``a.merge(b)`` must leave ``a`` exactly
as if it had handled ``b``'s event stream after its own.
"""

import pytest

from repro.obs import (
    ChargeEvent,
    DeliverEvent,
    FaultEvent,
    JSONLSink,
    MetricsSink,
    QueryBatchEvent,
    RoundEvent,
    SpanEvent,
    validate_jsonl,
)
from repro.obs.jsonl import merge_jsonl_shards

STREAM_A = [
    SpanEvent(name="setup", phase="begin", span="setup"),
    RoundEvent(round_no=1, messages=2, bits=16, span="setup"),
    DeliverEvent(round_no=1, src=0, dst=1, bits=8, span="setup"),
    DeliverEvent(round_no=1, src=1, dst=0, bits=8, span="setup"),
    ChargeEvent(phase="query", rounds=3, span="setup"),
    QueryBatchEvent(size=4, label="grover", span="setup"),
    FaultEvent(fault="drop", round_no=1, src=0, dst=1, span="setup"),
    SpanEvent(name="setup", phase="end", span="setup"),
]

STREAM_B = [
    SpanEvent(name="sweep", phase="begin", span="sweep"),
    RoundEvent(round_no=5, messages=1, bits=4, span="sweep"),
    DeliverEvent(round_no=5, src=0, dst=1, bits=4, span="sweep"),
    ChargeEvent(phase="query", rounds=2, span="sweep"),
    ChargeEvent(phase="uncompute", rounds=1, span="sweep"),
    QueryBatchEvent(size=2, label="grover", span="sweep"),
    QueryBatchEvent(size=1, label="minimum", span="sweep"),
    FaultEvent(fault="corrupt", round_no=5, src=1, dst=0, span="sweep"),
    SpanEvent(name="sweep", phase="end", span="sweep"),
]


def _sink(events):
    sink = MetricsSink()
    for event in events:
        sink.handle(event)
    return sink


class TestMetricsSinkMerge:
    def test_merging_equals_handling(self):
        merged = _sink(STREAM_A).merge(_sink(STREAM_B))
        sequential = _sink(STREAM_A + STREAM_B)
        assert merged.summary() == sequential.summary()
        assert merged.edge_bits == sequential.edge_bits
        assert merged.phase_span == sequential.phase_span
        assert merged.batches_by_label == sequential.batches_by_label
        assert merged.charge_events == sequential.charge_events

    def test_engine_rounds_take_the_max_not_the_sum(self):
        # Round counters restart per engine run: a one-process sink
        # tracking two runs holds the max, so merge must too.
        merged = _sink(STREAM_A).merge(_sink(STREAM_B))
        assert merged.engine_rounds == 5

    def test_merge_is_order_sensitive_only_where_handling_is(self):
        ab = _sink(STREAM_A).merge(_sink(STREAM_B))
        ba = _sink(STREAM_B).merge(_sink(STREAM_A))
        # Counters commute; first-span attribution and span order do
        # not (exactly like handling the streams in the other order).
        assert ab.messages == ba.messages
        assert ab.total_charged == ba.total_charged
        assert ab.phase_span["query"] == "setup"
        assert ba.phase_span["query"] == "sweep"

    def test_merge_returns_self_for_reduction(self):
        sink = MetricsSink()
        assert sink.merge(_sink(STREAM_A)) is sink

    def test_state_round_trip(self):
        sink = _sink(STREAM_A + STREAM_B)
        clone = MetricsSink.from_state(sink.to_state())
        assert clone.summary() == sink.summary()
        assert clone.edge_bits == sink.edge_bits  # tuple keys restored

    def test_state_is_json_safe(self):
        import json

        state = _sink(STREAM_A).to_state()
        assert json.loads(json.dumps(state)) == state


class TestShardMerge:
    def _write_shard(self, path, events):
        sink = JSONLSink(str(path))
        for event in events:
            sink.handle(event)
        sink.close()

    def test_shards_stitch_into_one_valid_stream(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_shard(a, STREAM_A)
        self._write_shard(b, STREAM_B)
        out = tmp_path / "merged.jsonl"
        written = merge_jsonl_shards([str(a), str(b)], str(out))
        assert written == len(STREAM_A) + len(STREAM_B)
        counts = validate_jsonl(str(out))
        assert counts["meta"] == 1
        assert sum(counts.values()) - 1 == written
        assert counts["deliver"] == 3
        assert counts["charge"] == 3

    def test_shard_order_is_preserved(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_shard(a, STREAM_A)
        self._write_shard(b, STREAM_B)
        out = tmp_path / "merged.jsonl"
        merge_jsonl_shards([str(a), str(b)], str(out))
        spans = [
            line for line in out.read_text().splitlines() if "span" in line
        ]
        assert "setup" in spans[0] and "sweep" in spans[-1]

    def test_bad_shard_header_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "round", "round": 1}\n')
        with pytest.raises(ValueError, match="bad header"):
            merge_jsonl_shards([str(bad)], str(tmp_path / "out.jsonl"))
