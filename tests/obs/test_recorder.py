"""Tests for the Recorder, spans, and the ambient recorder stack."""

import pytest

from repro.obs import (
    NULL_RECORDER,
    MemorySink,
    NullRecorder,
    Recorder,
    current_recorder,
    install,
)


class TestRecorderEmission:
    def test_typed_helpers_reach_every_sink(self):
        a, b = MemorySink(), MemorySink()
        rec = Recorder([a, b])
        rec.round(1, 4, 32)
        rec.deliver(1, 0, 1, 8, value="x")
        rec.fault("drop", 2, 1, 2, 8)
        rec.query_batch(16, label="grover")
        rec.charge("setup", 12)
        for sink in (a, b):
            kinds = [e.kind for e in sink.events]
            assert kinds == ["round", "deliver", "fault", "query_batch", "charge"]

    def test_event_fields(self):
        sink = MemorySink()
        rec = Recorder([sink])
        rec.deliver(3, 5, 7, 11, value=(1, 2))
        (e,) = sink.events
        assert (e.round_no, e.src, e.dst, e.bits, e.value) == (3, 5, 7, 11, (1, 2))

    def test_add_sink_after_construction(self):
        rec = Recorder()
        sink = MemorySink()
        rec.add_sink(sink)
        rec.charge("x", 1)
        assert len(sink.events) == 1


class TestSpans:
    def test_events_carry_span_path(self):
        sink = MemorySink()
        rec = Recorder([sink])
        rec.charge("outside", 1)
        with rec.span("query"):
            rec.charge("top", 2)
            with rec.span("distribute"):
                rec.charge("nested", 3)
            rec.charge("after", 4)
        spans = {e.phase: e.span for e in sink.events if e.kind == "charge"}
        assert spans == {
            "outside": "",
            "top": "query",
            "nested": "query/distribute",
            "after": "query",
        }

    def test_span_begin_end_events(self):
        sink = MemorySink()
        rec = Recorder([sink])
        with rec.span("a"):
            with rec.span("b"):
                pass
        span_events = [(e.name, e.phase, e.span) for e in sink.events]
        assert span_events == [
            ("a", "begin", "a"),
            ("b", "begin", "a/b"),
            ("b", "end", "a/b"),
            ("a", "end", "a"),
        ]

    def test_span_path_restored_after_exception(self):
        rec = Recorder([MemorySink()])
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        assert rec.span_path == ""


class TestNullRecorder:
    def test_inert(self):
        rec = NullRecorder()
        assert not rec.active
        rec.round(1, 1, 1)
        rec.deliver(1, 0, 1, 8)
        rec.fault("drop", 1, 0, 1)
        rec.query_batch(4)
        rec.charge("x", 1)
        with rec.span("anything") as inner:
            assert inner is rec
        assert rec.sinks == []

    def test_rejects_sinks(self):
        with pytest.raises(ValueError):
            NULL_RECORDER.add_sink(MemorySink())


class TestAmbientStack:
    def test_default_is_null(self):
        assert current_recorder() is NULL_RECORDER

    def test_install_nests_and_restores(self):
        outer, inner = Recorder(), Recorder()
        with install(outer):
            assert current_recorder() is outer
            with install(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer
        assert current_recorder() is NULL_RECORDER

    def test_install_restores_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with install(rec):
                raise RuntimeError("boom")
        assert current_recorder() is NULL_RECORDER


class TestFork:
    def test_fork_feeds_parent_sinks_plus_extras(self):
        parent_sink, extra = MemorySink(), MemorySink()
        rec = Recorder([parent_sink])
        fork = rec.fork(extra)
        fork.charge("x", 1)
        assert len(parent_sink.events) == 1
        assert len(extra.events) == 1
        # The parent never sees the fork's sinks.
        rec.charge("y", 2)
        assert len(parent_sink.events) == 2
        assert len(extra.events) == 1

    def test_fork_of_null_recorder_drops_parent(self):
        extra = MemorySink()
        fork = NULL_RECORDER.fork(extra)
        assert fork.active
        fork.charge("x", 1)
        assert len(extra.events) == 1

    def test_fork_inherits_span_path(self):
        sink = MemorySink()
        rec = Recorder()
        with rec.span("query"):
            fork = rec.fork(sink)
        fork.charge("x", 1)
        (e,) = sink.events
        assert e.span == "query"
