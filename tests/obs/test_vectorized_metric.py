"""The ``vectorized_rounds`` metric: counting, merging, and state (PR 7)."""

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.engine import Engine
from repro.obs import MetricsSink, Recorder, install
from repro.obs.events import RoundEvent


def _run_metrics(schedule: str) -> MetricsSink:
    net = topologies.grid(3, 4)
    sink = MetricsSink()
    with install(Recorder([sink])):
        Engine(
            net,
            {v: BFSEchoProgram(v, 0) for v in net.nodes()},
            seed=0,
            schedule=schedule,
        ).run()
    return sink


class TestVectorizedRoundsCounter:
    def test_counts_only_vectorized_mode_rounds(self):
        sink = MetricsSink()
        sink.handle(RoundEvent(round_no=1, messages=2, bits=8))
        sink.handle(RoundEvent(round_no=2, messages=2, bits=8,
                               mode="vectorized"))
        sink.handle(RoundEvent(round_no=3, messages=1, bits=4,
                               mode="vectorized"))
        assert sink.engine_rounds == 3
        assert sink.vectorized_rounds == 2

    def test_engine_runs_report_their_mode(self):
        vec = _run_metrics("vectorized")
        active = _run_metrics("active")
        assert vec.engine_rounds == active.engine_rounds
        assert vec.vectorized_rounds == vec.engine_rounds
        assert active.vectorized_rounds == 0
        # The advisory mode tag must not perturb the traffic counters.
        assert (vec.messages, vec.bits) == (active.messages, active.bits)

    def test_merge_sums(self):
        a, b = _run_metrics("vectorized"), _run_metrics("vectorized")
        total = a.vectorized_rounds + b.vectorized_rounds
        assert a.merge(b).vectorized_rounds == total

    def test_state_round_trip(self):
        sink = _run_metrics("vectorized")
        restored = MetricsSink.from_state(sink.to_state())
        assert restored.vectorized_rounds == sink.vectorized_rounds
        assert restored.summary() == sink.summary()

    def test_from_state_tolerates_pre_vectorization_payloads(self):
        state = _run_metrics("active").to_state()
        del state["vectorized_rounds"]  # a payload written before PR 7
        assert MetricsSink.from_state(state).vectorized_rounds == 0

    def test_in_summary(self):
        sink = _run_metrics("vectorized")
        assert sink.summary()["vectorized_rounds"] == sink.vectorized_rounds
        assert sink.summary()["vectorized_rounds"] > 0
