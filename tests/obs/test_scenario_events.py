"""The ``scenario`` event: schema, sinks, and the framework annotation."""

import json

import pytest

from repro.congest import topologies
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    run_framework,
)
from repro.core.semigroup import sum_semigroup
from repro.obs import (
    SCENARIO,
    JSONLSink,
    MemorySink,
    MetricsSink,
    Recorder,
    ScenarioEvent,
    install,
)
from repro.obs.jsonl import validate_jsonl
from repro.scenarios import Scenario


@pytest.fixture
def net():
    return topologies.grid(3, 4)


@pytest.fixture
def di(net):
    vectors = {v: [(v + j) % 3 for j in range(8)] for v in net.nodes()}
    return DistributedInput(vectors, sum_semigroup(3 * net.n))


def algorithm(oracle, _rng):
    return oracle.query_batch([0, 1])


class TestScenarioEvent:
    def test_json_roundtrip(self):
        from repro.obs.events import to_json

        event = ScenarioEvent("clean", "classical-metro", 42, 1234.5, "s")
        record = json.loads(json.dumps(to_json(event)))
        assert record == {
            "type": SCENARIO, "scenario": "clean",
            "link": "classical-metro", "rounds": 42,
            "wall_clock_us": 1234.5, "span": "s",
        }

    def test_metrics_sink_accumulates_by_link(self):
        sink = MetricsSink()
        sink.handle(ScenarioEvent("a", "classical-metro", 10, 100.0, ""))
        sink.handle(ScenarioEvent("a", "quantum-mature", 10, 900.0, ""))
        sink.handle(ScenarioEvent("b", "classical-metro", 5, 50.0, ""))
        assert sink.scenario_events == 3
        assert sink.wall_clock_by_link == {
            "classical-metro": 150.0, "quantum-mature": 900.0,
        }
        assert sink.summary()["wall_clock_by_link"] == (
            sink.wall_clock_by_link
        )

    def test_metrics_merge_and_state_roundtrip(self):
        a, b = MetricsSink(), MetricsSink()
        a.handle(ScenarioEvent("a", "l", 1, 10.0, ""))
        b.handle(ScenarioEvent("a", "l", 1, 30.0, ""))
        a.merge(b)
        assert a.wall_clock_by_link == {"l": 40.0}
        restored = MetricsSink.from_state(a.to_state())
        assert restored.scenario_events == 2
        assert restored.wall_clock_by_link == {"l": 40.0}


class TestFrameworkScenarioAnnotation:
    def test_scenario_config_prices_both_links(self, net, di):
        scenario = Scenario("annotated")
        sink = MemorySink()
        with install(Recorder([sink])):
            run = run_framework(net, algorithm, config=FrameworkConfig(
                parallelism=2, dist_input=di, seed=1, scenario=scenario,
            ))
        assert run.wall_clock_us is not None
        assert set(run.wall_clock_us) == {
            scenario.classical_link.name, scenario.quantum_link.name,
        }
        events = sink.events_of_kind(SCENARIO)
        assert {e.link for e in events} == set(run.wall_clock_us)
        for e in events:
            assert e.scenario == "annotated"
            assert e.rounds == run.total_rounds
            assert e.wall_clock_us == pytest.approx(
                run.wall_clock_us[e.link]
            )

    def test_annotation_is_pure_extension(self, net, di):
        """Same run without a scenario: identical result, no events."""
        cfg = FrameworkConfig(parallelism=2, dist_input=di, seed=1)
        sink = MemorySink()
        with install(Recorder([sink])):
            plain = run_framework(net, algorithm, config=cfg)
        annotated = run_framework(net, algorithm, config=cfg.replace(
            scenario=Scenario("x"),
        ))
        assert plain.wall_clock_us is None
        assert sink.events_of_kind(SCENARIO) == []
        assert plain.result == annotated.result
        assert plain.rounds.charges == annotated.rounds.charges

    def test_non_scenario_object_rejected(self, di):
        with pytest.raises(TypeError, match="Scenario"):
            FrameworkConfig(parallelism=2, dist_input=di,
                            scenario="clean")

    def test_jsonl_stream_validates(self, net, di, tmp_path):
        path = str(tmp_path / "scenario.jsonl")
        with install(Recorder([JSONLSink(path)])):
            run_framework(net, algorithm, config=FrameworkConfig(
                parallelism=2, dist_input=di, seed=1,
                scenario=Scenario("streamed"),
            ))
        counts = validate_jsonl(path)
        assert counts[SCENARIO] == 2
