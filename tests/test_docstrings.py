"""Documentation coverage: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
walks the installed package and enforces it mechanically.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def _public_modules():
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        modules.append(info.name)
    return modules


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} has no module docstring"
    )


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: public items without docstrings: {undocumented}"
    )
