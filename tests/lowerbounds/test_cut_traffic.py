"""Measuring communication across the lower-bound cut.

Lemmas 11/13 argue: any CONGEST protocol on the path gadget induces a
two-party protocol whose communication is what crosses a single edge.
With the tracing engine we can *measure* that crossing traffic directly:
the classical streaming baseline must push Ω(k) bits over every path
edge, while the quantum framework's engine-mode traffic across the cut
scales with the number of batches, not with k.
"""

import numpy as np
import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.tracing import run_traced
from repro.core.framework import DistributedInput
from repro.core.semigroup import sum_semigroup


def _streaming_cut_bits(distance, k, seed):
    """Run the engine-mode streaming protocol under tracing; return the
    bits crossing the middle edge."""
    from repro.congest.algorithms.aggregate import UpcastProgram
    from repro.congest.algorithms.bfs import bfs_with_echo

    net = topologies.path_with_endpoints(distance)
    rng = np.random.default_rng(seed)
    vectors = {v: [0] * k for v in net.nodes()}
    vectors[0] = [int(b) for b in rng.integers(0, 2, size=k)]
    vectors[distance] = [int(b) for b in rng.integers(0, 2, size=k)]
    tree = bfs_with_echo(net, distance)  # leader at the far end
    children = tree.children()
    programs = {
        v: UpcastProgram(
            v, tree.parent.get(v), children.get(v, []), vectors[v],
            combine=lambda a, b: a + b, domain=net.n + 1, length=k,
        )
        for v in net.nodes()
    }
    _, trace = run_traced(net, programs, seed=seed)
    mid = distance // 2
    return sum(
        e.bits for e in trace.events
        if {e.src, e.dst} == {mid, mid + 1}
    )


class TestClassicalCutTraffic:
    def test_streaming_pays_k_bits_across_the_cut(self):
        """The trivial protocol's cut traffic grows linearly in k."""
        small = _streaming_cut_bits(distance=6, k=32, seed=1)
        large = _streaming_cut_bits(distance=6, k=128, seed=1)
        assert large >= 3.5 * small  # linear in k
        assert small >= 32  # at least one bit per input index

    def test_cut_traffic_at_least_input_entropy(self):
        """Every index's value must cross: ≥ k bits over the middle edge."""
        k = 64
        bits = _streaming_cut_bits(distance=4, k=k, seed=2)
        assert bits >= k


class TestQuantumCutTraffic:
    def test_framework_cut_messages_scale_with_batches_not_k(self):
        """Engine-mode framework traffic over one edge is Θ(b·p·words),
        independent of k beyond the log factor."""
        distance = 4
        net = topologies.path_with_endpoints(distance)

        def cut_messages(k):
            rng = np.random.default_rng(3)
            vectors = {v: [0] * k for v in net.nodes()}
            vectors[0] = [int(b) for b in rng.integers(0, 2, size=k)]
            di = DistributedInput(vectors, sum_semigroup(net.n))
            # One batch of 4 queries through the real engine, traced via
            # the round ledger's engine-mode charges (messages per batch
            # are independent of k, so compare round charges).
            from repro.core.framework import FrameworkConfig, run_framework

            def algorithm(oracle, _rng):
                oracle.query_batch([0, 1, 2, 3], label="probe")
                return None

            run = run_framework(net, algorithm, config=FrameworkConfig(
                parallelism=4, dist_input=di, mode="engine", seed=3,
                leader=0,
            ))
            phases = run.rounds.by_phase()
            return sum(v for key, v in phases.items()
                       if not key.startswith("setup"))

        small, large = cut_messages(32), cut_messages(1024)
        # k grew 32×; engine traffic may only grow by the word factor.
        assert large <= 2 * small

    def test_bfs_cut_traffic_constant(self):
        """Control: BFS tree construction crosses the cut O(1) times."""
        net = topologies.path_with_endpoints(8)
        programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
        _, trace = run_traced(net, programs, seed=4)
        crossings = [
            e for e in trace.events if {e.src, e.dst} == {4, 5}
        ]
        assert len(crossings) <= 4
