"""Tests for the lower-bound gadgets and certificates (Section 4)."""

import itertools

import numpy as np
import pytest

from repro.apps.deutsch_jozsa import solve_distributed_dj
from repro.apps.element_distinctness import (
    distinctness_between_nodes,
    distinctness_distributed_vector,
)
from repro.apps.meeting import schedule_meeting
from repro.lowerbounds.disjointness import (
    DisjointnessInstance,
    classical_congest_lower_bound,
    quantum_line_lower_bound,
    random_instance,
)
from repro.lowerbounds.rank_certificate import (
    certify_dj_lower_bound,
    fooling_matrix_rank,
    greedy_fooling_set,
    xor_is_balanced,
)
from repro.lowerbounds.reductions import (
    build_dj_gadget,
    build_ed_nodes_gadget,
    build_ed_vector_gadget,
    build_meeting_gadget,
)


def boosted(fn, tries=6):
    """Run a 2/3-success check several times; any success counts."""
    return any(fn(seed) for seed in range(tries))


class TestDisjointnessInstances:
    def test_intersection_detection(self):
        inst = DisjointnessInstance((1, 0, 1), (0, 0, 1))
        assert inst.intersecting
        assert inst.intersection() == [2]

    def test_disjoint(self):
        inst = DisjointnessInstance((1, 0), (0, 1))
        assert not inst.intersecting

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DisjointnessInstance((1,), (1, 0))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            DisjointnessInstance((2, 0), (0, 1))

    def test_random_conditioning(self, rng):
        yes = random_instance(20, rng, force_intersecting=True)
        no = random_instance(20, rng, force_intersecting=False)
        assert yes.intersecting and not no.intersecting

    def test_bound_formulas_monotone(self):
        assert classical_congest_lower_bound(2000, 5, 100) > (
            classical_congest_lower_bound(100, 5, 100)
        )
        assert quantum_line_lower_bound(400, 10) > quantum_line_lower_bound(100, 10)


class TestMeetingReduction:
    """Lemma 11: the gadget maps disjointness to meeting scheduling."""

    @pytest.mark.parametrize("want", [True, False])
    def test_reduction_sound(self, want, rng):
        inst = random_instance(10, rng, force_intersecting=want)
        gadget = build_meeting_gadget(inst, distance=5)

        def attempt(seed):
            res = schedule_meeting(gadget.network, gadget.calendars, seed=seed)
            return gadget.interpret(res.availability)

        assert boosted(attempt) == inst.intersecting

    def test_gadget_shape(self, rng):
        inst = random_instance(6, rng)
        gadget = build_meeting_gadget(inst, distance=7)
        assert gadget.network.n == 8
        assert gadget.calendars[0] == list(inst.x)
        assert gadget.calendars[7] == list(inst.y)
        assert all(sum(gadget.calendars[v]) == 0 for v in range(1, 7))


class TestEDVectorReduction:
    """Lemma 13: collision in x^{(v_A)} + x^{(v_B)} iff sets intersect."""

    @pytest.mark.parametrize("want", [True, False])
    def test_reduction_sound(self, want, rng):
        inst = random_instance(8, rng, force_intersecting=want)
        gadget = build_ed_vector_gadget(inst, distance=4)

        def attempt(seed):
            res = distinctness_distributed_vector(
                gadget.network, gadget.vectors, gadget.max_value, seed=seed
            )
            return gadget.interpret(res.pair)

        assert boosted(attempt) == inst.intersecting

    def test_encoding_collision_structure(self, rng):
        """Direct check of the Lemma 13 case analysis."""
        for seed in range(5):
            inst = random_instance(6, np.random.default_rng(seed))
            gadget = build_ed_vector_gadget(inst, distance=3)
            total = [
                sum(gadget.vectors[v][i] for v in gadget.network.nodes())
                for i in range(2 * inst.k)
            ]
            has_collision = len(set(total)) < len(total)
            assert has_collision == inst.intersecting


class TestEDNodesReduction:
    """Lemma 15: two joined stars, repeated node value iff intersecting."""

    @pytest.mark.parametrize("want", [True, False])
    def test_reduction_sound(self, want, rng):
        inst = random_instance(8, rng, force_intersecting=want)
        gadget = build_ed_nodes_gadget(inst)

        def attempt(seed):
            res = distinctness_between_nodes(
                gadget.network, gadget.values, gadget.max_value, seed=seed
            )
            return gadget.interpret(res.pair)

        assert boosted(attempt) == inst.intersecting

    def test_value_multiset(self, rng):
        inst = random_instance(8, rng, force_intersecting=True)
        gadget = build_ed_nodes_gadget(inst)
        values = list(gadget.values.values())
        assert (len(values) != len(set(values))) == inst.intersecting


class TestDJReduction:
    """Theorem 18: two-party DJ embedded at path endpoints."""

    def test_balanced_detected(self):
        gadget = build_dj_gadget([1, 0, 1, 0], [0, 0, 0, 0], distance=4)
        result = solve_distributed_dj(gadget.network, gadget.inputs, seed=1)
        assert result.balanced == (not gadget.constant_truth)

    def test_constant_detected(self):
        gadget = build_dj_gadget([1, 1, 1, 1], [0, 0, 0, 0], distance=4)
        result = solve_distributed_dj(gadget.network, gadget.inputs, seed=1)
        assert result.constant and gadget.constant_truth

    def test_cancelling_halves(self):
        gadget = build_dj_gadget([1, 0, 1, 1], [1, 0, 1, 1], distance=3)
        assert gadget.constant_truth

    def test_promise_violation_rejected(self):
        with pytest.raises(ValueError):
            build_dj_gadget([1, 0, 0, 0], [0, 0, 0, 0], distance=3)


class TestFoolingCertificate:
    @pytest.mark.parametrize("k", [4, 8, 16, 32])
    def test_certificate_verifies(self, k):
        cert = certify_dj_lower_bound(k)
        assert cert.verified
        assert cert.set_size >= k  # Hadamard seeds guarantee ≥ k

    def test_pairwise_balanced(self):
        fooling = greedy_fooling_set(8)
        for a, b in itertools.combinations(fooling, 2):
            assert xor_is_balanced(a, b, 8)

    def test_rank_equals_set_size(self):
        for k in [4, 8]:
            fooling = greedy_fooling_set(k)
            assert fooling_matrix_rank(fooling, k) == len(fooling)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            greedy_fooling_set(5)

    def test_bound_grows_with_k(self):
        b4 = certify_dj_lower_bound(4).bits_lower_bound
        b32 = certify_dj_lower_bound(32).bits_lower_bound
        assert b32 > b4
