"""Unit tests for the Network topology wrapper."""

import math

import networkx as nx
import pytest

from repro.congest import topologies
from repro.congest.errors import CongestError
from repro.congest.network import Network


class TestConstruction:
    def test_rejects_empty_graph(self):
        with pytest.raises(CongestError):
            Network(nx.Graph())

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(CongestError):
            Network(g)

    def test_rejects_non_compact_labels(self):
        g = nx.Graph([(1, 2)])
        with pytest.raises(CongestError):
            Network(g)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(CongestError):
            Network(nx.path_graph(3), bandwidth=0)

    def test_single_node(self):
        net = Network(nx.Graph([(0, 0)]).subgraph([0])) if False else None
        g = nx.Graph()
        g.add_node(0)
        net = Network(g)
        assert net.n == 1
        assert net.diameter == 0

    def test_from_edges_compacts_labels(self):
        net = Network.from_edges([(10, 20), (20, 30)])
        assert net.n == 3
        assert net.has_edge(0, 1)
        assert net.has_edge(1, 2)

    def test_default_bandwidth_scales_with_log_n(self):
        small = topologies.path(4)
        large = topologies.path(400)
        assert large.bandwidth > small.bandwidth


class TestMetrics:
    def test_path_diameter(self):
        assert topologies.path(10).diameter == 9

    def test_path_radius(self):
        assert topologies.path(9).radius == 4

    def test_grid_diameter(self):
        assert topologies.grid(4, 5).diameter == 7

    def test_star_eccentricities(self):
        net = topologies.star(6)
        eccs = net.eccentricities
        assert eccs[0] == 1
        assert all(eccs[v] == 2 for v in range(1, 6))

    def test_average_eccentricity(self):
        net = topologies.star(5)
        assert net.average_eccentricity == pytest.approx((1 + 2 * 4) / 5)

    def test_distances_from_match_networkx(self):
        net = topologies.grid(3, 4)
        assert net.distances_from(0) == dict(
            nx.single_source_shortest_path_length(net.graph, 0)
        )

    def test_neighbors_sorted(self):
        net = topologies.petersen()
        for v in net.nodes():
            assert list(net.neighbors(v)) == sorted(net.neighbors(v))

    def test_degree(self):
        net = topologies.star(7)
        assert net.degree(0) == 6
        assert net.degree(3) == 1


class TestWords:
    def test_one_word_for_small_payload(self):
        net = topologies.path(16)
        assert net.words(3) == 1

    def test_words_round_up(self):
        net = topologies.path(16)
        assert net.words(net.bandwidth + 1) == 2

    def test_words_minimum_one(self):
        net = topologies.path(16)
        assert net.words(0) == 1

    def test_log_n_bits(self):
        assert topologies.path(16).log_n_bits == 4
        assert topologies.path(17).log_n_bits == 5
