"""Unit tests for the PR 8 communication-model layer."""

import networkx as nx
import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.encoding import Field
from repro.congest.engine import Engine, run_program
from repro.congest.errors import (
    BandwidthExceeded,
    CongestError,
    MessageTooLargeError,
    NotANeighbor,
)
from repro.congest.messages import Inbox
from repro.congest.models import (
    DEFAULT_MODEL,
    CliqueRouter,
    CongestCliqueModel,
    CongestModel,
    LocalModel,
    default_bandwidth,
    resolve_model,
)
from repro.congest.network import Network
from repro.congest.program import NodeProgram


class TestResolveModel:
    def test_none_is_default_congest(self):
        assert resolve_model(None) == CongestModel()
        assert resolve_model(None) is DEFAULT_MODEL

    def test_names_resolve(self):
        assert resolve_model("congest") == CongestModel()
        assert resolve_model("congest-clique") == CongestCliqueModel()
        assert resolve_model("local") == LocalModel()

    def test_instances_pass_through(self):
        model = CongestModel(bandwidth=7)
        assert resolve_model(model) is model

    def test_unknown_name_rejected(self):
        with pytest.raises(CongestError, match="unknown communication model"):
            resolve_model("token-ring")

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(CongestError, match="bandwidth"):
            CongestModel(bandwidth=0)
        with pytest.raises(CongestError, match="bandwidth"):
            CongestCliqueModel(bandwidth=-3)


class TestPeersAndBandwidth:
    def test_congest_peers_are_physical_neighbors(self):
        net = topologies.cycle(6)
        for v in net.nodes():
            # The identical tuple object: the default model must not
            # perturb anything the engine caches or fingerprints.
            assert net.peers(v) is net.neighbors(v)

    def test_clique_peers_are_everyone_else(self):
        net = Network(nx.path_graph(5), comm_model="congest-clique")
        assert net.peers(2) == (0, 1, 3, 4)
        assert net.peers(0) == (1, 2, 3, 4)

    def test_local_peers_are_physical_with_no_cap(self):
        net = Network(nx.path_graph(4), comm_model="local")
        assert net.peers(1) == net.neighbors(1)
        assert net.bandwidth is None
        assert net.words(10 ** 9) == 1

    def test_default_bandwidth_formula(self):
        net = topologies.path(100)
        assert net.bandwidth == default_bandwidth(100)
        clique = Network(nx.path_graph(100), comm_model="congest-clique")
        assert clique.bandwidth == default_bandwidth(100)

    def test_explicit_bandwidth_override(self):
        net = Network(
            nx.path_graph(10), comm_model=CongestCliqueModel(bandwidth=5)
        )
        assert net.bandwidth == 5

    def test_bandwidth_and_model_are_mutually_exclusive(self):
        with pytest.raises(CongestError, match="not both"):
            Network(nx.path_graph(4), bandwidth=8, comm_model="local")


class TestAdmission:
    def test_congest_rejects_non_neighbor(self):
        net = topologies.path(5)
        with pytest.raises(NotANeighbor):
            net.admit(0, 4, 3)

    def test_clique_admits_any_distinct_pair(self):
        net = Network(nx.path_graph(5), comm_model="congest-clique")
        net.admit(0, 4, net.bandwidth)  # does not raise

    def test_clique_rejects_over_budget_pair(self):
        net = Network(nx.path_graph(5), comm_model="congest-clique")
        with pytest.raises(MessageTooLargeError) as exc:
            net.admit(0, 4, net.bandwidth + 1)
        assert exc.value.model == "congest-clique"
        # Subclassing keeps every pre-PR-8 except-clause working.
        assert isinstance(exc.value, BandwidthExceeded)

    def test_clique_rejects_self_and_out_of_range(self):
        net = Network(nx.path_graph(5), comm_model="congest-clique")
        with pytest.raises(NotANeighbor):
            net.admit(2, 2, 1)
        with pytest.raises(NotANeighbor):
            net.admit(0, 5, 1)

    def test_local_admits_unbounded_messages(self):
        net = Network(nx.path_graph(3), comm_model="local")
        net.admit(0, 1, 10 ** 9)  # does not raise


class _SendOnce(NodeProgram):
    """Round 1: ``src`` sends one Field to ``dst``; everyone else idles."""

    def __init__(self, node, src, dst, payload):
        self.node, self.src, self.dst, self.payload = node, src, dst, payload

    def on_start(self, ctx):
        if self.node == self.src:
            ctx.send(self.dst, self.payload)

    def on_round(self, ctx, inbox: Inbox):
        ctx.halt()


def _send_once(net, src, dst, payload):
    programs = {
        v: _SendOnce(v, src, dst, payload) for v in range(net.n)
    }
    return run_program(net, programs, seed=0, max_rounds=4)


class TestCliqueRouting:
    def test_hops_cached_and_symmetric(self):
        net = Network(nx.path_graph(5), comm_model="congest-clique")
        router = net.model.router(net)
        assert isinstance(router, CliqueRouter)
        assert router.hops(0, 4) == 4
        assert router.hops(4, 0) == 4
        assert router.hops(1, 2) == 1

    def test_distant_pair_charged_for_physical_route(self):
        """src→dst over h physical hops costs h× the payload bits."""
        path = Network(nx.path_graph(5), comm_model="congest-clique")
        direct = Network(nx.path_graph(5))
        payload = Field(3, domain=5)
        clique_run = _send_once(path, 0, 4, payload)
        congest_run = _send_once(direct, 0, 1, payload)
        base_bits = congest_run.stats.bits
        assert base_bits > 0
        # 0→4 on a path is 4 hops: 1× delivered + 3× relayed.
        assert clique_run.stats.bits == 4 * base_bits

    def test_adjacent_pair_charged_once(self):
        path = Network(nx.path_graph(5), comm_model="congest-clique")
        payload = Field(3, domain=5)
        run = _send_once(path, 1, 2, payload)
        assert run.stats.bits == payload.bits

    def test_complete_physical_graph_charges_nothing_extra(self):
        clique = topologies.clique(8)
        direct = topologies.complete(8)
        payload = Field(5, domain=8)
        assert (
            _send_once(clique, 0, 7, payload).stats.bits
            == _send_once(direct, 0, 7, payload).stats.bits
        )


class TestModelFingerprints:
    def test_default_model_leaves_fingerprint_unchanged(self):
        g = nx.path_graph(6)
        explicit = Network(g, comm_model=CongestModel())
        implicit = Network(g)
        assert (
            explicit.topology_fingerprint() == implicit.topology_fingerprint()
        )
        assert "model=" not in implicit.topology_fingerprint()

    def test_non_default_models_fingerprint_distinctly(self):
        g = nx.path_graph(6)
        prints = {
            Network(g, comm_model=name).topology_fingerprint()
            for name in ("congest-clique", "local")
        }
        prints.add(Network(g).topology_fingerprint())
        assert len(prints) == 3

    def test_engine_runs_under_every_model(self):
        for name in ("congest", "congest-clique", "local"):
            net = Network(nx.cycle_graph(6), comm_model=name)
            programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
            run = Engine(net, programs, seed=0).run()
            assert run.outputs[5] is not None
