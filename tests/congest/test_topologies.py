"""Tests for the topology generators."""

import networkx as nx
import pytest

from repro.analysis.graphtruth import girth
from repro.congest import topologies


class TestBasicShapes:
    def test_path(self):
        net = topologies.path(5)
        assert net.n == 5 and net.m == 4 and net.diameter == 4

    def test_cycle(self):
        net = topologies.cycle(8)
        assert net.m == 8 and net.diameter == 4

    def test_star(self):
        net = topologies.star(9)
        assert net.n == 9 and net.degree(0) == 8

    def test_complete(self):
        net = topologies.complete(6)
        assert net.m == 15 and net.diameter == 1

    def test_grid(self):
        net = topologies.grid(3, 4)
        assert net.n == 12 and net.diameter == 5

    def test_balanced_tree(self):
        net = topologies.balanced_tree(2, 3)
        assert net.n == 15 and net.m == 14

    def test_petersen(self):
        net = topologies.petersen()
        assert net.n == 10 and all(net.degree(v) == 3 for v in net.nodes())


class TestRandomFamilies:
    def test_random_regular_connected_and_regular(self):
        net = topologies.random_regular(20, 3, seed=1)
        assert all(net.degree(v) == 3 for v in net.nodes())
        assert nx.is_connected(net.graph)

    def test_erdos_renyi_connected(self):
        net = topologies.erdos_renyi(40, 0.15, seed=2)
        assert nx.is_connected(net.graph)
        assert net.n == 40

    def test_random_deterministic_under_seed(self):
        a = topologies.erdos_renyi(30, 0.15, seed=3)
        b = topologies.erdos_renyi(30, 0.15, seed=3)
        assert set(a.graph.edges()) == set(b.graph.edges())


class TestGadgets:
    def test_two_stars_structure(self):
        net = topologies.two_stars(4, 6)
        assert net.n == 12
        assert net.has_edge(0, 1)
        assert net.degree(0) == 5  # 4 leaves + center B
        assert net.degree(1) == 7

    def test_path_with_endpoints(self):
        net = topologies.path_with_endpoints(9)
        assert net.n == 10
        assert net.distances_from(0)[9] == 9

    def test_diameter_controlled(self):
        net = topologies.diameter_controlled(60, 10, seed=4)
        assert net.n == 60
        assert 10 <= net.diameter <= 14

    def test_diameter_controlled_rejects_impossible(self):
        with pytest.raises(ValueError):
            topologies.diameter_controlled(5, 10)


class TestCycleFamilies:
    def test_planted_cycle_girth(self):
        net = topologies.planted_cycle(40, 7, seed=5)
        assert girth(net.graph) == 7
        assert net.n == 40

    def test_planted_cycle_bounds(self):
        with pytest.raises(ValueError):
            topologies.planted_cycle(10, 2)
        with pytest.raises(ValueError):
            topologies.planted_cycle(5, 6)

    def test_known_girth_single(self):
        net = topologies.known_girth(6)
        assert girth(net.graph) == 6

    def test_known_girth_copies_and_tail(self):
        net = topologies.known_girth(5, copies=3, tail=4)
        assert girth(net.graph) == 5
        assert net.n == 15 + 4

    def test_bipartite_incidence_girth_at_least_six(self):
        net = topologies.bipartite_incidence(3)
        g = girth(net.graph)
        assert g is not None and g >= 6


class TestExtendedFamilies:
    def test_hypercube(self):
        net = topologies.hypercube(4)
        assert net.n == 16
        assert net.diameter == 4
        assert all(net.degree(v) == 4 for v in net.nodes())

    def test_hypercube_validation(self):
        with pytest.raises(ValueError):
            topologies.hypercube(0)

    def test_torus(self):
        net = topologies.torus(4, 5)
        assert net.n == 20
        assert all(net.degree(v) == 4 for v in net.nodes())
        assert net.diameter == 2 + 2

    def test_torus_validation(self):
        with pytest.raises(ValueError):
            topologies.torus(2, 5)

    def test_expander_low_diameter(self):
        net = topologies.expander(64, seed=1)
        assert net.n == 64
        assert net.diameter <= 10  # ~log n for a random cubic graph
        assert all(net.degree(v) == 3 for v in net.nodes())

    def test_expander_validation(self):
        with pytest.raises(ValueError):
            topologies.expander(7)
