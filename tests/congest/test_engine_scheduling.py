"""Context.request_wakeup and RunResult.common_output behavior."""

import pytest

from repro.congest import topologies
from repro.congest.encoding import Field
from repro.congest.engine import RunResult, run_program
from repro.congest.program import NodeProgram


class SilentCountdown(NodeProgram):
    """Halts after N self-scheduled silent rounds; sends nothing.

    Under active scheduling this program is only ever executed because it
    requests wakeups — there are no deliveries or sends to carry it.
    """

    always_active = False

    def __init__(self, node, countdown):
        self.node = node
        self.remaining = countdown
        self.executed_rounds = []

    def on_start(self, ctx):
        if self.remaining <= 0:
            ctx.halt(output=0)
            return
        ctx.request_wakeup()

    def on_round(self, ctx, inbox):
        self.executed_rounds.append(ctx.round)
        self.remaining -= 1
        if self.remaining <= 0:
            ctx.halt(output=ctx.round)
        else:
            ctx.request_wakeup()


class SparseWaker(NodeProgram):
    """Wakes itself at an explicit future round."""

    always_active = False

    def __init__(self, node, wake_round):
        self.node = node
        self.wake_round = wake_round
        self.executed_rounds = []

    def on_start(self, ctx):
        ctx.request_wakeup(self.wake_round)

    def on_round(self, ctx, inbox):
        self.executed_rounds.append(ctx.round)
        ctx.halt(output=ctx.round)


class TestRequestWakeup:
    def test_next_round_wakeups_drive_countdown(self):
        net = topologies.path(3)
        progs = {v: SilentCountdown(v, countdown=v + 1) for v in net.nodes()}
        result = run_program(net, progs, seed=0, schedule="active")
        assert result.outputs == {0: 1, 1: 2, 2: 3}
        for v, p in progs.items():
            assert p.executed_rounds == list(range(1, v + 2))

    def test_explicit_future_round(self):
        net = topologies.path(2)
        progs = {v: SparseWaker(v, wake_round=5 + v) for v in net.nodes()}
        result = run_program(net, progs, seed=0, schedule="active")
        assert progs[0].executed_rounds == [5]
        assert progs[1].executed_rounds == [6]
        assert result.outputs == {0: 5, 1: 6}

    def test_identical_under_dense_schedule(self):
        net = topologies.path(3)
        runs = {}
        for schedule in ("active", "dense"):
            progs = {
                v: SilentCountdown(v, countdown=v + 1) for v in net.nodes()
            }
            res = run_program(net, progs, seed=0, schedule=schedule)
            runs[schedule] = (res.rounds, res.outputs, res.stats)
        assert runs["active"] == runs["dense"]

    def test_past_round_rejected(self):
        class BadWaker(NodeProgram):
            def on_start(self, ctx):
                ctx.request_wakeup(0)

            def on_round(self, ctx, inbox):
                ctx.halt()

        net = topologies.path(2)
        with pytest.raises(ValueError, match="wake"):
            run_program(
                net, {v: BadWaker() for v in net.nodes()}, seed=0
            )


class EchoOnce(NodeProgram):
    """Node 0 broadcasts once; everyone halts after round 1."""

    def __init__(self, node, output):
        self.node = node
        self._output = output

    def on_start(self, ctx):
        if self.node == 0:
            ctx.broadcast(Field(1, 2))

    def on_round(self, ctx, inbox):
        ctx.halt(output=self._output)


class TestCommonOutput:
    def _result(self, outputs):
        return RunResult(rounds=1, outputs=outputs)

    def test_hashable_agreement(self):
        res = self._result({0: ("a", 1), 1: ("a", 1), 2: None})
        assert res.common_output() == ("a", 1)

    def test_hashable_disagreement(self):
        res = self._result({0: 1, 1: 2})
        with pytest.raises(ValueError, match="disagree"):
            res.common_output()

    def test_unhashable_agreement(self):
        res = self._result({0: [1, 2], 1: [1, 2], 2: None})
        assert res.common_output() == [1, 2]

    def test_unhashable_disagreement(self):
        res = self._result({0: [1], 1: [2]})
        with pytest.raises(ValueError, match="disagree"):
            res.common_output()

    def test_no_output(self):
        res = self._result({0: None})
        with pytest.raises(ValueError):
            res.common_output()

    def test_large_hashable_consensus_from_run(self):
        net = topologies.star(40)
        progs = {v: EchoOnce(v, output=7) for v in net.nodes()}
        result = run_program(net, progs, seed=0)
        assert result.common_output() == 7
