"""Unit tests for the error hierarchy."""

import pytest

from repro.congest.errors import (
    BandwidthExceeded,
    CongestError,
    DuplicateSend,
    ModelViolation,
    NotANeighbor,
    RoundLimitExceeded,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        BandwidthExceeded, NotANeighbor, DuplicateSend,
    ])
    def test_violations_are_model_violations(self, exc_cls):
        assert issubclass(exc_cls, ModelViolation)
        assert issubclass(exc_cls, CongestError)

    def test_round_limit_is_not_a_model_violation(self):
        assert issubclass(RoundLimitExceeded, CongestError)
        assert not issubclass(RoundLimitExceeded, ModelViolation)


class TestPayloads:
    def test_bandwidth_exceeded_carries_context(self):
        exc = BandwidthExceeded(3, 4, bits=50, bandwidth=32)
        assert exc.src == 3 and exc.dst == 4
        assert exc.bits == 50 and exc.bandwidth == 32
        assert "50 bits" in str(exc)

    def test_not_a_neighbor_message(self):
        exc = NotANeighbor(1, 9)
        assert "non-neighbor 9" in str(exc)

    def test_duplicate_send_round(self):
        exc = DuplicateSend(0, 2, round_no=7)
        assert exc.round_no == 7
        assert "round 7" in str(exc)

    def test_round_limit_budget(self):
        exc = RoundLimitExceeded(500)
        assert exc.max_rounds == 500
        assert "500" in str(exc)
