"""The vectorized (column-major) engine schedule: fast path and fallbacks.

``Engine(schedule="vectorized")`` must be observationally identical to the
per-node schedules on the audited program families, and must fall back —
with a recorded reason, still producing identical results — on anything
it cannot bulk-execute.  The property-based twin of this file is
``tests/property/test_prop_vectorized.py``.
"""

import numpy as np
import pytest

from repro.congest import topologies
from repro.congest.algorithms.aggregate import (
    aggregate_single,
    build_upcast_programs,
    pipelined_downcast,
    pipelined_upcast,
)
from repro.congest.algorithms.bfs import BFSEchoProgram, bfs_with_echo
from repro.congest.algorithms.leader import MaxIdFloodProgram
from repro.congest.algorithms.multibfs import MultiSourceBFSProgram
from repro.congest.engine import Engine
from repro.congest.vectorized import build_vectorized, register_vectorized_combine
from repro.core.semigroup import combine_max, combine_sum, combine_xor


def _assert_identical(res_a, res_b):
    assert res_a.rounds == res_b.rounds
    assert res_a.outputs == res_b.outputs
    assert res_a.stats == res_b.stats


def _run(net, programs, schedule, **kwargs):
    engine = Engine(net, programs, seed=3, schedule=schedule, **kwargs)
    return engine, engine.run()


class TestFastPath:
    def test_bfs_echo_identical_and_fully_vectorized(self):
        net = topologies.grid(4, 5)
        make = lambda: {v: BFSEchoProgram(v, 0) for v in net.nodes()}
        _, active = _run(net, make(), "active")
        engine, vec = _run(net, make(), "vectorized")
        _assert_identical(active, vec)
        assert engine.vectorized_fallback is None
        assert engine.vectorized_rounds == vec.rounds

    def test_multibfs_identical(self):
        net = topologies.random_regular(14, 3, seed=5)
        sources = [0, 7]
        make = lambda: {
            v: MultiSourceBFSProgram(v, sources) for v in net.nodes()
        }
        _, active = _run(net, make(), "active", stop_on_quiescence=True)
        engine, vec = _run(net, make(), "vectorized", stop_on_quiescence=True)
        _assert_identical(active, vec)
        assert engine.vectorized_fallback is None
        assert engine.vectorized_rounds == vec.rounds

    def test_fast_path_never_builds_contexts(self):
        # The whole point of the bulk schedule: no per-node Context objects
        # (or their RNG streams) are ever constructed.
        net = topologies.cycle(12)
        engine = Engine(
            net, {v: BFSEchoProgram(v, 0) for v in net.nodes()},
            seed=0, schedule="vectorized",
        )
        engine.run()
        assert engine.vectorized_fallback is None
        assert engine._contexts is None

    def test_lazy_contexts_are_bit_identical_to_eager(self):
        # Laziness must not change the per-node RNG streams: two engines
        # over the same seed draw identical values whether or not the
        # contexts were forced early.
        net = topologies.cycle(6)
        make = lambda: {v: MaxIdFloodProgram(v) for v in net.nodes()}
        a = Engine(net, make(), seed=9)
        _ = a.contexts  # force before running
        b = Engine(net, make(), seed=9)
        assert [a.contexts[v].rng.integers(1 << 30) for v in net.nodes()] == [
            b.contexts[v].rng.integers(1 << 30) for v in net.nodes()
        ]

    @pytest.mark.parametrize("combine,expected", [
        (combine_sum, sum(range(20))),
        (combine_max, 19),
        (combine_xor, 0 ^ 1 ^ 2),
    ])
    def test_upcast_named_combines(self, combine, expected):
        net = topologies.grid(4, 5)
        tree = bfs_with_echo(net, 0)
        if combine is combine_xor:
            values = {v: [v & 3 if v < 3 else 0] for v in net.nodes()}
            expected = 0
            for v in net.nodes():
                expected ^= v & 3 if v < 3 else 0
        else:
            values = {v: [v] for v in net.nodes()}
        active = pipelined_upcast(
            net, tree, values, combine, domain=1 << 16, schedule="active"
        )
        vec = pipelined_upcast(
            net, tree, values, combine, domain=1 << 16, schedule="vectorized"
        )
        assert active == vec
        assert vec[0] == (expected,)

    def test_downcast_identical(self):
        net = topologies.balanced_tree(2, 3)
        tree = bfs_with_echo(net, 0)
        payload = [5, 1, 4, 1]
        active = pipelined_downcast(
            net, tree, payload, domain=8, schedule="active"
        )
        vec = pipelined_downcast(
            net, tree, payload, domain=8, schedule="vectorized"
        )
        assert active == vec
        assert all(got == tuple(payload) for got in vec[0].values())

    def test_aggregate_single_identical(self):
        net = topologies.star(9)
        tree = bfs_with_echo(net, 0)
        values = {v: v for v in net.nodes()}
        active = aggregate_single(
            net, tree, values, combine_sum, domain=1 << 12, schedule="active"
        )
        vec = aggregate_single(
            net, tree, values, combine_sum, domain=1 << 12,
            schedule="vectorized",
        )
        assert active == vec


class TestFallbacks:
    """Unsupported shapes fall back per-node with identical results."""

    def _expect_fallback(self, net, make, reason, **kwargs):
        _, active = _run(net, make(), "active", **kwargs)
        engine, vec = _run(net, make(), "vectorized", **kwargs)
        _assert_identical(active, vec)
        assert engine.vectorized_fallback == reason
        assert engine.vectorized_rounds == 0
        return engine

    def test_unsupported_program_family(self):
        net = topologies.cycle(9)
        self._expect_fallback(
            net,
            lambda: {v: MaxIdFloodProgram(v) for v in net.nodes()},
            "unsupported-program-MaxIdFloodProgram",
            stop_on_quiescence=True,
        )

    def test_mixed_program_types(self):
        # A mixed dict is semantically broken under every schedule (the
        # families' wire formats differ), so only the audit verdict is
        # checked — not a run.
        net = topologies.cycle(6)
        programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
        programs[5] = MaxIdFloodProgram(5)
        vp, reason = build_vectorized(
            Engine(net, programs, seed=0, schedule="vectorized")
        )
        assert vp is None and reason == "mixed-program-types"

    def test_bfs_roots_disagree(self):
        net = topologies.cycle(8)
        engine, _ = _run(
            net,
            {v: BFSEchoProgram(v, root=v % 2) for v in net.nodes()},
            "vectorized",
        )
        assert engine.vectorized_fallback == "bfs-roots-disagree"
        assert engine.vectorized_rounds == 0

    def test_multibfs_sources_disagree(self):
        net = topologies.cycle(8)
        programs = {
            v: MultiSourceBFSProgram(v, [0] if v < 4 else [1])
            for v in net.nodes()
        }
        vp, reason = build_vectorized(
            Engine(net, programs, seed=0, schedule="vectorized",
                   stop_on_quiescence=True)
        )
        assert vp is None and reason == "multibfs-sources-disagree"

    def test_unregistered_combine_falls_back_correctly(self):
        net = topologies.grid(3, 4)
        tree = bfs_with_echo(net, 0)
        values = {v: [v % 7] for v in net.nodes()}
        anon = lambda a, b: max(a, b)  # noqa: E731 - deliberately unregistered
        programs = build_upcast_programs(net, tree, values, anon, domain=8)
        engine = Engine(net, programs, seed=0, schedule="vectorized")
        vec = engine.run()
        assert engine.vectorized_fallback == "upcast-combine-unregistered"
        active = pipelined_upcast(
            net, tree, values, anon, domain=8, seed=0, schedule="active"
        )
        assert (tuple(vec.outputs[tree.root]), vec.rounds) == active

    def test_upcast_params_disagree(self):
        net = topologies.cycle(5)
        tree = bfs_with_echo(net, 0)
        values = {v: [v] for v in net.nodes()}
        programs = build_upcast_programs(
            net, tree, values, combine_sum, domain=64
        )
        programs[2].domain = 128  # simulate a miswired batch
        vp, reason = build_vectorized(
            Engine(net, programs, seed=0, schedule="vectorized")
        )
        assert vp is None and reason == "upcast-params-disagree"

    def test_faulty_engine_vetoes_vectorization(self):
        from repro.congest.algorithms.leader import BoundedMaxIdFloodProgram
        from repro.faults import BernoulliLoss, FaultyEngine

        net = topologies.grid(3, 3)
        make = lambda: {
            v: BoundedMaxIdFloodProgram(v, horizon=net.n)
            for v in net.nodes()
        }
        runs = []
        for schedule in ("active", "vectorized"):
            engine = FaultyEngine(
                net, make(), fault_model=BernoulliLoss(0.2), fault_seed=4,
                seed=4, schedule=schedule,
            )
            runs.append((engine, engine.run()))
        (_, res_a), (b, res_b) = runs
        _assert_identical(res_a, res_b)
        assert b.vectorized_fallback == "engine-overrides-round-hooks"
        assert b.vectorized_rounds == 0


class TestCombineRegistry:
    def test_register_custom_combine(self):
        def combine_gcd(a, b):
            import math
            return math.gcd(a, b)

        register_vectorized_combine(combine_gcd, np.gcd)
        net = topologies.grid(3, 4)
        tree = bfs_with_echo(net, 0)
        values = {v: [(v + 1) * 6] for v in net.nodes()}
        programs = build_upcast_programs(
            net, tree, values, combine_gcd, domain=1 << 10
        )
        engine = Engine(net, programs, seed=0, schedule="vectorized")
        vec = engine.run()
        assert engine.vectorized_fallback is None
        active = pipelined_upcast(
            net, tree, values, combine_gcd, domain=1 << 10, seed=0,
            schedule="active",
        )
        assert (tuple(vec.outputs[tree.root]), vec.rounds) == active
        assert vec.outputs[tree.root] == (6,)
