"""Active-set scheduling is observationally identical to the dense loop.

The engine's ``schedule="active"`` mode skips nodes whose round would be a
provable no-op.  These tests pin the contract down: for every library
program, over random topologies and seeds, the active run must produce
bit-identical rounds, outputs, and traffic statistics — including under a
fault-injecting engine, whose fault RNG stream must also line up.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.algorithms.leader import (
    BoundedMaxIdFloodProgram,
    MaxIdFloodProgram,
)
from repro.congest.algorithms.multibfs import MultiSourceBFSProgram
from repro.congest.engine import Engine, run_program
from repro.congest.errors import RoundLimitExceeded
from repro.faults import BernoulliLoss, BoundedDelay, FaultyEngine


def _make_network(draw):
    kind = draw(st.sampled_from(["grid", "cycle", "regular", "star", "tree"]))
    if kind == "grid":
        rows = draw(st.integers(2, 5))
        cols = draw(st.integers(2, 5))
        return topologies.grid(rows, cols)
    if kind == "cycle":
        return topologies.cycle(draw(st.integers(3, 24)))
    if kind == "regular":
        n = draw(st.integers(4, 16).filter(lambda v: v % 2 == 0))
        return topologies.random_regular(n, 3, seed=draw(st.integers(0, 5)))
    if kind == "star":
        return topologies.star(draw(st.integers(3, 20)))
    return topologies.balanced_tree(2, draw(st.integers(1, 3)))


def _make_program_factory(draw, net, family):
    """Return (zero-arg factory of fresh programs, run_program kwargs).

    A factory (rather than one programs dict) because each schedule needs
    its own pristine program instances built from identical parameters.
    """
    if family == "bfs":
        root = draw(st.integers(0, net.n - 1))
        return (
            lambda: {v: BFSEchoProgram(v, root) for v in net.nodes()},
            {},
        )
    if family == "multibfs":
        count = draw(st.integers(1, min(3, net.n)))
        sources = draw(
            st.lists(st.integers(0, net.n - 1), min_size=count,
                     max_size=count, unique=True)
        )
        return (
            lambda: {
                v: MultiSourceBFSProgram(v, sources) for v in net.nodes()
            },
            {"stop_on_quiescence": True},
        )
    return (
        lambda: {v: MaxIdFloodProgram(v) for v in net.nodes()},
        {"stop_on_quiescence": True},
    )


def _assert_identical(res_a, res_b):
    assert res_a.rounds == res_b.rounds
    assert res_a.outputs == res_b.outputs
    assert res_a.stats == res_b.stats


class TestScheduleEquivalence:
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_topologies_and_programs(self, data):
        net = _make_network(data.draw)
        family = data.draw(st.sampled_from(["bfs", "multibfs", "leader"]))
        seed = data.draw(st.integers(0, 100))
        make, kwargs = _make_program_factory(data.draw, net, family)
        active = run_program(net, make(), seed=seed, schedule="active",
                             **kwargs)
        dense = run_program(net, make(), seed=seed, schedule="dense",
                            **kwargs)
        _assert_identical(active, dense)

    def test_unknown_schedule_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ValueError, match="schedule"):
            Engine(net, {v: MaxIdFloodProgram(v) for v in net.nodes()},
                   schedule="eager")


class RoundCounter(MaxIdFloodProgram):
    """A program that (implicitly) relies on executing every round.

    It inherits the library flooding logic but counts its own executions;
    because it does not declare ``always_active = False`` it must be run
    every round under either schedule — the safety default for unaudited
    programs.
    """

    always_active = True

    def __init__(self, node):
        super().__init__(node)
        self.executions = 0

    def on_round(self, ctx, inbox):
        self.executions += 1
        super().on_round(ctx, inbox)


class TestSafetyDefault:
    def test_unaudited_programs_execute_every_round(self):
        net = topologies.grid(3, 3)
        progs = {v: RoundCounter(v) for v in net.nodes()}
        result = run_program(net, progs, seed=0, schedule="active",
                             stop_on_quiescence=True)
        # Every node must have executed on_round exactly `rounds` times.
        assert {p.executions for p in progs.values()} == {result.rounds}


class TestFaultyEngineEquivalence:
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 50),
        fault_seed=st.integers(0, 50),
        delay_p=st.floats(0.0, 0.5),
    )
    def test_delay_model(self, seed, fault_seed, delay_p):
        # Under heavy delay BFS-with-echo can livelock; the round budget
        # then fires.  That outcome must also match between schedules.
        net = topologies.grid(3, 4)
        results = []
        for schedule in ("active", "dense"):
            engine = FaultyEngine(
                net,
                {v: BFSEchoProgram(v, 0) for v in net.nodes()},
                fault_model=BoundedDelay(delay_p, max_delay=2),
                fault_seed=fault_seed,
                seed=seed,
                schedule=schedule,
                max_rounds=300,
            )
            try:
                outcome = ("completed", engine.run())
            except RoundLimitExceeded:
                outcome = ("budget", None)
            results.append((outcome, engine.fault_stats.delayed))
        ((kind_a, res_a), delayed_a), ((kind_b, res_b), delayed_b) = results
        assert kind_a == kind_b
        if kind_a == "completed":
            _assert_identical(res_a, res_b)
        assert delayed_a == delayed_b

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 50),
        fault_seed=st.integers(0, 50),
        loss_p=st.floats(0.0, 0.3),
    )
    def test_loss_model_with_bounded_flooding(self, seed, fault_seed, loss_p):
        net = topologies.cycle(8)
        results = []
        for schedule in ("active", "dense"):
            engine = FaultyEngine(
                net,
                {v: BoundedMaxIdFloodProgram(v, horizon=net.n)
                 for v in net.nodes()},
                fault_model=BernoulliLoss(loss_p),
                fault_seed=fault_seed,
                seed=seed,
                schedule=schedule,
            )
            results.append((engine.run(), engine.fault_stats.dropped))
        (res_a, dropped_a), (res_b, dropped_b) = results
        _assert_identical(res_a, res_b)
        assert dropped_a == dropped_b
