"""Unit tests for the synchronous round engine and model-rule enforcement."""

import pytest

from repro.congest import topologies
from repro.congest.encoding import Field
from repro.congest.engine import Engine, run_program
from repro.congest.errors import (
    BandwidthExceeded,
    DuplicateSend,
    NotANeighbor,
    RoundLimitExceeded,
)
from repro.congest.program import IdleProgram, NodeProgram


class EchoOnce(NodeProgram):
    """Round 1: everyone sends its id to every neighbor, then halts."""

    def __init__(self, node):
        self.node = node

    def on_start(self, ctx):
        ctx.broadcast(Field(self.node, ctx.n))

    def on_round(self, ctx, inbox):
        ctx.halt(output=sorted(inbox.senders()))


class TestBasicExecution:
    def test_idle_programs_take_zero_rounds(self, path8):
        result = run_program(path8, {v: IdleProgram() for v in path8.nodes()})
        assert result.rounds == 0

    def test_one_exchange_takes_one_round(self, path8):
        result = run_program(path8, {v: EchoOnce(v) for v in path8.nodes()})
        assert result.rounds == 1

    def test_neighbors_received(self, path8):
        result = run_program(path8, {v: EchoOnce(v) for v in path8.nodes()})
        assert result.outputs[0] == [1]
        assert result.outputs[3] == [2, 4]

    def test_missing_program_rejected(self, path8):
        with pytest.raises(ValueError):
            Engine(path8, {0: IdleProgram()})

    def test_outputs_default_none(self, path8):
        class SilentHalt(NodeProgram):
            def on_start(self, ctx):
                ctx.halt()

            def on_round(self, ctx, inbox):
                pass

        result = run_program(path8, {v: SilentHalt() for v in path8.nodes()})
        assert all(o is None for o in result.outputs.values())


class TestModelEnforcement:
    def test_oversized_message_rejected(self, path8):
        class TooBig(NodeProgram):
            def on_start(self, ctx):
                ctx.send(ctx.neighbors[0], "x" * 100)

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(BandwidthExceeded):
            run_program(path8, {v: TooBig() for v in path8.nodes()})

    def test_non_neighbor_send_rejected(self, path8):
        class FarSend(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(7, Field(1, 2))
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(NotANeighbor):
            run_program(path8, {v: FarSend() for v in path8.nodes()})

    def test_duplicate_send_rejected(self, path8):
        class DoubleSend(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, Field(0, 2))
                    ctx.send(1, Field(1, 2))
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(DuplicateSend):
            run_program(path8, {v: DoubleSend() for v in path8.nodes()})

    def test_round_limit(self, path8):
        class Chatter(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast(Field(0, 2))

            def on_round(self, ctx, inbox):
                ctx.broadcast(Field(0, 2))

        with pytest.raises(RoundLimitExceeded):
            run_program(
                path8, {v: Chatter() for v in path8.nodes()}, max_rounds=10
            )


class NeverHalts(NodeProgram):
    """Chatters forever; only the safety valve can stop it."""

    def on_start(self, ctx):
        ctx.broadcast(Field(0, 2))

    def on_round(self, ctx, inbox):
        ctx.broadcast(Field(0, 2))


class TestRoundLimitValve:
    def test_default_budget_is_floor_for_small_networks(self):
        from repro.congest.engine import (
            DEFAULT_MAX_ROUNDS_FLOOR,
            DEFAULT_MAX_ROUNDS_PER_NODE,
        )

        net = topologies.path(4)
        engine = Engine(net, {v: NeverHalts() for v in net.nodes()})
        assert engine.max_rounds == max(
            DEFAULT_MAX_ROUNDS_FLOOR, DEFAULT_MAX_ROUNDS_PER_NODE * net.n
        )

    def test_default_budget_scales_per_node(self):
        from repro.congest.engine import (
            DEFAULT_MAX_ROUNDS_FLOOR,
            DEFAULT_MAX_ROUNDS_PER_NODE,
        )

        n = DEFAULT_MAX_ROUNDS_FLOOR // DEFAULT_MAX_ROUNDS_PER_NODE + 50
        net = topologies.path(n)
        engine = Engine(net, {v: NeverHalts() for v in net.nodes()})
        assert engine.max_rounds == DEFAULT_MAX_ROUNDS_PER_NODE * n

    def test_valve_stops_non_terminating_program_by_default(self):
        # No explicit max_rounds: the default budget must still fire
        # rather than hang the interpreter.
        net = topologies.path(2)
        with pytest.raises(RoundLimitExceeded):
            run_program(net, {v: NeverHalts() for v in net.nodes()})

    def test_explicit_limit_overrides_default(self, path8):
        engine = Engine(
            path8,
            {v: NeverHalts() for v in path8.nodes()},
            max_rounds=17,
        )
        with pytest.raises(RoundLimitExceeded) as excinfo:
            engine.run()
        assert "17" in str(excinfo.value)

    def test_limit_error_names_the_budget(self):
        net = topologies.path(2)
        with pytest.raises(RoundLimitExceeded) as excinfo:
            run_program(net, {v: NeverHalts() for v in net.nodes()})
        assert "10000" in str(excinfo.value)


class TestStats:
    def test_message_and_bit_counters(self, path8):
        result = run_program(path8, {v: EchoOnce(v) for v in path8.nodes()})
        # A path on 8 nodes has 7 edges, 2 directed messages each.
        assert result.stats.messages == 14
        assert result.stats.bits == 14 * 3  # Field(id, 8) = 3 bits

    def test_per_round_tracking(self, path8):
        result = run_program(path8, {v: EchoOnce(v) for v in path8.nodes()})
        assert result.stats.per_round_messages == [14]
        assert result.stats.max_messages_in_round == 14


class TestQuiescence:
    def test_quiescence_stops_non_halting_programs(self, path8):
        class OneShotNoHalt(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.broadcast(Field(1, 2))

            def on_round(self, ctx, inbox):
                ctx.output = len(inbox)

        result = run_program(
            path8,
            {v: OneShotNoHalt() for v in path8.nodes()},
            stop_on_quiescence=True,
        )
        assert result.rounds == 1
        assert result.outputs[1] == 1

    def test_quiescence_with_nothing_to_do(self, path8):
        class Passive(NodeProgram):
            def on_round(self, ctx, inbox):
                pass

        result = run_program(
            path8,
            {v: Passive() for v in path8.nodes()},
            stop_on_quiescence=True,
        )
        assert result.rounds == 0


class TestDeterminism:
    def test_same_seed_same_node_rng(self, path8):
        class RandomOutput(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=int(ctx.rng.integers(0, 10**9)))

            def on_round(self, ctx, inbox):
                ctx.halt()

        r1 = run_program(path8, {v: RandomOutput() for v in path8.nodes()}, seed=7)
        r2 = run_program(path8, {v: RandomOutput() for v in path8.nodes()}, seed=7)
        assert r1.outputs == r2.outputs

    def test_nodes_have_independent_rngs(self, path8):
        class RandomOutput(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=int(ctx.rng.integers(0, 10**9)))

            def on_round(self, ctx, inbox):
                ctx.halt()

        r = run_program(path8, {v: RandomOutput() for v in path8.nodes()}, seed=7)
        assert len(set(r.outputs.values())) > 1


class TestCommonOutput:
    def test_agreeing_outputs(self, path8):
        class Fixed(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=42)

            def on_round(self, ctx, inbox):
                ctx.halt()

        assert run_program(
            path8, {v: Fixed() for v in path8.nodes()}
        ).common_output() == 42

    def test_disagreeing_outputs_raise(self, path8):
        class Own(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=ctx.node)

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ValueError):
            run_program(path8, {v: Own() for v in path8.nodes()}).common_output()

    def test_unhashable_outputs_agree(self, path8):
        # Regression: common_output() used set() and raised TypeError on
        # list/dict outputs; agreement is now checked by equality.
        class FixedList(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=[1, 2, {"d": 3}])

            def on_round(self, ctx, inbox):
                ctx.halt()

        assert run_program(
            path8, {v: FixedList() for v in path8.nodes()}
        ).common_output() == [1, 2, {"d": 3}]

    def test_unhashable_outputs_disagree(self, path8):
        class OwnList(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=[ctx.node])

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ValueError, match="disagree"):
            run_program(
                path8, {v: OwnList() for v in path8.nodes()}
            ).common_output()

    def test_no_outputs_raise(self, path8):
        class Silent(NodeProgram):
            def on_start(self, ctx):
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ValueError, match="no node"):
            run_program(
                path8, {v: Silent() for v in path8.nodes()}
            ).common_output()

    def test_partial_outputs_still_agree(self, path8):
        # Nodes that produced no output are ignored by the agreement
        # check, matching the hashable behavior.
        class RootOnly(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=[7] if ctx.node == 0 else None)

            def on_round(self, ctx, inbox):
                ctx.halt()

        assert run_program(
            path8, {v: RootOnly() for v in path8.nodes()}
        ).common_output() == [7]
