"""Tests for execution tracing (and the pipelining it makes visible)."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram, bfs_with_echo
from repro.congest.encoding import Field
from repro.congest.program import Context, NodeProgram
from repro.congest.tracing import run_traced
from repro.core.state_transfer import RegisterStreamProgram


class PingPong(NodeProgram):
    """Node 0 volleys to node 1, which echoes; a 'last' flag ends the game."""

    def __init__(self, node, volleys=3):
        self.node = node
        self.volleys = volleys
        self.sent = 0

    def _volley(self, ctx):
        last = self.sent == self.volleys - 1
        ctx.send(1, (Field(self.sent % 8, 8), last))
        self.sent += 1

    def on_start(self, ctx):
        if ctx.node == 0:
            self._volley(ctx)
        elif ctx.node != 1:
            ctx.halt()

    def on_round(self, ctx, inbox):
        msg = inbox.from_node(1 - ctx.node) if ctx.node in (0, 1) else None
        if msg is None:
            return
        value, last = msg.value
        if ctx.node == 1:
            ctx.send(0, (Field(value, 8), last))
            if last:
                ctx.halt()
        else:
            if last:
                ctx.halt()
            else:
                self._volley(ctx)


class TestTraceBasics:
    def test_events_recorded(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        result, trace = run_traced(path8, programs, seed=1)
        assert len(trace.events) > 0
        assert trace.rounds_used() == result.rounds

    def test_event_fields(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        _, trace = run_traced(path8, programs, seed=1)
        first = trace.events[0]
        assert first.round_no == 1
        assert first.src == 0 and first.dst == 1
        assert first.bits == 4  # Field(·, 8) + the 'last' flag bit

    def test_edge_filter(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        _, trace = run_traced(path8, programs, seed=1)
        forward = trace.events_on_edge(0, 1)
        backward = trace.events_on_edge(1, 0)
        assert len(forward) >= 1 and len(backward) >= 1
        assert not trace.events_on_edge(3, 4)

    def test_results_match_untraced_engine(self, grid45):
        """Tracing must not change behaviour: BFS gives identical output."""
        programs = {v: BFSEchoProgram(v, 0) for v in grid45.nodes()}
        result, _ = run_traced(grid45, programs, seed=2)
        reference = bfs_with_echo(grid45, 0, seed=2)
        assert result.rounds == reference.rounds

    def test_busiest_round_and_bits(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        _, trace = run_traced(path8, programs, seed=1)
        round_no, count = trace.busiest_round()
        assert count == 1  # ping-pong: one message per round
        assert trace.total_bits() == 4 * len(trace.events)


class TestPipeliningVisible:
    def test_register_stream_fills_pipe(self):
        """Lemma 7 pipelining: consecutive edges busy in consecutive rounds."""
        net = topologies.path(6)
        tree = bfs_with_echo(net, 0)
        children = tree.children()
        q_bits = 200
        chunk_bits = net.bandwidth - 8
        import math

        from repro.core.state_transfer import _chunk_register

        bits = [1] * q_bits
        chunks = _chunk_register(bits, chunk_bits)
        programs = {
            v: RegisterStreamProgram(
                v, tree.parent.get(v), children.get(v, []),
                chunks if v == 0 else None, len(chunks),
                1 << chunk_bits, pipelined=True,
            )
            for v in net.nodes()
        }
        _, trace = run_traced(net, programs, seed=3)
        # Edge (i, i+1) first carries a chunk in round i+1: the wavefront.
        for i in range(5):
            first = min(e.round_no for e in trace.events_on_edge(i, i + 1))
            assert first == i + 1
        # Interior edges stay busy nearly every round (the full pipe).
        assert trace.edge_utilization(0, 1) > 0.6

    def test_timeline_renders(self):
        net = topologies.path(4)
        tree = bfs_with_echo(net, 0)
        programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
        _, trace = run_traced(net, programs, seed=4)
        art = trace.render_timeline([(0, 1), (1, 2), (2, 3)])
        lines = art.splitlines()
        assert len(lines) == 4
        assert "#" in art and "." in art

    def test_empty_trace(self, path8):
        from repro.congest.program import IdleProgram

        _, trace = run_traced(path8, {v: IdleProgram() for v in path8.nodes()})
        assert trace.rounds_used() == 0
        assert trace.busiest_round() == (0, 0)
        assert trace.edge_utilization(0, 1) == 0.0
