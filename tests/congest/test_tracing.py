"""Tests for execution tracing (and the pipelining it makes visible)."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram, bfs_with_echo
from repro.congest.encoding import Field
from repro.congest.program import Context, NodeProgram
from repro.congest.tracing import (
    CORRUPT,
    DELAY,
    DELIVER,
    DROP,
    Trace,
    TraceEvent,
    run_traced,
)
from repro.core.state_transfer import RegisterStreamProgram


def _delivery(round_no, src=0, dst=1, bits=4, kind=DELIVER):
    return TraceEvent(round_no=round_no, src=src, dst=dst, bits=bits,
                      value=None, kind=kind)


class PingPong(NodeProgram):
    """Node 0 volleys to node 1, which echoes; a 'last' flag ends the game."""

    def __init__(self, node, volleys=3):
        self.node = node
        self.volleys = volleys
        self.sent = 0

    def _volley(self, ctx):
        last = self.sent == self.volleys - 1
        ctx.send(1, (Field(self.sent % 8, 8), last))
        self.sent += 1

    def on_start(self, ctx):
        if ctx.node == 0:
            self._volley(ctx)
        elif ctx.node != 1:
            ctx.halt()

    def on_round(self, ctx, inbox):
        msg = inbox.from_node(1 - ctx.node) if ctx.node in (0, 1) else None
        if msg is None:
            return
        value, last = msg.value
        if ctx.node == 1:
            ctx.send(0, (Field(value, 8), last))
            if last:
                ctx.halt()
        else:
            if last:
                ctx.halt()
            else:
                self._volley(ctx)


class TestTraceBasics:
    def test_events_recorded(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        result, trace = run_traced(path8, programs, seed=1)
        assert len(trace.events) > 0
        assert trace.rounds_used() == result.rounds

    def test_event_fields(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        _, trace = run_traced(path8, programs, seed=1)
        first = trace.events[0]
        assert first.round_no == 1
        assert first.src == 0 and first.dst == 1
        assert first.bits == 4  # Field(·, 8) + the 'last' flag bit

    def test_edge_filter(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        _, trace = run_traced(path8, programs, seed=1)
        forward = trace.events_on_edge(0, 1)
        backward = trace.events_on_edge(1, 0)
        assert len(forward) >= 1 and len(backward) >= 1
        assert not trace.events_on_edge(3, 4)

    def test_results_match_untraced_engine(self, grid45):
        """Tracing must not change behaviour: BFS gives identical output."""
        programs = {v: BFSEchoProgram(v, 0) for v in grid45.nodes()}
        result, _ = run_traced(grid45, programs, seed=2)
        reference = bfs_with_echo(grid45, 0, seed=2)
        assert result.rounds == reference.rounds

    def test_busiest_round_and_bits(self, path8):
        programs = {v: PingPong(v) for v in path8.nodes()}
        _, trace = run_traced(path8, programs, seed=1)
        round_no, count = trace.busiest_round()
        assert count == 1  # ping-pong: one message per round
        assert trace.total_bits() == 4 * len(trace.events)


class TestPipeliningVisible:
    def test_register_stream_fills_pipe(self):
        """Lemma 7 pipelining: consecutive edges busy in consecutive rounds."""
        net = topologies.path(6)
        tree = bfs_with_echo(net, 0)
        children = tree.children()
        q_bits = 200
        chunk_bits = net.bandwidth - 8
        import math

        from repro.core.state_transfer import _chunk_register

        bits = [1] * q_bits
        chunks = _chunk_register(bits, chunk_bits)
        programs = {
            v: RegisterStreamProgram(
                v, tree.parent.get(v), children.get(v, []),
                chunks if v == 0 else None, len(chunks),
                1 << chunk_bits, pipelined=True,
            )
            for v in net.nodes()
        }
        _, trace = run_traced(net, programs, seed=3)
        # Edge (i, i+1) first carries a chunk in round i+1: the wavefront.
        for i in range(5):
            first = min(e.round_no for e in trace.events_on_edge(i, i + 1))
            assert first == i + 1
        # Interior edges stay busy nearly every round (the full pipe).
        assert trace.edge_utilization(0, 1) > 0.6

    def test_timeline_renders(self):
        net = topologies.path(4)
        tree = bfs_with_echo(net, 0)
        programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
        _, trace = run_traced(net, programs, seed=4)
        art = trace.render_timeline([(0, 1), (1, 2), (2, 3)])
        lines = art.splitlines()
        assert len(lines) == 4
        assert "#" in art and "." in art

    def test_busiest_round_tie_breaks_to_lowest_round(self):
        """Regression: among equally busy rounds, the lowest wins —
        independent of event recording order."""
        trace = Trace(events=[
            _delivery(5), _delivery(5), _delivery(2), _delivery(2),
        ])
        assert trace.busiest_round() == (2, 2)
        # Reversed recording order gives the same answer.
        trace_rev = Trace(events=list(reversed(trace.events)))
        assert trace_rev.busiest_round() == (2, 2)

    def test_busiest_round_counts_deliveries_only(self):
        trace = Trace(events=[
            _delivery(1),
            _delivery(2, kind=DROP), _delivery(2, kind=DROP),
        ])
        assert trace.busiest_round() == (1, 1)

    def test_edge_utilization_exact_fraction(self):
        # Edge (0, 1) busy in rounds 1 and 3 of a 4-round trace: 1/2.
        trace = Trace(events=[
            _delivery(1), _delivery(3), _delivery(4, src=1, dst=2),
        ])
        assert trace.edge_utilization(0, 1) == pytest.approx(0.5)
        assert trace.edge_utilization(1, 2) == pytest.approx(0.25)
        assert trace.edge_utilization(2, 1) == 0.0

    def test_edge_utilization_ignores_faults(self):
        trace = Trace(events=[
            _delivery(1), _delivery(2, kind=DROP),
        ])
        assert trace.edge_utilization(0, 1) == pytest.approx(0.5)

    def test_empty_trace(self, path8):
        from repro.congest.program import IdleProgram

        _, trace = run_traced(path8, {v: IdleProgram() for v in path8.nodes()})
        assert trace.rounds_used() == 0
        assert trace.busiest_round() == (0, 0)
        assert trace.edge_utilization(0, 1) == 0.0


class TestRenderTimeline:
    def test_rows_and_symbols(self):
        trace = Trace(events=[
            _delivery(1), _delivery(3),
            _delivery(2, src=1, dst=2, kind=DROP),
            _delivery(3, src=1, dst=2, kind=CORRUPT),
            _delivery(1, src=2, dst=3, kind=DELAY),
            _delivery(2, src=2, dst=3),
        ])
        art = trace.render_timeline([(0, 1), (1, 2), (2, 3)])
        lines = art.splitlines()
        assert len(lines) == 4  # header + one row per edge
        assert lines[0].endswith("123")
        assert lines[1].endswith("#.#")   # deliveries on (0, 1)
        assert lines[2].endswith(".x!")   # drop then corruption on (1, 2)
        assert lines[3].endswith("~#.")   # delay then delivery on (2, 3)

    def test_fault_symbol_outranks_delivery(self):
        """A retransmitted round shows the delivery-masking fault symbol."""
        trace = Trace(events=[
            _delivery(1), _delivery(1, kind=DROP),
        ])
        art = trace.render_timeline([(0, 1)])
        assert art.splitlines()[1].endswith("x")

    def test_max_rounds_clamps_horizon(self):
        trace = Trace(events=[_delivery(r) for r in (1, 2, 3, 4, 5)])
        art = trace.render_timeline([(0, 1)], max_rounds=3)
        header, row = art.splitlines()
        assert header.endswith("123")
        assert row.endswith("###")

    def test_unlisted_edges_not_rendered(self):
        trace = Trace(events=[_delivery(1), _delivery(1, src=5, dst=6)])
        art = trace.render_timeline([(0, 1)])
        assert len(art.splitlines()) == 2
        assert "5" not in art.splitlines()[1]
