"""Tests for the pipelined gather (stream-everything) primitive."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.aggregate import pipelined_gather
from repro.congest.algorithms.bfs import bfs_with_echo


class TestGatherCorrectness:
    def test_root_receives_everything(self, grid45):
        tree = bfs_with_echo(grid45, 0)
        values = {v: [v, v + 100] for v in grid45.nodes()}
        collected, _ = pipelined_gather(grid45, tree, values, domain=200)
        assert set(collected) == set(grid45.nodes())
        for v in grid45.nodes():
            assert sorted(collected[v]) == sorted(values[v])

    def test_uneven_value_counts(self, path8):
        tree = bfs_with_echo(path8, 0)
        values = {v: list(range(v % 3)) for v in path8.nodes()}
        collected, _ = pipelined_gather(path8, tree, values, domain=8)
        for v in path8.nodes():
            got = sorted(collected.get(v, ()))
            assert got == sorted(values[v])

    def test_single_node(self):
        net = topologies.path(1)
        tree = bfs_with_echo(net, 0)
        collected, rounds = pipelined_gather(net, tree, {0: [7, 8]}, domain=16)
        assert collected == {0: (7, 8)}
        assert rounds == 0

    def test_empty_values_everywhere(self, path8):
        tree = bfs_with_echo(path8, 0)
        values = {v: [] for v in path8.nodes()}
        collected, _ = pipelined_gather(path8, tree, values, domain=4)
        assert collected == {}

    def test_deep_root(self, grid45):
        tree = bfs_with_echo(grid45, grid45.n - 1)
        values = {v: [v % 7] for v in grid45.nodes()}
        collected, _ = pipelined_gather(grid45, tree, values, domain=8)
        assert len(collected) == grid45.n


class TestGatherRounds:
    def test_rounds_linear_in_total_volume(self):
        """The stream-everything pattern pays Θ(total values) at the root:
        this is the measured face of the Ω(k/log n) lower bounds."""
        net = topologies.path(10)
        tree = bfs_with_echo(net, 0)

        def rounds_for(per_node):
            values = {v: list(range(per_node)) for v in net.nodes()}
            _, rounds = pipelined_gather(net, tree, values, domain=64)
            return rounds

        r4, r16 = rounds_for(4), rounds_for(16)
        slope = (r16 - r4) / (16 * net.n - 4 * net.n)
        assert 0.7 <= slope <= 1.5  # ~one round per gathered value

    def test_gather_costs_more_than_upcast(self):
        """Combining compresses: gather ≫ upcast on the same volume."""
        from repro.congest.algorithms.aggregate import pipelined_upcast

        net = topologies.path(12)
        tree = bfs_with_echo(net, 0)
        t = 12
        values = {v: [1] * t for v in net.nodes()}
        _, gather_rounds = pipelined_gather(net, tree, values, domain=64)
        _, upcast_rounds = pipelined_upcast(
            net, tree, values, combine=lambda a, b: a + b, domain=10**4
        )
        assert gather_rounds > 3 * upcast_rounds
