"""CSR adjacency arrays and their two-level cache (PR 7)."""

import numpy as np
import pytest

from repro.congest import topologies
from repro.congest.csr import (
    CSRCache,
    build_csr,
    configure_csr_cache,
    csr_cache_stats,
    csr_for,
    invalidate_csr,
)


class TestBuildCSR:
    def test_structure_matches_network_neighbors(self):
        net = topologies.grid(3, 4)
        csr = build_csr(net)
        assert csr.n == net.n
        assert csr.num_directed_edges == 2 * net.m
        for v in net.nodes():
            lo, hi = int(csr.indptr[v]), int(csr.indptr[v + 1])
            assert tuple(csr.indices[lo:hi]) == net.neighbors(v)
            assert csr.degree(v) == len(net.neighbors(v))
            assert all(int(s) == v for s in csr.src[lo:hi])

    def test_rev_is_the_reverse_edge_involution(self):
        net = topologies.random_regular(16, 3, seed=2)
        csr = build_csr(net)
        e = np.arange(csr.num_directed_edges)
        # An involution...
        assert np.array_equal(csr.rev[csr.rev], e)
        # ...that maps u->v onto v->u.
        assert np.array_equal(csr.src[csr.rev], csr.indices)
        assert np.array_equal(csr.indices[csr.rev], csr.src)

    def test_edge_id_round_trips(self):
        net = topologies.cycle(6)
        csr = build_csr(net)
        for u in net.nodes():
            for v in net.neighbors(u):
                e = csr.edge_id(u, v)
                assert (int(csr.src[e]), int(csr.indices[e])) == (u, v)
        with pytest.raises(KeyError):
            csr.edge_id(0, 3)  # not an edge of a 6-cycle

    def test_fingerprint_recorded(self):
        net = topologies.star(5)
        csr = build_csr(net)
        assert csr.fingerprint == net.topology_fingerprint()


class TestCSRCache:
    def test_same_object_hits_weak_path(self):
        cache = CSRCache()
        net = topologies.grid(3, 3)
        a = cache.get(net)
        b = cache.get(net)
        assert a is b
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_identical_topology_shares_one_build(self):
        cache = CSRCache()
        a = cache.get(topologies.cycle(9))
        b = cache.get(topologies.cycle(9))  # distinct Network object
        assert a is b
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_eviction_is_lru_and_counted(self):
        cache = CSRCache(max_entries=2)
        n1, n2, n3 = (
            topologies.cycle(5), topologies.cycle(6), topologies.cycle(7)
        )
        cache.get(n1)
        cache.get(n2)
        cache.get(n3)  # evicts n1's fingerprint (oldest)
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2
        # n1's fingerprint was evicted: a fresh cycle(5) object is a miss,
        # while n3's entry is still live for a fresh cycle(7) object.
        misses = cache.stats()["misses"]
        cache.get(topologies.cycle(5))
        assert cache.stats()["misses"] == misses + 1
        cache.get(topologies.cycle(7))
        assert cache.stats()["misses"] == misses + 2 - 1

    def test_invalidate_single_network(self):
        cache = CSRCache()
        net = topologies.grid(2, 4)
        cache.get(net)
        cache.invalidate(net)
        assert len(cache) == 0
        misses = cache.stats()["misses"]
        cache.get(net)
        assert cache.stats()["misses"] == misses + 1

    def test_invalidate_all(self):
        cache = CSRCache()
        cache.get(topologies.cycle(4))
        cache.get(topologies.cycle(5))
        cache.invalidate()
        assert len(cache) == 0

    def test_same_shape_different_topology_not_conflated(self):
        from repro.congest.network import Network

        cache = CSRCache()
        ring = topologies.cycle(6)
        # Same (n, m, bandwidth) as a 6-cycle, different edge set: the
        # fingerprint keying must give each topology its own arrays.
        tadpole = Network.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]
        )
        assert (ring.n, ring.m, ring.bandwidth) == (
            tadpole.n, tadpole.m, tadpole.bandwidth
        )
        a = cache.get(ring)
        b = cache.get(tadpole)
        assert a is not b
        assert cache.stats()["misses"] == 2
        assert tuple(b.indices[b.indptr[2]:b.indptr[3]]) == (0, 1, 3)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            CSRCache(max_entries=0)


class TestModelKeying:
    """PR 8: the communication model is part of both cache keys."""

    def test_same_topology_different_model_not_conflated(self):
        from repro.congest.network import Network

        cache = CSRCache()
        import networkx as nx

        g = nx.path_graph(6)
        congest = Network(g)
        local = Network(g, comm_model="local")
        a = cache.get(congest)
        b = cache.get(local)
        # Same edges, but the fingerprints (and so the entries) differ:
        # a LOCAL network must never satisfy a CONGEST lookup, whose
        # arrays could outlive a later bandwidth-dependent consumer.
        assert cache.stats()["misses"] == 2
        assert np.array_equal(a.indices, b.indices)
        assert a.fingerprint != b.fingerprint

    def test_weak_path_rechecks_model(self):
        cache = CSRCache()
        clique = topologies.clique(7)
        a = cache.get(clique)
        assert cache.get(clique) is a
        assert cache.stats()["hits"] == 1

    def test_model_entries_participate_in_lru_eviction(self):
        import networkx as nx

        from repro.congest.network import Network

        cache = CSRCache(max_entries=2)
        g = nx.cycle_graph(8)
        variants = [
            Network(g),
            Network(g, comm_model="local"),
            Network(g, comm_model="congest-clique"),
        ]
        for net in variants:
            cache.get(net)
        assert cache.stats()["evictions"] == 1
        # The default-model entry (oldest) was evicted; re-reading it
        # through a *fresh* equivalent object is a miss, while the
        # clique entry is still warm.
        misses = cache.stats()["misses"]
        cache.get(Network(nx.cycle_graph(8)))
        assert cache.stats()["misses"] == misses + 1
        cache.get(Network(nx.cycle_graph(8), comm_model="congest-clique"))
        assert cache.stats()["misses"] == misses + 1

    def test_complete_network_analytic_build_shares_cache_entry(self):
        import networkx as nx

        from repro.congest.network import Network

        cache = CSRCache()
        fast = topologies.complete(12)
        via_fast = cache.get(fast)
        # The nx-built K_12 fingerprints identically, so the analytic
        # arrays satisfy its lookup without a second build.
        via_ref = cache.get(Network(nx.complete_graph(12)))
        assert via_ref is via_fast
        assert cache.stats()["misses"] == 1


class TestModuleLevelCache:
    def test_csr_for_and_invalidate(self):
        invalidate_csr()
        net = topologies.grid(3, 3)
        a = csr_for(net)
        assert csr_for(net) is a
        invalidate_csr(net)
        stats = csr_cache_stats()
        assert stats["entries"] == 0

    def test_configure_bound_evicts_immediately(self):
        invalidate_csr()
        try:
            for n in (4, 5, 6, 7):
                csr_for(topologies.cycle(n))
            configure_csr_cache(2)
            assert csr_cache_stats()["entries"] == 2
        finally:
            configure_csr_cache(64)
            invalidate_csr()


class TestPreparedNetworkIntegration:
    def test_prepare_attaches_csr(self):
        from repro.core.framework import invalidate_prepared, prepare_network

        invalidate_prepared()
        net = topologies.grid(3, 4)
        prepared = prepare_network(net, seed=0)
        assert prepared.csr is not None
        assert prepared.csr.fingerprint == net.topology_fingerprint()
        # The attached CSR is the same object the engine's cache serves.
        assert csr_for(net) is prepared.csr
        invalidate_prepared()

    def test_invalidate_prepared_cascades_to_csr(self):
        from repro.core.framework import invalidate_prepared, prepare_network

        invalidate_prepared()
        net = topologies.cycle(8)
        prepare_network(net, seed=0)
        assert csr_cache_stats()["entries"] >= 1
        invalidate_prepared(net)
        assert csr_cache_stats()["entries"] == 0

    def test_stale_tripwire_still_fires_with_csr_cache(self):
        from repro.core.framework import (
            StalePreparedNetworkError,
            invalidate_prepared,
            prepare_network,
        )

        invalidate_prepared()
        net = topologies.cycle(8)
        prepare_network(net, seed=0)
        # Degree-preserving in-place rewiring: same (n, m, bandwidth), so
        # only the fingerprint tripwire can catch it.
        net.graph.remove_edge(0, 1)
        net.graph.add_edge(0, 4)
        with pytest.raises(StalePreparedNetworkError):
            prepare_network(net, seed=0)
        invalidate_prepared()
