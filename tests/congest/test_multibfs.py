"""Tests for pipelined multi-source BFS (Lemma 20 substrate)."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import bfs_with_echo
from repro.congest.algorithms.multibfs import (
    eccentricities_of_sources,
    multi_source_bfs,
)


class TestDistances:
    def test_all_sources_get_exact_distances(self, grid45):
        sources = [0, 5, 11, 19]
        result = multi_source_bfs(grid45, sources, seed=1)
        for s in sources:
            assert result.dist[s] == grid45.distances_from(s)

    def test_single_source_reduces_to_bfs(self, path8):
        result = multi_source_bfs(path8, [0], seed=1)
        assert result.dist[0] == path8.distances_from(0)

    def test_duplicate_sources_deduplicated(self, path8):
        result = multi_source_bfs(path8, [2, 2, 2], seed=1)
        assert result.sources == [2]

    def test_all_nodes_as_sources(self, petersen):
        result = multi_source_bfs(petersen, list(petersen.nodes()), seed=1)
        for s in petersen.nodes():
            assert result.dist[s] == petersen.distances_from(s)

    def test_eccentricity_helper(self, grid45):
        result = multi_source_bfs(grid45, [0, 7], seed=1)
        assert result.eccentricity(0) == grid45.eccentricities[0]
        assert result.eccentricity(7) == grid45.eccentricities[7]


class TestRoundComplexity:
    def test_rounds_at_most_sources_plus_diameter(self):
        """The [HW12] pipelining bound |S| + D + O(1), measured."""
        net = topologies.grid(6, 6)
        for count in [1, 4, 8, 16]:
            sources = list(range(count))
            result = multi_source_bfs(net, sources, seed=2)
            assert result.rounds <= count + net.diameter + 3, (
                f"{count} sources took {result.rounds} rounds"
            )

    def test_pipelining_beats_sequential(self):
        """Simultaneous BFS must be much cheaper than count × diameter."""
        net = topologies.path(40)
        sources = list(range(0, 40, 4))
        result = multi_source_bfs(net, sources, seed=3)
        sequential = len(sources) * net.diameter
        assert result.rounds < sequential / 2

    def test_rounds_grow_with_source_count(self):
        net = topologies.cycle(30)
        few = multi_source_bfs(net, [0, 10], seed=4).rounds
        many = multi_source_bfs(net, list(range(0, 30, 2)), seed=4).rounds
        assert many >= few


class TestEccentricitiesOfSources:
    def test_values_correct(self, grid45):
        tree = bfs_with_echo(grid45, 0)
        sources = [0, 3, 12, 19]
        eccs, rounds = eccentricities_of_sources(grid45, sources, tree, seed=5)
        for s in sources:
            assert eccs[s] == grid45.eccentricities[s]

    def test_rounds_linear_in_sources_plus_diameter(self):
        """Lemma 20: O(|S| + D) including aggregation and broadcast."""
        net = topologies.grid(5, 5)
        tree = bfs_with_echo(net, 0)
        for count in [2, 8, 16]:
            sources = list(range(count))
            _, rounds = eccentricities_of_sources(net, sources, tree, seed=6)
            assert rounds <= 4 * (count + net.diameter) + 10

    def test_works_on_star(self):
        net = topologies.star(12)
        tree = bfs_with_echo(net, 0)
        eccs, _ = eccentricities_of_sources(net, [0, 1, 5], tree, seed=7)
        assert eccs[0] == 1
        assert eccs[1] == 2
