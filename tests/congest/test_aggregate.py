"""Tests for pipelined upcast/downcast over a BFS tree."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.aggregate import (
    aggregate_single,
    pipelined_downcast,
    pipelined_upcast,
)
from repro.congest.algorithms.bfs import bfs_with_echo


@pytest.fixture
def net_and_tree(grid45):
    return grid45, bfs_with_echo(grid45, 0)


class TestUpcast:
    def test_sum_aggregation(self, net_and_tree):
        net, tree = net_and_tree
        values = {v: [v, 1, 2 * v] for v in net.nodes()}
        combined, _ = pipelined_upcast(
            net, tree, values, combine=lambda a, b: a + b, domain=10**6
        )
        total = sum(range(net.n))
        assert combined == (total, net.n, 2 * total)

    def test_max_aggregation(self, net_and_tree):
        net, tree = net_and_tree
        values = {v: [v % 5] for v in net.nodes()}
        combined, _ = pipelined_upcast(net, tree, values, combine=max, domain=8)
        assert combined == (4,)

    def test_min_aggregation(self, net_and_tree):
        net, tree = net_and_tree
        values = {v: [v + 3] for v in net.nodes()}
        combined, _ = pipelined_upcast(net, tree, values, combine=min, domain=64)
        assert combined == (3,)

    def test_xor_aggregation(self, net_and_tree):
        net, tree = net_and_tree
        values = {v: [v & 1] for v in net.nodes()}
        expected = 0
        for v in net.nodes():
            expected ^= v & 1
        combined, _ = pipelined_upcast(
            net, tree, values, combine=lambda a, b: a ^ b, domain=2
        )
        assert combined == (expected,)

    def test_mismatched_lengths_rejected(self, net_and_tree):
        net, tree = net_and_tree
        values = {v: [0] for v in net.nodes()}
        values[3] = [0, 0]
        with pytest.raises(ValueError):
            pipelined_upcast(net, tree, values, combine=max, domain=4)

    def test_empty_vector(self, net_and_tree):
        net, tree = net_and_tree
        values = {v: [] for v in net.nodes()}
        combined, rounds = pipelined_upcast(net, tree, values, combine=max, domain=4)
        assert combined == ()
        assert rounds == 0

    def test_rounds_pipelined(self):
        """Rounds ≈ depth + t, not depth × t."""
        net = topologies.path(16)
        tree = bfs_with_echo(net, 0)
        t = 20
        values = {v: [1] * t for v in net.nodes()}
        _, rounds = pipelined_upcast(
            net, tree, values, combine=lambda a, b: a + b, domain=10**6
        )
        depth = tree.eccentricity
        assert rounds <= depth + t + 3
        assert rounds < depth * t / 2

    def test_single_value_helper(self, net_and_tree):
        net, tree = net_and_tree
        values = {v: 1 for v in net.nodes()}
        total, _ = aggregate_single(
            net, tree, values, combine=lambda a, b: a + b, domain=1000
        )
        assert total == net.n


class TestDowncast:
    def test_all_nodes_receive_vector(self, net_and_tree):
        net, tree = net_and_tree
        payload = [3, 1, 4, 1, 5]
        received, _ = pipelined_downcast(net, tree, payload, domain=8)
        assert all(received[v] == tuple(payload) for v in net.nodes())

    def test_empty_vector(self, net_and_tree):
        net, tree = net_and_tree
        received, rounds = pipelined_downcast(net, tree, [], domain=2)
        assert all(received[v] == () for v in net.nodes())
        assert rounds == 0

    def test_rounds_pipelined(self):
        net = topologies.path(20)
        tree = bfs_with_echo(net, 0)
        t = 25
        _, rounds = pipelined_downcast(net, tree, [1] * t, domain=4)
        depth = tree.eccentricity
        assert rounds <= depth + t + 3
        assert rounds < depth * t / 2

    def test_deep_root(self, grid45):
        tree = bfs_with_echo(grid45, grid45.n - 1)
        received, _ = pipelined_downcast(grid45, tree, [7, 7], domain=8)
        assert received[0] == (7, 7)
