"""Stepwise execution is bit-identical to the monolithic round loop.

The :mod:`repro.serve` daemon relies on :class:`~repro.congest.engine.
EngineStepper` to interleave many in-flight executions on one event
loop.  That is only sound if stepping changes *nothing* observable:
rounds, outputs, traffic statistics, and the recorder event stream must
match :meth:`~repro.congest.engine.Engine.run` exactly, under both the
dense and active schedules — including when several steppers advance in
interleaved order, which is precisely the daemon's execution shape.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.algorithms.leader import MaxIdFloodProgram
from repro.congest.algorithms.multibfs import MultiSourceBFSProgram
from repro.congest.engine import Engine
from repro.obs import MemorySink, Recorder


def _make_network(draw):
    kind = draw(st.sampled_from(["grid", "cycle", "regular", "star", "tree"]))
    if kind == "grid":
        return topologies.grid(draw(st.integers(2, 4)), draw(st.integers(2, 4)))
    if kind == "cycle":
        return topologies.cycle(draw(st.integers(3, 16)))
    if kind == "regular":
        n = draw(st.integers(4, 12).filter(lambda v: v % 2 == 0))
        return topologies.random_regular(n, 3, seed=draw(st.integers(0, 5)))
    if kind == "star":
        return topologies.star(draw(st.integers(3, 12)))
    return topologies.balanced_tree(2, draw(st.integers(1, 3)))


def _make_programs(draw, net, family):
    if family == "bfs":
        root = draw(st.integers(0, net.n - 1))
        return (
            lambda: {v: BFSEchoProgram(v, root) for v in net.nodes()},
            {},
        )
    if family == "multibfs":
        count = draw(st.integers(1, min(3, net.n)))
        sources = draw(
            st.lists(st.integers(0, net.n - 1), min_size=count,
                     max_size=count, unique=True)
        )
        return (
            lambda: {v: MultiSourceBFSProgram(v, sources) for v in net.nodes()},
            {"stop_on_quiescence": True},
        )
    return (
        lambda: {v: MaxIdFloodProgram(v) for v in net.nodes()},
        {"stop_on_quiescence": True},
    )


def _assert_identical(res_a, res_b):
    assert res_a.rounds == res_b.rounds
    assert res_a.outputs == res_b.outputs
    assert res_a.stats == res_b.stats


class TestStepperIdentity:
    @settings(
        max_examples=50, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_stepped_equals_monolithic(self, data):
        """run() and step()-to-exhaustion agree on rounds/outputs/stats/trace."""
        net = _make_network(data.draw)
        family = data.draw(st.sampled_from(["bfs", "multibfs", "leader"]))
        seed = data.draw(st.integers(0, 100))
        schedule = data.draw(st.sampled_from(["active", "dense"]))
        make, kwargs = _make_programs(data.draw, net, family)

        mono_sink, step_sink = MemorySink(), MemorySink()
        mono = Engine(net, make(), seed=seed, schedule=schedule,
                      recorder=Recorder([mono_sink]), **kwargs).run()

        stepper = Engine(net, make(), seed=seed, schedule=schedule,
                         recorder=Recorder([step_sink]), **kwargs).stepper()
        steps = 0
        while stepper.step():
            steps += 1
            assert stepper.rounds == steps
        _assert_identical(mono, stepper.result)
        assert stepper.rounds in (steps, 0)  # 0-round runs never stepped
        # The recorder event stream must match event for event.
        assert mono_sink.events == step_sink.events

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_interleaved_steppers_stay_independent(self, data):
        """Two engines stepped in interleaved order match two serial runs.

        This is the serving daemon's execution shape: one loop advancing
        several in-flight engines round by round.  Any hidden coupling
        (shared module state, ambient recorder leakage) breaks it.
        """
        net_a = _make_network(data.draw)
        net_b = _make_network(data.draw)
        seed_a = data.draw(st.integers(0, 50))
        seed_b = data.draw(st.integers(0, 50))
        schedule = data.draw(st.sampled_from(["active", "dense"]))
        make_a, kw_a = _make_programs(
            data.draw, net_a, data.draw(st.sampled_from(["bfs", "leader"])))
        make_b, kw_b = _make_programs(
            data.draw, net_b, data.draw(st.sampled_from(["bfs", "leader"])))

        serial_a = Engine(net_a, make_a(), seed=seed_a, schedule=schedule,
                          **kw_a).run()
        serial_b = Engine(net_b, make_b(), seed=seed_b, schedule=schedule,
                          **kw_b).run()

        sa = Engine(net_a, make_a(), seed=seed_a, schedule=schedule,
                    **kw_a).stepper()
        sb = Engine(net_b, make_b(), seed=seed_b, schedule=schedule,
                    **kw_b).stepper()
        # Interleave with a data-drawn pattern until both finish.
        while not (sa.done and sb.done):
            pick_a = data.draw(st.booleans()) if not (sa.done or sb.done) \
                else sb.done
            (sa if pick_a else sb).step()
        _assert_identical(serial_a, sa.result)
        _assert_identical(serial_b, sb.result)


class TestStepperContract:
    def test_result_before_done_raises(self):
        net = topologies.cycle(6)
        stepper = Engine(
            net, {v: MaxIdFloodProgram(v) for v in net.nodes()},
            stop_on_quiescence=True,
        ).stepper()
        assert stepper.step()  # still mid-run after one round
        with pytest.raises(RuntimeError, match="still running"):
            stepper.result
        stepper.run_to_completion()
        assert stepper.done
        assert stepper.result.rounds >= 1

    def test_step_after_done_is_false(self):
        net = topologies.path(3)
        stepper = Engine(
            net, {v: MaxIdFloodProgram(v) for v in net.nodes()},
            stop_on_quiescence=True,
        ).stepper()
        stepper.run_to_completion()
        assert stepper.step() is False
        assert stepper.run_to_completion() is stepper.result

    def test_midflight_reentry_rejected(self):
        net = topologies.cycle(5)
        engine = Engine(
            net, {v: MaxIdFloodProgram(v) for v in net.nodes()},
            stop_on_quiescence=True,
        )
        stepper = engine.stepper()
        assert stepper.step()
        with pytest.raises(RuntimeError, match="mid-run"):
            engine.steps()
        with pytest.raises(RuntimeError, match="mid-run"):
            engine.run()
        # The original stepper is unaffected and finishes cleanly.
        assert stepper.run_to_completion().rounds >= 1
