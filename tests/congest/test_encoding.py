"""Unit tests for message payload bit accounting."""

import pytest

from repro.congest.encoding import (
    Field,
    bits_for_domain,
    bits_for_int,
    payload_bits,
    unwrap,
)


class TestBitsForDomain:
    def test_domain_one(self):
        assert bits_for_domain(1) == 1

    def test_domain_two(self):
        assert bits_for_domain(2) == 1

    def test_domain_three_rounds_up(self):
        assert bits_for_domain(3) == 2

    def test_power_of_two(self):
        assert bits_for_domain(1024) == 10

    def test_power_of_two_plus_one(self):
        assert bits_for_domain(1025) == 11

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            bits_for_domain(0)


class TestField:
    def test_bits_match_domain(self):
        assert Field(5, domain=100).bits == 7

    def test_value_out_of_domain(self):
        with pytest.raises(ValueError):
            Field(100, domain=100)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            Field(-1, domain=10)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            Field(0, domain=0)

    def test_zero_in_domain_one(self):
        assert Field(0, domain=1).bits == 1


class TestPayloadBits:
    def test_none_is_one_bit(self):
        assert payload_bits(None) == 1

    def test_bool_is_one_bit(self):
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_bare_int_charges_magnitude_plus_sign(self):
        assert payload_bits(0) == 2
        assert payload_bits(7) == 4
        assert payload_bits(-7) == 4

    def test_float_is_64_bits(self):
        assert payload_bits(3.14) == 64

    def test_string_is_8_bits_per_char(self):
        assert payload_bits("ab") == 16

    def test_tuple_sums_elements(self):
        payload = (Field(1, 16), Field(3, 8))
        assert payload_bits(payload) == 4 + 3

    def test_nested_structure(self):
        payload = (Field(1, 4), (True, Field(0, 2)))
        assert payload_bits(payload) == 2 + 1 + 1

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            payload_bits(object())

    def test_field_charges_domain_not_value(self):
        assert payload_bits(Field(0, domain=1 << 20)) == 20


class TestUnwrap:
    def test_field_unwraps_to_value(self):
        assert unwrap(Field(9, 16)) == 9

    def test_tuple_unwraps_recursively(self):
        assert unwrap((Field(1, 4), Field(2, 4))) == (1, 2)

    def test_list_unwraps(self):
        assert unwrap([Field(1, 4), 5]) == [1, 5]

    def test_plain_passthrough(self):
        assert unwrap(42) == 42
        assert unwrap("x") == "x"


class TestPayloadBitsMemo:
    """The payload_bits cache must never conflate distinct payloads."""

    def test_repeated_field_payloads_are_stable(self):
        for _ in range(3):
            assert payload_bits(Field(3, 8)) == 3
            assert payload_bits((Field(1, 16), Field(3, 8))) == 7

    def test_cross_type_equality_is_not_conflated(self):
        # 1 == True == 1.0 in Python, but their wire sizes differ; the
        # memo must keep them apart (it only caches Field-based payloads).
        assert payload_bits(True) == 1
        assert payload_bits(1) == 2
        assert payload_bits(1.0) == 64
        assert payload_bits((True, Field(0, 4))) == 1 + 2
        assert payload_bits((1, Field(0, 4))) == 2 + 2
        assert payload_bits((1.0, Field(0, 4))) == 64 + 2

    def test_str_and_none_elements_cacheable(self):
        payload = (Field(2, 4), "ab", None)
        expected = 2 + 16 + 1
        assert payload_bits(payload) == expected
        assert payload_bits((Field(2, 4), "ab", None)) == expected

    def test_equal_fields_share_entries(self):
        # Same (value, domain) via distinct objects: still one answer.
        assert payload_bits(Field(5, 32)) == payload_bits(Field(5, 32)) == 5
