"""Tests for the d-separated low-diameter clustering (Lemma 24 substitute)."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.clustering import (
    build_clustering,
    verify_clustering,
)


@pytest.fixture(params=[2, 4, 8])
def separation(request):
    return request.param


class TestGuarantees:
    def test_guarantees_on_random_graph(self, separation):
        net = topologies.erdos_renyi(60, 0.08, seed=1)
        clustering = build_clustering(net, d=separation, seed=2)
        verify_clustering(net, clustering)

    def test_guarantees_on_grid(self, separation):
        net = topologies.grid(7, 7)
        clustering = build_clustering(net, d=separation, seed=3)
        verify_clustering(net, clustering)

    def test_guarantees_on_path(self):
        net = topologies.path(50)
        clustering = build_clustering(net, d=6, seed=4)
        verify_clustering(net, clustering)

    def test_every_node_covered(self):
        net = topologies.erdos_renyi(40, 0.1, seed=5)
        clustering = build_clustering(net, d=4, seed=6)
        covered = set()
        for cluster in clustering.clusters:
            covered |= cluster
        assert covered == set(net.nodes())

    def test_cluster_of_consistent(self):
        net = topologies.grid(5, 5)
        clustering = build_clustering(net, d=4, seed=7)
        for i, cluster in enumerate(clustering.clusters):
            for v in cluster:
                assert clustering.cluster_of[v] == i


class TestParameters:
    def test_rejects_d_below_two(self, grid45):
        with pytest.raises(ValueError):
            build_clustering(grid45, d=1)

    def test_charged_rounds_scale_with_d(self, grid45):
        small = build_clustering(grid45, d=2, seed=1).charged_rounds
        large = build_clustering(grid45, d=8, seed=1).charged_rounds
        assert large == 4 * small

    def test_color_count_reported(self):
        net = topologies.erdos_renyi(50, 0.08, seed=8)
        clustering = build_clustering(net, d=4, seed=9)
        assert clustering.num_colors >= 1
        assert len(clustering.colors) == len(clustering.clusters)

    def test_deterministic_under_seed(self):
        net = topologies.grid(6, 6)
        c1 = build_clustering(net, d=4, seed=11)
        c2 = build_clustering(net, d=4, seed=11)
        assert c1.clusters == c2.clusters
        assert c1.colors == c2.colors

    def test_single_cluster_on_tiny_graph(self):
        net = topologies.complete(4)
        clustering = build_clustering(net, d=2, seed=12)
        verify_clustering(net, clustering)
