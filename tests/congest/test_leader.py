"""Tests for max-id leader election."""

from repro.congest import topologies
from repro.congest.algorithms.leader import elect_leader


class TestLeaderElection:
    def test_elects_max_id(self, small_network):
        result = elect_leader(small_network, seed=1)
        assert result.leader == small_network.n - 1

    def test_rounds_bounded_by_diameter(self, small_network):
        result = elect_leader(small_network, seed=1)
        assert result.rounds <= small_network.diameter + 1

    def test_rounds_track_eccentricity_of_winner(self):
        # On a path, node n-1 sits at an end: its id must travel n-1 hops.
        net = topologies.path(12)
        result = elect_leader(net, seed=2)
        assert result.rounds == net.eccentricities[net.n - 1] + 1

    def test_single_node(self):
        net = topologies.path(1)
        result = elect_leader(net)
        assert result.leader == 0
        assert result.rounds == 0

    def test_complete_graph_one_round(self):
        net = topologies.complete(9)
        result = elect_leader(net, seed=3)
        assert result.leader == 8
        assert result.rounds <= 2
