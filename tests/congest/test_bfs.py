"""Tests for BFS with echo: distances, parents, eccentricity, round count."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import bfs_with_echo


class TestCorrectness:
    def test_distances_match_ground_truth(self, small_network):
        result = bfs_with_echo(small_network, 0)
        assert result.dist == small_network.distances_from(0)

    def test_eccentricity_matches(self, small_network):
        result = bfs_with_echo(small_network, 0)
        assert result.eccentricity == small_network.eccentricities[0]

    def test_all_roots_on_grid(self, grid45):
        for root in range(grid45.n):
            result = bfs_with_echo(grid45, root)
            assert result.eccentricity == grid45.eccentricities[root]

    def test_parents_form_valid_tree(self, grid45):
        result = bfs_with_echo(grid45, 3)
        for v, parent in result.parent.items():
            if v == 3:
                assert parent is None
            else:
                assert grid45.has_edge(v, parent)
                assert result.dist[v] == result.dist[parent] + 1

    def test_children_inverse_of_parents(self, grid45):
        result = bfs_with_echo(grid45, 0)
        kids = result.children()
        for v, parent in result.parent.items():
            if parent is not None:
                assert v in kids[parent]

    def test_single_node_network(self):
        net = topologies.path(1)
        result = bfs_with_echo(net, 0)
        assert result.eccentricity == 0
        assert result.rounds == 0


class TestRoundComplexity:
    def test_rounds_linear_in_eccentricity(self):
        """BFS + echo should finish within ~3·ecc + O(1) rounds."""
        for n in [8, 16, 32, 64]:
            net = topologies.path(n)
            result = bfs_with_echo(net, 0)
            ecc = net.eccentricities[0]
            assert result.rounds <= 3 * ecc + 4

    def test_rounds_small_on_low_diameter(self, petersen):
        result = bfs_with_echo(petersen, 0)
        assert result.rounds <= 3 * 2 + 4

    def test_star_constant_rounds(self):
        for n in [5, 50, 200]:
            net = topologies.star(n)
            result = bfs_with_echo(net, 0)
            assert result.rounds <= 7

    def test_rounds_do_not_scale_with_n_at_fixed_diameter(self):
        small = bfs_with_echo(topologies.star(10), 1).rounds
        large = bfs_with_echo(topologies.star(200), 1).rounds
        assert large <= small + 2


class TestRobustness:
    def test_root_with_max_id(self, grid45):
        result = bfs_with_echo(grid45, grid45.n - 1)
        assert result.dist == grid45.distances_from(grid45.n - 1)

    def test_dense_graph(self):
        net = topologies.complete(8)
        result = bfs_with_echo(net, 4)
        assert result.eccentricity == 1
        assert all(d == 1 for v, d in result.dist.items() if v != 4)

    def test_cycle_graph_even_odd(self):
        for n in [6, 7]:
            net = topologies.cycle(n)
            result = bfs_with_echo(net, 0)
            assert result.eccentricity == n // 2
