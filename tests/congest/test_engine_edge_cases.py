"""Engine edge cases and failure injection."""

import pytest

from repro.congest import topologies
from repro.congest.encoding import Field
from repro.congest.engine import Engine, run_program
from repro.congest.errors import BandwidthExceeded
from repro.congest.network import Network
from repro.congest.program import IdleProgram, NodeProgram, make_programs


class TestHaltedNodes:
    def test_messages_to_halted_nodes_are_dropped(self, path8):
        class SendThenHalt(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.halt(output="early")

            def on_round(self, ctx, inbox):
                if ctx.node == 1 and ctx.round == 1:
                    ctx.send(0, Field(1, 4))  # node 0 already halted
                if ctx.round >= 2:
                    ctx.halt(output="late")

        result = run_program(path8, {v: SendThenHalt() for v in path8.nodes()})
        assert result.outputs[0] == "early"
        assert result.outputs[1] == "late"

    def test_sends_in_halting_round_still_delivered(self, path8):
        class LastWords(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, Field(3, 4))
                    ctx.halt()

            def on_round(self, ctx, inbox):
                if inbox:
                    ctx.halt(output=inbox.values()[0])
                elif ctx.round > 2:
                    ctx.halt()

        result = run_program(path8, {v: LastWords() for v in path8.nodes()})
        assert result.outputs[1] == 3


class TestFailureInjection:
    def test_program_exception_propagates(self, path8):
        class Crashes(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 3:
                    raise RuntimeError("node 3 is broken")
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(RuntimeError, match="node 3"):
            run_program(path8, {v: Crashes() for v in path8.nodes()})

    def test_bfs_on_starved_bandwidth_raises_model_violation(self):
        """Protocols must fail loudly, not silently truncate, when the
        bandwidth cannot carry their messages."""
        from repro.congest.algorithms.bfs import BFSEchoProgram

        import networkx as nx

        net = Network(nx.path_graph(6), bandwidth=2)  # too small for (tag, dist)
        programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
        with pytest.raises(BandwidthExceeded):
            run_program(net, programs)

    def test_mid_protocol_violation_detected(self, path8):
        class GoodThenGreedy(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, Field(0, 4))

            def on_round(self, ctx, inbox):
                if ctx.node == 1 and inbox:
                    ctx.send(0, "x" * 50)  # way over budget
                elif ctx.round > 3:
                    ctx.halt()

        with pytest.raises(BandwidthExceeded):
            run_program(path8, {v: GoodThenGreedy() for v in path8.nodes()})


class TestEngineLifecycle:
    def test_run_after_completion_is_noop(self, path8):
        engine = Engine(path8, {v: IdleProgram() for v in path8.nodes()})
        first = engine.run()
        second = engine.run()
        assert first.rounds == 0
        assert second.rounds == 0

    def test_make_programs_covers_all_nodes(self, path8):
        programs = make_programs(path8.n, lambda v: IdleProgram())
        assert set(programs) == set(path8.nodes())
        run_program(path8, programs)

    def test_single_node_network_runs(self):
        net = topologies.path(1)
        result = run_program(net, {0: IdleProgram()})
        assert result.rounds == 0
        assert result.stats.messages == 0


class TestContextHelpers:
    def test_broadcast_reaches_all_neighbors(self, star10):
        class Announcer(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.broadcast(Field(7, 8))
                    ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt(output=inbox.values()[0] if inbox else None)

        result = run_program(star10, {v: Announcer() for v in star10.nodes()})
        assert all(result.outputs[v] == 7 for v in range(1, star10.n))

    def test_inbox_helpers(self, path8):
        class Inspector(NodeProgram):
            def on_start(self, ctx):
                if ctx.node in (0, 2):
                    ctx.send(1, Field(ctx.node, 8))
                ctx_is_mid = ctx.node == 1
                if not ctx_is_mid:
                    ctx.halt()

            def on_round(self, ctx, inbox):
                assert len(inbox) == 2
                assert bool(inbox)
                assert inbox.from_node(0).value == 0
                assert inbox.from_node(2).value == 2
                assert inbox.from_node(5) is None
                assert sorted(inbox.senders()) == [0, 2]
                ctx.halt(output="checked")

        result = run_program(path8, {v: Inspector() for v in path8.nodes()})
        assert result.outputs[1] == "checked"
