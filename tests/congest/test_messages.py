"""Unit tests for Message, Inbox, and TrafficStats."""

import pytest

from repro.congest.encoding import Field
from repro.congest.messages import Inbox, Message, TrafficStats


class TestMessage:
    def test_make_computes_bits(self):
        msg = Message.make(0, 1, Field(5, 16), round_sent=3)
        assert msg.bits == 4
        assert msg.round_sent == 3

    def test_value_unwraps_fields(self):
        msg = Message.make(0, 1, (Field(5, 16), Field(2, 4)), 1)
        assert msg.value == (5, 2)

    def test_frozen(self):
        msg = Message.make(0, 1, Field(0, 2), 1)
        with pytest.raises(AttributeError):
            msg.src = 9


class TestInbox:
    @pytest.fixture
    def inbox(self):
        return Inbox([
            Message.make(2, 0, Field(10, 16), 1),
            Message.make(5, 0, Field(11, 16), 1),
        ])

    def test_len_and_truthiness(self, inbox):
        assert len(inbox) == 2
        assert bool(inbox)
        assert not Inbox()

    def test_iteration_order_preserved(self, inbox):
        assert [m.src for m in inbox] == [2, 5]

    def test_from_node(self, inbox):
        assert inbox.from_node(2).value == 10
        assert inbox.from_node(5).value == 11
        assert inbox.from_node(9) is None

    def test_senders_and_values(self, inbox):
        assert inbox.senders() == [2, 5]
        assert inbox.values() == [10, 11]

    def test_empty_inbox_helpers(self):
        empty = Inbox()
        assert empty.senders() == []
        assert empty.values() == []
        assert empty.from_node(0) is None


class TestTrafficStats:
    def test_accumulates(self):
        stats = TrafficStats()
        stats.record_round(3, 30)
        stats.record_round(5, 50)
        assert stats.messages == 8
        assert stats.bits == 80
        assert stats.per_round_messages == [3, 5]
        assert stats.max_messages_in_round == 5

    def test_empty(self):
        stats = TrafficStats()
        assert stats.max_messages_in_round == 0
        assert stats.messages == 0
