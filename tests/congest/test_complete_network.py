"""CompleteNetwork must be observationally identical to the nx-built K_n."""

import networkx as nx
import numpy as np
import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.csr import build_csr
from repro.congest.engine import Engine
from repro.congest.network import CompleteNetwork, Network


def _reference(n, **kwargs):
    return Network(nx.complete_graph(n), **kwargs)


class TestEquivalence:
    @pytest.mark.parametrize("n", [2, 3, 7, 40])
    def test_fingerprint_identical(self, n):
        assert (
            CompleteNetwork(n).topology_fingerprint()
            == _reference(n).topology_fingerprint()
        )

    @pytest.mark.parametrize("n", [2, 5, 17])
    def test_adjacency_identical(self, n):
        fast, ref = CompleteNetwork(n), _reference(n)
        assert fast.n == ref.n and fast.m == ref.m
        for v in range(n):
            assert fast.neighbors(v) == ref.neighbors(v)
            assert fast.degree(v) == ref.degree(v)
        assert fast.eccentricities == ref.eccentricities
        assert fast.distances_from(0) == ref.distances_from(0)
        assert fast.diameter == ref.diameter

    def test_has_edge_and_bounds(self):
        net = CompleteNetwork(4)
        assert net.has_edge(0, 3) and not net.has_edge(2, 2)
        with pytest.raises(KeyError):
            net.neighbors(4)

    @pytest.mark.parametrize("n", [2, 3, 9, 33])
    def test_csr_identical(self, n):
        a, b = build_csr(CompleteNetwork(n)), build_csr(_reference(n))
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.rev, b.rev)
        assert a.fingerprint == b.fingerprint

    def test_single_node_complete_graph(self):
        net = CompleteNetwork(1)
        assert net.m == 0
        assert net.neighbors(0) == ()
        assert net.eccentricities == {0: 0}

    def test_model_plumbs_through(self):
        net = CompleteNetwork(6, comm_model="congest-clique")
        assert net.model.name == "congest-clique"
        assert net.peers(0) == (1, 2, 3, 4, 5)
        assert (
            net.topology_fingerprint()
            == _reference(6, comm_model="congest-clique").topology_fingerprint()
        )

    def test_topologies_complete_returns_fast_path(self):
        net = topologies.complete(5)
        assert isinstance(net, CompleteNetwork)
        assert net.is_complete

    @pytest.mark.parametrize("schedule", ["dense", "active", "vectorized"])
    def test_engine_runs_bit_identical(self, schedule):
        n = 9
        fast, ref = CompleteNetwork(n), _reference(n)
        runs = []
        for net in (fast, ref):
            programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
            runs.append(Engine(net, programs, seed=3, schedule=schedule).run())
        a, b = runs
        assert a.rounds == b.rounds
        assert a.outputs == b.outputs
        assert a.stats == b.stats

    def test_graph_property_is_lazy_but_correct(self):
        net = CompleteNetwork(7)
        # Touch adjacency first; nx graph must still agree when forced.
        assert net.neighbors(3) == (0, 1, 2, 4, 5, 6)
        assert sorted(net.graph.neighbors(3)) == [0, 1, 2, 4, 5, 6]
        assert net.graph.number_of_edges() == net.m
