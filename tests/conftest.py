"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import topologies


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def path8():
    return topologies.path(8)


@pytest.fixture
def grid45():
    return topologies.grid(4, 5)


@pytest.fixture
def star10():
    return topologies.star(10)


@pytest.fixture
def petersen():
    return topologies.petersen()


@pytest.fixture(
    params=["path", "grid", "star", "petersen", "complete", "tree"],
)
def small_network(request):
    """A parametrized family of small topologies for protocol tests."""
    return {
        "path": topologies.path(9),
        "grid": topologies.grid(3, 4),
        "star": topologies.star(7),
        "petersen": topologies.petersen(),
        "complete": topologies.complete(6),
        "tree": topologies.balanced_tree(2, 3),
    }[request.param]
