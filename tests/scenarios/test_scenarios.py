"""The repro.scenarios package: fidelity, practicality, adversary axes."""

import numpy as np
import pytest

from repro.congest import topologies
from repro.core.cost import (
    CLASSICAL_METRO,
    QUANTUM_MATURE,
    QUANTUM_NEAR_TERM,
)
from repro.faults.models import CompositeFaults, GilbertElliottLoss
from repro.scenarios import (
    ByzantineNodes,
    Scenario,
    byzantine_nodes,
    cell_model,
    churn_schedule,
    crossover_report,
    derive_security,
    fidelity_sweep,
    link_flap_model,
    run_matrix,
)
from repro.apps.diameter import sweep_diameter


class TestSecurityDerivation:
    def test_perfect_fidelity_needs_one_repetition(self):
        sec = derive_security(1.0)
        assert sec.epsilon == 0.0 and sec.security == 1

    def test_security_grows_as_fidelity_drops(self):
        securities = [
            derive_security(f).security for f in (0.999, 0.99, 0.9, 0.5)
        ]
        assert securities == sorted(securities)
        assert securities[-1] > securities[0]

    def test_invalid_fidelity_rejected(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                derive_security(bad)


class TestFidelitySweep:
    def test_bill_monotone_in_dropped_fidelity(self):
        net = topologies.grid(3, 4)
        cells = fidelity_sweep(net, [1.0, 0.99, 0.9], q_bits=16, seed=0)
        bills = [c.total_rounds for c in cells]
        assert bills == sorted(bills)
        assert cells[0].overhead == pytest.approx(1.0)
        assert cells[-1].overhead > 1.0

    def test_achieved_failure_within_delta(self):
        net = topologies.grid(3, 4)
        for cell in fidelity_sweep(net, [0.99, 0.95], q_bits=16,
                                   delta=0.05, seed=0):
            assert cell.achieved_failure <= 0.05


class TestCrossoverReport:
    def _duels(self, quick_ns=(256, 512, 1024, 2048)):
        return sweep_diameter(list(quick_ns), diameter=4, trials=1, seed=0)

    def test_mature_link_crossover_known(self):
        report = crossover_report(
            self._duels(), CLASSICAL_METRO, QUANTUM_MATURE
        )
        assert report.rounds_crossover_n is not None
        assert (
            report.wall_clock_crossover_n is not None
            or report.predicted_crossover_n is not None
        )
        assert not report.latency_dominated

    def test_near_term_link_latency_dominated(self):
        report = crossover_report(
            self._duels(), CLASSICAL_METRO, QUANTUM_NEAR_TERM
        )
        assert report.rounds_crossover_n is not None
        assert report.wall_clock_crossover_n is None
        assert report.latency_dominated

    def test_premium_is_link_ratio(self):
        report = crossover_report(
            self._duels((256, 512)), CLASSICAL_METRO, QUANTUM_MATURE
        )
        bits = 9  # ceil(log2(512)): word size at the largest swept n
        assert report.premium == pytest.approx(
            QUANTUM_MATURE.round_time_us(bits)
            / CLASSICAL_METRO.round_time_us(bits)
        )


class TestAdversaryAxes:
    def test_byzantine_nodes_deterministic_and_protected(self):
        a = byzantine_nodes(16, 0.25, seed=3)
        b = byzantine_nodes(16, 0.25, seed=3)
        assert a == b and len(a) == 4
        assert 0 not in a  # the default protect set keeps the root honest

    def test_byzantine_model_corrupts_only_its_senders(self):
        model = ByzantineNodes(nodes={1}, p=1.0)
        model.bind(np.random.SeedSequence(0))
        from repro.congest.encoding import Field
        from repro.congest.messages import Message

        verdict, out = model.apply(Message.make(1, 2, Field(3, 8), 1), 1)
        assert verdict == "corrupt" and out is not None
        verdict, out = model.apply(Message.make(2, 1, Field(3, 8), 1), 1)
        assert verdict == "deliver"

    def test_churn_schedule_spares_protected_nodes(self):
        schedule = churn_schedule(16, 0.3, horizon=10, seed=1)
        assert schedule.specs
        assert all(c.node != 0 for c in schedule.specs)
        assert all(c.recover_round is not None for c in schedule.specs)

    def test_link_flap_model_is_burst_loss(self):
        model = link_flap_model(0.1, mean_outage_rounds=4.0)
        assert isinstance(model, GilbertElliottLoss)
        assert model.p_exit_burst == pytest.approx(0.25)
        assert model.loss_bad == 1.0 and model.loss_good == 0.0


class TestScenarioSpec:
    def test_defaults_are_clean(self):
        s = Scenario("clean")
        assert s.fidelity == 1.0 and s.byzantine == ()
        assert s.security().security == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario("")
        with pytest.raises(ValueError):
            Scenario("bad", fidelity=0.0)
        with pytest.raises(ValueError):
            Scenario("bad", delta=1.0)

    def test_premium_reflects_links(self):
        cheap = Scenario("a", quantum_link=QUANTUM_MATURE)
        dear = Scenario("b", quantum_link=QUANTUM_NEAR_TERM)
        assert dear.premium > cheap.premium > 1.0

    def test_cell_model_composes_faults_and_byzantine(self):
        assert cell_model(Scenario("clean")) is None
        byz = Scenario("byz", byzantine=(2, 3))
        assert isinstance(cell_model(byz), ByzantineNodes)
        both = Scenario(
            "both", fault_model=link_flap_model(0.1), byzantine=(2,),
        )
        assert isinstance(cell_model(both), CompositeFaults)


class TestRunMatrix:
    def test_honest_cells_exact_and_deterministic(self):
        scenarios = [
            Scenario("clean"),
            Scenario("flaps", fault_model=link_flap_model(0.05)),
        ]
        first = run_matrix(scenarios, topology="grid", n=16, seed=0)
        second = run_matrix(scenarios, topology="grid", n=16, seed=0)
        assert all(out.correct for out in first)
        assert [(o.scenario, o.rounds) for o in first] == [
            (o.scenario, o.rounds) for o in second
        ]
        clean, flaps = first
        assert clean.dropped == 0
        assert flaps.classical_us > 0 and flaps.quantum_us > 0

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_matrix([Scenario("x"), Scenario("x")], n=16)
