"""LinkCostModel and the wall-clock layer over round/traffic ledgers."""

import pytest

from repro.congest import topologies
from repro.core.cost import (
    CLASSICAL_METRO,
    LINK_PRESETS,
    QUANTUM_MATURE,
    QUANTUM_NEAR_TERM,
    CostModel,
    LinkCostModel,
    RoundLedger,
)


class TestLinkCostModel:
    def test_message_time_formula(self):
        link = LinkCostModel(name="t", latency_us=10.0,
                             bandwidth_bits_per_us=2.0, overhead_us=5.0,
                             constant_factor=3.0)
        # 3 · (10 + 8/2 + 5) = 57
        assert link.message_time_us(8) == pytest.approx(57.0)

    def test_round_is_one_message_time(self):
        assert CLASSICAL_METRO.round_time_us(16) == (
            CLASSICAL_METRO.message_time_us(16)
        )

    def test_wall_clock_scales_linearly(self):
        one = QUANTUM_MATURE.wall_clock_us(1, 16)
        assert QUANTUM_MATURE.wall_clock_us(10, 16) == pytest.approx(10 * one)

    @pytest.mark.parametrize("kwargs", [
        {"latency_us": -1.0},
        {"bandwidth_bits_per_us": 0.0},
        {"overhead_us": -0.5},
        {"constant_factor": 0.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        base = dict(name="t", latency_us=1.0, bandwidth_bits_per_us=1.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            LinkCostModel(**base)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            CLASSICAL_METRO.message_time_us(-1)

    def test_presets_registered_by_name(self):
        assert LINK_PRESETS["classical-metro"] is CLASSICAL_METRO
        assert LINK_PRESETS["quantum-mature"] is QUANTUM_MATURE

    def test_quantum_rounds_cost_more_than_classical(self):
        """The premium every crossover argument rests on."""
        for quantum in (QUANTUM_MATURE, QUANTUM_NEAR_TERM):
            assert quantum.round_time_us(16) > CLASSICAL_METRO.round_time_us(16)


class TestLedgerWallClock:
    def test_ledger_total_repriced(self):
        ledger = RoundLedger()
        ledger.charge("setup", 10)
        ledger.charge("batch:q", 30)
        expected = CLASSICAL_METRO.wall_clock_us(40, 16)
        assert ledger.wall_clock_us(CLASSICAL_METRO, 16) == (
            pytest.approx(expected)
        )

    def test_by_phase_breakdown_sums_to_total(self):
        ledger = RoundLedger()
        ledger.charge("a", 7)
        ledger.charge("b", 11)
        phases = ledger.wall_clock_by_phase(QUANTUM_MATURE, 16)
        assert set(phases) == {"a", "b"}
        assert sum(phases.values()) == pytest.approx(
            ledger.wall_clock_us(QUANTUM_MATURE, 16)
        )

    def test_cost_model_round_time_at_word_size(self):
        net = topologies.grid(3, 4)
        cm = CostModel.for_network(net)
        assert cm.round_time_us(CLASSICAL_METRO) == pytest.approx(
            CLASSICAL_METRO.round_time_us(cm.word_bits)
        )
        assert cm.wall_clock_us(5, CLASSICAL_METRO) == pytest.approx(
            5 * cm.round_time_us(CLASSICAL_METRO)
        )
