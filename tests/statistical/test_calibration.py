"""Statistical calibration of the Level-S emulation layer.

The fidelity claim of DESIGN.md §3 is that the stochastic emulations
sample from the *distributions* quantum mechanics dictates, not merely
return correct answers.  These tests measure empirical distributions over
many seeded runs and compare them with the exact laws.
"""

import math
from collections import Counter

import numpy as np
import pytest

from repro.quantum import grover as exact_grover
from repro.queries.grover import find_one, marked_subset_fraction
from repro.queries.ledger import QueryLedger
from repro.queries.minimum import find_minimum
from repro.queries.oracle import StringOracle

TRIALS = 300


class TestGroverOutcomeDistribution:
    def test_found_index_uniform_over_marked(self):
        """Grover's measurement is uniform over the marked set; the
        emulation's reported indices must match (chi-square style)."""
        k, p = 256, 16
        marked = [10, 77, 130, 200]
        values = [1 if i in marked else 0 for i in range(k)]
        counts = Counter()
        for seed in range(TRIALS):
            oracle = StringOracle(values, QueryLedger(p))
            out = find_one(oracle, lambda v: v == 1, np.random.default_rng(seed))
            if out.found:
                counts[out.index] += 1
        total = sum(counts.values())
        assert total >= 0.9 * TRIALS
        for index in marked:
            share = counts[index] / total
            assert 0.15 <= share <= 0.35  # ideal 0.25

    def test_success_rate_meets_guarantee(self):
        """Per-invocation success ≥ 2/3 across t values (Lemma 2)."""
        k, p = 512, 8
        for t in [1, 3, 8]:
            hits = 0
            runs = 120
            for seed in range(runs):
                rng = np.random.default_rng(seed)
                values = [0] * k
                for i in rng.choice(k, size=t, replace=False):
                    values[i] = 1
                oracle = StringOracle(values, QueryLedger(p))
                hits += find_one(oracle, lambda v: v == 1, rng).found
            assert hits / runs >= 2 / 3, f"t={t}: {hits}/{runs}"

    def test_batch_count_concentration(self):
        """Mean batches within 3× the √(1/f) expectation (BBHT constant)."""
        k, p, t = 1024, 16, 2
        f = marked_subset_fraction(k, t, p)
        expectation = math.sqrt(1 / f)
        totals = []
        for seed in range(150):
            rng = np.random.default_rng(seed)
            values = [0] * k
            for i in rng.choice(k, size=t, replace=False):
                values[i] = 1
            oracle = StringOracle(values, QueryLedger(p))
            out = find_one(oracle, lambda v: v == 1, rng)
            totals.append(out.batches_used)
        mean = sum(totals) / len(totals)
        assert mean <= 4 * expectation + 3

    def test_emulation_law_equals_statevector_law(self):
        """The law the emulator samples from is the statevector's, exactly
        (the keystone identity of the two-level design)."""
        for q, marked in [(4, {3}), (5, {1, 9, 20})]:
            for j in range(4):
                assert exact_grover.success_probability(
                    q, marked, j
                ) == pytest.approx(
                    exact_grover.theoretical_success_probability(
                        1 << q, len(marked), j
                    ),
                    abs=1e-10,
                )


class TestMinimumDistribution:
    def test_tied_minima_returned_roughly_uniformly(self):
        k, p = 512, 16
        minima = [50, 180, 333]
        counts = Counter()
        for seed in range(TRIALS):
            rng = np.random.default_rng(seed)
            values = list(rng.integers(100, 10**6, size=k))
            for i in minima:
                values[i] = 1
            oracle = StringOracle(values, QueryLedger(p))
            out = find_minimum(oracle, rng, multiplicity=3)
            if out.value == 1:
                counts[out.index] += 1
        total = sum(counts.values())
        assert total >= 0.8 * TRIALS
        for index in minima:
            share = counts[index] / total
            assert 0.18 <= share <= 0.50  # ideal 1/3

    def test_success_rate_meets_guarantee(self):
        k, p = 1024, 16
        hits = 0
        runs = 120
        for seed in range(runs):
            rng = np.random.default_rng(seed)
            values = list(rng.integers(0, 10**6, size=k))
            oracle = StringOracle(values, QueryLedger(p))
            out = find_minimum(oracle, rng)
            hits += out.value == min(values)
        assert hits / runs >= 2 / 3


class TestMeanEstimationDistribution:
    def test_error_distribution_within_epsilon_band(self):
        from repro.queries.mean_estimation import estimate_mean

        k, p, eps = 2000, 32, 0.15
        errors = []
        for seed in range(200):
            rng = np.random.default_rng(seed)
            values = list(rng.uniform(0, 10, size=k))
            mu = sum(values) / k
            oracle = StringOracle(values, QueryLedger(p))
            est = estimate_mean(oracle, sigma=3.0, epsilon=eps, rng=rng)
            errors.append(abs(est.estimate - mu))
        hit_rate = sum(e <= eps for e in errors) / len(errors)
        assert hit_rate >= 2 / 3
        # Failures must be bounded blowups (≤ a few ε), not arbitrary junk.
        assert max(errors) <= 4 * eps


class TestElementDistinctnessCalibration:
    def test_success_rate_meets_guarantee(self):
        from repro.queries.element_distinctness import find_collision

        k, p = 600, 8
        hits = 0
        runs = 100
        for seed in range(runs):
            rng = np.random.default_rng(seed)
            values = list(rng.choice(10**9, size=k, replace=False))
            i, j = rng.choice(k, size=2, replace=False)
            values[j] = values[i]
            oracle = StringOracle(values, QueryLedger(p))
            out = find_collision(oracle, rng)
            hits += out.found
        assert hits / runs >= 2 / 3

    def test_one_sided_error_never_violated(self):
        """Across many distinct-input runs, not one false collision."""
        from repro.queries.element_distinctness import find_collision

        for seed in range(60):
            rng = np.random.default_rng(seed)
            values = list(range(seed, seed + 300))
            oracle = StringOracle(values, QueryLedger(8))
            out = find_collision(oracle, rng)
            assert not out.found

    def test_batch_usage_concentrates_near_budget(self):
        from repro.queries.element_distinctness import (
            expected_batches,
            find_collision,
        )

        k, p = 1000, 8
        totals = []
        for seed in range(60):
            rng = np.random.default_rng(seed)
            values = list(rng.choice(10**9, size=k, replace=False))
            values[10] = values[700]
            oracle = StringOracle(values, QueryLedger(p))
            totals.append(find_collision(oracle, rng).batches_used)
        mean = sum(totals) / len(totals)
        assert mean <= 6 * expected_batches(k, p)
        # The walk budget is deterministic, so the spread is small.
        assert max(totals) - min(totals) <= max(totals) * 0.8
