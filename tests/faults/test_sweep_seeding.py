"""fault_sweep seed-derivation regression.

The pre-fix code derived ``fault_seed = seed * 1000 + i``, so the fault
stream at ``(seed=0, i=1000)`` equaled the one at ``(seed=1, i=0)`` and
adjacent root seeds overlapped.  The sweep now derives per-point seeds
with :func:`repro.parallel.derive_seed`.
"""

from repro.faults.sweep import fault_sweep
from repro.parallel import derive_seed


class TestSweepSeeding:
    def test_adjacent_root_seeds_get_distinct_fault_streams(self):
        # The derivation the sweep uses, at the colliding coordinates.
        streams = {
            (s, i): derive_seed(s, "fault_sweep", "bfs", "bernoulli", i)
            for s in range(3)
            for i in range(1001)
        }
        assert streams[(0, 1000)] != streams[(1, 0)]
        assert len(set(streams.values())) == len(streams)

    def test_sweep_is_deterministic_per_seed(self):
        losses = [0.05, 0.1]
        a = fault_sweep(losses, algorithm="bfs", seed=2)
        b = fault_sweep(losses, algorithm="bfs", seed=2)
        assert a.rows == b.rows

    def test_sweep_outputs_stay_correct_under_new_seeds(self):
        table = fault_sweep([0.0, 0.05], algorithm="convergecast", seed=1)
        # "correct" is the last column: the resilience layer must keep
        # the faultless output intact at every sweep point.
        assert all(row[-1] for row in table.rows)
