"""Tests for the fault-injecting engine: identity, determinism, tracing."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.congest.encoding import Field
from repro.congest.engine import run_program
from repro.congest.errors import RoundLimitExceeded
from repro.congest.program import NodeProgram
from repro.congest.tracing import CRASH, DROP, RECOVER
from repro.faults import (
    BernoulliLoss,
    BitCorruption,
    CrashSchedule,
    CrashSpec,
    FaultyEngine,
    NoFaults,
    run_with_faults,
)


def bfs_programs(network, root=0):
    return {v: BFSEchoProgram(v, root) for v in network.nodes()}


class FloodForever(NodeProgram):
    """Broadcasts every round and never halts; runs expire at the budget.

    Unprotected programs livelock under faults, so tests that inspect
    fault traces drive the engine with this program for a fixed number
    of rounds and read the counters off the expired engine.
    """

    def on_start(self, ctx):
        ctx.broadcast(Field(0, 2))

    def on_round(self, ctx, inbox):
        ctx.broadcast(Field(0, 2))


def run_flood(network, budget=30, **engine_kwargs):
    """Run FloodForever everywhere until the round budget; return engine."""
    engine = FaultyEngine(
        network,
        {v: FloodForever() for v in network.nodes()},
        max_rounds=budget,
        **engine_kwargs,
    )
    with pytest.raises(RoundLimitExceeded):
        engine.run()
    return engine


class TestZeroFaultIdentity:
    def test_byte_identical_to_plain_engine(self, small_network):
        plain = run_program(small_network, bfs_programs(small_network), seed=3)
        faulty, trace, stats = run_with_faults(
            small_network,
            bfs_programs(small_network),
            fault_model=NoFaults(),
            seed=3,
        )
        assert plain.rounds == faulty.rounds
        assert plain.outputs == faulty.outputs
        assert plain.stats == faulty.stats
        assert stats.dropped == stats.corrupted == stats.delayed == 0
        assert stats.delivered == plain.stats.messages
        assert not trace.faults()

    def test_default_model_is_no_faults(self, path8):
        plain = run_program(path8, bfs_programs(path8), seed=0)
        faulty, _, _ = run_with_faults(path8, bfs_programs(path8), seed=0)
        assert plain.outputs == faulty.outputs

    def test_p_zero_bernoulli_is_identity_too(self, path8):
        plain = run_program(path8, bfs_programs(path8), seed=0)
        faulty, _, stats = run_with_faults(
            path8, bfs_programs(path8), fault_model=BernoulliLoss(0.0), seed=0
        )
        assert plain.rounds == faulty.rounds
        assert plain.stats == faulty.stats
        assert stats.loss_rate() == 0.0


class TestDeterminism:
    def test_same_fault_seed_same_fault_schedule(self, grid45):
        runs = []
        for _ in range(2):
            engine = run_flood(
                grid45,
                fault_model=BernoulliLoss(0.2),
                seed=0,
                fault_seed=17,
            )
            drops = [
                (e.round_no, e.src, e.dst)
                for e in engine.trace.events_of_kind(DROP)
            ]
            runs.append((
                drops,
                engine.fault_stats.dropped,
                engine.fault_stats.per_round_drops,
            ))
        assert runs[0] == runs[1]
        assert runs[0][1] > 0

    def test_different_fault_seeds_differ(self, grid45):
        def drops(fault_seed):
            engine = run_flood(
                grid45,
                fault_model=BernoulliLoss(0.2),
                seed=0,
                fault_seed=fault_seed,
            )
            return [
                (e.round_no, e.src, e.dst)
                for e in engine.trace.events_of_kind(DROP)
            ]

        assert drops(1) != drops(2)

    def test_fault_stream_does_not_perturb_node_rngs(self, path8):
        # The fault RNG is separate: a lossy run must see the same
        # per-node coin flips as a faultless run with the same seed.
        class CoinFlip(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(output=int(ctx.rng.integers(0, 10**9)))

            def on_round(self, ctx, inbox):
                ctx.halt()

        plain = run_program(
            path8, {v: CoinFlip() for v in path8.nodes()}, seed=11
        )
        faulty, _, _ = run_with_faults(
            path8,
            {v: CoinFlip() for v in path8.nodes()},
            fault_model=BernoulliLoss(0.5),
            seed=11,
            fault_seed=99,
        )
        assert plain.outputs == faulty.outputs


class TestFaultTracing:
    def test_drops_are_first_class_trace_events(self, grid45):
        engine = run_flood(
            grid45, fault_model=BernoulliLoss(0.3), seed=0, fault_seed=4
        )
        stats = engine.fault_stats
        drop_events = engine.trace.events_of_kind(DROP)
        assert len(drop_events) == stats.dropped > 0
        # Deliveries and faults are disjoint views of the event stream.
        assert len(engine.trace.deliveries()) == stats.delivered

    def test_corruption_never_exceeds_bandwidth(self, small_network):
        # Corruption re-randomizes within declared domains, so no
        # delivered message may ever exceed the link bandwidth.
        engine = run_flood(
            small_network,
            fault_model=BitCorruption(1.0),
            seed=0,
            fault_seed=8,
        )
        assert engine.fault_stats.corrupted > 0
        for event in engine.trace.deliveries():
            assert event.bits <= small_network.bandwidth

    def test_corrupted_messages_keep_their_bit_charge(self, path8):
        engine = run_flood(
            path8, fault_model=BitCorruption(1.0), seed=0, fault_seed=8
        )
        # FloodForever sends 1-bit Field(·, 2) frames; corrupted
        # deliveries must be charged identically.
        for event in engine.trace.deliveries():
            assert event.bits == 1

    def test_stats_conservation(self, grid45):
        engine = run_flood(
            grid45, fault_model=BernoulliLoss(0.25), seed=0, fault_seed=2
        )
        stats = engine.fault_stats
        assert stats.attempted == (
            stats.delivered + stats.dropped + stats.delayed
        )
        assert 0.0 < stats.loss_rate() < 1.0
        assert sum(stats.per_round_drops) == stats.dropped


class TestCrashFaults:
    def test_crash_and_recover_events_traced(self, path8):
        sched = CrashSchedule([CrashSpec(4, 2, 5)])
        engine = run_flood(path8, crash_schedule=sched, seed=0)
        assert engine.fault_stats.crashes == 1
        assert engine.fault_stats.recoveries == 1
        crashes = engine.trace.events_of_kind(CRASH)
        recoveries = engine.trace.events_of_kind(RECOVER)
        assert [(e.round_no, e.src) for e in crashes] == [(2, 4)]
        assert [(e.round_no, e.src) for e in recoveries] == [(5, 4)]

    def test_down_node_receives_nothing(self, path8):
        sched = CrashSchedule([CrashSpec(4, 1, 20)])
        engine = run_flood(path8, budget=25, crash_schedule=sched, seed=0)
        assert engine.fault_stats.lost_to_down_nodes > 0
        for event in engine.trace.deliveries():
            if 1 <= event.round_no < 20:
                assert event.dst != 4

    def test_crash_stop_livelocks_plain_bfs(self):
        # An unprotected algorithm under crash-stop loses the wave and
        # honestly runs into the round-limit safety valve.
        net = topologies.path(6)
        sched = CrashSchedule([CrashSpec(3, 1)])
        with pytest.raises(RoundLimitExceeded):
            run_with_faults(
                net,
                bfs_programs(net),
                crash_schedule=sched,
                seed=0,
                max_rounds=120,
            )

    def test_crash_stop_of_halted_node_keeps_run_finishing(self, path8):
        # A node that crash-stops only after the algorithm finished must
        # not prevent termination accounting.
        sched = CrashSchedule([CrashSpec(7, 100)])
        result, _, _ = run_with_faults(
            path8,
            bfs_programs(path8),
            crash_schedule=sched,
            seed=0,
            max_rounds=500,
        )
        assert result.outputs[0] is not None
