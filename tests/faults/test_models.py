"""Unit tests for the pluggable channel fault models."""

import numpy as np
import pytest

from repro.congest.encoding import Field
from repro.congest.messages import Message
from repro.congest.tracing import CORRUPT, DELAY, DELIVER, DROP
from repro.faults.models import (
    BernoulliLoss,
    BitCorruption,
    BoundedDelay,
    CompositeFaults,
    GilbertElliottLoss,
    NoFaults,
    _corrupt_payload,
)


def make_msg(payload, src=0, dst=1, round_sent=1):
    return Message.make(src, dst, payload, round_sent)


class TestValidation:
    def test_bernoulli_p_out_of_range(self):
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_corruption_p_out_of_range(self):
        with pytest.raises(ValueError):
            BitCorruption(2.0)

    def test_delay_parameters(self):
        with pytest.raises(ValueError):
            BoundedDelay(0.5, max_delay=0)
        with pytest.raises(ValueError):
            BoundedDelay(-0.5)

    def test_gilbert_elliott_rates(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_enter_burst=1.2)

    def test_composite_needs_models(self):
        with pytest.raises(ValueError):
            CompositeFaults([])


class TestNoFaults:
    def test_always_delivers(self):
        model = NoFaults(seed=0)
        msg = make_msg(Field(3, 8))
        for r in range(1, 20):
            verdict, out = model.apply(msg, r)
            assert verdict == DELIVER
            assert out is msg
        assert not model.pending()
        assert model.release(5) == []


class TestBernoulliLoss:
    def test_p_zero_never_drops(self):
        model = BernoulliLoss(0.0, seed=1)
        msg = make_msg(Field(1, 4))
        assert all(
            model.apply(msg, r)[0] == DELIVER for r in range(1, 200)
        )

    def test_p_one_always_drops(self):
        model = BernoulliLoss(1.0, seed=1)
        msg = make_msg(Field(1, 4))
        assert all(model.apply(msg, r)[0] == DROP for r in range(1, 200))

    def test_seeded_determinism(self):
        msg = make_msg(Field(1, 4))
        verdicts = []
        for _ in range(2):
            model = BernoulliLoss(0.3, seed=42)
            verdicts.append(
                [model.apply(msg, r)[0] for r in range(1, 300)]
            )
        assert verdicts[0] == verdicts[1]
        assert DROP in verdicts[0] and DELIVER in verdicts[0]

    def test_engine_bind_respects_own_seed(self):
        a = BernoulliLoss(0.5, seed=9)
        b = BernoulliLoss(0.5, seed=9)
        a.bind(np.random.SeedSequence(111))
        b.bind(np.random.SeedSequence(222))
        msg = make_msg(Field(1, 4))
        assert [a.apply(msg, r)[0] for r in range(50)] == [
            b.apply(msg, r)[0] for r in range(50)
        ]


class TestGilbertElliott:
    def test_burstiness_produces_runs_of_drops(self):
        model = GilbertElliottLoss(
            p_enter_burst=0.1, p_exit_burst=0.2, loss_bad=1.0, seed=3
        )
        msg = make_msg(Field(1, 4))
        verdicts = [model.apply(msg, r)[0] for r in range(1, 2000)]
        # With loss_bad=1 every bad-state round drops; bursts mean at
        # least one run of >= 3 consecutive drops shows up.
        longest = run = 0
        for v in verdicts:
            run = run + 1 if v == DROP else 0
            longest = max(longest, run)
        assert longest >= 3

    def test_edges_have_independent_state(self):
        model = GilbertElliottLoss(
            p_enter_burst=0.5, p_exit_burst=0.1, loss_bad=1.0, seed=5
        )
        for r in range(1, 50):
            model.apply(make_msg(Field(1, 4), src=0, dst=1), r)
            model.apply(make_msg(Field(1, 4), src=2, dst=3), r)
        assert (0, 1) in model._bad and (2, 3) in model._bad


class TestBitCorruption:
    def test_corruption_preserves_bit_charge(self):
        model = BitCorruption(1.0, seed=0)
        msg = make_msg((Field(3, 8), Field(250, 256), True))
        verdict, out = model.apply(msg, 1)
        assert verdict == CORRUPT
        assert out.bits == msg.bits
        assert out.src == msg.src and out.dst == msg.dst

    def test_corrupted_fields_stay_in_domain(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            field = Field(5, 11)
            out = _corrupt_payload(field, rng)
            assert 0 <= out.value < 11
            assert out.value != 5
            assert out.domain == 11

    def test_trivial_domain_untouched(self):
        rng = np.random.default_rng(7)
        field = Field(0, 1)
        assert _corrupt_payload(field, rng) is field

    def test_bools_flip_and_structure_survives(self):
        rng = np.random.default_rng(7)
        payload = (Field(1, 4), [True, None], "tag")
        out = _corrupt_payload(payload, rng)
        assert isinstance(out, tuple) and len(out) == 3
        assert out[1][0] is False
        assert out[1][1] is None
        assert out[2] == "tag"

    def test_p_zero_is_identity(self):
        model = BitCorruption(0.0, seed=0)
        msg = make_msg(Field(3, 8))
        verdict, out = model.apply(msg, 1)
        assert verdict == DELIVER and out is msg


class TestBoundedDelay:
    def test_delay_holds_then_releases_within_bound(self):
        model = BoundedDelay(1.0, max_delay=3, seed=0)
        msg = make_msg(Field(1, 4))
        verdict, out = model.apply(msg, 5)
        assert verdict == DELAY and out is None
        assert model.pending()
        released = []
        for r in range(6, 10):
            released.extend(model.release(r))
        assert released == [msg]
        assert not model.pending()

    def test_release_is_empty_without_delays(self):
        model = BoundedDelay(0.0, seed=0)
        msg = make_msg(Field(1, 4))
        assert model.apply(msg, 1) == (DELIVER, msg)
        assert model.release(2) == []


class TestCompositeFaults:
    def test_corrupt_then_drop_chains(self):
        model = CompositeFaults(
            [BitCorruption(1.0), BernoulliLoss(1.0)], seed=0
        )
        model.bind(np.random.SeedSequence(0))
        verdict, out = model.apply(make_msg(Field(1, 4)), 1)
        assert verdict == DROP and out is None

    def test_corrupt_survives_chain_when_not_dropped(self):
        model = CompositeFaults(
            [BitCorruption(1.0), BernoulliLoss(0.0)], seed=0
        )
        model.bind(np.random.SeedSequence(0))
        msg = make_msg(Field(1, 4))
        verdict, out = model.apply(msg, 1)
        assert verdict == CORRUPT
        assert out.bits == msg.bits

    def test_pending_aggregates_children(self):
        delay = BoundedDelay(1.0, max_delay=2)
        model = CompositeFaults([delay], seed=0)
        model.bind(np.random.SeedSequence(0))
        model.apply(make_msg(Field(1, 4)), 1)
        assert model.pending()

    def test_describe_mentions_every_model(self):
        model = CompositeFaults([BernoulliLoss(0.1), BitCorruption(0.2)])
        text = model.describe()
        assert "bernoulli" in text and "corruption" in text
