"""Unit tests for crash-stop / crash-recovery schedules."""

import pytest

from repro.faults.crash import CrashSchedule, CrashSpec, random_crash_schedule


class TestCrashSpec:
    def test_crash_stop_covers_everything_after(self):
        spec = CrashSpec(3, crash_round=5)
        assert not spec.down_in(4)
        assert spec.down_in(5)
        assert spec.down_in(10**6)

    def test_crash_recovery_window(self):
        spec = CrashSpec(3, crash_round=5, recover_round=8)
        assert [spec.down_in(r) for r in range(4, 9)] == [
            False, True, True, True, False,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSpec(0, crash_round=0)
        with pytest.raises(ValueError):
            CrashSpec(0, crash_round=5, recover_round=5)


class TestCrashSchedule:
    def test_is_down_and_forever_down(self):
        sched = CrashSchedule([
            CrashSpec(1, 3, 6),
            CrashSpec(2, 4),
        ])
        assert sched.is_down(1, 3) and not sched.is_down(1, 6)
        assert sched.is_down(2, 4)
        assert not sched.is_forever_down(1, 100)
        assert sched.is_forever_down(2, 4)
        assert not sched.is_forever_down(2, 3)

    def test_transitions(self):
        sched = CrashSchedule([CrashSpec(1, 3, 6), CrashSpec(2, 3)])
        assert sorted(sched.transitions(3)) == [(1, "crash"), (2, "crash")]
        assert sched.transitions(6) == [(1, "recover")]
        assert sched.transitions(5) == []

    def test_affected_nodes_and_len(self):
        sched = CrashSchedule([CrashSpec(4, 1), CrashSpec(2, 1, 3)])
        assert sched.affected_nodes() == [2, 4]
        assert len(sched) == 2

    def test_repeated_outages_for_one_node(self):
        sched = CrashSchedule([CrashSpec(0, 2, 4), CrashSpec(0, 7, 9)])
        assert [sched.is_down(0, r) for r in range(1, 10)] == [
            False, True, True, False, False, False, True, True, False,
        ]


class TestRandomSchedule:
    def test_deterministic_for_a_seed(self):
        a = random_crash_schedule(20, 0.3, horizon=10, seed=5)
        b = random_crash_schedule(20, 0.3, horizon=10, seed=5)
        assert a.specs == b.specs
        assert len(a) == 6  # 30% of 20

    def test_protect_is_honored(self):
        sched = random_crash_schedule(
            10, 1.0, horizon=5, seed=1, protect=(0, 3)
        )
        assert 0 not in sched.affected_nodes()
        assert 3 not in sched.affected_nodes()
        assert len(sched) == 8

    def test_outage_rounds_makes_recoveries(self):
        sched = random_crash_schedule(
            10, 0.5, horizon=5, seed=2, outage_rounds=4
        )
        assert all(
            spec.recover_round == spec.crash_round + 4 for spec in sched.specs
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            random_crash_schedule(10, 1.5, horizon=5)
        with pytest.raises(ValueError):
            random_crash_schedule(10, 0.5, horizon=0)
