"""Tests for the reliable-link resilience layer under injected faults."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import bfs_with_echo
from repro.congest.encoding import Field
from repro.congest.errors import CongestError
from repro.faults import (
    BernoulliLoss,
    BitCorruption,
    BoundedDelay,
    CompositeFaults,
    CrashSchedule,
    CrashSpec,
    GilbertElliottLoss,
    resilient_bfs,
    resilient_convergecast,
    resilient_leader,
)
from repro.faults.resilience import frame_checksum


class TestResilientBFS:
    def test_correct_under_bernoulli_loss(self, small_network):
        truth = small_network.distances_from(0)
        res, run = resilient_bfs(
            small_network,
            0,
            fault_model=BernoulliLoss(0.05),
            seed=0,
            fault_seed=7,
        )
        assert res.dist == truth
        assert run.fault_stats.dropped > 0

    def test_virtual_rounds_match_faultless_rounds(self, grid45):
        baseline = bfs_with_echo(grid45, 0, seed=0)
        res, run = resilient_bfs(
            grid45, 0, fault_model=BernoulliLoss(0.05), seed=0, fault_seed=7
        )
        assert run.virtual_rounds == baseline.rounds
        assert res.dist == grid45.distances_from(0)

    def test_overhead_is_never_free(self, grid45):
        baseline = bfs_with_echo(grid45, 0, seed=0)
        _, run = resilient_bfs(
            grid45, 0, fault_model=BernoulliLoss(0.1), seed=0, fault_seed=1
        )
        assert run.overhead_vs(baseline.rounds) > 1.0

    def test_corruption_detected_by_checksum(self, grid45):
        res, run = resilient_bfs(
            grid45, 0, fault_model=BitCorruption(0.1), seed=0, fault_seed=7
        )
        assert run.fault_stats.corrupted > 0
        assert run.discarded_frames > 0
        assert res.dist == grid45.distances_from(0)

    def test_survives_reordering_delay(self, grid45):
        res, run = resilient_bfs(
            grid45,
            0,
            fault_model=BoundedDelay(0.2, max_delay=3),
            seed=0,
            fault_seed=7,
        )
        assert run.fault_stats.delayed > 0
        assert res.dist == grid45.distances_from(0)

    def test_survives_bursts_and_composites(self, petersen):
        for model in (
            GilbertElliottLoss(seed=3),
            CompositeFaults(
                [BernoulliLoss(0.03), BitCorruption(0.05), BoundedDelay(0.1)]
            ),
        ):
            res, _ = resilient_bfs(
                petersen, 0, fault_model=model, seed=0, fault_seed=5
            )
            assert res.dist == petersen.distances_from(0)

    def test_survives_crash_recovery(self, grid45):
        sched = CrashSchedule([CrashSpec(5, 4, 12), CrashSpec(10, 20, 30)])
        res, _ = resilient_bfs(
            grid45,
            0,
            fault_model=BernoulliLoss(0.02),
            crash_schedule=sched,
            seed=0,
            fault_seed=3,
        )
        assert res.dist == grid45.distances_from(0)

    def test_deterministic_given_seeds(self, path8):
        runs = [
            resilient_bfs(
                path8, 0, fault_model=BernoulliLoss(0.1), seed=0, fault_seed=2
            )
            for _ in range(2)
        ]
        assert runs[0][0].dist == runs[1][0].dist
        assert runs[0][1].rounds == runs[1][1].rounds
        assert (
            runs[0][1].fault_stats.dropped == runs[1][1].fault_stats.dropped
        )


class TestResilientConvergecast:
    def test_correct_under_loss(self, small_network):
        tree = bfs_with_echo(small_network, 0, seed=0)
        # Domain 16 keeps the payload inside even the smallest default
        # bandwidth here (star(7): 28 bits) after the 20-bit header.
        values = {v: (7 * v + 3) % 16 for v in small_network.nodes()}
        agg, run = resilient_convergecast(
            small_network,
            tree,
            values,
            max,
            16,
            fault_model=BernoulliLoss(0.05),
            seed=0,
            fault_seed=11,
        )
        assert agg == max(values.values())
        assert run.giveups == 0

    def test_halt_flag_cannot_outrun_final_data(self):
        # Regression: a node whose inner program halted used to advertise
        # the halt while its last data frame was still unacked; the
        # receiver skipped that virtual round and acked the retransmission
        # without delivering it, losing the root's aggregate forever.
        net = topologies.grid(4, 4)
        tree = bfs_with_echo(net, 0, seed=0)
        values = {v: (7 * v + 3) % 256 for v in net.nodes()}
        agg, run = resilient_convergecast(
            net,
            tree,
            values,
            max,
            256,
            fault_model=BernoulliLoss(0.01),
            seed=0,
            fault_seed=501,
            max_rounds=2000,
        )
        assert agg == max(values.values())

    def test_drained_halted_node_announces_before_leaving(self):
        # Regression: leaf-side nodes that drained and halted used to go
        # silent without ever advertising the halt, so slower neighbors
        # opened a new virtual round toward a departed peer and stalled
        # at the round limit.
        net = topologies.path(3, bandwidth=48)
        tree = bfs_with_echo(net, 0, seed=0)
        values = {v: v % 16 for v in net.nodes()}
        for fault_seed in (1, 11, 15, 17, 28):
            agg, _ = resilient_convergecast(
                net,
                tree,
                values,
                max,
                256,
                fault_model=BernoulliLoss(0.05),
                seed=0,
                fault_seed=fault_seed,
                max_rounds=2000,
            )
            assert agg == max(values.values())


class TestResilientLeader:
    def test_elects_max_id_under_loss(self, small_network):
        leader, run = resilient_leader(
            small_network,
            fault_model=BernoulliLoss(0.1),
            seed=0,
            fault_seed=13,
        )
        assert leader == small_network.n - 1
        assert run.rounds > 0


class TestFraming:
    def test_checksum_detects_field_changes(self):
        parts = (Field(3, 16), True, (Field(5, 256),), False, Field(2, 16))
        tampered = (Field(3, 16), True, (Field(6, 256),), False, Field(2, 16))
        assert frame_checksum(parts) != frame_checksum(tampered)

    def test_checksum_detects_flag_flips(self):
        parts = (Field(3, 16), True, None, False, None)
        flipped = (Field(3, 16), True, None, True, None)
        assert frame_checksum(parts) != frame_checksum(flipped)

    def test_header_needs_bandwidth_headroom(self):
        # path(3) default bandwidth is 24 bits; the 20-bit resilience
        # header leaves 4 — too little for a 9-bit upcast payload.
        net = topologies.path(3)
        tree = bfs_with_echo(net, 0, seed=0)
        values = {v: v for v in net.nodes()}
        with pytest.raises(CongestError):
            resilient_convergecast(
                net, tree, values, max, 256, seed=0, fault_seed=0
            )

    def test_wrapper_parameter_validation(self):
        from repro.congest.program import IdleProgram
        from repro.faults import ResilientProgram

        with pytest.raises(ValueError):
            ResilientProgram(IdleProgram(), timeout=0)
        with pytest.raises(ValueError):
            ResilientProgram(IdleProgram(), timeout=4, max_backoff=2)
        with pytest.raises(ValueError):
            ResilientProgram(IdleProgram(), max_retries=0)
