"""Regression: two same-source messages delivered in one round.

A delayed message can land in the same round as a fresh message from the
same sender (delay reorders traffic on an edge).  The Inbox used to keep
only the *last* message per source in its by-source index, silently
hiding the older one from ``from_node``.  Now ``from_node`` returns the
first (oldest-sent) match and ``all_from_node`` exposes every match.
"""

from repro.congest import topologies
from repro.congest.encoding import Field
from repro.congest.messages import Inbox, Message
from repro.congest.program import NodeProgram
from repro.faults import FaultyEngine
from repro.faults.models import DELAY, DELIVER, ChannelFaultModel


class DelayFirstMessage(ChannelFaultModel):
    """Deterministically hold the very first message for one round."""

    def __init__(self):
        super().__init__(seed=0)
        self._held = None
        self._held_due = None
        self._seen = 0

    def apply(self, msg, round_no):
        self._seen += 1
        if self._seen == 1:
            self._held = msg
            self._held_due = round_no + 1
            return DELAY, None
        return DELIVER, msg

    def release(self, round_no):
        if self._held is not None and round_no >= self._held_due:
            msg, self._held = self._held, None
            return [msg]
        return []

    def pending(self):
        return self._held is not None


class SequenceSender(NodeProgram):
    """Node 0 sends 1, 2, 3... to node 1, one per round, then halts."""

    always_active = True

    def __init__(self, node, count=3):
        self.node = node
        self.count = count
        self.next_value = 1
        self.received = []

    def _push(self, ctx):
        if self.node != 0:
            return
        if self.next_value > self.count:
            ctx.halt()
            return
        ctx.send(1, Field(self.next_value, 16))
        self.next_value += 1

    def on_start(self, ctx):
        self._push(ctx)

    def on_round(self, ctx, inbox):
        if self.node == 1:
            first = inbox.from_node(0)
            self.received.append((
                ctx.round,
                first.value if first is not None else None,
                tuple(m.value for m in inbox.all_from_node(0)),
            ))
            if sum(len(batch) for _, _, batch in self.received) >= self.count:
                ctx.halt(output=tuple(self.received))
                return
        self._push(ctx)


class TestDelayedDuplicates:
    def test_from_node_returns_first_and_all_from_node_returns_every(self):
        net = topologies.path(2)
        programs = {v: SequenceSender(v) for v in net.nodes()}
        engine = FaultyEngine(
            net, programs, fault_model=DelayFirstMessage(), seed=0,
        )
        engine.run()
        received = programs[1].received
        # Round 1: message "1" was withheld, nothing arrived.
        # Round 2: the released "1" plus the fresh "2" arrive together.
        by_round = {r: (first, batch) for r, first, batch in received}
        assert by_round[1] == (None, ())
        first, batch = by_round[2]
        assert first == 1, "from_node must return the oldest message"
        assert batch == (1, 2), "all_from_node must return every message"
        assert by_round[3] == (3, (3,))


class TestInboxIndex:
    def test_duplicate_sources_all_preserved(self):
        msgs = [
            Message(src=4, dst=0, payload=10, bits=5, round_sent=1),
            Message(src=7, dst=0, payload=20, bits=6, round_sent=1),
            Message(src=4, dst=0, payload=30, bits=6, round_sent=1),
        ]
        inbox = Inbox(msgs)
        assert inbox.from_node(4) is msgs[0]
        assert inbox.all_from_node(4) == [msgs[0], msgs[2]]
        assert inbox.all_from_node(7) == [msgs[1]]
        assert inbox.all_from_node(9) == []
        assert inbox.from_node(9) is None
