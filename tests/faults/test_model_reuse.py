"""Regression tests: re-binding a fault model restores determinism.

The module contract of :mod:`repro.faults.models` is "same seed ⇒
identical fault schedule".  Before the ``bind()`` reset existed, a
reused :class:`GilbertElliottLoss` carried its per-edge burst states —
and a reused :class:`BoundedDelay` its *undelivered held messages* —
from one run into the next, so the second run of a reused instance saw
a different (and polluted) schedule than a fresh instance with the same
seed.  These tests pin the fix at three levels: raw verdict streams,
the chained :class:`CompositeFaults` reset guarantee, and full
:class:`~repro.faults.engine.FaultyEngine` runs.
"""

import numpy as np

from repro.congest.encoding import Field
from repro.congest.messages import Message
from repro.congest import topologies
from repro.congest.algorithms.bfs import BFSEchoProgram
from repro.faults.engine import run_with_faults
from repro.faults.resilience import resilient_bfs
from repro.faults.models import (
    BernoulliLoss,
    BitCorruption,
    BoundedDelay,
    CompositeFaults,
    GilbertElliottLoss,
)


def traffic(rounds=12, edges=((0, 1), (1, 0), (1, 2), (2, 3))):
    """A deterministic multi-edge message schedule."""
    msgs = []
    for r in range(1, rounds + 1):
        for src, dst in edges:
            msgs.append((r, Message.make(src, dst, Field(r % 8, 8), r)))
    return msgs


def verdict_stream(model, seed, extra_rounds=8):
    """Bind ``model`` to ``seed`` and drive the deterministic traffic.

    Returns one flat list capturing everything observable: released
    messages at the top of each round, then per-message verdicts (with
    the delivered payload, so corruption schedules are compared too).
    """
    model.bind(np.random.SeedSequence(seed))
    msgs = traffic()
    last_round = max(r for r, _ in msgs)
    stream = []
    for r in range(1, last_round + extra_rounds + 1):
        for released in model.release(r):
            stream.append(("release", r, released.src, released.dst,
                           released.payload))
        for round_no, msg in msgs:
            if round_no != r:
                continue
            verdict, out = model.apply(msg, r)
            stream.append(
                (verdict, r, msg.src, msg.dst,
                 out.payload if out is not None else None)
            )
    return stream


MODELS = [
    lambda: BernoulliLoss(0.3),
    lambda: GilbertElliottLoss(p_enter_burst=0.4, p_exit_burst=0.3,
                               loss_bad=0.9),
    lambda: BitCorruption(0.4),
    lambda: BoundedDelay(0.5, max_delay=3),
    lambda: CompositeFaults([
        GilbertElliottLoss(p_enter_burst=0.3, loss_bad=0.8),
        BitCorruption(0.3),
        BoundedDelay(0.4, max_delay=2),
    ]),
]


class TestRebindDeterminism:
    def test_bind_twice_identical_verdict_stream(self):
        """bind(s); run; bind(s); run — byte-identical schedules."""
        for make in MODELS:
            model = make()
            first = verdict_stream(model, seed=7)
            second = verdict_stream(model, seed=7)
            assert first == second, type(model).__name__

    def test_reused_instance_matches_fresh_instance(self):
        """A re-bound instance behaves exactly like a fresh one."""
        for make in MODELS:
            reused = make()
            verdict_stream(reused, seed=3)  # pollute with a first run
            assert verdict_stream(reused, seed=3) == verdict_stream(
                make(), seed=3
            ), type(reused).__name__

    def test_gilbert_elliott_burst_state_cleared(self):
        model = GilbertElliottLoss(p_enter_burst=0.9, p_exit_burst=0.05,
                                   loss_bad=1.0)
        verdict_stream(model, seed=1)
        assert model._bad  # the run drove edges into burst states
        model.bind(np.random.SeedSequence(1))
        assert model._bad == {}

    def test_bounded_delay_no_cross_run_leakage(self):
        """Held messages from run 1 must never surface in run 2."""
        model = BoundedDelay(1.0, max_delay=5)
        model.bind(np.random.SeedSequence(0))
        # Every message is delayed; release nothing, so state is held.
        for r, msg in traffic(rounds=4):
            model.apply(msg, r)
        assert model.pending()
        model.bind(np.random.SeedSequence(0))
        assert not model.pending()
        assert all(model.release(r) == [] for r in range(1, 40))

    def test_composite_resets_chained_models(self):
        inner_delay = BoundedDelay(1.0, max_delay=5)
        inner_burst = GilbertElliottLoss(p_enter_burst=0.9, loss_bad=1.0)
        model = CompositeFaults([inner_burst, inner_delay])
        model.bind(np.random.SeedSequence(2))
        for r, msg in traffic(rounds=6):
            model.apply(msg, r)
        model.bind(np.random.SeedSequence(2))
        assert not model.pending()
        assert inner_delay._held == {}
        assert inner_burst._bad == {}

    def test_composite_children_reseeded_identically(self):
        """Child seeds must not drift across re-binds (spawn counter)."""
        model = CompositeFaults([BernoulliLoss(0.5), BernoulliLoss(0.5)])
        seq = np.random.SeedSequence(11)
        model.bind(seq)
        first = [m.rng.random(8).tolist() for m in model.models]
        model.bind(seq)
        second = [m.rng.random(8).tolist() for m in model.models]
        assert first == second


class TestEngineRunReuse:
    def test_reused_model_reproduces_resilient_run(self):
        """Two resilient runs sharing one burst-model instance agree.

        Raw BFS-echo cannot survive drops (that is what the resilience
        layer is for), so the lossy engine regression runs through
        :func:`resilient_bfs` exactly as E19 does — reusing one
        GilbertElliottLoss instance across both calls.
        """
        net = topologies.grid(3, 3)
        model = GilbertElliottLoss(p_enter_burst=0.3, loss_bad=0.7)

        def one_run():
            return resilient_bfs(
                net, 0, fault_model=model, seed=5, fault_seed=17
            )

        res1, run1 = one_run()
        res2, run2 = one_run()
        assert res1.rounds == res2.rounds
        assert res1.dist == res2.dist
        assert run1.fault_stats.dropped == run2.fault_stats.dropped
        assert (
            run1.fault_stats.per_round_drops
            == run2.fault_stats.per_round_drops
        )

    def test_reused_delay_model_run_identity(self):
        net = topologies.grid(3, 3)
        model = BoundedDelay(0.4, max_delay=2)

        def one_run():
            result, _, stats = run_with_faults(
                net,
                {v: BFSEchoProgram(v, 0) for v in net.nodes()},
                fault_model=model,
                seed=1,
                fault_seed=9,
            )
            return result, stats

        res1, stats1 = one_run()
        res2, stats2 = one_run()
        assert res1.rounds == res2.rounds
        assert res1.outputs == res2.outputs
        assert stats1.delayed == stats2.delayed
        model.bind(np.random.SeedSequence(0))
        assert not model.pending()
