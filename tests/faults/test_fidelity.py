"""Tests for the state-transfer fidelity decay + boosting re-amplification."""

import pytest

from repro.congest import topologies
from repro.congest.algorithms.bfs import bfs_with_echo
from repro.faults.fidelity import FidelityModel, reamplified_transfer


class TestFidelityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FidelityModel(-0.1)
        with pytest.raises(ValueError):
            FidelityModel(1.0)

    def test_lossless_is_perfect(self, path8):
        model = FidelityModel(0.0)
        assert model.transfer_fidelity(path8, num_chunks=10) == 1.0

    def test_fidelity_decays_with_loss_and_size(self, path8):
        f1 = FidelityModel(0.01).transfer_fidelity(path8, 4)
        f2 = FidelityModel(0.05).transfer_fidelity(path8, 4)
        f3 = FidelityModel(0.05).transfer_fidelity(path8, 8)
        assert 1.0 > f1 > f2 > f3 > 0.0

    def test_delivery_count(self, path8):
        model = FidelityModel(0.1)
        # Every non-root node receives every chunk once: 7 * 4.
        assert model.deliveries(path8, 4) == 28


class TestReamplifiedTransfer:
    def test_lossless_needs_one_attempt(self, petersen):
        tree = bfs_with_echo(petersen, 0, seed=0)
        out = reamplified_transfer(
            petersen, tree, register_value=0xAB, q_bits=8, loss_p=0.0, seed=0
        )
        assert out.repetitions == 1
        assert out.fidelity == 1.0
        assert out.total_rounds == out.base_rounds

    def test_repetitions_restore_confidence(self, petersen):
        tree = bfs_with_echo(petersen, 0, seed=0)
        out = reamplified_transfer(
            petersen,
            tree,
            register_value=0x5A5A,
            q_bits=32,
            loss_p=0.02,
            delta=0.01,
            seed=0,
        )
        assert out.fidelity < 1.0
        assert out.repetitions > 1
        assert out.achieved_failure <= 0.01
        assert out.total_rounds == out.repetitions * out.base_rounds

    def test_repetitions_grow_with_loss(self, petersen):
        tree = bfs_with_echo(petersen, 0, seed=0)
        reps = [
            reamplified_transfer(
                petersen, tree, 0x11, q_bits=16, loss_p=p, seed=0
            ).repetitions
            for p in (0.0, 0.02, 0.05)
        ]
        assert reps[0] < reps[1] < reps[2]

    def test_underflow_is_an_error(self):
        net = topologies.grid(5, 5)
        tree = bfs_with_echo(net, 0, seed=0)
        with pytest.raises(ValueError):
            reamplified_transfer(
                net, tree, 0x11, q_bits=4096, loss_p=0.9, seed=0
            )
