"""Tests for the fault-injection & resilience subsystem."""
