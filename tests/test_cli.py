"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E16" in out

    def test_run_one_experiment(self, capsys):
        assert main(["run", "E15"]) == 0
        out = capsys.readouterr().out
        assert "E15" in out

    def test_run_lowercase_accepted(self, capsys):
        assert main(["run", "e15"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_seed_flag(self, capsys):
        assert main(["run", "E15", "--seed", "3"]) == 0


class TestTraceCommand:
    def test_trace_prints_cost_breakdown(self, capsys):
        assert main(["trace", "E15"]) == 0
        out = capsys.readouterr().out
        assert "per-phase cost breakdown" in out
        assert "(total charged)" in out
        assert "query batches" in out

    def test_trace_lowercase_accepted(self, capsys):
        assert main(["trace", "e15"]) == 0

    def test_trace_jsonl_written_and_validated(self, capsys, tmp_path):
        from repro.obs.jsonl import validate_jsonl

        path = str(tmp_path / "trace.jsonl")
        assert main(["trace", "E15", "--jsonl", path]) == 0
        out = capsys.readouterr().out
        assert "records valid" in out
        counts = validate_jsonl(path)
        assert counts["meta"] == 1

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err


class TestVerifyCommand:
    def test_verify_subset_serial(self, capsys):
        assert main(["verify", "--only", "E15", "E17"]) == 0
        out = capsys.readouterr().out
        assert "E15" in out and "E17" in out
        assert "2/2 criteria ok" in out

    def test_verify_parallel_matches_serial_output(self, capsys):
        assert main(["verify", "--only", "E15", "E17"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["verify", "--jobs", "2", "--only", "E15", "E17"]) == 0
        parallel_out = capsys.readouterr().out
        # Identical verdict lines; only the jobs= footer differs.
        serial_lines = serial_out.splitlines()[:-1]
        parallel_lines = parallel_out.splitlines()[:-1]
        assert serial_lines == parallel_lines

    def test_verify_lowercase_accepted(self, capsys):
        assert main(["verify", "--only", "e15"]) == 0

    def test_verify_unknown_experiment(self, capsys):
        assert main(["verify", "--only", "E99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_verify_resume_checkpoint(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        assert main(["verify", "--only", "E15", "--resume", ckpt]) == 0
        capsys.readouterr()
        import json

        records = [
            json.loads(line)
            for line in open(ckpt).read().splitlines()
        ]
        assert records[0]["schema"] == "repro-checkpoint/1"
        assert records[1]["key"] == "E15"
        # Resuming replays without re-running (and still exits 0).
        assert main(["verify", "--only", "E15", "--resume", ckpt]) == 0

    def test_verify_jsonl_merged_trace(self, capsys, tmp_path):
        from repro.obs.jsonl import validate_jsonl

        path = str(tmp_path / "merged.jsonl")
        assert main(
            ["verify", "--jobs", "2", "--only", "E15", "E17",
             "--jsonl", path]
        ) == 0
        out = capsys.readouterr().out
        assert "records valid" in out
        assert validate_jsonl(path)["meta"] == 1

    def test_verify_timeout_failure_exits_nonzero(self, capsys):
        assert main(
            ["verify", "--only", "E13", "--timeout", "0.05",
             "--retries", "0", "--jobs", "1"]
        ) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out


class TestBoundsCommand:
    def test_bounds_renders(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "meeting scheduling" in out

    def test_bounds_custom_parameters(self, capsys):
        assert main(["bounds", "--n", "256", "--k", "1024",
                     "--diameter", "4"]) == 0
        out = capsys.readouterr().out
        assert "n=256" in out
