"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E16" in out

    def test_run_one_experiment(self, capsys):
        assert main(["run", "E15"]) == 0
        out = capsys.readouterr().out
        assert "E15" in out

    def test_run_lowercase_accepted(self, capsys):
        assert main(["run", "e15"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_seed_flag(self, capsys):
        assert main(["run", "E15", "--seed", "3"]) == 0


class TestTraceCommand:
    def test_trace_prints_cost_breakdown(self, capsys):
        assert main(["trace", "E15"]) == 0
        out = capsys.readouterr().out
        assert "per-phase cost breakdown" in out
        assert "(total charged)" in out
        assert "query batches" in out

    def test_trace_lowercase_accepted(self, capsys):
        assert main(["trace", "e15"]) == 0

    def test_trace_jsonl_written_and_validated(self, capsys, tmp_path):
        from repro.obs.jsonl import validate_jsonl

        path = str(tmp_path / "trace.jsonl")
        assert main(["trace", "E15", "--jsonl", path]) == 0
        out = capsys.readouterr().out
        assert "records valid" in out
        counts = validate_jsonl(path)
        assert counts["meta"] == 1

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err


class TestBoundsCommand:
    def test_bounds_renders(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "meeting scheduling" in out

    def test_bounds_custom_parameters(self, capsys):
        assert main(["bounds", "--n", "256", "--k", "1024",
                     "--diameter", "4"]) == 0
        out = capsys.readouterr().out
        assert "n=256" in out
