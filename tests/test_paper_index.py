"""Tests for the paper-to-code registry."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.paper import REGISTRY, verify_registry, where_is


class TestRegistry:
    def test_every_reference_resolves(self):
        assert verify_registry() == []

    def test_core_results_present(self):
        for result in [
            "Lemma 2", "Lemma 3", "Lemma 5", "Lemma 6", "Lemma 7",
            "Theorem 8", "Corollary 9", "Lemma 10", "Lemma 12",
            "Corollary 14", "Theorem 17", "Theorem 18", "Lemma 20",
            "Lemma 21", "Lemma 22", "Lemma 23", "Lemma 24", "Lemma 25",
            "Corollary 26", "Lemma 27", "Corollary 28", "Lemma 29",
            "Corollary 30",
        ]:
            assert result in REGISTRY, f"{result} missing from the index"

    def test_experiments_exist(self):
        for entry in REGISTRY.values():
            if entry.experiment is not None:
                assert entry.experiment in ALL_EXPERIMENTS

    def test_where_is_lookup(self):
        entry = where_is("Theorem 8")
        assert "repro.core.framework.run_framework" in entry.implementations

    def test_unknown_result_raises(self):
        with pytest.raises(KeyError):
            where_is("Lemma 99")

    def test_statements_non_empty(self):
        assert all(entry.statement for entry in REGISTRY.values())

    def test_every_experiment_covered_by_some_result(self):
        covered = {
            entry.experiment
            for entry in REGISTRY.values()
            if entry.experiment is not None
        }
        # E16/E17 come from remarks/subroutines also present in the index.
        for experiment in ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                           "E9", "E10", "E11", "E12", "E13", "E14", "E15",
                           "E16"]:
            assert experiment in covered
