"""Reproduction criteria as tests (the fast experiments only).

The heavy sweeps live under ``benchmarks/``; this module keeps the cheap
experiments' criteria inside the ordinary test suite so a plain
``pytest tests/`` already certifies a representative slice of the
reproduction.
"""

import pytest

from repro.experiments.runner import (
    CRITERIA,
    RunRequest,
    verify_all,
    verify_experiment,
)

FAST_EXPERIMENTS = ["E1", "E4", "E5", "E6", "E14", "E15", "E16", "E17"]


class TestCriteria:
    @pytest.mark.parametrize("experiment", FAST_EXPERIMENTS)
    def test_fast_experiment_reproduces(self, experiment):
        verdict = verify_experiment(RunRequest(experiments=(experiment,)))
        assert verdict.passed, verdict.detail

    def test_every_experiment_has_a_criterion(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert set(CRITERIA) == set(ALL_EXPERIMENTS)

    def test_verify_all_subset(self):
        verdicts = verify_all(RunRequest(experiments=("E15", "E17")))
        assert [v.experiment for v in verdicts] == ["E15", "E17"]
        assert all(v.passed for v in verdicts)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            verify_experiment("E99")
