"""The parallel verification sweep: the bit-identity contract and the
merged observability products.

Everything here sticks to the cheap experiments (sub-100ms each in
quick mode) so the whole module stays test-suite friendly while still
exercising real multi-process runs.
"""

import json

import pytest

from repro.experiments.runner import RunRequest, Verdict, verify_all
from repro.obs.jsonl import validate_jsonl
from repro.parallel import TaskFailure, verify_parallel

FAST = ["E4", "E5", "E14", "E15", "E17"]


def _tuples(verdicts):
    return [(v.experiment, v.passed, v.detail) for v in verdicts]


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_parallel_matches_serial(self, jobs):
        request = RunRequest(experiments=tuple(FAST))
        serial = verify_all(request)
        parallel = verify_all(request.replace(jobs=jobs))
        assert _tuples(parallel) == _tuples(serial)
        assert all(isinstance(v, Verdict) for v in parallel)

    def test_nonzero_seed_matches_too(self):
        only = ["E15", "E17"]
        request = RunRequest(experiments=tuple(only), seed=3)
        serial = verify_all(request)
        parallel = verify_all(request.replace(jobs=2))
        assert _tuples(parallel) == _tuples(serial)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="E99"):
            verify_parallel(only=["E99"], jobs=2)


class TestFailureContainment:
    def test_timeout_yields_taskfailure_in_slot(self):
        sweep = verify_parallel(
            only=["E15", "E13"], jobs=2, timeout=0.05, retries=0
        )
        # E13 cannot finish in 50ms; E15 may or may not — every slot
        # must still be filled, and no exception may escape.
        assert len(sweep.verdicts) == 2
        assert any(isinstance(v, TaskFailure) for v in sweep.verdicts)
        for verdict in sweep.verdicts:
            if isinstance(verdict, TaskFailure):
                assert verdict.timed_out
                assert verdict in sweep.failures


class TestObservabilityMerge:
    def test_merged_products_equal_single_process_run(self, tmp_path):
        from repro.experiments import ALL_EXPERIMENTS
        from repro.obs import MetricsSink, Recorder, install

        only = ["E15", "E17"]
        merged_path = str(tmp_path / "merged.jsonl")
        sweep = verify_parallel(only=only, jobs=2, jsonl_path=merged_path)

        # One process, one sink, both experiments in sequence.
        single = MetricsSink()
        recorder = Recorder([single])
        with install(recorder):
            for name in only:
                ALL_EXPERIMENTS[name].run(quick=True, seed=0)
        recorder.close()

        assert sweep.metrics is not None
        assert sweep.metrics.summary() == single.summary()

    def test_merged_stream_is_valid_and_complete(self, tmp_path):
        merged_path = str(tmp_path / "merged.jsonl")
        sweep = verify_parallel(
            only=["E15", "E17"], jobs=2, jsonl_path=merged_path
        )
        assert sweep.jsonl_path == merged_path
        counts = validate_jsonl(merged_path)
        assert counts["meta"] == 1
        shard_total = 0
        for name in ["E15", "E17"]:
            shard_counts = validate_jsonl(
                str(tmp_path / "merged.jsonl.d" / f"{name}.jsonl")
            )
            shard_total += sum(shard_counts.values()) - 1  # minus meta
        assert sum(counts.values()) - 1 == shard_total


class TestCheckpointResume:
    def test_completed_experiments_replay_from_the_file(self, tmp_path):
        ckpt = str(tmp_path / "verify.ckpt.jsonl")
        first = verify_parallel(only=["E15", "E17"], jobs=2, checkpoint=ckpt)
        assert _tuples(first.verdicts) == _tuples(
            verify_all(RunRequest(experiments=("E15", "E17")))
        )

        # Tamper with the recorded E15 detail: if the resumed sweep
        # *replays* (rather than re-runs) it, the sentinel surfaces.
        lines = open(ckpt).read().splitlines()
        tampered = []
        for line in lines:
            record = json.loads(line)
            if record.get("key") == "E15":
                record["result"]["verdict"]["detail"] = "replayed-from-ckpt"
            tampered.append(json.dumps(record))
        with open(ckpt, "w") as fh:
            fh.write("\n".join(tampered) + "\n")

        second = verify_parallel(
            only=["E14", "E15", "E17"], jobs=2, checkpoint=ckpt
        )
        by_name = {v.experiment: v for v in second.verdicts}
        assert by_name["E15"].detail == "replayed-from-ckpt"
        # The experiment absent from the checkpoint really ran.
        assert by_name["E14"].detail == verify_all(
            RunRequest(experiments=("E14",))
        )[0].detail

    def test_resume_under_different_parameters_rejected(self, tmp_path):
        ckpt = str(tmp_path / "verify.ckpt.jsonl")
        verify_parallel(only=["E15"], jobs=1, seed=0, checkpoint=ckpt)
        with pytest.raises(ValueError, match="context"):
            verify_parallel(only=["E15"], jobs=1, seed=1, checkpoint=ckpt)


class TestRunnerValidation:
    def test_missing_criterion_reported_before_running(self, monkeypatch):
        from repro.experiments import ALL_EXPERIMENTS
        from repro.experiments.runner import verify_experiment

        # An "E98" registered without a criterion: the drift this guards
        # against.  The stub has no .run, so reaching it would raise
        # AttributeError — the KeyError proves validation is up front.
        monkeypatch.setitem(ALL_EXPERIMENTS, "E98", object())
        with pytest.raises(KeyError, match="no reproduction criterion"):
            verify_experiment(RunRequest(experiments=("E98",)))

    def test_unknown_experiment_names_the_registry(self):
        from repro.experiments.runner import verify_experiment

        with pytest.raises(KeyError, match="available"):
            verify_experiment("E99")
