"""derive_seed: the documented contract, plus the collision regression.

The regression class: ``seed * 1000 + i`` aliased sweep coordinates
across adjacent root seeds — ``(seed=0, i=1000)`` and ``(seed=1, i=0)``
shared a fault stream.  These tests fail on that arithmetic and pin the
hash-based replacement.
"""

import pytest

from repro.parallel import derive_seed


class TestCollisionRegression:
    def test_the_old_arithmetic_did_collide(self):
        # Documents the bug being regression-tested: the pre-fix
        # derivation mapped these coordinates to the same stream.
        assert 0 * 1000 + 1000 == 1 * 1000 + 0

    def test_adjacent_seed_index_pairs_distinct(self):
        assert derive_seed(0, 1000) != derive_seed(1, 0)
        assert derive_seed(1, 1000) != derive_seed(2, 0)

    def test_fault_sweep_coordinates_distinct(self):
        # The exact coordinates faults.sweep derives with.
        a = derive_seed(0, "fault_sweep", "bfs", "bernoulli", 1000)
        b = derive_seed(1, "fault_sweep", "bfs", "bernoulli", 0)
        assert a != b

    def test_dense_grid_has_no_collisions(self):
        seeds = {
            derive_seed(s, i) for s in range(50) for i in range(50)
        }
        assert len(seeds) == 2500


class TestContract:
    def test_deterministic(self):
        assert derive_seed(7, "x", 3) == derive_seed(7, "x", 3)

    def test_pinned_values_are_stable(self):
        # Golden values: derive_seed must be stable across processes,
        # platforms, and releases (checkpoints and EXPERIMENTS.md
        # sweeps depend on it).  A failure here means the derivation
        # changed and every recorded sweep silently re-randomized.
        assert derive_seed(0, 1000) == 1221175062812160334
        assert derive_seed(1, 0) == 6097375986964779175

    def test_range_fits_every_rng(self):
        for coords in [(), (0,), ("a", 1, 0.5), (10**9,)]:
            seed = derive_seed(-3, *coords)
            assert 0 <= seed < 2**63

    def test_coordinate_types_are_tagged_apart(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")
        assert derive_seed(0, 1) != derive_seed(0, 1.0)
        assert derive_seed(0, True) != derive_seed(0, 1)

    def test_positions_are_separated(self):
        assert derive_seed(0, "a", "bc") != derive_seed(0, "ab", "c")
        assert derive_seed(0, 1, 23) != derive_seed(0, 12, 3)

    def test_root_seed_matters(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_unsupported_coordinate_type_rejected(self):
        with pytest.raises(TypeError):
            derive_seed(0, object())
