"""The process-pool executor: ordering, containment, checkpoint/resume.

Worker callables live at module level so they stay picklable under any
multiprocessing start method.  Execution counting goes through small
append-only log files — O_APPEND writes of one short line are atomic,
so concurrent workers cannot interleave records.
"""

import os
import time

import pytest

from repro.parallel import Task, TaskFailure, load_checkpoint, run_parallel


def _double(x):
    return x * 2


def _boom(message):
    raise ValueError(message)


def _sleepy(seconds):
    time.sleep(seconds)
    return "done"


def _logged(log, key, value):
    with open(log, "a") as fh:
        fh.write(key + "\n")
    return value


def _logged_fail_once(log, marker, key, value):
    """Fails on its first attempt (marker absent), succeeds after."""
    with open(log, "a") as fh:
        fh.write(key + "\n")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return value


def _executions(log):
    if not os.path.exists(log):
        return []
    with open(log) as fh:
        return [line.strip() for line in fh if line.strip()]


class TestOrderingAndFailures:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_results_come_back_in_task_order(self, jobs):
        tasks = [
            Task(key=f"t{i}", fn=_double, kwargs={"x": i}) for i in range(8)
        ]
        assert run_parallel(tasks, jobs=jobs) == [2 * i for i in range(8)]

    def test_failure_is_a_verdict_not_an_exception(self):
        tasks = [
            Task(key="ok1", fn=_double, kwargs={"x": 1}),
            Task(key="bad", fn=_boom, kwargs={"message": "kaput"}),
            Task(key="ok2", fn=_double, kwargs={"x": 2}),
        ]
        results = run_parallel(tasks, jobs=2, retries=0)
        assert results[0] == 2 and results[2] == 4
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.key == "bad"
        assert "kaput" in failure.error
        assert failure.attempts == 1
        assert not failure.timed_out

    def test_duplicate_keys_rejected(self):
        tasks = [
            Task(key="same", fn=_double, kwargs={"x": 1}),
            Task(key="same", fn=_double, kwargs={"x": 2}),
        ]
        with pytest.raises(ValueError, match="duplicate task keys"):
            run_parallel(tasks, jobs=1)


class TestTimeoutAndRetry:
    def test_timeout_terminates_and_reports(self):
        tasks = [Task(key="hang", fn=_sleepy, kwargs={"seconds": 30})]
        start = time.monotonic()
        results = run_parallel(tasks, jobs=1, timeout=0.3, retries=0)
        assert time.monotonic() - start < 10
        failure = results[0]
        assert isinstance(failure, TaskFailure)
        assert failure.timed_out
        assert "timeout" in failure.error

    def test_timeout_attempts_are_bounded(self):
        tasks = [Task(key="hang", fn=_sleepy, kwargs={"seconds": 30})]
        results = run_parallel(tasks, jobs=1, timeout=0.2, retries=1)
        assert isinstance(results[0], TaskFailure)
        assert results[0].attempts == 2

    def test_retry_recovers_a_flaky_task(self, tmp_path):
        log = str(tmp_path / "log")
        marker = str(tmp_path / "marker")
        tasks = [Task(
            key="flaky", fn=_logged_fail_once,
            kwargs={"log": log, "marker": marker, "key": "flaky",
                    "value": 42},
        )]
        assert run_parallel(tasks, jobs=1, retries=1) == [42]
        assert _executions(log) == ["flaky", "flaky"]

    def test_retries_zero_means_one_attempt(self, tmp_path):
        log = str(tmp_path / "log")
        marker = str(tmp_path / "marker")
        tasks = [Task(
            key="flaky", fn=_logged_fail_once,
            kwargs={"log": log, "marker": marker, "key": "flaky",
                    "value": 42},
        )]
        results = run_parallel(tasks, jobs=1, retries=0)
        assert isinstance(results[0], TaskFailure)
        assert _executions(log) == ["flaky"]


class TestCheckpointResume:
    def _task(self, log, key, value):
        return Task(
            key=key, fn=_logged,
            kwargs={"log": log, "key": key, "value": value},
        )

    def test_missing_checkpoint_means_nothing_completed(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "nope.jsonl")) == {}

    def test_resume_replays_completed_and_runs_the_rest(self, tmp_path):
        log = str(tmp_path / "log")
        ckpt = str(tmp_path / "ckpt.jsonl")
        first = [self._task(log, "a", 1), self._task(log, "b", 2)]
        assert run_parallel(first, jobs=2, checkpoint=ckpt) == [1, 2]
        assert sorted(_executions(log)) == ["a", "b"]

        grown = first + [self._task(log, "c", 3), self._task(log, "d", 4)]
        assert run_parallel(grown, jobs=2, checkpoint=ckpt) == [1, 2, 3, 4]
        # a and b replayed from the file; only c and d executed anew.
        assert sorted(_executions(log)) == ["a", "b", "c", "d"]

    def test_resume_after_kill_reruns_only_the_victim(self, tmp_path):
        log = str(tmp_path / "log")
        ckpt = str(tmp_path / "ckpt.jsonl")
        # "Kill" one task mid-run via the timeout path: its worker is
        # terminated; the completed task is already in the checkpoint.
        tasks = [
            self._task(log, "fast", 7),
            Task(key="victim", fn=_sleepy, kwargs={"seconds": 30}),
        ]
        results = run_parallel(
            tasks, jobs=2, timeout=1.5, retries=0, checkpoint=ckpt
        )
        assert results[0] == 7
        assert isinstance(results[1], TaskFailure)

        retry = [
            self._task(log, "fast", 7),
            self._task(log, "victim", 8),
        ]
        assert run_parallel(retry, jobs=2, checkpoint=ckpt) == [7, 8]
        # "fast" was not re-executed; the killed task ran exactly once.
        assert sorted(_executions(log)) == ["fast", "victim"]

    def test_failures_are_never_checkpointed(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        bad = [Task(key="x", fn=_boom, kwargs={"message": "nope"})]
        results = run_parallel(bad, jobs=1, retries=0, checkpoint=ckpt)
        assert isinstance(results[0], TaskFailure)
        assert load_checkpoint(ckpt) == {}

        good = [Task(key="x", fn=_double, kwargs={"x": 5})]
        assert run_parallel(good, jobs=1, checkpoint=ckpt) == [10]

    def test_context_mismatch_is_rejected(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        tasks = [Task(key="a", fn=_double, kwargs={"x": 1})]
        run_parallel(tasks, jobs=1, checkpoint=ckpt, context={"seed": 0})
        with pytest.raises(ValueError, match="context"):
            run_parallel(
                tasks, jobs=1, checkpoint=ckpt, context={"seed": 1}
            )

    def test_encode_decode_round_trip(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        tasks = [Task(key="a", fn=_double, kwargs={"x": 21})]
        encode = lambda r: {"wrapped": r}  # noqa: E731
        decode = lambda r: r["wrapped"]  # noqa: E731
        assert run_parallel(
            tasks, jobs=1, checkpoint=ckpt, encode=encode, decode=decode
        ) == [42]
        # Replay goes through decode(encode(result)).
        assert run_parallel(
            tasks, jobs=1, checkpoint=ckpt, encode=encode, decode=decode
        ) == [42]
