"""Loose-end coverage: small behaviours not exercised elsewhere."""

import numpy as np
import pytest

from repro.analysis.report import ExperimentTable, _fmt
from repro.apps.amplitude_apps import DistributedSubroutine, amplify
from repro.apps.girth import compute_girth
from repro.congest import topologies
from repro.congest.algorithms.bfs import bfs_with_echo
from repro.congest.algorithms.leader import elect_leader
from repro.congest.algorithms.multibfs import multi_source_bfs
from repro.core.state_transfer import distribute_register


class TestReportFormatting:
    def test_large_float_scientific(self):
        assert _fmt(1234567.0) == "1.23e+06"

    def test_tiny_float_scientific(self):
        assert _fmt(0.00123) == "0.00123"

    def test_zero(self):
        assert _fmt(0.0) == "0"

    def test_trailing_zeros_trimmed(self):
        assert _fmt(2.500) == "2.5"

    def test_int_passthrough(self):
        assert _fmt(42) == "42"

    def test_bool_words(self):
        assert _fmt(True) == "yes"
        assert _fmt(False) == "no"

    def test_show_prints(self, capsys):
        table = ExperimentTable("EX", "demo", ["a"])
        table.add_row(1)
        table.show()
        assert "EX" in capsys.readouterr().out


class TestProtocolEdges:
    def test_leader_election_on_two_stars(self):
        net = topologies.two_stars(5, 5)
        result = elect_leader(net, seed=1)
        assert result.leader == net.n - 1

    def test_multibfs_empty_source_list(self, grid45):
        result = multi_source_bfs(grid45, [], seed=1)
        assert result.sources == []
        assert result.rounds == 0

    def test_state_transfer_single_bit(self, path8):
        tree = bfs_with_echo(path8, 0)
        result = distribute_register(path8, tree, 1, 1)
        assert result.chunks == 1
        assert result.rounds <= tree.eccentricity + 2

    def test_bfs_tree_children_of_leaf_empty(self, path8):
        tree = bfs_with_echo(path8, 0)
        assert tree.children()[path8.n - 1] == []


class TestAppEdges:
    def test_girth_max_k_below_girth_returns_none(self):
        net = topologies.known_girth(9, copies=1, tail=2)
        result = compute_girth(net, seed=1, max_k=6)
        assert result.girth is None

    def test_amplify_with_certain_subroutine(self, rng):
        net = topologies.grid(3, 3)
        sub = DistributedSubroutine(rounds=2, success_probability=1.0)
        out = amplify(net, sub, delta=0.1, rng=rng)
        assert out.succeeded
        assert out.iterations == 0  # already certain, no amplification

    def test_subroutine_zero_rounds_allowed(self):
        DistributedSubroutine(rounds=0, success_probability=0.5)

    def test_even_cycle_success_probability_override(self):
        from repro.apps.even_cycles import detect_even_cycle

        net = topologies.planted_cycle(40, 6, seed=1)
        always = detect_even_cycle(net, 6, seed=1, success_probability=1.0)
        assert always.found
        never = detect_even_cycle(net, 6, seed=1, success_probability=0.0)
        assert not never.found


class TestOracleProtocolCompliance:
    def test_congest_oracle_satisfies_protocol(self, grid45, rng):
        """CongestBatchOracle structurally satisfies BatchOracle."""
        from repro.core.framework import (
            DistributedInput,
            FrameworkConfig,
            run_framework,
        )
        from repro.core.semigroup import sum_semigroup
        from repro.queries.oracle import BatchOracle

        vectors = {v: [0, 1] for v in grid45.nodes()}
        di = DistributedInput(vectors, sum_semigroup(grid45.n))
        captured = {}

        def algorithm(oracle, _rng):
            captured["oracle"] = oracle
            return None

        run_framework(grid45, algorithm, config=FrameworkConfig(
            parallelism=1, dist_input=di, seed=1, leader=0,
        ))
        assert isinstance(captured["oracle"], BatchOracle)

    def test_string_oracle_satisfies_protocol(self):
        from repro.queries.ledger import QueryLedger
        from repro.queries.oracle import BatchOracle, StringOracle

        oracle = StringOracle([1, 2], QueryLedger(1))
        assert isinstance(oracle, BatchOracle)
