"""Tests for the classical CONGEST baselines."""

import numpy as np
import pytest

from repro.analysis.graphtruth import girth as true_girth
from repro.baselines.cycles import (
    classical_balanced_beta,
    classical_cycle_bound,
    compute_girth_classical,
    detect_cycle_classical,
)
from repro.baselines.streaming import (
    classical_streaming_bound,
    stream_to_leader,
)
from repro.congest import topologies
from repro.core.framework import DistributedInput
from repro.core.semigroup import sum_semigroup


class TestStreaming:
    def test_engine_streams_exact_aggregate(self, rng):
        net = topologies.grid(3, 3)
        vectors = {
            v: [int(rng.integers(0, 3)) for _ in range(7)] for v in net.nodes()
        }
        di = DistributedInput(vectors, sum_semigroup(3 * net.n))
        result = stream_to_leader(net, di, mode="engine", seed=1)
        assert result.aggregated == di.aggregated()

    def test_formula_matches_engine_values(self, rng):
        net = topologies.grid(3, 3)
        vectors = {
            v: [int(rng.integers(0, 2)) for _ in range(5)] for v in net.nodes()
        }
        di = DistributedInput(vectors, sum_semigroup(net.n))
        f = stream_to_leader(net, di, mode="formula", seed=2)
        e = stream_to_leader(net, di, mode="engine", seed=2)
        assert f.aggregated == e.aggregated

    def test_engine_rounds_linear_in_k(self, rng):
        net = topologies.path(10)

        def rounds_at(k):
            vectors = {v: [1] * k for v in net.nodes()}
            di = DistributedInput(vectors, sum_semigroup(net.n))
            return stream_to_leader(net, di, mode="engine", seed=3).rounds

        r64, r256 = rounds_at(64), rounds_at(256)
        # One extra round per extra slot (pipelined stream), on top of a
        # fixed setup cost: the slope, not the ratio, is the invariant.
        slope = (r256 - r64) / (256 - 64)
        assert 0.8 <= slope <= 1.5

    def test_bound_formula(self):
        assert classical_streaming_bound(1000, 10, 5, 1024) == 5 + 1000

    def test_leader_is_max_id(self, grid45, rng):
        vectors = {v: [0] for v in grid45.nodes()}
        di = DistributedInput(vectors, sum_semigroup(grid45.n))
        result = stream_to_leader(grid45, di, seed=4)
        assert result.leader == grid45.n - 1


class TestClassicalCycles:
    def test_detects_planted_cycle(self):
        net = topologies.planted_cycle(40, 5, seed=1)
        hits = 0
        for seed in range(8):
            result = detect_cycle_classical(net, 6, seed=seed)
            hits += result.length == 5
        assert hits >= 6

    def test_reports_none_when_absent(self):
        net = topologies.balanced_tree(2, 4)
        result = detect_cycle_classical(net, 8, seed=2)
        assert not result.found

    def test_soundness(self):
        net = topologies.planted_cycle(40, 6, seed=3)
        truth = true_girth(net.graph)
        for seed in range(5):
            result = detect_cycle_classical(net, 8, seed=seed)
            if result.found:
                assert result.length >= truth

    def test_k_validation(self, grid45):
        with pytest.raises(ValueError):
            detect_cycle_classical(grid45, 2)

    def test_beta_formula(self):
        assert 0 < classical_balanced_beta(10**4, 6) <= 1

    def test_bound_grows_with_k_exponent(self):
        assert classical_cycle_bound(10**6, 12) > classical_cycle_bound(10**6, 4)

    def test_classical_bound_above_quantum_bound(self):
        from repro.apps.cycles import quantum_cycle_bound

        n = 10**6
        for k in [4, 6, 8]:
            assert quantum_cycle_bound(n, k) < classical_cycle_bound(n, k)


class TestClassicalGirth:
    def test_girth_correct(self):
        net = topologies.petersen()
        g, rounds = compute_girth_classical(net, seed=4)
        assert g == 5
        assert rounds > 0

    def test_triangle_shortcut(self):
        net = topologies.complete(6)
        g, _ = compute_girth_classical(net, seed=5)
        assert g == 3

    def test_acyclic(self):
        net = topologies.balanced_tree(2, 3)
        g, _ = compute_girth_classical(net, seed=6, max_k=10)
        assert g is None
