"""Tests for Lemmas 12–15: distributed element distinctness."""

import numpy as np
import pytest

from repro.apps.element_distinctness import (
    classical_round_lower_bound,
    distinctness_between_nodes,
    distinctness_distributed_vector,
    quantum_round_bound_vector,
)
from repro.baselines.streaming import classical_element_distinctness
from repro.congest import topologies


def planted_vectors(net, k, rng, max_value=10**6, collide=True):
    """Spread a global vector with (or without) a collision across nodes."""
    base = list(rng.choice(max_value - 1, size=k, replace=False))
    if collide:
        i, j = rng.choice(k, size=2, replace=False)
        base[j] = base[i]
    vectors = {v: [0] * k for v in net.nodes()}
    for idx, value in enumerate(base):
        owner = int(rng.integers(0, net.n))
        vectors[owner][idx] = value
    return vectors, base


class TestDistributedVector:
    def test_finds_planted_collision_reliably(self):
        net = topologies.grid(3, 4)
        hits = 0
        for seed in range(15):
            rng = np.random.default_rng(seed)
            vectors, base = planted_vectors(net, 60, rng)
            result = distinctness_distributed_vector(
                net, vectors, max_value=10**6, seed=seed
            )
            hits += result.correct_against(base)
        assert hits >= 10

    def test_reported_pair_is_real(self):
        net = topologies.grid(3, 3)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            vectors, base = planted_vectors(net, 40, rng)
            result = distinctness_distributed_vector(
                net, vectors, max_value=10**6, seed=seed
            )
            if result.pair is not None:
                i, j = result.pair
                assert base[i] == base[j] and i != j

    def test_distinct_input_reports_distinct(self):
        net = topologies.grid(3, 3)
        rng = np.random.default_rng(9)
        vectors, _ = planted_vectors(net, 40, rng, collide=False)
        result = distinctness_distributed_vector(
            net, vectors, max_value=10**6, seed=9
        )
        assert result.all_distinct

    def test_engine_mode_agrees(self):
        net = topologies.grid(3, 3)
        rng = np.random.default_rng(10)
        vectors, base = planted_vectors(net, 24, rng, max_value=1000)
        e = distinctness_distributed_vector(
            net, vectors, max_value=1000, mode="engine", seed=10
        )
        assert e.correct_against(base) or e.pair is None  # sound if found


class TestBetweenNodes:
    def test_collision_between_nodes_found(self):
        net = topologies.grid(4, 4)
        hits = 0
        for seed in range(10):
            values = {v: 100 + v for v in net.nodes()}
            values[11] = values[2]
            result = distinctness_between_nodes(
                net, values, max_value=200, seed=seed
            )
            hits += result.pair == (2, 11)
        assert hits >= 7

    def test_distinct_values_reported_distinct(self):
        net = topologies.grid(3, 3)
        values = {v: 50 + 3 * v for v in net.nodes()}
        result = distinctness_between_nodes(net, values, max_value=100, seed=1)
        assert result.all_distinct

    def test_rejects_missing_value(self, grid45):
        with pytest.raises(ValueError):
            distinctness_between_nodes(grid45, {0: 1}, max_value=10)

    def test_rejects_out_of_range(self, grid45):
        values = {v: 5 for v in grid45.nodes()}
        values[3] = 999
        with pytest.raises(ValueError):
            distinctness_between_nodes(grid45, values, max_value=10)


class TestSeparation:
    def test_quantum_beats_classical_at_large_k(self):
        net = topologies.path_with_endpoints(4)
        rng = np.random.default_rng(11)
        k = 4096
        vectors, _ = planted_vectors(net, k, rng)
        quantum = distinctness_distributed_vector(
            net, vectors, max_value=10**6, seed=11
        )
        _, classical_rounds = classical_element_distinctness(
            net, vectors, max_value=10**6, seed=11
        )
        assert quantum.rounds < classical_rounds

    def test_classical_baseline_exact(self):
        net = topologies.path(5)
        rng = np.random.default_rng(12)
        vectors, base = planted_vectors(net, 30, rng)
        pair, _ = classical_element_distinctness(
            net, vectors, max_value=10**6, seed=12
        )
        assert pair is not None
        assert base[pair[0]] == base[pair[1]]

    def test_bound_curves_cross(self):
        n, d = 512, 4
        k = 2**18
        assert quantum_round_bound_vector(k, d, n, 10**6) < (
            classical_round_lower_bound(k, d, n) * 50
        )
        # At very large k the k^{2/3} curve falls below even Ω(k/log n).
        k_big = 2**30
        assert quantum_round_bound_vector(k_big, d, n, 10**6) < (
            classical_round_lower_bound(k_big, d, n)
        )


class TestRoundScaling:
    def test_sublinear_in_k(self):
        """8× the input, round growth ≈ 8^{2/3} = 4, well below 8."""
        net = topologies.path_with_endpoints(4)

        def rounds_at(k):
            total = 0
            for seed in range(4):
                rng = np.random.default_rng(seed)
                vectors, _ = planted_vectors(net, k, rng)
                total += distinctness_distributed_vector(
                    net, vectors, max_value=10**6, seed=seed
                ).rounds
            return total / 4

        small = rounds_at(512)
        large = rounds_at(4096)
        assert large / small < 7.0
