"""Tests for triangle finding (the Corollary 26 subroutine)."""

import networkx as nx
import pytest

from repro.apps.triangles import (
    classical_triangle_bound,
    detect_triangle_local,
    detect_triangle_quantum,
    find_triangle_truth,
    quantum_triangle_bound,
    quantum_triangle_bound_igm,
)
from repro.congest import topologies
from repro.congest.network import Network


class TestGroundTruth:
    def test_complete_graph(self):
        assert find_triangle_truth(nx.complete_graph(4)) == (0, 1, 2)

    def test_triangle_free(self):
        assert find_triangle_truth(nx.petersen_graph()) is None
        assert find_triangle_truth(nx.cycle_graph(8)) is None
        assert find_triangle_truth(nx.grid_2d_graph(3, 3)) is None

    def test_single_triangle(self):
        g = nx.path_graph(6)
        g.add_edge(2, 4)
        assert find_triangle_truth(g) == (2, 3, 4)


class TestLocalProtocol:
    @pytest.mark.parametrize("maker,expected", [
        (lambda: topologies.complete(6), True),
        (lambda: topologies.petersen(), False),
        (lambda: topologies.grid(4, 4), False),
        (lambda: topologies.lollipop(5, 4), True),
        (lambda: topologies.cycle(9), False),
    ])
    def test_exact_detection(self, maker, expected):
        net = maker()
        result = detect_triangle_local(net, seed=1)
        assert result.found == expected

    def test_reported_triangle_is_real(self):
        net = topologies.random_regular(30, 4, seed=3)
        result = detect_triangle_local(net, seed=3)
        if result.found:
            a, b, c = result.triangle
            assert net.has_edge(a, b) and net.has_edge(b, c) and net.has_edge(a, c)

    def test_rounds_track_max_degree(self):
        for maker in [
            lambda: topologies.star(20),
            lambda: topologies.complete(10),
            lambda: topologies.cycle(15),
        ]:
            net = maker()
            result = detect_triangle_local(net, seed=2)
            max_deg = max(net.degree(v) for v in net.nodes())
            assert result.rounds <= max_deg + 3

    def test_rounds_independent_of_n_at_fixed_degree(self):
        small = detect_triangle_local(topologies.cycle(10), seed=4).rounds
        large = detect_triangle_local(topologies.cycle(60), seed=4).rounds
        assert abs(small - large) <= 1


class TestQuantumEmulation:
    def test_one_sided_no_false_positives(self):
        net = topologies.petersen()
        for seed in range(10):
            assert not detect_triangle_quantum(net, seed=seed).found

    def test_detects_reliably(self):
        net = topologies.complete(7)
        hits = sum(
            detect_triangle_quantum(net, seed=s).found for s in range(12)
        )
        assert hits >= 8

    def test_rounds_sublinear(self):
        net = topologies.random_regular(60, 4, seed=1)
        result = detect_triangle_quantum(net, seed=1)
        assert result.rounds <= 8 * 60 ** 0.25


class TestBounds:
    def test_ordering(self):
        n = 10**6
        assert quantum_triangle_bound(n) < quantum_triangle_bound_igm(n)
        assert quantum_triangle_bound_igm(n) < classical_triangle_bound(n)

    def test_sublinearity(self):
        assert quantum_triangle_bound(10**10) < (10**10) ** 0.5
