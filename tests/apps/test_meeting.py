"""Tests for Lemma 10 meeting scheduling and its Lemma 11 separation."""

import numpy as np
import pytest

from repro.apps.meeting import (
    classical_round_lower_bound,
    quantum_round_bound,
    schedule_meeting,
)
from repro.baselines.streaming import classical_meeting
from repro.congest import topologies


def random_calendars(net, k, rng, density=0.4):
    return {
        v: [int(rng.random() < density) for _ in range(k)]
        for v in net.nodes()
    }


class TestCorrectness:
    def test_finds_best_slot_reliably(self):
        net = topologies.grid(3, 4)
        hits = 0
        for seed in range(15):
            rng = np.random.default_rng(seed)
            cal = random_calendars(net, 20, rng)
            result = schedule_meeting(net, cal, seed=seed)
            hits += result.correct_against(cal)
        assert hits >= 12

    def test_unique_best_slot_found(self, grid45, rng):
        cal = {v: [0] * 10 for v in grid45.nodes()}
        for v in grid45.nodes():
            cal[v][7] = 1  # slot 7: everyone available
            cal[v][2] = int(v < 3)
        result = schedule_meeting(grid45, cal, seed=1)
        assert result.best_slot == 7
        assert result.availability == grid45.n

    def test_availability_value_consistent(self, grid45, rng):
        cal = random_calendars(grid45, 12, rng)
        result = schedule_meeting(grid45, cal, seed=2)
        totals = [sum(cal[v][i] for v in grid45.nodes()) for i in range(12)]
        assert result.availability == totals[result.best_slot]

    def test_rejects_missing_calendar(self, grid45):
        cal = {v: [0, 1] for v in range(grid45.n - 1)}
        with pytest.raises(ValueError):
            schedule_meeting(grid45, cal)

    def test_rejects_non_binary(self, grid45):
        cal = {v: [0, 2] for v in grid45.nodes()}
        with pytest.raises(ValueError):
            schedule_meeting(grid45, cal)

    def test_engine_mode_agrees(self, rng):
        net = topologies.grid(3, 3)
        cal = random_calendars(net, 8, rng)
        f = schedule_meeting(net, cal, mode="formula", seed=3)
        e = schedule_meeting(net, cal, mode="engine", seed=3)
        assert f.best_slot == e.best_slot


class TestSeparation:
    def test_quantum_beats_classical_for_large_k(self):
        """Rounds: quantum Õ(√(kD)) < classical Θ(k/log n) at large k."""
        net = topologies.path_with_endpoints(8)
        rng = np.random.default_rng(4)
        k = 4096
        cal = random_calendars(net, k, rng)
        quantum = schedule_meeting(net, cal, seed=4)
        _, _, classical_rounds = classical_meeting(net, cal, seed=4)
        assert quantum.rounds < classical_rounds

    def test_classical_wins_for_tiny_k(self):
        net = topologies.path_with_endpoints(8)
        rng = np.random.default_rng(5)
        cal = random_calendars(net, 4, rng)
        quantum = schedule_meeting(net, cal, seed=5)
        _, _, classical_rounds = classical_meeting(net, cal, seed=5)
        assert classical_rounds <= quantum.rounds

    def test_classical_baseline_exact(self, grid45, rng):
        cal = random_calendars(grid45, 10, rng)
        slot, avail, _ = classical_meeting(grid45, cal, seed=6)
        totals = [sum(cal[v][i] for v in grid45.nodes()) for i in range(10)]
        assert avail == max(totals)
        assert totals[slot] == avail

    def test_bound_formulas_cross(self):
        """The theory curves themselves cross as k grows at fixed D."""
        n, d = 1024, 8
        small_k, large_k = 64, 2**16
        assert quantum_round_bound(small_k, d, n) >= 0
        assert quantum_round_bound(large_k, d, n) < classical_round_lower_bound(
            large_k, d, n
        )


class TestRoundScaling:
    def test_sublinear_in_k(self):
        """Measured rounds grow like √k: 16× the slots, ≲ 6× the rounds."""
        net = topologies.path_with_endpoints(6)
        rng = np.random.default_rng(7)

        def rounds_at(k, trials=5):
            total = 0
            for seed in range(trials):
                cal = random_calendars(net, k, np.random.default_rng(seed))
                total += schedule_meeting(net, cal, seed=seed).rounds
            return total / trials

        small = rounds_at(256)
        large = rounds_at(4096)
        assert large / small < 8.0  # √16 = 4 ideal, generous envelope
