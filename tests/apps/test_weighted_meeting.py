"""Tests for the weighted meeting-scheduling generalization."""

import numpy as np
import pytest

from repro.apps.meeting import schedule_meeting, schedule_weighted_meeting
from repro.congest import topologies


class TestWeightedMeeting:
    def test_finds_heaviest_slot(self):
        net = topologies.grid(3, 3)
        k, w = 12, 10
        prefs = {v: [1] * k for v in net.nodes()}
        for v in net.nodes():
            prefs[v][4] = 10  # everyone loves slot 4
        hits = 0
        for seed in range(8):
            result = schedule_weighted_meeting(net, prefs, max_weight=w, seed=seed)
            hits += result.best_slot == 4
        assert hits >= 6

    def test_total_weight_reported(self, grid45, rng):
        k, w = 10, 5
        prefs = {
            v: [int(rng.integers(0, w + 1)) for _ in range(k)]
            for v in grid45.nodes()
        }
        result = schedule_weighted_meeting(grid45, prefs, max_weight=w, seed=1)
        totals = [sum(prefs[v][i] for v in grid45.nodes()) for i in range(k)]
        assert result.availability == totals[result.best_slot]

    def test_rejects_out_of_range_weight(self, grid45):
        prefs = {v: [0, 6] for v in grid45.nodes()}
        with pytest.raises(ValueError):
            schedule_weighted_meeting(grid45, prefs, max_weight=5)

    def test_rejects_missing_node(self, grid45):
        prefs = {v: [1, 2] for v in range(grid45.n - 1)}
        with pytest.raises(ValueError):
            schedule_weighted_meeting(grid45, prefs, max_weight=5)

    def test_binary_case_matches_plain_meeting(self):
        """With weights in {0,1} the generalization reduces to Lemma 10."""
        net = topologies.grid(3, 3)
        rng = np.random.default_rng(2)
        cal = {
            v: [int(rng.random() < 0.5) for _ in range(16)]
            for v in net.nodes()
        }
        plain = schedule_meeting(net, cal, seed=3)
        weighted = schedule_weighted_meeting(net, cal, max_weight=1, seed=3)
        totals = [sum(cal[v][i] for v in net.nodes()) for i in range(16)]
        assert totals[plain.best_slot] == totals[weighted.best_slot]

    def test_wider_domain_costs_more_rounds(self):
        """The paper's 'extra q factor': max_weight 2^12 vs 1 at equal k."""
        net = topologies.path_with_endpoints(6)
        rng = np.random.default_rng(4)
        k = 64
        narrow = {
            v: [int(rng.random() < 0.5) for _ in range(k)] for v in net.nodes()
        }
        wide = {
            v: [int(rng.integers(0, 4097)) for _ in range(k)]
            for v in net.nodes()
        }
        r_narrow = schedule_weighted_meeting(net, narrow, max_weight=1, seed=5)
        r_wide = schedule_weighted_meeting(net, wide, max_weight=4096, seed=5)
        assert r_wide.rounds > r_narrow.rounds


class TestBoundsSummary:
    def test_table_renders(self):
        from repro.analysis.bounds import bounds_summary

        table = bounds_summary(n=1024, k=4096, diameter=8)
        text = table.render()
        assert "meeting scheduling" in text
        assert "Deutsch" in text

    def test_dj_speedup_is_largest(self):
        from repro.analysis.bounds import bounds_summary

        table = bounds_summary(n=4096, k=2**20, diameter=8)
        speedups = {row[0]: row[3] for row in table.rows}
        dj = next(v for k_, v in speedups.items() if "Deutsch" in k_)
        assert dj == max(speedups.values())
