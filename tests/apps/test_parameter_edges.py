"""Cross-application parameter edge cases.

Covers the regimes the paper treats specially: k < D ("the complexity of
k < D is Θ(D)"), p overrides away from the default p = D, tiny networks,
and degenerate promise/threshold inputs.
"""

import numpy as np
import pytest

from repro.apps.cycles import detect_cycle
from repro.apps.eccentricity import compute_diameter, compute_radius
from repro.apps.element_distinctness import distinctness_distributed_vector
from repro.apps.meeting import schedule_meeting
from repro.congest import topologies


class TestSmallKRegime:
    """k < D: the trivial streaming regime, still correct here."""

    def test_meeting_with_k_below_diameter(self):
        net = topologies.path_with_endpoints(12)  # D = 12
        rng = np.random.default_rng(0)
        cal = {v: [int(rng.random() < 0.5) for _ in range(4)] for v in net.nodes()}
        result = schedule_meeting(net, cal, seed=0)
        totals = [sum(cal[v][i] for v in net.nodes()) for i in range(4)]
        assert result.availability == max(totals)

    def test_ed_with_k_below_diameter(self):
        net = topologies.path_with_endpoints(10)
        vectors = {v: [0, 0, 0] for v in net.nodes()}
        vectors[0] = [5, 9, 5]
        result = distinctness_distributed_vector(net, vectors, 10, seed=1)
        assert result.pair == (0, 2)

    def test_meeting_k_equals_one(self):
        net = topologies.grid(3, 3)
        cal = {v: [1] for v in net.nodes()}
        result = schedule_meeting(net, cal, seed=2)
        assert result.best_slot == 0
        assert result.availability == net.n


class TestParallelismOverrides:
    @pytest.mark.parametrize("p", [1, 2, 16])
    def test_meeting_any_parallelism_correct(self, p):
        net = topologies.grid(3, 3)
        rng = np.random.default_rng(3)
        cal = {v: [int(rng.random() < 0.5) for _ in range(20)] for v in net.nodes()}
        hits = 0
        for seed in range(6):
            result = schedule_meeting(net, cal, parallelism=p, seed=seed)
            hits += result.correct_against(cal)
        assert hits >= 4

    def test_larger_p_fewer_batches(self):
        net = topologies.path_with_endpoints(4)
        rng = np.random.default_rng(4)
        cal = {v: [int(rng.random() < 0.5) for _ in range(256)] for v in net.nodes()}

        def avg_batches(p):
            return sum(
                schedule_meeting(net, cal, parallelism=p, seed=s).batches
                for s in range(5)
            ) / 5

        assert avg_batches(64) < avg_batches(2)

    def test_diameter_with_custom_parallelism(self):
        net = topologies.grid(3, 4)
        result = compute_diameter(net, parallelism=2, seed=5)
        assert result.value in set(net.eccentricities.values())


class TestTinyNetworks:
    def test_two_node_network_meeting(self):
        net = topologies.path(2)
        cal = {0: [1, 0, 1], 1: [1, 1, 0]}
        result = schedule_meeting(net, cal, seed=6)
        assert result.best_slot == 0
        assert result.availability == 2

    def test_two_node_diameter(self):
        net = topologies.path(2)
        result = compute_diameter(net, seed=7)
        assert result.value == 1

    def test_two_node_radius(self):
        net = topologies.path(2)
        result = compute_radius(net, seed=8)
        assert result.value == 1

    def test_triangle_network_cycle_detection(self):
        net = topologies.cycle(3)
        result = detect_cycle(net, 3, seed=9)
        # k_eff clamps to 2D+1 = 3; the triangle must be found.
        assert result.length == 3


class TestDegenerateInputs:
    def test_meeting_nobody_available(self):
        net = topologies.grid(3, 3)
        cal = {v: [0] * 8 for v in net.nodes()}
        result = schedule_meeting(net, cal, seed=10)
        assert result.availability == 0

    def test_meeting_everyone_always_available(self):
        net = topologies.grid(3, 3)
        cal = {v: [1] * 8 for v in net.nodes()}
        result = schedule_meeting(net, cal, seed=11)
        assert result.availability == net.n

    def test_ed_all_same_value(self):
        """Every index collides with every other: any pair is valid."""
        net = topologies.path(4)
        vectors = {v: [0] * 10 for v in net.nodes()}
        vectors[0] = [7] * 10
        result = distinctness_distributed_vector(net, vectors, 10, seed=12)
        assert result.pair is not None
        i, j = result.pair
        assert i != j

    def test_cycle_detection_on_single_edge(self):
        net = topologies.path(2)
        result = detect_cycle(net, 4, seed=13)
        assert result.length is None
