"""Tests for Lemmas 20–22: diameter, radius, average eccentricity."""

import numpy as np
import pytest

from repro.apps.eccentricity import (
    compute_diameter,
    compute_radius,
    estimate_average_eccentricity,
    quantum_avg_ecc_bound,
    quantum_diameter_bound,
)
from repro.baselines.diameter import (
    classical_all_eccentricities,
    classical_diameter_bound,
)
from repro.congest import topologies


class TestDiameterRadius:
    def test_diameter_reliably_correct(self):
        net = topologies.grid(4, 4)
        hits = 0
        for seed in range(12):
            result = compute_diameter(net, seed=seed)
            hits += result.value == net.diameter
        assert hits >= 9

    def test_radius_reliably_correct(self):
        net = topologies.lollipop(5, 6)
        hits = 0
        for seed in range(12):
            result = compute_radius(net, seed=seed)
            hits += result.value == net.radius
        assert hits >= 9

    @pytest.mark.parametrize("maker", [
        lambda: topologies.path(12),
        lambda: topologies.cycle(14),
        lambda: topologies.star(15),
        lambda: topologies.petersen(),
    ])
    def test_value_is_some_true_eccentricity(self, maker):
        """Soundness: the reported value is always a real eccentricity."""
        net = maker()
        result = compute_diameter(net, seed=0)
        assert result.value in set(net.eccentricities.values())

    def test_witness_attains_value(self, grid45):
        result = compute_diameter(grid45, seed=1)
        if result.witness is not None:
            assert grid45.eccentricities[result.witness] == result.value

    def test_engine_mode_measures_alpha(self):
        net = topologies.grid(3, 3)
        result = compute_diameter(net, mode="engine", seed=2)
        assert result.value == net.diameter or result.value in set(
            net.eccentricities.values()
        )
        assert result.rounds > 0


class TestRoundScaling:
    def test_sublinear_at_fixed_diameter(self):
        """√(nD): at fixed D, 4× nodes should cost ≲ 3× rounds."""

        def rounds_at(n_extra):
            net = topologies.diameter_controlled(n_extra, 8, seed=1)
            total = 0
            for seed in range(3):
                total += compute_diameter(net, seed=seed).rounds
            return total / 3

        small = rounds_at(64)
        large = rounds_at(256)
        assert large / small < 3.2  # ideal 2 = √4

    def test_beats_classical_on_low_diameter_large_n(self):
        """The √(nD)-vs-n crossover: constants put it near n ≈ 1300 at D = 6."""
        net = topologies.diameter_controlled(1600, 6, seed=2)
        quantum = compute_diameter(net, seed=3)
        classical = classical_all_eccentricities(net)
        assert quantum.rounds < classical.rounds

    def test_classical_engine_baseline_correct(self):
        net = topologies.grid(3, 4)
        result = classical_all_eccentricities(net, mode="engine", seed=4)
        assert result.eccentricities == dict(net.eccentricities)
        assert result.diameter == net.diameter
        assert result.radius == net.radius

    def test_classical_engine_rounds_linear(self):
        net = topologies.grid(4, 4)
        result = classical_all_eccentricities(net, mode="engine", seed=5)
        assert result.rounds <= 6 * (net.n + net.diameter)

    def test_bound_formulas(self):
        assert quantum_diameter_bound(10000, 10) < classical_diameter_bound(10000, 10)


class TestAverageEccentricity:
    def test_estimate_within_epsilon_reliably(self):
        net = topologies.grid(4, 4)
        truth = net.average_eccentricity
        hits = 0
        for seed in range(12):
            result = estimate_average_eccentricity(net, epsilon=0.75, seed=seed)
            hits += abs(result.estimate - truth) <= 0.75
        assert hits >= 8

    def test_rejects_bad_epsilon(self, grid45):
        with pytest.raises(ValueError):
            estimate_average_eccentricity(grid45, epsilon=0.0)

    def test_rounds_grow_as_epsilon_shrinks(self):
        net = topologies.grid(4, 4)
        loose = estimate_average_eccentricity(net, epsilon=2.0, seed=1).rounds
        tight = estimate_average_eccentricity(net, epsilon=0.2, seed=1).rounds
        assert tight > loose

    def test_cheaper_than_exact_diameter_for_loose_epsilon(self):
        """Õ(D^{3/2}/ε) ≪ √(nD) when D is small and n large."""
        net = topologies.diameter_controlled(300, 4, seed=6)
        avg = estimate_average_eccentricity(net, epsilon=1.0, seed=7)
        diam = compute_diameter(net, seed=7)
        assert avg.rounds < diam.rounds

    def test_bound_formula_scales(self):
        assert quantum_avg_ecc_bound(16, 0.1) > quantum_avg_ecc_bound(16, 1.0)
        assert quantum_avg_ecc_bound(64, 0.5) > quantum_avg_ecc_bound(4, 0.5)
