"""Amplitude sketches: backends, taxonomy, instantiations, composition."""

import math

import numpy as np
import pytest

from repro.apps.sketches import (
    AUTO_EXACT_M,
    EXACT_MAX_M,
    TAXONOMY,
    AmplitudeSketch,
    QCount,
    QHeavyHitters,
    QSimHash,
    SketchSpec,
    item_token,
    theorem1_min_qubits,
)


def make(m=8, family="qcount", backend="auto", **kw):
    return AmplitudeSketch(
        SketchSpec(family=family, m=m, backend=backend, **kw)
    )


class TestSpec:
    def test_backend_resolution(self):
        assert make(m=AUTO_EXACT_M).backend == "exact"
        assert make(m=AUTO_EXACT_M + 1).backend == "emulated"
        assert make(m=64).backend == "emulated"

    def test_exact_cap(self):
        with pytest.raises(ValueError, match="exact"):
            make(m=EXACT_MAX_M + 1, backend="exact")

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            SketchSpec(family="bloom", m=8)

    def test_fingerprint_excludes_backend_and_content(self):
        a = make(m=8, backend="exact")
        b = make(m=8, backend="emulated")
        assert a.fingerprint == b.fingerprint
        before = a.fingerprint
        a.insert("x")
        assert a.fingerprint == before  # identity, not content

    def test_fingerprint_separates_families_and_seeds(self):
        fps = {
            make(m=8).fingerprint,
            make(m=8, family="qsimhash").fingerprint,
            make(m=8, seed=1).fingerprint,
            make(m=16).fingerprint,
        }
        assert len(fps) == 4

    def test_item_token_is_stable_and_type_aware(self):
        assert item_token("x") == item_token("x")
        assert item_token("1") != item_token(1)
        with pytest.raises(TypeError):
            item_token(["unhashable-payload"])


class TestOverlap:
    def test_member_overlap_is_one_without_collisions(self):
        sk = make(m=256)
        sk.insert("only")
        assert sk.query("only") == pytest.approx(1.0, abs=1e-12)

    def test_empty_sketch_gives_baseline(self):
        sk = make(m=64)
        y = "absent"
        assert sk.query(y) == pytest.approx(sk.baseline_overlap(y))

    def test_contains_member_and_rejects_strangers(self):
        sk = make(m=256)
        for i in range(4):
            sk.insert(f"key-{i}")
        assert all(sk.contains(f"key-{i}") for i in range(4))
        false_pos = sum(sk.contains(f"other-{i}") for i in range(100))
        assert false_pos == 0

    def test_backends_agree_bit_level_on_decisions(self):
        for m in (8, 10):
            ex = make(m=m, backend="exact")
            em = make(m=m, backend="emulated")
            keys = [f"key-{i}" for i in range(3)]
            for sk in (ex, em):
                for x in keys:
                    sk.insert(x)
            for y in keys + [f"probe-{i}" for i in range(50)]:
                assert abs(ex.query(y) - em.query(y)) <= 1e-9
                assert ex.contains(y) == em.contains(y)

    def test_shots_sampling_is_seeded_and_bounded(self):
        sk = make(m=64)
        sk.insert("x")
        a = sk.query("x", shots=100, rng=np.random.default_rng(7))
        b = sk.query("x", shots=100, rng=np.random.default_rng(7))
        assert a == b
        assert 0.0 <= a <= 1.0

    def test_state_fidelity_tracks_divergence(self):
        a, b = make(m=32), make(m=32)
        assert a.state_fidelity(b) == pytest.approx(1.0)
        a.insert("x")
        assert a.state_fidelity(b) < 1.0


class TestCompose:
    def test_compose_equals_union_inserts(self):
        a, b = make(m=64), make(m=64)
        for i in range(4):
            a.insert(f"a-{i}")
            b.insert(f"b-{i}")
        union = make(m=64)
        for i in range(4):
            union.insert(f"a-{i}")
            union.insert(f"b-{i}")
        c = a.compose(b)
        assert c.state_fidelity(union) == pytest.approx(1.0, abs=1e-12)

    def test_compose_exact_backend(self):
        a, b = make(m=8, backend="exact"), make(m=8, backend="exact")
        a.insert("x")
        b.insert("y")
        union = make(m=8, backend="exact")
        union.insert("x")
        union.insert("y")
        assert a.compose(b).state_fidelity(union) == pytest.approx(1.0)

    def test_compose_requires_identical_specs(self):
        with pytest.raises(ValueError):
            make(m=64).compose(make(m=32))


class TestTaxonomy:
    def test_rows_cover_the_three_instantiations(self):
        assert set(TAXONOMY) == {"qcount", "qsimhash", "qhh"}
        assert TAXONOMY["qcount"].order_invariant
        assert TAXONOMY["qsimhash"].order_invariant
        assert not TAXONOMY["qhh"].order_invariant

    def test_theorem1_space_bound(self):
        assert theorem1_min_qubits(0.5) == 1
        assert theorem1_min_qubits(0.25) == 2
        assert theorem1_min_qubits(1e-3) == math.ceil(math.log2(1000))
        # Noise eats into the budget: more qubits for the same alpha.
        assert theorem1_min_qubits(0.01, eps=0.5) > theorem1_min_qubits(0.01)
        with pytest.raises(ValueError):
            theorem1_min_qubits(0.0)


class TestQCount:
    def test_estimates_track_multiplicity(self):
        qc = QCount(m=128, seed=3)
        for _ in range(3):
            qc.insert("hot")
        qc.insert("cold")
        assert qc.estimate("hot") == 3
        assert qc.estimate("cold") == 1
        assert qc.estimate("absent") == 0

    def test_exact_and_emulated_estimates_identical(self):
        ex = QCount(m=10, k=3, seed=0, backend="exact")
        em = QCount(m=10, k=3, seed=0, backend="emulated")
        for sk in (ex, em):
            for _ in range(2):
                sk.insert("x")
            sk.insert("y")
        for y in ("x", "y", "z"):
            assert ex.estimate(y) == em.estimate(y)


class TestQSimHash:
    def test_signature_and_similarity(self):
        a = QSimHash(m=64, seed=5)
        b = QSimHash(m=64, seed=5)
        for i in range(8):
            a.insert(f"doc-{i}")
            b.insert(f"doc-{i}")
        assert a.signature() == b.signature()
        assert a.similarity(b) == pytest.approx(1.0)
        b.insert("outlier")
        assert a.similarity(b) <= 1.0

    def test_hamming(self):
        assert QSimHash.hamming((0, 1, 1), (1, 1, 0)) == 2


class TestQHeavyHitters:
    def test_top_ranks_by_frequency(self):
        hh = QHeavyHitters(m=128, seed=2, capacity=16)
        for count, key in ((9, "a"), (5, "b"), (1, "c")):
            for _ in range(count):
                hh.insert(key)
        top = [key for key, _ in hh.top(2)]
        assert top == ["a", "b"]
        assert hh.estimate("a") >= hh.estimate("b") >= hh.estimate("c")

    def test_capacity_eviction_keeps_heavies(self):
        hh = QHeavyHitters(m=256, seed=2, capacity=4)
        for _ in range(50):
            hh.insert("heavy")
        for i in range(20):
            hh.insert(f"light-{i}")
        assert [key for key, _ in hh.top(1)] == ["heavy"]


class TestEvents:
    def test_insert_and_query_emit_sketch_events(self):
        from repro.obs import MemorySink, Recorder

        sink = MemorySink()
        sk = AmplitudeSketch(
            SketchSpec(family="qcount", m=64), recorder=Recorder([sink]),
            name="lane0",
        )
        sk.insert("x")
        sk.query("x")
        kinds = [(e.kind, e.op) for e in sink.events]
        assert ("sketch", "insert") in kinds
        assert ("sketch", "query") in kinds
