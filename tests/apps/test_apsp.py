"""Tests for the PR 8 CONGEST-CLIQUE APSP workload family."""

import pytest

from repro.apps.apsp import (
    apsp_duel,
    broadcast_apsp,
    classical_apsp_bound,
    quantum_apsp_bound,
    sweep_apsp,
    verify_distances,
)
from repro.congest import topologies
from repro.congest.errors import CongestError


class TestChargedBounds:
    def test_quantum_beats_classical_everywhere(self):
        for n in (4, 64, 1024, 10 ** 6):
            assert quantum_apsp_bound(n) < classical_apsp_bound(n)

    def test_polynomial_scaling(self):
        # Over a 2^12 size step the log factors cancel exactly, leaving
        # the pure n^(1/4) / n^(1/3) ratios.
        lo, hi = 2 ** 8, 2 ** 20
        q_ratio = quantum_apsp_bound(hi) / quantum_apsp_bound(lo)
        c_ratio = classical_apsp_bound(hi) / classical_apsp_bound(lo)
        assert q_ratio == pytest.approx((hi / lo) ** 0.25 * (20 / 8))
        assert c_ratio == pytest.approx((hi / lo) ** (1 / 3) * (20 / 8))


class TestBroadcastHarness:
    @pytest.mark.parametrize("maker", [
        lambda: topologies.petersen(),
        lambda: topologies.path(7),
        lambda: topologies.grid(3, 4),
        lambda: topologies.star(9),
    ])
    def test_distances_exact_on_standard_graphs(self, maker):
        graph = maker()
        result = broadcast_apsp(graph, seed=0)
        assert verify_distances(graph, result)

    def test_rounds_scale_with_max_degree_not_n(self):
        # A long path has max degree 2 regardless of n: the clique
        # broadcast finishes in O(1) rounds even as n grows.
        short = broadcast_apsp(topologies.path(8), seed=0)
        long = broadcast_apsp(topologies.path(24), seed=0)
        assert long.rounds == short.rounds

    def test_every_node_agrees_on_symmetric_distances(self):
        graph = topologies.grid(3, 3)
        result = broadcast_apsp(graph, seed=1)
        for v in range(graph.n):
            for u in range(graph.n):
                assert result.distances[v][u] == result.distances[u][v]

    def test_rejects_trivial_network(self):
        with pytest.raises(CongestError, match="n >= 2"):
            broadcast_apsp(topologies.path(1))

    def test_schedules_agree(self):
        graph = topologies.petersen()
        active = broadcast_apsp(graph, seed=0, schedule="active")
        dense = broadcast_apsp(graph, seed=0, schedule="dense")
        assert active.distances == dense.distances
        assert active.rounds == dense.rounds
        assert active.bits == dense.bits


class TestDuel:
    def test_small_duel_validates_engine(self):
        duel = apsp_duel(20, seed=0)
        assert duel.correct is True
        assert duel.engine_rounds is not None
        assert duel.quantum_wins

    def test_large_duel_skips_validation(self):
        duel = apsp_duel(4096, seed=0)
        assert duel.correct is None
        assert duel.engine_rounds is None

    def test_sweep_shapes(self):
        duels = sweep_apsp([16, 32], seed=0)
        assert [d.n for d in duels] == [16, 32]
        assert all(d.quantum_wins for d in duels)
