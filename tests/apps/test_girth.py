"""Tests for Corollary 26: girth computation."""

import pytest

from repro.apps.girth import compute_girth, quantum_girth_bound, verify_girth
from repro.congest import topologies


class TestCorrectness:
    def test_triangle_shortcut(self):
        net = topologies.complete(5)
        result = compute_girth(net, seed=1)
        assert result.girth == 3
        assert result.iterations == 1

    def test_petersen_girth_five(self):
        hits = 0
        for seed in range(8):
            result = compute_girth(topologies.petersen(), seed=seed)
            hits += result.girth == 5
        assert hits >= 6

    @pytest.mark.parametrize("g", [4, 5, 6, 7, 9])
    def test_known_girth_families(self, g):
        net = topologies.known_girth(g, copies=2, tail=3)
        hits = 0
        for seed in range(5):
            result = compute_girth(net, seed=seed)
            hits += result.girth == g
        assert hits >= 3

    def test_acyclic_reports_none(self):
        net = topologies.balanced_tree(3, 3)
        result = compute_girth(net, seed=2, max_k=12)
        assert result.is_acyclic

    def test_one_sided_soundness(self):
        """verify_girth: reported girth never undershoots the truth."""
        for seed in range(5):
            net = topologies.planted_cycle(35, 6, seed=seed)
            result = compute_girth(net, seed=seed)
            assert verify_girth(net, result)

    def test_geometric_schedule(self):
        net = topologies.known_girth(9, copies=1, tail=2)
        result = compute_girth(net, mu=1.0, seed=3)
        # k schedule 4, 8, 16...: girth 9 found in the k = 16 pass.
        assert result.ks_tried[:2] == [4, 8]

    def test_mu_validation(self, petersen):
        with pytest.raises(ValueError):
            compute_girth(petersen, mu=0.0)
        with pytest.raises(ValueError):
            compute_girth(petersen, mu=1.5)


class TestRounds:
    def test_smaller_mu_costs_more(self):
        net = topologies.known_girth(6, copies=2)
        coarse = compute_girth(net, mu=1.0, seed=4)
        fine = compute_girth(net, mu=0.25, seed=4)
        assert fine.rounds >= coarse.rounds

    def test_bound_formula_sublinear(self):
        assert quantum_girth_bound(10**6, 4) < 10**3 * 60

    def test_detail_breakdown(self):
        net = topologies.petersen()
        result = compute_girth(net, seed=5)
        assert "triangle-check" in result.detail
        assert result.rounds >= result.detail["triangle-check"]
