"""Tests for exact even-cycle detection (post-Lemma-25 remark)."""

import networkx as nx
import pytest

from repro.apps.even_cycles import (
    classical_even_cycle_bound,
    detect_even_cycle,
    has_cycle_of_exact_length,
    quantum_even_cycle_bound,
)
from repro.congest import topologies
from repro.congest.network import Network


class TestGroundTruth:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 8])
    def test_cycle_graph_has_only_its_length(self, k):
        g = nx.cycle_graph(k)
        assert has_cycle_of_exact_length(g, k)
        for other in [3, 4, 5, 6, 8, 10]:
            if other != k:
                assert not has_cycle_of_exact_length(g, other)

    def test_tree_has_no_cycles(self):
        g = nx.balanced_tree(2, 3)
        for k in [3, 4, 6]:
            assert not has_cycle_of_exact_length(g, k)

    def test_complete_graph_has_all_lengths(self):
        g = nx.complete_graph(6)
        for k in [3, 4, 5, 6]:
            assert has_cycle_of_exact_length(g, k)

    def test_chorded_hexagon(self):
        g = nx.cycle_graph(6)
        g.add_edge(0, 3)  # chord splits C6 into two C4s
        assert has_cycle_of_exact_length(g, 4)
        assert has_cycle_of_exact_length(g, 6)
        assert not has_cycle_of_exact_length(g, 5)

    def test_petersen_even_cycles(self):
        g = nx.petersen_graph()  # girth 5; contains C5, C6, C8, C9...
        assert not has_cycle_of_exact_length(g, 4)
        assert has_cycle_of_exact_length(g, 6)
        assert has_cycle_of_exact_length(g, 8)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            has_cycle_of_exact_length(nx.cycle_graph(4), 2)


class TestDetection:
    def test_detects_planted_even_cycle(self):
        net = topologies.planted_cycle(60, 6, seed=1)
        hits = sum(
            detect_even_cycle(net, 6, seed=s).found for s in range(10)
        )
        assert hits >= 7

    def test_never_false_positive(self):
        net = topologies.planted_cycle(60, 7, seed=2)  # only odd cycle
        for s in range(8):
            result = detect_even_cycle(net, 6, seed=s)
            assert not result.found
            assert result.sound

    def test_supported_lengths_only(self, grid45):
        with pytest.raises(ValueError):
            detect_even_cycle(grid45, 5)
        with pytest.raises(ValueError):
            detect_even_cycle(grid45, 12)

    def test_rounds_charged_sublinear(self):
        net = topologies.planted_cycle(100, 6, seed=3)
        result = detect_even_cycle(net, 6, seed=3)
        assert result.rounds <= 8 * (net.n ** 0.5)


class TestBounds:
    def test_quantum_below_classical(self):
        for k in [4, 6, 8, 10]:
            assert quantum_even_cycle_bound(10**6, k) < classical_even_cycle_bound(10**6)

    def test_exponent_approaches_half(self):
        assert quantum_even_cycle_bound(10**6, 10) > quantum_even_cycle_bound(10**6, 4)
