"""Tests for Section 6 CONGEST amplitude techniques (Lemmas 27–30)."""

import math

import numpy as np
import pytest

from repro.apps.amplitude_apps import (
    AmplifiedOutcome,
    DistributedSubroutine,
    amplification_round_bound,
    amplify,
    amplitude_estimation_round_bound,
    estimate_amplitude_distributed,
    estimate_phase_distributed,
    iterate_rounds,
    phase_estimation_round_bound,
)
from repro.congest import topologies


@pytest.fixture
def net():
    return topologies.grid(4, 4)


class TestSubroutine:
    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedSubroutine(rounds=-1, success_probability=0.5)
        with pytest.raises(ValueError):
            DistributedSubroutine(rounds=1, success_probability=1.5)

    def test_iterate_rounds(self, net):
        sub = DistributedSubroutine(rounds=10, success_probability=0.1)
        assert iterate_rounds(net, sub) == 2 * 10 + 2 * net.diameter


class TestAmplification:
    def test_succeeds_reliably(self, net):
        sub = DistributedSubroutine(rounds=5, success_probability=0.02)
        hits = 0
        for seed in range(20):
            out = amplify(net, sub, delta=0.05, rng=np.random.default_rng(seed))
            hits += out.succeeded
        assert hits >= 17

    def test_handles_zero_probability(self, net, rng):
        sub = DistributedSubroutine(rounds=5, success_probability=0.0)
        out = amplify(net, sub, delta=0.1, rng=rng)
        assert not out.succeeded

    def test_rounds_scale_inverse_sqrt_p(self, net, rng):
        cheap = amplify(
            net, DistributedSubroutine(5, 0.25), delta=0.1, rng=rng
        )
        costly = amplify(
            net, DistributedSubroutine(5, 0.25 / 16), delta=0.1, rng=rng
        )
        # 16× smaller p → ~4× more iterations per attempt.
        assert costly.iterations >= 3 * max(cheap.iterations, 1)

    def test_rounds_within_bound(self, net):
        sub = DistributedSubroutine(rounds=8, success_probability=0.01)
        bound = amplification_round_bound(net, sub, delta=0.05)
        for seed in range(10):
            out = amplify(net, sub, delta=0.05, rng=np.random.default_rng(seed))
            assert out.rounds <= 6 * bound

    def test_delta_validation(self, net, rng):
        with pytest.raises(ValueError):
            amplify(net, DistributedSubroutine(1, 0.5), delta=0.0, rng=rng)


class TestPhaseEstimation:
    def test_estimate_within_epsilon(self, net):
        hits = 0
        for seed in range(15):
            out = estimate_phase_distributed(
                net, unitary_rounds=3, true_theta=0.321,
                epsilon=0.02, delta=0.05, rng=np.random.default_rng(seed),
            )
            err = min(abs(out.theta_estimate - 0.321),
                      1 - abs(out.theta_estimate - 0.321))
            hits += err <= 0.02
        assert hits >= 12

    def test_rounds_scale_with_inverse_epsilon(self, net, rng):
        loose = estimate_phase_distributed(
            net, 3, 0.3, epsilon=0.1, delta=0.1, rng=rng
        )
        tight = estimate_phase_distributed(
            net, 3, 0.3, epsilon=0.01, delta=0.1, rng=rng
        )
        assert tight.rounds > 4 * loose.rounds

    def test_bound_formula(self, net):
        assert phase_estimation_round_bound(net, 5, 0.01, 0.1) > (
            phase_estimation_round_bound(net, 5, 0.1, 0.1)
        )

    def test_validation(self, net, rng):
        with pytest.raises(ValueError):
            estimate_phase_distributed(net, 1, 0.5, epsilon=0.0, delta=0.1, rng=rng)
        with pytest.raises(ValueError):
            estimate_phase_distributed(net, 1, 0.5, epsilon=0.1, delta=1.0, rng=rng)


class TestAmplitudeEstimation:
    def test_estimate_close_to_truth(self, net):
        sub = DistributedSubroutine(rounds=4, success_probability=0.04)
        errors = []
        for seed in range(15):
            out = estimate_amplitude_distributed(
                net, sub, p_max=0.1, epsilon=0.01, delta=0.05,
                rng=np.random.default_rng(seed),
            )
            errors.append(abs(out.p_estimate - 0.04))
        assert sorted(errors)[7] <= 0.01  # median within ε

    def test_p_max_validation(self, net, rng):
        sub = DistributedSubroutine(rounds=4, success_probability=0.5)
        with pytest.raises(ValueError):
            estimate_amplitude_distributed(
                net, sub, p_max=0.1, epsilon=0.01, delta=0.1, rng=rng
            )

    def test_bound_scales_with_sqrt_pmax(self, net):
        sub = DistributedSubroutine(rounds=4, success_probability=0.01)
        small = amplitude_estimation_round_bound(net, sub, 0.01, 0.01, 0.1)
        large = amplitude_estimation_round_bound(net, sub, 0.25, 0.01, 0.1)
        assert large == pytest.approx(5 * small)
