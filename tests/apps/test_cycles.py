"""Tests for Lemmas 23–25: bounded-length cycle detection."""

import numpy as np
import pytest

from repro.analysis.graphtruth import girth as true_girth
from repro.apps.cycles import (
    balanced_beta,
    detect_cycle,
    detect_cycle_clustered,
    heavy_cycle_search,
    light_cycle_scan,
    quantum_cycle_bound,
)
from repro.congest import topologies


class TestLightScan:
    def test_finds_light_cycle(self):
        net = topologies.cycle(8)  # all degrees 2: light for any β
        length, rounds = light_cycle_scan(net, 8, beta=0.5)
        assert length == 8
        assert rounds > 0

    def test_misses_cycle_above_bound(self):
        net = topologies.cycle(12)
        length, _ = light_cycle_scan(net, 6, beta=0.5)
        assert length is None

    def test_heavy_cycle_invisible_to_light_scan(self):
        # A triangle on the hub of a big star: hub degree is huge.
        net = topologies.star(30)
        g = net.graph.copy()
        g.add_edge(1, 2)  # triangle 0-1-2 through the hub
        net2 = topologies.Network(g) if hasattr(topologies, "Network") else None
        from repro.congest.network import Network

        net2 = Network(g)
        length, _ = light_cycle_scan(net2, 4, beta=0.3)
        assert length is None  # hub (degree 30) exceeds n^0.3


class TestHeavySearch:
    def test_finds_cycle_through_heavy_vertex(self):
        from repro.congest.network import Network

        g = topologies.star(20).graph.copy()
        g.add_edge(1, 2)
        net = Network(g)
        found = False
        for seed in range(6):
            length, _ = heavy_cycle_search(net, 4, beta=0.3, seed=seed)
            if length == 3:
                found = True
                break
        assert found

    def test_acyclic_reports_none(self):
        net = topologies.balanced_tree(2, 3)
        length, _ = heavy_cycle_search(net, 5, beta=0.4, seed=1)
        assert length is None


class TestDetectCycle:
    def test_finds_planted_cycle_reliably(self):
        net = topologies.planted_cycle(40, 5, seed=1)
        hits = 0
        for seed in range(10):
            result = detect_cycle(net, 6, seed=seed)
            hits += result.length == 5
        assert hits >= 7

    def test_one_sided_soundness(self):
        """Any reported length is ≥ the true girth and ≤ k."""
        net = topologies.planted_cycle(40, 6, seed=2)
        truth = true_girth(net.graph)
        for seed in range(6):
            result = detect_cycle(net, 8, seed=seed)
            if result.length is not None:
                assert truth <= result.length <= 8

    def test_no_short_cycle_reports_none(self):
        net = topologies.cycle(20)  # girth 20
        result = detect_cycle(net, 6, seed=3)
        assert result.length is None

    def test_k_too_small_rejected(self, grid45):
        with pytest.raises(ValueError):
            detect_cycle(grid45, 2)

    def test_beta_balanced_formula(self):
        beta = balanced_beta(n=10**4, diameter=10, k=6)
        assert 0 < beta <= 1
        # Larger k → smaller β (deeper light BFS must stay cheap).
        assert balanced_beta(10**4, 10, 12) < balanced_beta(10**4, 10, 4)

    def test_breakdown_reported(self):
        net = topologies.planted_cycle(30, 4, seed=4)
        result = detect_cycle(net, 6, seed=4)
        assert result.rounds == result.light_rounds + result.heavy_rounds


class TestClustered:
    def test_finds_cycle_in_clustered_mode(self):
        net = topologies.planted_cycle(50, 5, seed=5)
        hits = 0
        for seed in range(6):
            result = detect_cycle_clustered(net, 6, seed=seed)
            hits += result.length == 5
        assert hits >= 4

    def test_acyclic_clustered(self):
        net = topologies.balanced_tree(2, 4)
        result = detect_cycle_clustered(net, 6, seed=6)
        assert result.length is None

    def test_clustering_charge_included(self):
        net = topologies.planted_cycle(40, 4, seed=7)
        result = detect_cycle_clustered(net, 5, seed=7)
        assert result.detail["clustering"] > 0
        assert result.rounds >= result.detail["clustering"]


class TestBound:
    def test_bound_sublinear_in_n(self):
        assert quantum_cycle_bound(10**6, 4) < 10**6 ** 0.5 * 10

    def test_bound_exponent_grows_with_k(self):
        # Longer cycles → exponent approaches 1/2 from below.
        small_k = quantum_cycle_bound(10**6, 4)
        large_k = quantum_cycle_bound(10**6, 20)
        assert small_k < large_k
