"""Tests for Theorem 17/18: distributed Deutsch–Jozsa."""

import numpy as np
import pytest

from repro.apps.deutsch_jozsa import (
    aggregated_input,
    classical_exact_lower_bound,
    quantum_round_bound,
    solve_distributed_dj,
)
from repro.baselines.streaming import classical_deutsch_jozsa
from repro.congest import topologies
from repro.quantum.deutsch_jozsa import PromiseViolation


def balanced_inputs(net, k, rng):
    """Random per-node strings whose XOR is balanced."""
    inputs = {v: [int(b) for b in rng.integers(0, 2, size=k)] for v in net.nodes()}
    xor = aggregated_input(inputs)
    # Repair node 0 so the aggregate is exactly balanced.
    target = [1] * (k // 2) + [0] * (k // 2)
    fix = [a ^ b for a, b in zip(xor, target)]
    inputs[0] = [a ^ b for a, b in zip(inputs[0], fix)]
    return inputs


def constant_inputs(net, k, rng, ones=False):
    inputs = {v: [int(b) for b in rng.integers(0, 2, size=k)] for v in net.nodes()}
    xor = aggregated_input(inputs)
    target = [1 if ones else 0] * k
    fix = [a ^ b for a, b in zip(xor, target)]
    inputs[0] = [a ^ b for a, b in zip(inputs[0], fix)]
    return inputs


class TestZeroError:
    """Theorem 17 claims probability 1 — every run must be correct."""

    @pytest.mark.parametrize("seed", range(8))
    def test_balanced_always_detected(self, seed):
        net = topologies.grid(3, 3)
        rng = np.random.default_rng(seed)
        inputs = balanced_inputs(net, 16, rng)
        result = solve_distributed_dj(net, inputs, seed=seed)
        assert result.balanced

    @pytest.mark.parametrize("seed", range(8))
    def test_constant_always_detected(self, seed):
        net = topologies.grid(3, 3)
        rng = np.random.default_rng(seed)
        inputs = constant_inputs(net, 16, rng, ones=bool(seed % 2))
        result = solve_distributed_dj(net, inputs, seed=seed)
        assert result.constant

    def test_exactly_two_batches(self, grid45, rng):
        inputs = constant_inputs(grid45, 8, rng)
        result = solve_distributed_dj(grid45, inputs, seed=1)
        assert result.batches == 2  # query + uncompute

    def test_promise_violation_raises(self, grid45):
        inputs = {v: [0] * 8 for v in grid45.nodes()}
        inputs[0] = [1, 0, 0, 0, 0, 0, 0, 0]
        with pytest.raises(PromiseViolation):
            solve_distributed_dj(grid45, inputs, seed=1)

    def test_odd_k_rejected(self, grid45):
        inputs = {v: [0] * 7 for v in grid45.nodes()}
        with pytest.raises(ValueError):
            solve_distributed_dj(grid45, inputs, seed=1)


class TestExponentialSeparation:
    def test_quantum_rounds_independent_of_k(self):
        """The k-dependence is only the ⌈log k/log n⌉ word factor."""
        net = topologies.path_with_endpoints(6)
        rng = np.random.default_rng(3)
        small = solve_distributed_dj(net, constant_inputs(net, 8, rng), seed=3)
        large = solve_distributed_dj(net, constant_inputs(net, 1024, rng), seed=3)
        assert large.rounds <= 4 * small.rounds

    def test_classical_rounds_linear_in_k(self):
        net = topologies.path_with_endpoints(6)
        rng = np.random.default_rng(4)
        _, small = classical_deutsch_jozsa(net, constant_inputs(net, 64, rng), seed=4)
        _, large = classical_deutsch_jozsa(net, constant_inputs(net, 1024, rng), seed=4)
        assert large > 8 * small

    def test_separation_at_moderate_k(self):
        net = topologies.path_with_endpoints(6)
        rng = np.random.default_rng(5)
        inputs = balanced_inputs(net, 2048, rng)
        quantum = solve_distributed_dj(net, inputs, seed=5)
        answer, classical_rounds = classical_deutsch_jozsa(net, inputs, seed=5)
        assert not answer  # balanced
        assert quantum.rounds * 10 < classical_rounds

    def test_classical_baseline_zero_error(self):
        net = topologies.grid(3, 3)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            constant, _ = classical_deutsch_jozsa(
                net, constant_inputs(net, 32, rng), seed=seed
            )
            assert constant
            balanced, _ = classical_deutsch_jozsa(
                net, balanced_inputs(net, 32, rng), seed=seed
            )
            assert not balanced

    def test_bound_formulas(self):
        n, d, k = 256, 8, 2**20
        assert quantum_round_bound(k, d, n) < classical_exact_lower_bound(k, d, n)
