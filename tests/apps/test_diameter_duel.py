"""Tests for the PR 8 diameter workload family (quantum vs classical)."""

import pytest

from repro.apps.diameter import (
    DiameterDuel,
    crossover_n,
    diameter_duel,
    speedup_at,
    sweep_diameter,
)
from repro.congest import topologies
from repro.congest.errors import CongestError


class TestDiameterDuel:
    def test_duel_is_exact_and_bounded(self):
        net = topologies.diameter_controlled(100, 6, seed=0)
        duel = diameter_duel(net, trials=2, seed=0)
        assert duel.n == 100
        assert duel.diameter == net.diameter
        assert duel.accuracy == 1.0
        assert duel.classical_rounds == duel.classical_bound
        assert duel.quantum_rounds > 0

    def test_rejects_non_congest_network(self):
        with pytest.raises(CongestError, match="CONGEST workload"):
            diameter_duel(topologies.clique(16))

    def test_rejects_zero_trials(self):
        net = topologies.cycle(12)
        with pytest.raises(CongestError, match="trials"):
            diameter_duel(net, trials=0)

    def test_sweep_slopes_separate(self):
        duels = sweep_diameter([100, 400], trials=2, seed=0)
        assert [d.n for d in duels] == [100, 400]
        # The quantum side grows strictly slower than the classical side
        # over a 4x size step (≈ x^0.5 vs ≈ x^1).
        q_ratio = duels[1].quantum_rounds / duels[0].quantum_rounds
        c_ratio = duels[1].classical_rounds / duels[0].classical_rounds
        assert q_ratio < c_ratio

    def test_crossover_semantics(self):
        def duel(n, wins):
            return DiameterDuel(
                n=n, diameter=6, quantum_rounds=1.0 if wins else 100.0,
                classical_rounds=10, quantum_bound=1.0,
                classical_bound=10.0, accuracy=1.0,
            )

        assert crossover_n([duel(10, False), duel(20, True)]) == 20
        assert crossover_n([duel(10, True), duel(20, False)]) is None
        assert crossover_n([]) is None

    def test_speedup_ratio(self):
        d = DiameterDuel(
            n=8, diameter=2, quantum_rounds=5.0, classical_rounds=20,
            quantum_bound=4.0, classical_bound=22.0, accuracy=1.0,
        )
        assert speedup_at(d) == 4.0
        assert d.quantum_wins
