"""Integration tests: full stacks, engine-vs-formula agreement, separations."""

import numpy as np
import pytest

from repro.apps.cycles import detect_cycle
from repro.apps.deutsch_jozsa import solve_distributed_dj
from repro.apps.eccentricity import compute_diameter, compute_radius
from repro.apps.element_distinctness import distinctness_distributed_vector
from repro.apps.girth import compute_girth, verify_girth
from repro.apps.meeting import schedule_meeting
from repro.baselines.cycles import detect_cycle_classical
from repro.baselines.streaming import classical_meeting
from repro.congest import topologies
from repro.core.cost import CostModel
from repro.core.framework import (
    DistributedInput,
    FrameworkConfig,
    run_framework,
)
from repro.core.semigroup import sum_semigroup
from repro.queries import minimum as parallel_minimum


class TestEngineVsFormula:
    """The central fidelity claim: charged formulas track measured engines."""

    @pytest.mark.parametrize("maker", [
        lambda: topologies.path(10),
        lambda: topologies.grid(3, 4),
        lambda: topologies.star(12),
        lambda: topologies.petersen(),
    ])
    def test_batch_costs_agree_within_constants(self, maker, rng):
        net = maker()
        k = 16
        vectors = {
            v: [int(rng.integers(0, 2)) for _ in range(k)] for v in net.nodes()
        }
        di = DistributedInput(vectors, sum_semigroup(net.n))
        p = max(net.diameter, 2)

        def algorithm(oracle, _rng):
            for start in range(0, k, p):
                oracle.query_batch(list(range(start, min(start + p, k))))
            return None

        cfg = FrameworkConfig(parallelism=p, dist_input=di, seed=1)
        f = run_framework(net, algorithm, config=cfg)
        e = run_framework(net, algorithm, config=cfg.replace(mode="engine"))
        assert e.total_rounds <= 4 * f.total_rounds + 20
        assert f.total_rounds <= 4 * e.total_rounds + 20

    def test_full_app_agrees_across_modes(self, rng):
        net = topologies.grid(3, 3)
        cal = {
            v: [int(rng.random() < 0.5) for _ in range(10)] for v in net.nodes()
        }
        f = schedule_meeting(net, cal, mode="formula", seed=5)
        e = schedule_meeting(net, cal, mode="engine", seed=5)
        assert f.best_slot == e.best_slot
        assert f.batches == e.batches


class TestTheorem8Formula:
    def test_total_rounds_match_theorem_formula(self, rng):
        """D + b·((D+p)⌈q/logn⌉ + p⌈log k/log n⌉) exactly, in formula mode."""
        net = topologies.grid(4, 5)
        k, p, b = 64, 5, 3
        vectors = {
            v: [int(rng.integers(0, 2)) for _ in range(k)] for v in net.nodes()
        }
        di = DistributedInput(vectors, sum_semigroup(net.n))
        cm = CostModel.for_network(net)

        def algorithm(oracle, _rng):
            for i in range(b):
                oracle.query_batch(list(range(i * p, (i + 1) * p)), label="x")
            return None

        run = run_framework(net, algorithm, config=FrameworkConfig(
            parallelism=p, dist_input=di, seed=2, leader=0,
        ))
        batch_total = run.rounds.by_phase()["batch:x"]
        assert batch_total == b * cm.batch_rounds(p, di.semigroup.bits, k)


class TestFullPipelines:
    def test_diameter_and_radius_consistent(self):
        net = topologies.lollipop(6, 8)
        d = compute_diameter(net, seed=1)
        r = compute_radius(net, seed=2)
        assert r.value <= d.value
        assert d.value <= 2 * r.value  # metric fact: D ≤ 2R

    def test_girth_pipeline_sound_on_many_graphs(self):
        for seed, g in [(1, 4), (2, 5), (3, 7)]:
            net = topologies.planted_cycle(30, g, seed=seed)
            result = compute_girth(net, seed=seed)
            assert verify_girth(net, result)

    def test_quantum_and_classical_cycle_agree(self):
        net = topologies.planted_cycle(36, 5, seed=4)
        quantum_lengths = {detect_cycle(net, 6, seed=s).length for s in range(4)}
        classical_lengths = {
            detect_cycle_classical(net, 6, seed=s).length for s in range(4)
        }
        assert 5 in quantum_lengths
        assert 5 in classical_lengths

    def test_three_separations_on_one_gadget(self):
        """One path gadget, three quantum-vs-classical round comparisons."""
        net = topologies.path_with_endpoints(6)
        rng = np.random.default_rng(6)
        k = 8192  # comfortably past the √(kD)-vs-k/log n crossover

        cal = {v: [int(rng.random() < 0.5) for _ in range(k)] for v in net.nodes()}
        q_meeting = schedule_meeting(net, cal, seed=6).rounds
        c_meeting = classical_meeting(net, cal, seed=6)[2]
        assert q_meeting < c_meeting

        vectors = {v: [0] * k for v in net.nodes()}
        vectors[0] = list(rng.choice(10**6, size=k, replace=False))
        vectors[0][9] = vectors[0][99]  # plant one collision
        q_ed = distinctness_distributed_vector(net, vectors, 10**6, seed=6).rounds
        from repro.baselines.streaming import classical_element_distinctness

        _, c_ed = classical_element_distinctness(net, vectors, 10**6, seed=6)
        assert q_ed < c_ed  # both pay the same ⌈log N/log n⌉ word factor

        inputs = {v: [0] * k for v in net.nodes()}
        inputs[0] = [1, 0] * (k // 2)
        q_dj = solve_distributed_dj(net, inputs, seed=6).rounds
        assert q_dj * 50 < c_meeting


class TestReproducibility:
    def test_identical_seeds_identical_runs(self):
        net = topologies.grid(3, 4)
        rng = np.random.default_rng(7)
        cal = {v: [int(rng.random() < 0.4) for _ in range(30)] for v in net.nodes()}
        a = schedule_meeting(net, cal, seed=42)
        b = schedule_meeting(net, cal, seed=42)
        assert a.best_slot == b.best_slot
        assert a.rounds == b.rounds
        assert a.batches == b.batches

    def test_different_seeds_may_differ_but_stay_correct(self):
        net = topologies.grid(3, 4)
        rng = np.random.default_rng(8)
        cal = {v: [int(rng.random() < 0.4) for _ in range(30)] for v in net.nodes()}
        results = [schedule_meeting(net, cal, seed=s) for s in range(6)]
        correct = sum(r.correct_against(cal) for r in results)
        assert correct >= 4
