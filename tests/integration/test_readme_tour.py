"""The README's sixty-second tour must actually run as printed."""

import numpy as np


class TestReadmeTour:
    def test_sixty_second_tour(self):
        from repro.apps.eccentricity import compute_diameter
        from repro.apps.meeting import schedule_meeting
        from repro.congest import topologies

        net = topologies.grid(6, 6)

        rng = np.random.default_rng(0)
        calendars = {
            v: list(int(b) for b in rng.integers(0, 2, size=200))
            for v in net.nodes()
        }
        meeting = schedule_meeting(net, calendars, seed=0)
        assert 0 <= meeting.best_slot < 200
        assert meeting.rounds > 0
        assert meeting.run.rounds.by_phase()

        diameter = compute_diameter(net, seed=0)
        assert diameter.value in set(net.eccentricities.values())
        assert diameter.rounds > 0

    def test_paper_index_example(self):
        from repro.paper import where_is

        entry = where_is("Lemma 10")
        assert entry.experiment == "E7"

    def test_cli_entry_documented_behaviour(self, capsys):
        from repro.__main__ import main

        assert main(["run", "E15"]) == 0
        assert "E15" in capsys.readouterr().out
