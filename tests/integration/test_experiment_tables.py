"""Structural checks over every experiment's output table.

Complements the criteria checks: every experiment must produce a
well-formed, renderable table with data rows — this is what
EXPERIMENTS.md regeneration relies on.
"""

import pytest

from repro.analysis.report import ExperimentTable
from repro.experiments import ALL_EXPERIMENTS

FAST = ["E1", "E4", "E5", "E6", "E14", "E15", "E16", "E17"]


@pytest.fixture(scope="module")
def results():
    return {
        name: ALL_EXPERIMENTS[name].run(quick=True, seed=0) for name in FAST
    }


class TestTableStructure:
    def test_all_have_tables(self, results):
        for name, result in results.items():
            assert isinstance(result.table, ExperimentTable), name

    def test_tables_have_rows(self, results):
        for name, result in results.items():
            assert len(result.table.rows) >= 1, f"{name} produced no rows"

    def test_tables_render_without_error(self, results):
        for name, result in results.items():
            text = result.table.render()
            assert name in text.split("\n")[0]
            assert len(text.splitlines()) >= 3

    def test_row_arity_matches_columns(self, results):
        for name, result in results.items():
            width = len(result.table.columns)
            for row in result.table.rows:
                assert len(row) == width, name

    def test_experiment_ids_match_registry(self, results):
        for name, result in results.items():
            assert result.table.experiment_id == name


class TestSeedRobustness:
    """Criteria must hold for more than the default seed (no seed-tuning)."""

    @pytest.mark.parametrize("experiment", ["E1", "E5", "E15", "E17"])
    @pytest.mark.parametrize("seed", [7, 2026])
    def test_criteria_hold_across_seeds(self, experiment, seed):
        from repro.experiments.runner import RunRequest, verify_experiment

        verdict = verify_experiment(RunRequest(
            experiments=(experiment,), seed=seed,
        ))
        assert verdict.passed, f"{experiment}@seed={seed}: {verdict.detail}"
