"""Tests for Lemma 6: parallel mean estimation."""

import math

import numpy as np
import pytest

from repro.queries.ledger import QueryLedger
from repro.queries.mean_estimation import batch_count, estimate_mean
from repro.queries.oracle import StringOracle


class TestBatchCount:
    def test_formula_positive(self):
        assert batch_count(1.0, 1, 0.1) >= 1

    def test_one_when_trivial(self):
        assert batch_count(0.01, 100, 0.5) == 1

    def test_decreases_with_p(self):
        assert batch_count(5.0, 100, 0.01) < batch_count(5.0, 1, 0.01)

    def test_sqrt_p_scaling(self):
        b1 = batch_count(10.0, 1, 0.001)
        b100 = batch_count(10.0, 100, 0.001)
        assert 6 <= b1 / b100 <= 40  # ideal 10, inflated by the log^{3/2} factor

    def test_inverse_epsilon_scaling(self):
        b_loose = batch_count(10.0, 4, 0.1)
        b_tight = batch_count(10.0, 4, 0.01)
        assert 8 <= b_tight / b_loose <= 60  # ideal 10 times polylog growth

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            batch_count(1.0, 1, 0.0)


class TestEstimateMean:
    def test_estimate_within_epsilon_reliably(self):
        hits = 0
        trials = 40
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            values = list(rng.uniform(0, 10, size=2000))
            mu = sum(values) / len(values)
            oracle = StringOracle(values, QueryLedger(32))
            est = estimate_mean(oracle, sigma=3.0, epsilon=0.2, rng=rng)
            hits += abs(est.estimate - mu) <= 0.2
        # The lemma guarantees ≥ 2/3; allow binomial noise on 40 trials.
        assert hits >= 22

    def test_batches_match_formula(self, rng):
        values = list(rng.uniform(0, 1, size=500))
        oracle = StringOracle(values, QueryLedger(16))
        est = estimate_mean(oracle, sigma=0.3, epsilon=0.01, rng=rng)
        assert est.batches_used == batch_count(0.3, 16, 0.01)

    def test_constant_input_exact(self, rng):
        values = [5.0] * 200
        oracle = StringOracle(values, QueryLedger(16))
        est = estimate_mean(oracle, sigma=1.0, epsilon=0.5, rng=rng)
        # σ-classical fallback kicks in or quantum path stays within ε.
        assert abs(est.estimate - 5.0) <= 0.5

    def test_classical_fallback_regime(self, rng):
        """Huge p and loose ε: the metered samples alone suffice."""
        values = list(rng.normal(2.0, 0.1, size=1000))
        oracle = StringOracle(values, QueryLedger(500))
        est = estimate_mean(oracle, sigma=0.1, epsilon=0.5, rng=rng)
        mu = sum(values) / len(values)
        assert abs(est.estimate - mu) <= 0.05

    def test_samples_counted(self, rng):
        values = list(rng.uniform(0, 1, size=300))
        oracle = StringOracle(values, QueryLedger(8))
        est = estimate_mean(oracle, sigma=0.3, epsilon=0.05, rng=rng)
        assert est.samples_queried == est.batches_used * 8
