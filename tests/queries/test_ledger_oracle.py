"""Tests for query ledgers and oracle abstractions."""

import pytest

from repro.queries.ledger import ParallelismViolation, QueryLedger
from repro.queries.oracle import MaskedOracle, StringOracle


class TestLedger:
    def test_counts_batches(self):
        ledger = QueryLedger(4)
        ledger.record(3)
        ledger.record(4)
        assert ledger.batches == 2
        assert ledger.total_queries == 7

    def test_parallelism_cap_enforced(self):
        ledger = QueryLedger(4)
        with pytest.raises(ParallelismViolation):
            ledger.record(5)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            QueryLedger(4).record(0)

    def test_rejects_bad_parallelism(self):
        with pytest.raises(ValueError):
            QueryLedger(0)

    def test_labels_tracked(self):
        ledger = QueryLedger(4)
        ledger.record(1, label="setup")
        ledger.record(2, label="walk")
        ledger.record(2, label="walk")
        assert ledger.batches_labeled("walk") == 2
        assert ledger.batches_labeled("setup") == 1

    def test_reset(self):
        ledger = QueryLedger(4)
        ledger.record(2)
        ledger.reset()
        assert ledger.batches == 0


class TestStringOracle:
    def test_query_returns_values(self):
        oracle = StringOracle([10, 20, 30], QueryLedger(2))
        assert oracle.query_batch([2, 0]) == [30, 10]

    def test_query_meters_ledger(self):
        oracle = StringOracle([1, 2, 3, 4], QueryLedger(3))
        oracle.query_batch([0, 1])
        oracle.query_batch([2])
        assert oracle.ledger.batches == 2
        assert oracle.ledger.total_queries == 3

    def test_out_of_range_rejected(self):
        oracle = StringOracle([1, 2], QueryLedger(2))
        with pytest.raises(IndexError):
            oracle.query_batch([2])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            StringOracle([], QueryLedger(1))

    def test_peek_is_free(self):
        oracle = StringOracle([5, 6], QueryLedger(1))
        assert list(oracle.peek_all()) == [5, 6]
        assert oracle.ledger.batches == 0

    def test_k(self):
        assert StringOracle([0] * 7, QueryLedger(1)).k == 7


class TestMaskedOracle:
    def test_masked_indices_read_mask_value(self):
        base = StringOracle([1, 1, 1], QueryLedger(3))
        view = MaskedOracle(base, {1}, mask_value=0)
        assert view.query_batch([0, 1, 2]) == [1, 0, 1]

    def test_peek_masked(self):
        base = StringOracle([1, 1], QueryLedger(2))
        view = MaskedOracle(base, {0}, mask_value=9)
        assert list(view.peek_all()) == [9, 1]

    def test_queries_metered_on_base(self):
        base = StringOracle([1, 2, 3], QueryLedger(2))
        view = MaskedOracle(base, set(), mask_value=0)
        view.query_batch([0])
        assert base.ledger.batches == 1
