"""Tests for Lemma 5: parallel element distinctness via the rebalanced walk."""

import numpy as np
import pytest

from repro.queries.element_distinctness import (
    expected_batches,
    find_collision,
    walk_parameters,
)
from repro.queries.ledger import QueryLedger
from repro.queries.oracle import StringOracle


def planted_oracle(k, p, rng, collisions=1):
    values = list(rng.choice(10**9, size=k, replace=False))
    for c in range(collisions):
        i, j = rng.choice(k, size=2, replace=False)
        values[j] = values[i]
    return StringOracle(values, QueryLedger(p)), values


class TestWalkParameters:
    def test_balance_point(self):
        z, setup, steps = walk_parameters(1000, 10)
        assert abs(z - 1000 ** (2 / 3) * 10 ** (1 / 3)) <= z  # sane magnitude
        assert z > 10  # z > p required by the walk
        assert z <= 500  # z ≤ k/2 required for the spectral gap

    def test_setup_batches(self):
        z, setup, _ = walk_parameters(1000, 10)
        assert setup == -(-z // 10)

    def test_total_near_bound(self):
        for k, p in [(512, 4), (2048, 16), (8192, 32)]:
            z, setup, steps = walk_parameters(k, p)
            bound = expected_batches(k, p)
            assert setup + steps <= 8 * bound + 8

    def test_constraints_hold(self):
        """p < z and z ≤ k/2 across the parameter space (Lemma 5 proof)."""
        for k in [64, 500, 4096]:
            for p in [1, 2, k // 16 or 1]:
                if p >= k // 8:
                    continue
                z, _, _ = walk_parameters(k, p)
                assert p < z <= k // 2


class TestFindCollision:
    def test_finds_planted_collision_reliably(self):
        hits = 0
        for seed in range(25):
            rng = np.random.default_rng(seed)
            oracle, values = planted_oracle(500, 8, rng)
            out = find_collision(oracle, rng)
            ok = (
                out.found
                and out.pair[0] != out.pair[1]
                and values[out.pair[0]] == values[out.pair[1]]
            )
            hits += ok
        assert hits >= 17  # the 2/3 guarantee with margin

    def test_pair_is_real_when_reported(self):
        """One-sided error: any reported pair must be a true collision."""
        for seed in range(10):
            rng = np.random.default_rng(seed)
            oracle, values = planted_oracle(300, 6, rng)
            out = find_collision(oracle, rng)
            if out.found:
                i, j = out.pair
                assert values[i] == values[j] and i != j

    def test_distinct_input_reports_none(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            values = list(range(400))
            oracle = StringOracle(values, QueryLedger(8))
            out = find_collision(oracle, rng)
            assert not out.found

    def test_full_read_when_p_ge_k(self, rng):
        values = [1, 2, 3, 2]
        oracle = StringOracle(values, QueryLedger(8))
        out = find_collision(oracle, rng)
        assert out.found and out.pair == (1, 3)
        assert out.batches_used == 1

    def test_large_p_regime(self, rng):
        """p ≥ k/2: two batches read everything, zero error."""
        values = list(range(64))
        values[50] = values[10]
        oracle = StringOracle(values, QueryLedger(32))
        out = find_collision(oracle, rng)
        assert out.pair == (10, 50)
        assert oracle.ledger.batches == 2

    def test_mid_p_regime_uses_clamped_walk(self, rng):
        """k/8 ≤ p < k/2 flows through the walk with z = p+1 and stays
        within a constant batch budget while meeting the 2/3 guarantee."""
        hits = 0
        for seed in range(20):
            loc = np.random.default_rng(seed)
            values = list(loc.choice(10**6, size=64, replace=False))
            values[50] = values[10]
            oracle = StringOracle(values, QueryLedger(12))
            out = find_collision(oracle, loc)
            hits += out.found
            assert out.batches_used <= 25
        assert hits >= 14

    def test_batch_usage_tracks_bound(self):
        totals = {}
        for k, p in [(512, 8), (4096, 8)]:
            total = 0
            for seed in range(8):
                rng = np.random.default_rng(seed)
                oracle, _ = planted_oracle(k, p, rng)
                out = find_collision(oracle, rng)
                total += out.batches_used
            totals[k] = total / 8
        ratio = totals[4096] / totals[512]
        # bound ratio: (4096/512)^{2/3} = 4; allow generous slack.
        assert 2.0 < ratio < 8.0

    def test_many_collisions_found_faster(self):
        def avg(collisions):
            total = 0
            for seed in range(8):
                rng = np.random.default_rng(seed)
                oracle, _ = planted_oracle(1000, 8, rng, collisions=collisions)
                out = find_collision(oracle, rng)
                total += out.batches_used
            return total / 8

        assert avg(60) <= avg(1) + 1  # more collisions never slower on avg
