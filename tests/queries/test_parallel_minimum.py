"""Tests for Lemma 3: parallel minimum/maximum finding."""

import numpy as np
import pytest

from repro.queries.ledger import QueryLedger
from repro.queries.minimum import expected_batches, find_maximum, find_minimum
from repro.queries.oracle import StringOracle


def oracle_for(values, p):
    return StringOracle(list(values), QueryLedger(p))


class TestFindMinimum:
    def test_finds_true_minimum_reliably(self):
        hits = 0
        for seed in range(25):
            rng = np.random.default_rng(seed)
            values = list(rng.integers(10, 10**6, size=512))
            values[int(rng.integers(0, 512))] = 3
            out = find_minimum(oracle_for(values, 16), rng)
            hits += out.value == 3
        assert hits >= 20

    def test_index_matches_value(self, rng):
        values = [50, 40, 30, 20, 10, 60, 70, 80] * 16
        out = find_minimum(oracle_for(values, 8), rng)
        assert values[out.index] == out.value

    def test_full_coverage_when_p_ge_k(self, rng):
        values = [9, 2, 7, 5]
        out = find_minimum(oracle_for(values, 8), rng)
        assert out.value == 2 and out.index == 1
        assert out.batches_used == 1

    def test_constant_input(self, rng):
        out = find_minimum(oracle_for([4] * 64, 8), rng)
        assert out.value == 4

    def test_batches_respect_budget(self, rng):
        k, p = 2048, 16
        out = find_minimum(oracle_for(list(range(k)), p), rng)
        assert out.batches_used <= 10 * expected_batches(k, p) + 16

    def test_multiplicity_shrinks_budget(self):
        """Lemma 3 second part: ℓ duplicate minima cut batches by √ℓ."""
        k, p, ell = 4096, 8, 64

        def avg_batches(multiplicity, plant):
            total = 0
            for seed in range(10):
                rng = np.random.default_rng(seed)
                values = list(rng.integers(100, 10**6, size=k))
                for i in rng.choice(k, size=plant, replace=False):
                    values[i] = 1
                out = find_minimum(
                    oracle_for(values, p), rng, multiplicity=multiplicity
                )
                assert out.value == 1
                total += out.batches_used
            return total / 10

        with_mult = avg_batches(ell, ell)
        without = avg_batches(1, 1)
        assert with_mult < without / 2  # ideal √64 = 8

    def test_batches_scale_with_parallelism(self):
        def avg(p):
            total = 0
            for seed in range(15):
                rng = np.random.default_rng(seed)
                values = list(rng.permutation(2048))
                out = find_minimum(oracle_for(values, p), rng)
                total += out.batches_used
            return total / 15

        assert avg(64) < avg(4) / 1.8


class TestFindMaximum:
    def test_finds_true_maximum(self):
        hits = 0
        for seed in range(20):
            rng = np.random.default_rng(seed)
            values = list(rng.integers(0, 1000, size=256))
            out = find_maximum(oracle_for(values, 16), rng)
            hits += out.value == max(values)
        assert hits >= 16

    def test_negative_values(self, rng):
        values = [-5, -1, -30, -2] * 32
        out = find_maximum(oracle_for(values, 8), rng)
        assert out.value == -1

    def test_threshold_updates_counted(self, rng):
        values = list(range(1024, 0, -1))
        out = find_minimum(oracle_for(values, 32), rng)
        assert out.threshold_updates >= 1
