"""Tests for Lemma 2: parallel Grover search (find-one and find-all)."""

import math

import numpy as np
import pytest

from repro.queries.grover import (
    expected_batches_all,
    expected_batches_one,
    find_all,
    find_one,
    find_one_split,
    marked_subset_fraction,
)
from repro.queries.ledger import QueryLedger
from repro.queries.oracle import StringOracle


def make_oracle(k, marked, p):
    values = [1 if i in marked else 0 for i in range(k)]
    return StringOracle(values, QueryLedger(p))


IS_ONE = lambda v: v == 1


class TestMarkedSubsetFraction:
    def test_zero_when_no_marked(self):
        assert marked_subset_fraction(100, 0, 10) == 0.0

    def test_one_when_subset_must_hit(self):
        assert marked_subset_fraction(10, 8, 5) == 1.0

    def test_single_item_single_query(self):
        assert marked_subset_fraction(100, 1, 1) == pytest.approx(0.01)

    def test_monotone_in_p(self):
        values = [marked_subset_fraction(1000, 3, p) for p in [1, 10, 100]]
        assert values[0] < values[1] < values[2]

    def test_lower_bound_tp_over_ek(self):
        """f ≥ (1 − e⁻¹)·min(1, tp/k), the bound behind Lemma 2's analysis."""
        for k, t, p in [(1000, 2, 25), (500, 5, 10), (200, 1, 50)]:
            f = marked_subset_fraction(k, t, p)
            assert f >= (1 - math.exp(-1)) * min(1.0, t * p / k) - 1e-9


class TestFindOne:
    def test_finds_marked_reliably(self):
        hits = 0
        for seed in range(30):
            oracle = make_oracle(512, {100, 200}, 16)
            out = find_one(oracle, IS_ONE, np.random.default_rng(seed))
            hits += out.found and out.index in {100, 200}
        assert hits >= 24  # well above the 2/3 guarantee

    def test_reports_none_when_empty(self, rng):
        oracle = make_oracle(256, set(), 16)
        out = find_one(oracle, IS_ONE, rng)
        assert not out.found

    def test_none_case_batch_cutoff(self, rng):
        oracle = make_oracle(1024, set(), 16)
        out = find_one(oracle, IS_ONE, rng)
        assert out.batches_used <= 9 * math.sqrt(1024 / 16) + 8

    def test_found_value_returned(self, rng):
        oracle = make_oracle(128, {7}, 8)
        out = find_one(oracle, IS_ONE, rng)
        if out.found:
            assert out.value == 1

    def test_full_coverage_when_p_ge_k(self, rng):
        oracle = make_oracle(16, {3}, 32)
        out = find_one(oracle, IS_ONE, rng)
        assert out.found and out.index == 3
        assert out.batches_used == 1

    def test_batches_scale_with_sqrt_k_over_tp(self):
        """Averaged batch usage tracks √(k/(tp)) within constants."""
        def avg_batches(k, t, p, trials=25):
            total = 0
            for seed in range(trials):
                marked = set(range(t))
                oracle = make_oracle(k, marked, p)
                out = find_one(oracle, IS_ONE, np.random.default_rng(seed))
                total += out.batches_used
            return total / trials

        base = avg_batches(1024, 1, 4)
        more_parallel = avg_batches(1024, 1, 64)
        assert more_parallel < base / 1.8  # ideal ratio 4

    def test_ledger_respects_parallelism(self, rng):
        oracle = make_oracle(256, {1}, 8)
        find_one(oracle, IS_ONE, rng)
        assert all(r.size <= 8 for r in oracle.ledger.records)


class TestFindAll:
    def test_finds_every_marked(self):
        successes = 0
        for seed in range(10):
            marked = {3, 77, 150, 280}
            oracle = make_oracle(512, marked, 32)
            found, _ = find_all(
                oracle, IS_ONE, np.random.default_rng(seed), unmarked_value=0
            )
            successes += {f.index for f in found} == marked
        assert successes >= 7

    def test_empty_input(self, rng):
        oracle = make_oracle(128, set(), 16)
        found, batches = find_all(oracle, IS_ONE, rng, unmarked_value=0)
        assert found == []

    def test_rejects_marked_unmarked_value(self, rng):
        oracle = make_oracle(16, {0}, 4)
        with pytest.raises(ValueError):
            find_all(oracle, IS_ONE, rng, unmarked_value=1)

    def test_no_duplicates_in_found(self, rng):
        oracle = make_oracle(256, {10, 20, 30}, 16)
        found, _ = find_all(oracle, IS_ONE, rng, unmarked_value=0)
        indices = [f.index for f in found]
        assert len(indices) == len(set(indices))

    def test_batches_scale_with_bound(self):
        """Total batches within a constant of √(kt/p) + t."""
        k, t, p = 1024, 4, 32
        total = 0
        trials = 10
        for seed in range(trials):
            oracle = make_oracle(k, set(range(0, 4 * t, 4)), p)
            _, batches = find_all(
                oracle, IS_ONE, np.random.default_rng(seed), unmarked_value=0
            )
            total += batches
        avg = total / trials
        assert avg <= 40 * expected_batches_all(k, t, p)


class TestSplitBaseline:
    def test_split_finds_marked(self):
        hits = 0
        for seed in range(20):
            oracle = make_oracle(512, {70}, 8)
            out = find_one_split(oracle, IS_ONE, np.random.default_rng(seed))
            hits += out.found and out.index == 70
        assert hits >= 14

    def test_split_costs_more_than_subset_strategy(self):
        """The paper's approach beats Zalka/GR04 splitting (the log p)."""
        k, p = 2048, 32

        def avg(fn, trials=15):
            total = 0
            for seed in range(trials):
                oracle = make_oracle(k, {5}, p)
                out = fn(oracle, IS_ONE, np.random.default_rng(seed))
                total += out.batches_used
            return total / trials

        assert avg(find_one) < avg(find_one_split)
