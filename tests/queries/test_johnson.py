"""Tests for the Johnson-graph spectral facts behind Lemma 5."""

import math

import numpy as np
import pytest

from repro.queries.johnson import (
    check_walk_parameters,
    johnson_gap_closed_form,
    johnson_vertices,
    johnson_walk_matrix,
    marked_fraction_one_pair,
    power_walk_gap,
    spectral_gap,
)


class TestConstruction:
    def test_vertex_count(self):
        assert len(johnson_vertices(6, 2)) == 15

    def test_walk_is_stochastic(self):
        walk = johnson_walk_matrix(6, 2)
        assert np.allclose(walk.sum(axis=1), 1.0)

    def test_walk_is_symmetric(self):
        walk = johnson_walk_matrix(7, 3)
        assert np.allclose(walk, walk.T)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            johnson_vertices(4, 0)
        with pytest.raises(ValueError):
            johnson_vertices(4, 5)


class TestSpectralGap:
    @pytest.mark.parametrize("k,z", [(6, 2), (8, 3), (9, 4), (10, 5)])
    def test_gap_matches_closed_form(self, k, z):
        walk = johnson_walk_matrix(k, z)
        assert spectral_gap(walk) == pytest.approx(
            johnson_gap_closed_form(k, z), abs=1e-9
        )

    @pytest.mark.parametrize("k,z", [(8, 2), (8, 3), (8, 4), (10, 3)])
    def test_gap_at_least_one_over_z(self, k, z):
        """The Ω(1/z) bound Lemma 5 cites from [BH12], for z ≤ k/2."""
        assert johnson_gap_closed_form(k, z) >= 1.0 / z

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_power_gap_bound(self, p):
        """Gap of the p-step walk ≥ 1 − (1 − δ)^p (Lemma 5's claim)."""
        walk = johnson_walk_matrix(8, 3)
        delta = spectral_gap(walk)
        assert power_walk_gap(walk, p) >= 1 - (1 - delta) ** p - 1e-9

    def test_power_gap_linear_regime(self):
        """For p < 1/δ the power gap is ≥ pδ/2 (the Ω(pδ) claim)."""
        walk = johnson_walk_matrix(10, 5)
        delta = spectral_gap(walk)
        p = 2
        assert p * delta < 1
        assert power_walk_gap(walk, p) >= p * delta / 2


class TestMarkedFraction:
    @pytest.mark.parametrize("k,z", [(6, 2), (8, 3), (10, 4)])
    def test_exact_count_matches_closed_form(self, k, z):
        mf = marked_fraction_one_pair(k, z)
        assert mf.epsilon == pytest.approx(mf.closed_form)

    def test_enumeration_agrees(self):
        """Brute-force count over J(8,3) vertices containing the pair {0,1}."""
        vertices = johnson_vertices(8, 3)
        containing = sum(1 for v in vertices if 0 in v and 1 in v)
        assert containing / len(vertices) == pytest.approx(
            marked_fraction_one_pair(8, 3).epsilon
        )

    def test_epsilon_lower_bound(self):
        """ε ≥ (z/k)²/2 for z ≥ 2 — Lemma 5's 'larger than z²/k²' claim."""
        for k, z in [(8, 3), (10, 4), (12, 6)]:
            mf = marked_fraction_one_pair(k, z)
            assert mf.epsilon >= (z / k) ** 2 / 2


class TestFullCheck:
    @pytest.mark.parametrize("k,z,p", [(8, 3, 2), (10, 4, 3), (9, 3, 2)])
    def test_consistency(self, k, z, p):
        check = check_walk_parameters(k, z, p)
        assert check.consistent

    def test_lemma5_cost_formula_with_real_spectra(self):
        """Recompute S + (1/√ε)(1/√δ) with the *exact* spectra and check
        it stays within constants of the (k/p)^{2/3} bound."""
        k, p = 10, 2
        z = max(p + 1, round(k ** (2 / 3) * p ** (1 / 3)))
        check = check_walk_parameters(k, z, p)
        cost = math.ceil(z / p) + math.sqrt(1 / check.epsilon) * math.sqrt(
            1 / (p * 1.0 / z)  # δ = p/z as the proof uses
        )
        bound = (k / p) ** (2 / 3)
        assert cost <= 6 * bound
