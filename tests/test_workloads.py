"""Tests for the public workload generators."""

import numpy as np
import pytest

from repro.apps.deutsch_jozsa import aggregated_input, solve_distributed_dj
from repro.apps.element_distinctness import distinctness_distributed_vector
from repro.apps.meeting import schedule_meeting
from repro.congest import topologies
from repro.workloads import (
    dj_promise_inputs,
    disjointness_pair,
    node_values_with_duplicate,
    planted_ed_vectors,
    random_calendars,
    weighted_preferences,
)


class TestCalendars:
    def test_shape_and_range(self, grid45, rng):
        cal = random_calendars(grid45, 12, rng)
        assert set(cal) == set(grid45.nodes())
        assert all(len(v) == 12 for v in cal.values())
        assert all(bit in (0, 1) for v in cal.values() for bit in v)

    def test_density_respected(self, grid45, rng):
        dense = random_calendars(grid45, 200, rng, density=0.9)
        ones = sum(sum(v) for v in dense.values())
        assert ones > 0.8 * grid45.n * 200

    def test_density_validation(self, grid45, rng):
        with pytest.raises(ValueError):
            random_calendars(grid45, 4, rng, density=1.5)

    def test_feeds_the_app(self, rng):
        net = topologies.grid(3, 3)
        cal = random_calendars(net, 16, rng)
        result = schedule_meeting(net, cal, seed=1)
        assert 0 <= result.best_slot < 16

    def test_weighted_range(self, grid45, rng):
        prefs = weighted_preferences(grid45, 8, max_weight=9, rng=rng)
        assert all(0 <= w <= 9 for v in prefs.values() for w in v)


class TestPlantedED:
    def test_collision_planted_and_recorded(self, grid45, rng):
        inst = planted_ed_vectors(grid45, 50, rng)
        i, j = inst.collision
        assert inst.aggregated[i] == inst.aggregated[j]
        assert i != j

    def test_no_collision_mode(self, grid45, rng):
        inst = planted_ed_vectors(grid45, 50, rng, collide=False)
        assert inst.collision is None
        assert len(set(inst.aggregated)) == 50

    def test_vectors_sum_to_aggregate(self, grid45, rng):
        inst = planted_ed_vectors(grid45, 30, rng)
        for idx in range(30):
            total = sum(inst.vectors[v][idx] for v in grid45.nodes())
            assert total == inst.aggregated[idx]

    def test_feeds_the_app(self, rng):
        net = topologies.path(5)
        inst = planted_ed_vectors(net, 40, rng)
        result = distinctness_distributed_vector(
            net, inst.vectors, inst.max_value, seed=2
        )
        if result.pair is not None:
            assert result.correct_against(inst.aggregated)

    def test_node_values_duplicate(self, grid45, rng):
        values, pair = node_values_with_duplicate(grid45, rng)
        a, b = pair
        assert values[a] == values[b]

    def test_node_values_distinct(self, grid45, rng):
        values, pair = node_values_with_duplicate(grid45, rng, duplicate=False)
        assert pair is None
        assert len(set(values.values())) == grid45.n


class TestDJPromise:
    @pytest.mark.parametrize("balanced", [True, False])
    def test_promise_holds(self, grid45, rng, balanced):
        inputs = dj_promise_inputs(grid45, 16, rng, balanced=balanced)
        xor = aggregated_input(inputs)
        total = sum(xor)
        if balanced:
            assert total == 8
        else:
            assert total == 0

    def test_odd_length_rejected(self, grid45, rng):
        with pytest.raises(ValueError):
            dj_promise_inputs(grid45, 7, rng, balanced=True)

    def test_feeds_the_app(self, rng):
        net = topologies.grid(3, 3)
        inputs = dj_promise_inputs(net, 32, rng, balanced=True)
        assert solve_distributed_dj(net, inputs, seed=3).balanced

    def test_random_balanced_positions_vary(self, grid45):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(2)
        a = aggregated_input(dj_promise_inputs(grid45, 32, rng_a, True))
        b = aggregated_input(dj_promise_inputs(grid45, 32, rng_b, True))
        assert a != b  # positions of the ones are randomized


class TestDisjointnessExport:
    def test_intersecting_control(self, rng):
        inst = disjointness_pair(16, rng, intersecting=True)
        assert inst.intersecting
        inst = disjointness_pair(16, rng, intersecting=False)
        assert not inst.intersecting
