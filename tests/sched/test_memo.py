"""ResultMemo: content addressing, hits, and invalidation-by-fingerprint."""

import pytest

from repro.congest import topologies
from repro.core.framework import DistributedInput, FrameworkConfig
from repro.core.semigroup import sum_semigroup
from repro.sched import CoalescingScheduler, ResultMemo, oracle_fingerprint
from repro.core.operation import Operation


K = 16


def make_config(network, bump=0):
    # bump shifts node 0's whole vector, so every aggregate sum moves.
    vectors = {
        v: [(v + j) % 3 + (bump if v == 0 else 0) for j in range(K)]
        for v in network.nodes()
    }
    di = DistributedInput(vectors, sum_semigroup(4 * network.n))
    return FrameworkConfig(parallelism=4, dist_input=di, seed=1, leader=0)


@pytest.fixture
def network():
    return topologies.grid(3, 3)


class TestFingerprint:
    def test_stable_for_same_content(self, network):
        cfg = make_config(network)
        assert oracle_fingerprint(network, cfg) == oracle_fingerprint(
            network, make_config(network)
        )

    def test_changes_with_input_vectors(self, network):
        assert oracle_fingerprint(network, make_config(network)) != (
            oracle_fingerprint(network, make_config(network, bump=1))
        )

    def test_changes_with_topology(self, network):
        cfg = make_config(network)
        other = topologies.path(9)  # same n, different edges
        other_cfg = make_config(other)
        assert oracle_fingerprint(network, cfg) != oracle_fingerprint(
            other, other_cfg
        )

    def test_unfingerprintable_computer_returns_none(self, network):
        from repro.core.framework import ValueComputer

        class Opaque(ValueComputer):
            def compute(self, indices):
                return {j: {0: 1} for j in indices}, 1

            def alpha(self, p):
                return 1

        cfg = FrameworkConfig(
            parallelism=2, computer=Opaque(), k=K,
            semigroup=sum_semigroup(network.n),
        )
        assert oracle_fingerprint(network, cfg) is None
        sched = CoalescingScheduler(network, cfg)  # memo requested...
        assert sched.memo is None  # ...but safely disabled


class TestMemoServing:
    def test_identical_resubmission_hits(self, network):
        cfg = make_config(network)
        sched = CoalescingScheduler(network, cfg)
        first = sched.result(sched.submit(Operation.query("a", [0, 3, 5])))
        rounds_after_first = sched.report().physical_query_rounds
        again = sched.result(sched.submit(Operation.query("b", [0, 3, 5])))
        assert again == first
        assert sched.report().physical_query_rounds == rounds_after_first
        assert sched.memo.hits == 1

    def test_permuted_indices_share_entry(self, network):
        cfg = make_config(network)
        sched = CoalescingScheduler(network, cfg)
        fwd = sched.result(sched.submit(Operation.query("a", [1, 2, 4])))
        rev = sched.result(sched.submit(Operation.query("a", [4, 2, 1])))
        assert rev == list(reversed(fwd))
        assert sched.memo.hits == 1

    def test_memo_shared_across_schedulers(self, network):
        cfg = make_config(network)
        memo = ResultMemo()
        warm = CoalescingScheduler(network, cfg, memo=memo)
        warm.result(warm.submit(Operation.query("a", [0, 1])))
        replay = CoalescingScheduler(network, cfg, memo=memo)
        replay.result(replay.submit(Operation.query("b", [0, 1])))
        assert replay.report().physical_query_rounds == 0
        assert memo.hits == 1

    def test_changed_oracle_never_served_stale(self, network):
        """The invalidation story: a new fingerprint is a new address."""
        memo = ResultMemo()
        cfg_a = make_config(network)
        cfg_b = make_config(network, bump=1)  # same indices, new content
        a = CoalescingScheduler(network, cfg_a, memo=memo)
        va = a.result(a.submit(Operation.query("x", [0, 1, 2])))
        b = CoalescingScheduler(network, cfg_b, memo=memo)
        vb = b.result(b.submit(Operation.query("x", [0, 1, 2])))
        assert memo.hits == 0  # cfg_b's lookup missed despite same indices
        assert b.report().physical_query_rounds > 0
        assert va != vb  # and the fresh answer reflects the new content

    def test_hit_counters_feed_accounts(self, network):
        cfg = make_config(network)
        sched = CoalescingScheduler(network, cfg)
        sched.result(sched.submit(Operation.query("a", [0, 1])))
        sched.result(sched.submit(Operation.query("a", [0, 1])))
        assert sched.account("a").memo_hits == 1
        report = sched.report()
        assert (report.memo_hits, report.memo_misses) == (1, 1)


class TestResultMemoStore:
    def test_lookup_counts_both_ways(self):
        memo = ResultMemo()
        assert memo.lookup("fp", [1, 2]) is None
        memo.store("fp", [1, 2], ["a", "b"])
        assert memo.lookup("fp", [2, 1]) == ["b", "a"]
        assert (memo.hits, memo.misses) == (1, 1)
        assert memo.hit_rate == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResultMemo().store("fp", [1, 2], ["only-one"])

    def test_max_entries_evicts_lru(self):
        memo = ResultMemo(max_entries=1)
        memo.store("fp", [1], ["a"])
        memo.store("fp", [2], ["b"])  # evicts [1], keeps the new entry
        assert len(memo) == 1
        assert memo.evictions == 1
        assert memo.lookup("fp", [2]) == ["b"]
        assert memo.lookup("fp", [1]) is None

    def test_lookup_refreshes_lru_order(self):
        memo = ResultMemo(max_entries=2)
        memo.store("fp", [1], ["a"])
        memo.store("fp", [2], ["b"])
        assert memo.lookup("fp", [1]) == ["a"]  # [2] is now LRU
        memo.store("fp", [3], ["c"])  # evicts [2]
        assert memo.lookup("fp", [1]) == ["a"]
        assert memo.lookup("fp", [3]) == ["c"]
        assert memo.lookup("fp", [2]) is None
        assert memo.evictions == 1

    def test_restore_refreshes_lru_order(self):
        memo = ResultMemo(max_entries=2)
        memo.store("fp", [1], ["a"])
        memo.store("fp", [2], ["b"])
        memo.store("fp", [1], ["a"])  # re-store refreshes, no growth
        assert len(memo) == 2 and memo.evictions == 0
        memo.store("fp", [3], ["c"])  # evicts [2]
        assert memo.lookup("fp", [2]) is None
        assert memo.lookup("fp", [1]) == ["a"]

    def test_eviction_emits_coalesce_event(self):
        from repro.obs import MemorySink, Recorder

        sink = MemorySink()
        memo = ResultMemo(max_entries=1, recorder=Recorder([sink]))
        memo.store("fp", [1, 2], ["a", "b"])
        memo.store("fp", [3], ["c"])
        events = sink.events_of_kind("coalesce")
        assert len(events) == 1
        assert events[0].memo == "evict"
        assert events[0].size == 2  # the evicted entry held two indices
        assert events[0].rounds == 0

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            ResultMemo(max_entries=0)

    def test_clear_empties_store(self):
        memo = ResultMemo()
        memo.store("fp", [1], ["a"])
        memo.clear()
        assert len(memo) == 0


class TestInvalidateFingerprint:
    def test_drops_only_the_named_fingerprint(self):
        memo = ResultMemo()
        memo.store("fpA", [1], ["a"])
        memo.store("fpA", [2], ["b"])
        memo.store("fpB", [1], ["c"])
        assert memo.invalidate_fingerprint("fpA") == 2
        assert memo.invalidations == 2
        assert memo.lookup("fpA", [1]) is None
        assert memo.lookup("fpB", [1]) == ["c"]

    def test_noop_on_absent_fingerprint(self):
        memo = ResultMemo()
        memo.store("fpA", [1], ["a"])
        assert memo.invalidate_fingerprint("ghost") == 0
        assert memo.invalidations == 0
        assert len(memo) == 1

    def test_distinct_from_lru_evictions(self):
        memo = ResultMemo(max_entries=1)
        memo.store("fp", [1], ["a"])
        memo.store("fp", [2], ["b"])  # LRU eviction
        memo.invalidate_fingerprint("fp")  # write-path invalidation
        assert memo.evictions == 1
        assert memo.invalidations == 1

    def test_emits_invalidate_coalesce_event(self):
        from repro.obs import MemorySink, Recorder

        sink = MemorySink()
        memo = ResultMemo(recorder=Recorder([sink]))
        memo.store("fp", [1], ["a"])
        memo.store("fp", [2], ["b"])
        memo.invalidate_fingerprint("fp")
        events = [
            e for e in sink.events_of_kind("coalesce")
            if e.memo == "invalidate"
        ]
        assert len(events) == 1
        assert events[0].size == 2  # entries dropped, not indices
