"""SketchScheduler: FIFO writes, memo invalidation, daemon surface."""

import pytest

from repro.apps.sketches import AmplitudeSketch, SketchSpec
from repro.core.operation import Operation
from repro.obs import MemorySink, MetricsSink, Recorder
from repro.sched import ResultMemo, SketchScheduler


def make_sched(memo=True, recorder=None, parallelism=64, m=64):
    sketch = AmplitudeSketch(
        SketchSpec(family="qcount", m=m, backend="emulated"),
        name="lane0",
    )
    return SketchScheduler(
        sketch, parallelism=parallelism, memo=memo, recorder=recorder
    )


class TestSubmit:
    def test_operation_only_no_legacy_form(self):
        sched = make_sched()
        with pytest.raises(TypeError):
            sched.submit("caller", ["x"])

    def test_indices_payload_rejected(self):
        sched = make_sched()
        with pytest.raises(ValueError, match="CoalescingScheduler"):
            sched.submit(Operation.query("a", [0, 1]))

    def test_insert_then_query_roundtrip(self):
        sched = make_sched()
        ti = sched.submit(Operation.insert("a", ["x"]))
        tq = sched.submit(Operation.sketch_query("a", ["x"]))
        assert sched.result(ti) == [True]
        assert sched.result(tq) == [pytest.approx(1.0)]


class TestFIFO:
    def test_query_after_insert_sees_the_write(self):
        """The write-path invariant: no query is served its stale past."""
        sched = make_sched()
        before = sched.submit(Operation.sketch_query("a", ["x"]))
        sched.submit(Operation.insert("b", ["x"]))
        after = sched.submit(Operation.sketch_query("a", ["x"]))
        sched.drain()
        baseline = sched.sketch.baseline_overlap("x")
        assert sched.result(before) == [pytest.approx(baseline)]
        assert sched.result(after) == [pytest.approx(1.0)]

    def test_whole_operations_per_batch(self):
        sched = make_sched(parallelism=3)
        sched.submit(Operation.insert("a", ["x", "y"]))
        sched.submit(Operation.insert("a", ["z", "w"]))  # 4 > 3: next batch
        assert sched.flush() == 2
        assert sched.pending_queries == 2
        assert sched.flush() == 2
        assert sched.pack_would_be_empty()

    def test_oversized_operation_still_runs_alone(self):
        sched = make_sched(parallelism=2)
        t = sched.submit(
            Operation.insert("a", ["k1", "k2", "k3", "k4"])
        )
        assert sched.result(t) == [True] * 4
        assert sched.report().physical_batches == 1


class TestMemo:
    def test_repeat_query_hits_without_pending_writes(self):
        sched = make_sched()
        sched.result(sched.submit(Operation.sketch_query("a", ["x"])))
        t = sched.submit(Operation.sketch_query("b", ["x"]))
        assert sched.done(t)  # submit-time fast path answered it
        assert sched.report().memo_hits == 1

    def test_pending_insert_blocks_the_fast_path(self):
        sched = make_sched()
        sched.result(sched.submit(Operation.sketch_query("a", ["x"])))
        sched.submit(Operation.insert("b", ["y"]))
        t = sched.submit(Operation.sketch_query("a", ["x"]))
        assert not sched.done(t)  # must wait behind the write

    def test_insert_invalidates_and_query_sees_new_value(self):
        sched = make_sched()
        stale = sched.result(
            sched.submit(Operation.sketch_query("a", ["x"]))
        )
        sched.drain()
        sched.result(sched.submit(Operation.insert("b", ["x"])))
        fresh = sched.result(
            sched.submit(Operation.sketch_query("a", ["x"]))
        )
        assert stale != fresh
        assert fresh == [pytest.approx(1.0)]
        assert sched.report().memo_invalidations >= 1

    def test_shared_memo_instance(self):
        memo = ResultMemo()
        sched = make_sched(memo=memo)
        sched.result(sched.submit(Operation.sketch_query("a", ["x"])))
        assert len(memo) >= 1

    def test_memo_disabled(self):
        sched = make_sched(memo=False)
        sched.result(sched.submit(Operation.sketch_query("a", ["x"])))
        sched.result(sched.submit(Operation.sketch_query("a", ["x"])))
        assert sched.report().memo_hits == 0
        assert sched.report().memo_invalidations == 0


class TestReportAndEvents:
    def test_report_accounting(self):
        sched = make_sched()
        sched.submit(Operation.insert("a", ["x", "y"]))
        sched.submit(Operation.sketch_query("b", ["x"]))
        sched.drain()
        report = sched.report()
        assert report.callers == 2
        assert report.submissions == 2
        assert report.insert_items == 2
        assert report.query_items == 1
        assert report.total_ops == 3
        assert report.attributed_rounds == 0

    def test_memo_edges_emit_sketch_events(self):
        sink = MemorySink()
        sched = make_sched(recorder=Recorder([sink]))
        sched.result(sched.submit(Operation.sketch_query("a", ["x"])))
        t = sched.submit(Operation.sketch_query("b", ["x"]))
        assert sched.done(t)
        sched.result(sched.submit(Operation.insert("c", ["x"])))
        memos = [
            e.memo for e in sink.events if e.kind == "sketch" and e.memo
        ]
        assert "hit" in memos
        assert "invalidate" in memos

    def test_metrics_sink_counts_physical_and_memo(self):
        metrics = MetricsSink()
        recorder = Recorder([metrics])
        sketch = AmplitudeSketch(
            SketchSpec(family="qcount", m=64, backend="emulated"),
            name="lane0", recorder=recorder,
        )
        sched = SketchScheduler(sketch, memo=True, recorder=recorder)
        sched.result(sched.submit(Operation.insert("a", ["x", "y"])))
        sched.result(sched.submit(Operation.sketch_query("b", ["x"])))
        t = sched.submit(Operation.sketch_query("c", ["x"]))
        assert sched.done(t)
        assert metrics.sketch_ops == {"insert": 2, "query": 1}
        assert metrics.sketch_memo == {"hit": 1}


class TestSteppable:
    def test_execute_batch_steps_returns_size(self):
        sched = make_sched()
        sched.submit(Operation.insert("a", ["x", "y", "z"]))
        gen = sched.execute_batch_steps()
        with pytest.raises(StopIteration) as stop:
            next(gen)
        assert stop.value.value == 3
