"""CoalescingScheduler: packing, deadlines, fairness, exact accounting."""

import pytest

from repro.congest import topologies
from repro.core.framework import DistributedInput, FrameworkConfig
from repro.core.semigroup import sum_semigroup
from repro.queries.ledger import ParallelismViolation
from repro.sched import CallerOracle, CoalescingScheduler
from repro.sched.scheduler import _proportional_shares
from repro.core.operation import Operation


K = 32


@pytest.fixture
def network():
    return topologies.grid(4, 4)


@pytest.fixture
def config(network):
    vectors = {
        v: [(v * 7 + j) % 5 for j in range(K)] for v in network.nodes()
    }
    di = DistributedInput(vectors, sum_semigroup(5 * network.n))
    return FrameworkConfig(parallelism=8, dist_input=di, seed=2, leader=0)


class TestProportionalShares:
    def test_conserves_exactly(self):
        shares = _proportional_shares(100, {"a": 3, "b": 3, "c": 1})
        assert sum(shares.values()) == 100

    def test_proportional_when_divisible(self):
        assert _proportional_shares(30, {"a": 2, "b": 1}) == {"a": 20, "b": 10}

    def test_largest_remainder_gets_leftover(self):
        # 10 over weights 1:1:1 -> floors 3,3,3; remainder goes by name.
        shares = _proportional_shares(10, {"a": 1, "b": 1, "c": 1})
        assert sum(shares.values()) == 10
        assert sorted(shares.values()) == [3, 3, 4]

    def test_deterministic_tie_break(self):
        first = _proportional_shares(7, {"x": 1, "y": 1})
        for _ in range(5):
            assert _proportional_shares(7, {"x": 1, "y": 1}) == first

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            _proportional_shares(5, {})


class TestPacking:
    def test_fill_triggers_execution(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        for i in range(3):
            sched.submit(Operation.query("a", [i * 2, i * 2 + 1]))
            assert sched.physical_batches == 0
        sched.submit(Operation.query("a", [6, 7]))  # 8 pending == p: fill
        assert sched.physical_batches == 1
        assert sched.pending_queries == 0

    def test_drain_packs_maximal_batches(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        tickets = [
            sched.submit(Operation.query(f"c{i}", [i, i + 1, i + 2]))
            for i in range(4)
        ]
        # 12 queries at p=8: the fill flush fires once during submission.
        sched.drain()
        assert sched.physical_batches == 2
        for i, t in enumerate(tickets):
            assert len(sched.result(t)) == 3

    def test_values_match_direct_oracle(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        truth = list(sched.oracle.peek_all())
        t = sched.submit(Operation.query("a", [0, 5, 9], label="probe"))
        assert sched.result(t) == [truth[0], truth[5], truth[9]]

    def test_result_is_idempotent(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        t = sched.submit(Operation.query("a", [1, 2]))
        assert sched.result(t) == sched.result(t)

    def test_unknown_ticket_rejected(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        t = sched.submit(Operation.query("a", [0]))
        bad = type(t)(id=999, caller="a", size=1)
        with pytest.raises(KeyError):
            sched.result(bad)

    def test_submission_wider_than_p_rejected(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        with pytest.raises(ParallelismViolation):
            sched.submit(
                Operation.query("a", list(range(config.parallelism + 1)))
            )

    def test_empty_submission_rejected(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        with pytest.raises(ValueError):
            sched.submit(Operation.query("a", []))

    def test_out_of_range_index_rejected(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        with pytest.raises(IndexError):
            sched.submit(Operation.query("a", [K]))

    def test_negative_deadline_rejected(self, network, config):
        with pytest.raises(ValueError):
            CoalescingScheduler(network, config, deadline_rounds=-1)


class TestDeadline:
    def test_zero_deadline_is_serial(self, network, config):
        sched = CoalescingScheduler(
            network, config, deadline_rounds=0, memo=False
        )
        for i in range(3):
            sched.submit(Operation.query("a", [i], label=f"s{i}"))
            assert sched.physical_batches == i + 1
        # Serial-degenerate batches keep the submission's own label.
        phases = sched.rounds.by_phase()
        for i in range(3):
            assert f"batch:s{i}" in phases

    def test_deadline_bounds_starvation(self, network, config):
        """No submission defers more than deadline_rounds of standalone cost."""
        from repro.core.cost import CostModel

        one_sub = CostModel.for_network(network).batch_rounds(
            2, config.dist_input.semigroup.bits, K
        )
        sched = CoalescingScheduler(
            network, config, deadline_rounds=one_sub, memo=False
        )
        # deferred cost == deadline: waits
        sched.submit(Operation.query("a", [0, 1]))
        assert sched.physical_batches == 0
        # now exceeds the deadline: flushes
        sched.submit(Operation.query("b", [2, 3]))
        assert sched.physical_batches == 1
        assert sched.pending_queries == 0

    def test_none_deadline_waits_for_fill_or_drain(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        sched.submit(Operation.query("a", [0, 1]))
        assert sched.physical_batches == 0
        sched.drain()
        assert sched.physical_batches == 1


class TestAccounting:
    def test_attribution_conserves_rounds(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        for i, caller in enumerate(["a", "b", "a", "c", "b"]):
            sched.submit(
                Operation.query(caller, [(3 * i) % K, (3 * i + 1) % K])
            )
        sched.drain()
        report = sched.report()
        assert report.attributed_rounds == report.physical_query_rounds
        assert report.attributed_rounds == sum(
            sched.account(c).attributed_rounds for c in ("a", "b", "c")
        )

    def test_equal_work_gets_equal_shares(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        sched.submit(Operation.query("a", [0, 1, 2, 3]))
        # fills p=8 exactly: one batch
        sched.submit(Operation.query("b", [4, 5, 6, 7]))
        assert sched.physical_batches == 1
        a = sched.account("a").attributed_rounds
        b = sched.account("b").attributed_rounds
        assert abs(a - b) <= 1  # only largest-remainder rounding apart

    def test_per_caller_ledger_matches_submissions(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        sched.submit(Operation.query("a", [0, 1], label="x"))
        sched.submit(Operation.query("a", [2, 3, 4], label="y"))
        sched.drain()
        assert sched.account("a").queries.signature() == (
            (2, "x"), (3, "y"),
        )

    def test_flush_on_idle_is_noop(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        assert sched.flush() == 0
        assert sched.physical_batches == 0


class TestCallerOracle:
    def test_adapter_runs_query_batches(self, network, config):
        sched = CoalescingScheduler(network, config, memo=False)
        oracle = CallerOracle(sched, "solo")
        truth = list(oracle.peek_all())
        assert oracle.k == K
        assert oracle.query_batch([3, 4], label="go") == [truth[3], truth[4]]
        assert oracle.ledger.signature() == ((2, "go"),)

    def test_two_adapters_share_physical_batches(self, network, config):
        sched = CoalescingScheduler(
            network, config, deadline_rounds=None, memo=False
        )
        a, b = CallerOracle(sched, "a"), CallerOracle(sched, "b")
        # a's redemption forces execution; b's pending queries ride along.
        tb = sched.submit(Operation.query("b", [4, 5, 6, 7]))
        va = a.query_batch([0, 1, 2, 3])
        assert sched.physical_batches == 1
        assert len(va) == 4 and len(sched.result(tb)) == 4
