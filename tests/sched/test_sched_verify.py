"""The four-clause coalescing equivalence invariant, pinned at p ∈ {1,4,64}.

The PR-5 acceptance bar: coalesced execution is bit-identical to serial —
same outputs, same per-caller query-ledger totals — at every parallelism,
and the per-caller attributed rounds conserve the physical charge exactly.
"""

import pytest

from repro.congest import topologies
from repro.core.framework import DistributedInput, FrameworkConfig
from repro.core.semigroup import sum_semigroup
from repro.sched import verify_coalescing


K = 64


def make_case(p):
    net = topologies.grid(4, 4)
    vectors = {
        v: [(v * 5 + j * 3) % 7 for j in range(K)] for v in net.nodes()
    }
    di = DistributedInput(vectors, sum_semigroup(7 * net.n))
    return net, FrameworkConfig(parallelism=p, dist_input=di, seed=3, leader=0)


def interleaved_workload(p):
    """Three callers' under-filled submissions, interleaved FIFO."""
    width = max(1, min(3, p))
    out = []
    for r in range(3):
        for c, caller in enumerate(["alice", "bob", "carol"]):
            base = (r * 11 + c * 17) % K
            out.append(
                (caller, [(base + i) % K for i in range(width)], f"r{r}")
            )
    return out


@pytest.mark.parametrize("p", [1, 4, 64])
def test_coalesced_bit_identical_to_serial(p):
    net, cfg = make_case(p)
    verdict = verify_coalescing(net, cfg, interleaved_workload(p))
    assert verdict.identical, verdict.detail
    assert verdict.callers == 3 and verdict.submissions == 9


@pytest.mark.parametrize("p", [1, 4, 64])
def test_serial_degeneracy_at_deadline_zero(p):
    """deadline_rounds=0 must reproduce serial round totals exactly."""
    net, cfg = make_case(p)
    verdict = verify_coalescing(
        net, cfg, interleaved_workload(p), deadline_rounds=0
    )
    assert verdict.identical, verdict.detail
    assert verdict.coalesced_query_rounds == verdict.serial_query_rounds
    assert verdict.round_saving == 0.0


def test_coalescing_saves_rounds_when_batches_underfilled():
    net, cfg = make_case(64)
    verdict = verify_coalescing(net, cfg, interleaved_workload(64))
    # 9 width-3 submissions coalesce into far fewer width-64 charges.
    assert verdict.physical_batches < verdict.submissions
    assert verdict.round_saving > 0.5


def test_no_saving_possible_at_p1():
    net, cfg = make_case(1)
    verdict = verify_coalescing(net, cfg, interleaved_workload(1))
    # Width-1 batches cannot be packed: physical == serial exactly.
    assert verdict.coalesced_query_rounds == verdict.serial_query_rounds


def test_engine_mode_equivalence():
    net, cfg = make_case(4)
    verdict = verify_coalescing(
        net, cfg.replace(mode="engine"), interleaved_workload(4)
    )
    assert verdict.identical, verdict.detail


def test_adaptive_single_caller_unaffected():
    """One caller, serial-shaped traffic: scheduler adds zero distortion."""
    net, cfg = make_case(4)
    workload = [("solo", [j, (j + 1) % K], f"s{j}") for j in range(5)]
    verdict = verify_coalescing(net, cfg, workload, deadline_rounds=0)
    assert verdict.identical, verdict.detail
    assert verdict.coalesced_query_rounds == verdict.serial_query_rounds
