"""QueryService: admission, execution, drain, abort, life-cycle events."""

import asyncio

import pytest

from repro.obs import MemorySink, Recorder
from repro.obs.events import SERVE_BATCH, SERVE_DRAIN, SERVE_REQUEST
from repro.core.operation import Operation
from repro.serve import (
    AdmissionError,
    QueryService,
    ServiceClosed,
    TenantQuota,
    build_profile,
)

NET, CFG = build_profile(rows=2, cols=2, k=8, parallelism=4)
TRUTH = CFG.dist_input.aggregated()


def make_service(sink=None, **kwargs):
    kwargs.setdefault(
        "default_quota", TenantQuota("default", max_pending=64)
    )
    kwargs.setdefault("flush_after_ms", 1.0)
    if sink is not None:
        kwargs["recorder"] = Recorder([sink])
    service = QueryService(**kwargs)
    service.add_profile(NET, CFG)
    return service


class TestServing:
    def test_results_match_the_oracle_truth(self):
        async def run():
            service = make_service()
            requests = [
                ("alice", [0, 3]),
                ("bob", [1]),
                ("alice", [5, 2, 7]),
                ("carol", [4, 4]),
            ]
            futures = [
                service.submit(Operation.query(tenant, idx))
                for tenant, idx in requests
            ]
            await service.drain()
            return requests, await asyncio.gather(*futures)

        requests, results = asyncio.run(run())
        for (tenant, idx), res in zip(requests, results):
            assert res.values == [TRUTH[j] for j in idx]
            assert res.tenant == tenant
            assert res.profile == "default"
            assert res.wait_ms >= 0.0

    def test_full_width_batch_runs_without_waiting_for_the_timer(self):
        async def run():
            # Timer far in the future: only a full batch can trigger.
            service = make_service(flush_after_ms=60_000.0)
            futures = [
                service.submit(Operation.query("t", [j]))
                for j in range(4)  # p == 4
            ]
            done, _ = await asyncio.wait(futures, timeout=1.0)
            await service.abort()
            return len(done)

        assert asyncio.run(run()) == 4

    def test_memo_hit_resolves_without_a_new_batch(self):
        async def run():
            service = make_service()
            first = await service.submit(Operation.query("alice", [1, 2]))
            lane = service.pool.acquire("default")
            batches_before = lane.batches
            second = await service.submit(Operation.query("bob", [1, 2]))
            await service.drain()
            return first, second, batches_before, lane

        first, second, batches_before, lane = asyncio.run(run())
        assert second.values == first.values
        assert lane.batches == batches_before
        assert lane.scheduler.report().memo_hits == 1

    def test_auto_registered_tenants_inherit_the_default_quota(self):
        async def run():
            service = make_service(
                default_quota=TenantQuota(
                    "default", weight=3.0, max_pending=7
                )
            )
            await service.submit(Operation.query("newcomer", [0]))
            await service.drain()
            return service

        service = asyncio.run(run())
        state = service._lane_state["default"].picker.get("newcomer")
        assert state.quota.weight == 3.0
        assert state.quota.max_pending == 7

    def test_unknown_tenant_without_default_quota_raises(self):
        async def run():
            service = make_service(default_quota=None, tenants=())
            with pytest.raises(KeyError, match="unknown tenant"):
                service.submit(Operation.query("stranger", [0]))
            await service.drain()

        asyncio.run(run())

    def test_unknown_profile_raises(self):
        async def run():
            service = make_service()
            with pytest.raises(KeyError, match="unknown profile"):
                service.submit(Operation.query("t", [0]), profile="nope")
            await service.drain()

        asyncio.run(run())


class TestBackpressure:
    def test_queue_full_rejects_and_drain_still_resolves_the_rest(self):
        sink = MemorySink()

        async def run():
            service = make_service(
                sink, default_quota=TenantQuota("default", max_pending=2)
            )
            futures = [
                service.submit(Operation.query("t", [0])),
                service.submit(Operation.query("t", [1])),
            ]
            with pytest.raises(AdmissionError) as exc:
                # queue already holds 2
                service.submit(Operation.query("t", [2]))
            await service.drain()
            await asyncio.gather(*futures)
            return exc.value

        err = asyncio.run(run())
        assert err.reason == "queue-full"
        statuses = [e.status for e in sink.events_of_kind(SERVE_REQUEST)]
        assert statuses.count("rejected") == 1
        assert statuses.count("accepted") == 2
        assert statuses.count("completed") == 2

    def test_lifetime_quota_rejects_by_query_count(self):
        async def run():
            service = make_service(
                default_quota=TenantQuota(
                    "default", max_pending=64, max_queries=4
                )
            )
            service.submit(Operation.query("t", [0, 1, 2]))
            with pytest.raises(AdmissionError) as exc:
                service.submit(Operation.query("t", [3, 4]))  # 3 + 2 > 4
            await service.drain()
            return exc.value

        assert asyncio.run(run()).reason == "quota"


class TestShutdown:
    def test_drain_resolves_everything_and_emits_the_event(self):
        sink = MemorySink()

        async def run():
            service = make_service(sink)
            futures = [
                service.submit(Operation.query("t", [j % 8]))
                for j in range(10)
            ]
            await service.drain(reason="test")
            results = await asyncio.gather(*futures)
            return service, results

        service, results = asyncio.run(run())
        assert len(results) == 10
        assert service.completed == 10
        drains = sink.events_of_kind(SERVE_DRAIN)
        assert len(drains) == 1
        assert drains[0].reason == "test"
        assert drains[0].abandoned == 0
        # Batches executed during the session are on the spine too.
        assert sink.events_of_kind(SERVE_BATCH)

    def test_drain_is_idempotent(self):
        async def run():
            service = make_service()
            service.submit(Operation.query("t", [0]))
            await service.drain()
            await service.drain()  # second call returns without effect
            return service.completed

        assert asyncio.run(run()) == 1

    def test_submit_after_drain_raises_service_closed(self):
        async def run():
            service = make_service()
            await service.drain()
            with pytest.raises(ServiceClosed):
                service.submit(Operation.query("t", [0]))
            with pytest.raises(ServiceClosed):
                service.add_profile(NET, CFG)

        asyncio.run(run())

    def test_abort_fails_outstanding_futures_as_abandoned(self):
        sink = MemorySink()

        async def run():
            service = make_service(
                sink, flush_after_ms=60_000.0
            )  # nothing flushes by itself
            futures = [
                service.submit(Operation.query("t", [j]))
                for j in range(3)
            ]
            await service.abort(reason="test-abort")
            results = await asyncio.gather(*futures, return_exceptions=True)
            return service, results

        service, results = asyncio.run(run())
        assert all(isinstance(r, ServiceClosed) for r in results)
        assert service.abandoned == 3
        drains = sink.events_of_kind(SERVE_DRAIN)
        assert len(drains) == 1
        assert drains[0].reason == "test-abort"
        assert drains[0].abandoned == 3


class TestFairness:
    def test_backlogged_tenants_share_by_weight(self):
        async def run():
            service = QueryService(
                tenants=[
                    TenantQuota("heavy", weight=2.0, max_pending=1024),
                    TenantQuota("light", weight=1.0, max_pending=1024),
                ],
                flush_after_ms=60_000.0,
            )
            service.add_profile(NET, CFG)
            # Build both backlogs before the worker gets a slot.
            futures = []
            for j in range(30):
                futures.append(
                    service.submit(Operation.query("heavy", [j % 8]))
                )
                futures.append(
                    service.submit(Operation.query("light", [j % 8]))
                )
            lane = service.pool.acquire("default")
            # One fill's worth of dispatch: p == 4 single-query requests.
            service._feed(lane, service._lane_state["default"])
            by_caller = {
                name: acct.submissions
                for name, acct in lane.scheduler._accounts.items()
            }
            await service.abort()
            await asyncio.gather(*futures, return_exceptions=True)
            return by_caller

        by_caller = asyncio.run(run())
        # Weight 2:1 over one width-4 fill with name tie-breaks: stride
        # order is heavy, light, heavy, heavy — exactly reproducible.
        assert by_caller == {"heavy": 3, "light": 1}


class TestReport:
    def test_report_is_json_ready_and_consistent(self):
        import json

        async def run():
            service = make_service()
            futures = [
                service.submit(Operation.query("t", [j % 8]))
                for j in range(6)
            ]
            await service.drain()
            await asyncio.gather(*futures)
            return service.report()

        report = asyncio.run(run())
        json.dumps(report)  # must not raise
        assert report["completed"] == 6
        assert report["tenants"]["t"]["accepted"] == 6
        assert report["tenants"]["t"]["completed"] == 6
        assert report["tenants"]["t"]["pending"] == 0
        assert report["lanes"]["default"]["in_flight"] == 0
        assert report["pool"]["lanes"] == 1
