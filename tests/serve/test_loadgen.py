"""Open-loop load generator: determinism, report math, end-to-end runs."""

import asyncio

import pytest

from repro.serve import (
    LoadReport,
    LoadSpec,
    QueryService,
    TenantQuota,
    build_profile,
    generate_arrivals,
    run_load,
)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients": 0},
            {"tenants": 0},
            {"rate_hz": 0.0},
            {"queries_min": 0},
            {"queries_min": 3, "queries_max": 2},
        ],
    )
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadSpec(**kwargs)


class TestArrivals:
    def test_same_spec_same_schedule(self):
        spec = LoadSpec(clients=50, tenants=3, seed=9)
        assert generate_arrivals(spec, 16) == generate_arrivals(spec, 16)

    def test_different_seed_different_schedule(self):
        a = generate_arrivals(LoadSpec(clients=50, seed=1), 16)
        b = generate_arrivals(LoadSpec(clients=50, seed=2), 16)
        assert a != b

    def test_arrivals_respect_the_spec_envelope(self):
        spec = LoadSpec(
            clients=80, tenants=3, queries_min=2, queries_max=5, seed=4
        )
        arrivals = generate_arrivals(spec, 16)
        assert len(arrivals) == 80
        last = 0.0
        for arrival in arrivals:
            assert arrival.at_s >= last  # Poisson times are monotone
            last = arrival.at_s
            assert arrival.tenant in {"tenant0", "tenant1", "tenant2"}
            assert 2 <= len(arrival.indices) <= 5
            assert all(0 <= j < 16 for j in arrival.indices)
            assert arrival.label == spec.label

    def test_size_knob_does_not_reshuffle_tenants(self):
        # Each knob draws from its own derived stream.
        small = generate_arrivals(LoadSpec(clients=40, queries_max=2), 16)
        large = generate_arrivals(LoadSpec(clients=40, queries_max=4), 16)
        assert [a.tenant for a in small] == [a.tenant for a in large]


class TestReportMath:
    def test_nearest_rank_percentiles(self):
        report = LoadReport(
            offered=100, accepted=100, rejected=0, completed=100,
            failed=0, duration_s=2.0,
            latencies_ms=[float(v) for v in range(100, 0, -1)],
        )
        assert report.p50_ms == 50.0
        assert report.p99_ms == 99.0
        assert report.qps == 50.0

    def test_empty_report_is_all_zeros(self):
        report = LoadReport(
            offered=0, accepted=0, rejected=0, completed=0, failed=0,
            duration_s=0.0,
        )
        assert report.qps == 0.0
        assert report.p50_ms == 0.0
        assert report.p99_ms == 0.0


class TestRunLoad:
    def test_open_loop_run_completes_every_accepted_request(self):
        net, cfg = build_profile(rows=2, cols=2, k=8, parallelism=4)
        service = QueryService(
            default_quota=TenantQuota("default", max_pending=1 << 12),
            flush_after_ms=1.0,
        )
        service.add_profile(net, cfg)
        spec = LoadSpec(clients=40, tenants=3, seed=5, queries_max=3)
        report = asyncio.run(run_load(service, spec))
        assert report.offered == 40
        assert report.accepted == 40
        assert report.completed == 40
        assert report.failed == 0
        assert report.rejected == 0
        assert len(report.latencies_ms) == 40
        assert report.p99_ms >= report.p50_ms >= 0.0

    def test_backpressure_shows_up_as_rejections_not_failures(self):
        # Engine mode with yield_every=1: every in-flight batch suspends
        # per round, so the submission flood outpaces the lane and the
        # bounded tenant queue must reject.
        net, cfg = build_profile(
            rows=2, cols=2, k=8, parallelism=4, mode="engine"
        )
        service = QueryService(
            default_quota=TenantQuota("default", max_pending=2),
            flush_after_ms=1.0,
            yield_every=1,
        )
        service.add_profile(net, cfg)
        spec = LoadSpec(clients=60, tenants=1, seed=5)
        report = asyncio.run(run_load(service, spec))
        assert report.rejected > 0
        assert report.offered == 60
        assert report.accepted + report.rejected == 60
        assert report.completed == report.accepted  # drain flushed the rest
        assert report.failed == 0
