"""run_serve_session: the CLI/CI entry point, including trace validity."""

import json

from repro.obs.jsonl import validate_jsonl
from repro.serve import run_serve_session


def test_session_report_is_complete_and_json_ready():
    out = run_serve_session(
        clients=60, tenants=3, rows=2, cols=2, k=8, parallelism=4,
        flush_after_ms=1.0,
    )
    json.dumps(out)  # must not raise
    assert out["load"]["offered"] == 60
    assert out["load"]["completed"] == 60
    assert out["load"]["failed"] == 0
    assert out["service"]["completed"] == 60
    assert out["metrics"]["serve_requests"]["accepted"] == 60
    assert out["metrics"]["serve_requests"]["completed"] == 60
    assert out["metrics"]["serve_drains"] == 1
    assert out["amortized_rounds_per_query"] > 0


def test_session_trace_validates_and_counts_serve_events(tmp_path):
    path = str(tmp_path / "serve.jsonl")
    out = run_serve_session(
        clients=40, tenants=2, rows=2, cols=2, k=8, parallelism=4,
        flush_after_ms=1.0, jsonl=path,
    )
    counts = out["trace"]["records"]
    # validate_jsonl already re-read the file; spot-check the counts.
    assert counts == validate_jsonl(path)
    # accepted + completed request events, at least one batch, one drain.
    assert counts["serve.request"] >= 80
    assert counts["serve.batch"] >= 1
    assert counts["serve.drain"] == 1


def test_memo_off_session_reports_no_hits():
    out = run_serve_session(
        clients=30, tenants=2, rows=2, cols=2, k=8, parallelism=4,
        flush_after_ms=1.0, memo=False,
    )
    # Executed batches still log memo="miss" coalesce events; what a
    # disabled memo can never produce is a hit or an eviction.
    assert out["metrics"]["memo"]["hits"] == 0
    assert out["metrics"]["memo"]["evictions"] == 0
    assert out["load"]["completed"] == 30
