"""Tenant quotas, admission control, and stride fairness."""

import pytest

from repro.serve.tenants import (
    AdmissionError,
    StridePicker,
    TenantQuota,
    TenantState,
)


def _state(name, weight=1.0, max_pending=64, max_queries=None):
    return TenantState(
        quota=TenantQuota(
            name=name, weight=weight, max_pending=max_pending,
            max_queries=max_queries,
        )
    )


class TestQuotaValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            TenantQuota(name="")

    @pytest.mark.parametrize("weight", [0.0, -1.0])
    def test_nonpositive_weight_rejected(self, weight):
        with pytest.raises(ValueError, match="weight"):
            TenantQuota(name="t", weight=weight)

    def test_nonpositive_max_pending_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            TenantQuota(name="t", max_pending=0)

    def test_negative_max_queries_rejected(self):
        with pytest.raises(ValueError, match="max_queries"):
            TenantQuota(name="t", max_queries=-1)


class TestAdmission:
    def test_full_queue_rejects_with_backpressure_reason(self):
        tenant = _state("t", max_pending=2)
        tenant.queue.extend(["r1", "r2"])
        with pytest.raises(AdmissionError) as exc:
            tenant.admit(1)
        assert exc.value.reason == "queue-full"
        assert exc.value.tenant == "t"
        assert tenant.rejected == 1

    def test_lifetime_quota_rejects_in_queries_not_requests(self):
        tenant = _state("t", max_queries=5)
        tenant.queries_admitted = 3
        tenant.admit(2)  # 3 + 2 == 5: exactly at quota is fine
        with pytest.raises(AdmissionError) as exc:
            tenant.admit(3)
        assert exc.value.reason == "quota"

    def test_admit_under_limits_is_silent(self):
        tenant = _state("t", max_pending=2, max_queries=10)
        tenant.admit(4)
        assert tenant.rejected == 0


class TestStridePicker:
    def test_duplicate_tenant_rejected(self):
        picker = StridePicker([_state("a")])
        with pytest.raises(ValueError, match="duplicate"):
            picker.add(_state("a"))

    def test_pick_returns_none_without_backlog(self):
        picker = StridePicker([_state("a"), _state("b")])
        assert picker.pick() is None

    def test_equal_weights_alternate_deterministically(self):
        a, b = _state("a"), _state("b")
        picker = StridePicker([a, b])
        a.queue.extend(range(4))
        b.queue.extend(range(4))
        order = []
        for _ in range(8):
            chosen = picker.pick()
            chosen.queue.popleft()
            order.append(chosen.quota.name)
        # Ties break by name, so the trace is exactly reproducible.
        assert order == ["a", "b"] * 4

    def test_weighted_shares_are_proportional(self):
        heavy, light = _state("heavy", weight=2.0), _state("light")
        picker = StridePicker([heavy, light])
        heavy.queue.extend(range(100))
        light.queue.extend(range(100))
        picks = {"heavy": 0, "light": 0}
        for _ in range(30):
            chosen = picker.pick()
            chosen.queue.popleft()
            picks[chosen.quota.name] += 1
        assert picks == {"heavy": 20, "light": 10}

    def test_exhausted_tenant_is_skipped(self):
        a, b = _state("a"), _state("b")
        picker = StridePicker([a, b])
        a.queue.append("only")
        assert picker.pick() is a
        a.queue.popleft()
        b.queue.append("next")
        assert picker.pick() is b

    def test_late_joiner_starts_at_the_pass_floor(self):
        a = _state("a")
        picker = StridePicker([a])
        a.queue.extend(range(5))
        for _ in range(5):
            picker.pick().queue.popleft()
        late = _state("late")
        picker.add(late)
        # Joining at pass 0 would let the newcomer monopolize pick()
        # until it caught up with a's accumulated strides.
        assert late.pass_value == a.pass_value

    def test_backlog_counts_queued_requests(self):
        a, b = _state("a"), _state("b")
        picker = StridePicker([a, b])
        a.queue.extend(range(3))
        b.queue.extend(range(2))
        assert picker.backlog == 5
