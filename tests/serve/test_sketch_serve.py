"""Sketch lanes through the daemon: pinning, streams, invalidation."""

import asyncio

import pytest

from repro.apps.sketches import AmplitudeSketch, SketchSpec
from repro.core.operation import Operation
from repro.serve import (
    PreparedPool,
    QueryService,
    SketchLoadSpec,
    TenantQuota,
    build_profile,
    build_sketch_profile,
    generate_operation_arrivals,
    run_operation_load,
    run_sketch_session,
)

NET, CFG = build_profile(rows=2, cols=2, k=8, parallelism=4)


def make_sketch(name="lane0", m=64):
    return AmplitudeSketch(
        SketchSpec(family="qcount", m=m, backend="emulated"), name=name
    )


def make_service(**kwargs):
    kwargs.setdefault(
        "default_quota", TenantQuota("default", max_pending=64)
    )
    kwargs.setdefault("flush_after_ms", 1.0)
    return QueryService(**kwargs)


class TestPoolPinning:
    def test_sketch_lane_is_pinned(self):
        pool = PreparedPool(max_lanes=4)
        lane = pool.add_sketch("sk", make_sketch())
        assert lane.pinned
        assert lane.network is None and lane.config is None

    def test_pinned_lane_survives_lru_pressure(self):
        pool = PreparedPool(max_lanes=2)
        pool.add_sketch("sk", make_sketch())
        for i in range(4):  # oracle churn far past max_lanes
            pool.acquire(f"oracle{i}", NET, CFG)
        assert "sk" in pool
        assert pool.evictions > 0

    def test_warm_re_add_returns_same_lane(self):
        pool = PreparedPool(max_lanes=4)
        sketch = make_sketch()
        lane = pool.add_sketch("sk", sketch)
        assert pool.add_sketch("sk", sketch) is lane

    def test_re_add_with_different_sketch_rejected(self):
        pool = PreparedPool(max_lanes=4)
        pool.add_sketch("sk", make_sketch())
        with pytest.raises(ValueError, match="different sketch"):
            pool.add_sketch("sk", make_sketch())


class TestDaemonSketchProfile:
    def test_insert_query_stream_through_daemon(self):
        async def drive():
            service = make_service()
            service.add_sketch_profile("sk", make_sketch())
            ack = await service.submit(
                Operation.insert("alice", ["key-1"]), profile="sk"
            )
            hit = await service.submit(
                Operation.sketch_query("bob", ["key-1"]), profile="sk"
            )
            miss = await service.submit(
                Operation.sketch_query("bob", ["key-2"]), profile="sk"
            )
            await service.drain()
            return ack, hit, miss

        ack, hit, miss = asyncio.run(drive())
        assert ack.values == [True]
        assert hit.values == [pytest.approx(1.0)]
        assert miss.values[0] < 1.0

    def test_insert_invalidates_served_memo(self):
        """No daemon client is ever served a pre-insert overlap."""

        async def drive():
            service = make_service()
            sketch = make_sketch()
            service.add_sketch_profile("sk", sketch)
            stale = await service.submit(
                Operation.sketch_query("a", ["x"]), profile="sk"
            )
            await service.submit(
                Operation.insert("b", ["x"]), profile="sk"
            )
            fresh = await service.submit(
                Operation.sketch_query("a", ["x"]), profile="sk"
            )
            await service.drain()
            report = service.pool.acquire("sk").scheduler.report()
            return stale, fresh, report

        stale, fresh, report = asyncio.run(drive())
        assert stale.values != fresh.values
        assert fresh.values == [pytest.approx(1.0)]
        assert report.memo_invalidations >= 1


class TestOperationLoad:
    def test_arrivals_are_deterministic_and_mixed(self):
        spec = SketchLoadSpec(clients=50, insert_fraction=0.4, seed=3)
        a = generate_operation_arrivals(spec)
        b = generate_operation_arrivals(spec)
        assert [x.op for x in a] == [x.op for x in b]
        kinds = {arr.op.kind for arr in a}
        assert kinds == {"query", "insert"}

    def test_mix_knob_only_flips_kinds(self):
        lo = generate_operation_arrivals(
            SketchLoadSpec(clients=50, insert_fraction=0.0)
        )
        hi = generate_operation_arrivals(
            SketchLoadSpec(clients=50, insert_fraction=1.0)
        )
        assert all(not a.op.is_write for a in lo)
        assert all(a.op.is_write for a in hi)
        # Payloads come from their own stream: changing the mix must
        # not reshuffle what the clients ask about.
        assert [a.op.items for a in lo] == [a.op.items for a in hi]

    def test_run_operation_load_completes_all(self):
        async def drive():
            service = make_service(
                default_quota=TenantQuota("default", max_pending=1 << 16)
            )
            service.add_sketch_profile("sk", make_sketch())
            spec = SketchLoadSpec(clients=120, insert_fraction=0.5)
            return await run_operation_load(service, spec, profile="sk")

        report = asyncio.run(drive())
        assert report.offered == 120
        assert report.completed == 120
        assert report.failed == 0


class TestSketchSession:
    def test_session_report_shape_and_invariants(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        out = run_sketch_session(
            clients=150, tenants=3, insert_fraction=0.5, jsonl=trace
        )
        assert out["load"]["completed"] == 150
        assert out["load"]["failed"] == 0
        assert out["lane"]["memo_invalidations"] > 0
        assert out["metrics"]["memo_invalidations"] > 0
        assert out["metrics"]["sketch_ops"]["insert"] > 0
        assert out["metrics"]["sketch_ops"]["query"] > 0
        assert out["sketch"]["backend"] == "emulated"
        assert out["trace"]["records"]["sketch"] > 0

    def test_build_sketch_profile_names_and_backend(self):
        sketch = build_sketch_profile(family="qcount", m=8)
        assert sketch.name == "qcount-m8"
        assert sketch.backend == "exact"
