"""PreparedPool: warm reuse, LRU eviction, busy-lane pinning."""

import pytest

from repro.serve.pool import PreparedPool
from repro.serve.session import build_profile
from repro.core.operation import Operation


def _profile(seed=4):
    return build_profile(rows=2, cols=2, k=8, parallelism=4, seed=seed)


class TestAcquire:
    def test_cold_acquire_without_profile_raises(self):
        pool = PreparedPool()
        with pytest.raises(KeyError, match="not warm"):
            pool.acquire("missing")

    def test_warm_reacquire_returns_the_same_lane(self):
        pool = PreparedPool()
        net, cfg = _profile()
        lane = pool.acquire("a", net, cfg)
        assert pool.acquire("a") is lane
        assert lane.scheduler is pool.acquire("a").scheduler
        assert len(pool) == 1

    def test_warm_profile_wins_over_passed_arguments(self):
        pool = PreparedPool()
        net, cfg = _profile()
        lane = pool.acquire("a", net, cfg)
        other_net, other_cfg = _profile(seed=9)
        assert pool.acquire("a", other_net, other_cfg) is lane


class TestEviction:
    def test_over_capacity_evicts_least_recently_acquired_idle(self):
        pool = PreparedPool(max_lanes=2)
        net, cfg = _profile()
        pool.acquire("a", net, cfg)
        pool.acquire("b", net, cfg)
        pool.acquire("a")  # refresh a's recency: b is now LRU
        pool.acquire("c", net, cfg)
        assert "b" not in pool
        assert "a" in pool and "c" in pool
        assert pool.evictions == 1

    def test_busy_lanes_are_never_evicted(self):
        pool = PreparedPool(max_lanes=2)
        net, cfg = _profile()
        busy = pool.acquire("busy", net, cfg)
        # auto_flush off: queued
        busy.scheduler.submit(Operation.query("tenant", [0, 1]))
        assert not busy.idle
        pool.acquire("idle", net, cfg)
        pool.acquire("new", net, cfg)
        assert "busy" in pool
        assert "idle" not in pool

    def test_all_busy_pool_exceeds_bound_rather_than_dropping_work(self):
        pool = PreparedPool(max_lanes=1)
        net, cfg = _profile()
        pool.acquire("a", net, cfg).scheduler.submit(Operation.query("t", [0]))
        pool.acquire("b", net, cfg).scheduler.submit(Operation.query("t", [1]))
        assert len(pool) == 2
        assert pool.evictions == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_lanes"):
            PreparedPool(max_lanes=0)


class TestStats:
    def test_stats_expose_pool_and_prepared_cache(self):
        pool = PreparedPool(max_lanes=3)
        net, cfg = _profile()
        pool.acquire("a", net, cfg)
        stats = pool.stats()
        assert stats["lanes"] == 1
        assert stats["max_lanes"] == 3
        assert stats["lane_evictions"] == 0
        assert set(stats["prepared_cache"]) == {
            "entries", "max_entries", "hits", "misses", "evictions",
        }
