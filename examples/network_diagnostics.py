"""Scenario: self-diagnosing network metrics (Lemmas 20-22).

An overlay network wants to publish its own health metrics — diameter
(worst-case latency), radius (best center placement), and average
eccentricity (typical worst-case latency) — without any node collecting
the whole topology.  Lemma 21 computes the extremes in O(√(nD)) rounds
and Lemma 22 estimates the average in Õ(D^{3/2}/ε), versus the classical
Θ(n) all-sources-BFS.

Run:  python examples/network_diagnostics.py
"""

from repro.apps.eccentricity import (
    compute_diameter,
    compute_radius,
    estimate_average_eccentricity,
)
from repro.baselines.diameter import classical_all_eccentricities
from repro.congest import topologies


def diagnose(name, net, seed):
    print(f"--- {name}: n={net.n}, D={net.diameter}, R={net.radius}, "
          f"avg ecc={net.average_eccentricity:.2f} ---")

    diameter = compute_diameter(net, seed=seed)
    radius = compute_radius(net, seed=seed + 1)
    average = estimate_average_eccentricity(net, epsilon=0.5, seed=seed + 2)
    classical = classical_all_eccentricities(net)

    print(f"  diameter : {diameter.value:>4}   in {diameter.rounds:>6} rounds "
          f"(witness node {diameter.witness})")
    print(f"  radius   : {radius.value:>4}   in {radius.rounds:>6} rounds "
          f"(a center: node {radius.witness})")
    print(f"  avg ecc  : {average.estimate:>7.2f} in {average.rounds:>6} rounds "
          f"(err {average.error_against(net):.2f}, target ±0.5)")
    print(f"  classical all-BFS baseline: {classical.rounds} rounds")
    quantum_best = min(diameter.rounds, radius.rounds)
    verdict = "quantum wins" if quantum_best < classical.rounds else (
        "classical wins (n too small for √(nD) to pay off)")
    print(f"  -> {verdict}\n")


def main():
    print("=== Network self-diagnostics (Lemmas 20-22) ===\n")
    diagnose("metro grid", topologies.grid(8, 8), seed=3)
    diagnose("hub-and-spoke", topologies.star(64), seed=4)
    diagnose(
        "large flat overlay (n=1600, D=6)",
        topologies.diameter_controlled(1600, 6, seed=0),
        seed=5,
    )
    print("Note the last case: at n ≫ D² the √(nD) algorithm overtakes the "
          "classical Θ(n) baseline — the [LM18] regime the paper recovers.")


if __name__ == "__main__":
    main()
