"""Extending the framework: write your own parallel-query algorithm.

The framework (Theorem 8) is generic: anything that speaks the
``BatchOracle`` protocol runs over the network with its batches charged
automatically.  This example builds a *threshold counter* — "are at least
T of the k distributed counters above a limit?" — by composing the
library's parallel Grover find-all with early stopping, and runs it in
both formula mode (charged rounds) and engine mode (real messages).

It also demonstrates the exact quantum layer: the same Grover law that
drives the emulation, verified on a statevector in a few lines.

Run:  python examples/custom_query_algorithm.py
"""

import numpy as np

from repro.congest import topologies
from repro.core.framework import DistributedInput, FrameworkConfig, run_framework
from repro.core.semigroup import sum_semigroup
from repro.quantum import grover as exact_grover
from repro.queries.grover import find_one
from repro.queries.oracle import MaskedOracle


def threshold_counter(limit, threshold):
    """Build a parallel-query algorithm: are ≥ threshold values > limit?

    Strategy: repeatedly Grover-search for a yet-unseen index whose value
    exceeds the limit; stop as soon as `threshold` distinct witnesses are
    found (cheaper than find-all when the threshold is small — an early
    exit the paper's framework permits because each find-one is its own
    batch sequence).
    """

    def algorithm(oracle, rng):
        witnesses = []
        seen = set()
        misses = 0
        while len(witnesses) < threshold and misses < 2:
            view = MaskedOracle(oracle, seen, mask_value=0)
            out = find_one(view, lambda v: v > limit, rng)
            if out.found:
                witnesses.append((out.index, out.value))
                seen.add(out.index)
                misses = 0
            else:
                misses += 1
        return witnesses

    return algorithm


def main():
    print("=== A custom algorithm on the Theorem 8 framework ===\n")
    net = topologies.grid(5, 5)
    k = 300
    rng = np.random.default_rng(13)

    # Each node holds a slice of k counters; the global counter is the sum.
    vectors = {v: [0] * k for v in net.nodes()}
    for j in range(k):
        owner = int(rng.integers(0, net.n))
        vectors[owner][j] = int(rng.integers(0, 12))
    hot = rng.choice(k, size=9, replace=False)
    for j in hot:
        vectors[int(rng.integers(0, net.n))][j] += 90  # overload!

    dist_input = DistributedInput(vectors, sum_semigroup(110 * net.n))
    algorithm = threshold_counter(limit=80, threshold=5)

    base = FrameworkConfig(
        parallelism=net.diameter, dist_input=dist_input, seed=13
    )
    for mode in ("formula", "engine"):
        run = run_framework(net, algorithm, config=base.replace(mode=mode))
        witnesses = run.result
        print(f"[{mode:7s}] found {len(witnesses)} overloaded counters "
              f"in {run.total_rounds} rounds / {run.batches} batches: "
              f"{sorted(j for j, _ in witnesses)}")
    print(f"(ground truth hot counters: {sorted(int(j) for j in hot)})\n")

    print("=== The amplitude law underneath (Level E vs Level S) ===")
    marked = {5, 17}
    for j in range(4):
        exact = exact_grover.success_probability(6, marked, j)
        law = exact_grover.theoretical_success_probability(64, 2, j)
        print(f"  Grover iterations j={j}: statevector {exact:.6f}  "
              f"sin²((2j+1)θ) {law:.6f}")
    print("\nThe emulation layer samples from exactly this law — that is "
          "what makes the batch counts above faithful (DESIGN.md §3).")


if __name__ == "__main__":
    main()
