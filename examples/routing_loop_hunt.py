"""Scenario: hunting short routing loops (Lemmas 23-26).

A data-center fabric suspects a miswired short cycle is causing broadcast
storms.  The network must (a) detect whether any cycle of length ≤ k
exists, and (b) measure its girth, without shipping the topology anywhere
— the paper's cycle-detection and girth algorithms, with their quantum
round budgets beating the classical Ω(√n) regime.

Run:  python examples/routing_loop_hunt.py
"""

from repro.analysis.graphtruth import girth as true_girth
from repro.apps.cycles import detect_cycle, detect_cycle_clustered, quantum_cycle_bound
from repro.apps.girth import compute_girth, verify_girth
from repro.baselines.cycles import classical_cycle_bound, detect_cycle_classical
from repro.congest import topologies


def hunt(name, net, k, seed):
    truth = true_girth(net.graph)
    print(f"--- {name}: n={net.n}, true girth {truth} ---")
    quantum = detect_cycle(net, k, seed=seed)
    classical = detect_cycle_classical(net, k, seed=seed)
    print(f"  quantum  (Lemma 23): length<= {k} -> {quantum.length}, "
          f"{quantum.rounds} rounds "
          f"(light {quantum.light_rounds} + heavy {quantum.heavy_rounds}, "
          f"beta={quantum.beta:.3f})")
    print(f"  classical sampling : length<= {k} -> {classical.length}, "
          f"{classical.rounds} rounds")
    clustered = detect_cycle_clustered(net, k, seed=seed)
    print(f"  clustered (Lemma 25): -> {clustered.length}, "
          f"{clustered.rounds} rounds, {clustered.detail.get('colors')} colors")
    print()


def main():
    print("=== Short-cycle hunt (Lemmas 23-25) ===\n")
    hunt("fabric with a miswired C5", topologies.planted_cycle(160, 5, seed=1),
         k=6, seed=2)
    hunt("healthy tree fabric", topologies.balanced_tree(3, 4), k=6, seed=3)

    print("=== Girth measurement (Corollary 26) ===\n")
    for name, net in [
        ("petersen fabric", topologies.petersen()),
        ("girth-7 ring-of-rings", topologies.known_girth(7, copies=3, tail=5)),
    ]:
        result = compute_girth(net, seed=4)
        print(f"{name}: girth -> {result.girth} "
              f"(true {true_girth(net.graph)}), {result.rounds} rounds, "
              f"schedule k = {result.ks_tried}, "
              f"sound = {verify_girth(net, result)}")

    print("\n=== Asymptotics: where the quantum advantage lives ===")
    n = 10**6
    print(f"{'k':>4} {'quantum bound':>15} {'classical bound':>17}")
    for k in [4, 6, 8, 12]:
        print(f"{k:>4} {quantum_cycle_bound(n, k):>15.0f} "
              f"{classical_cycle_bound(n, k):>17.0f}")
    print("\n(k = cycle length bound, n = 10^6; the paper's "
          "(kn)^{1/2-1/Θ(k)} vs n^{1-1/Θ(k)} — and the classical girth "
          "lower bound is Ω(√n) = 1000 regardless of g [FHW12].)")


if __name__ == "__main__":
    main()
