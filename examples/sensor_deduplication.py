"""Scenario: duplicate detection in a sensor deployment (Corollary 14).

A field of sensors was flashed with supposedly unique 20-bit hardware ids.
Two sensors sharing an id corrupt the data pipeline, so before going live
the network must check that all ids are pairwise distinct — the paper's
"element distinctness between nodes".  Corollary 14 solves it in
Õ(n^{2/3}D^{1/3} + D) rounds where any classical protocol needs Ω(n/log n)
(Lemma 15): the network checks itself faster than it could ship its ids
to any single point.

The script also rebuilds Lemma 15's two-star lower-bound gadget to show
*why* classical protocols are stuck: all information must cross one edge.

Run:  python examples/sensor_deduplication.py
"""

import numpy as np

from repro.apps.element_distinctness import distinctness_between_nodes
from repro.congest import topologies
from repro.lowerbounds.disjointness import random_instance
from repro.lowerbounds.reductions import build_ed_nodes_gadget


def deploy_and_check(duplicate: bool, seed: int):
    rng = np.random.default_rng(seed)
    net = topologies.random_regular(48, 3, seed=seed)
    ids = {
        v: int(unique_id)
        for v, unique_id in enumerate(
            rng.choice(2**20, size=net.n, replace=False)
        )
    }
    if duplicate:
        clone_a, clone_b = 7, 31
        ids[clone_b] = ids[clone_a]

    result = None
    for attempt in range(4):  # boost the 2/3 guarantee by repetition
        result = distinctness_between_nodes(
            net, ids, max_value=2**20, seed=seed + attempt
        )
        if result.pair is not None:
            break
    return net, ids, result


def main():
    print("=== Sensor-field id deduplication (Corollary 14) ===\n")

    net, ids, result = deploy_and_check(duplicate=True, seed=5)
    print(f"deployment A: {net.n} sensors, diameter {net.diameter}, "
          "one cloned id planted")
    if result.pair:
        a, b = result.pair
        print(f"  -> duplicate found: sensors {a} and {b} share id "
              f"{ids[a]:#07x} ({result.rounds} rounds, "
              f"{result.batches} query batches)")
    else:
        print("  -> missed (probability <= (1/3)^4 with boosting)")

    net, ids, result = deploy_and_check(duplicate=False, seed=9)
    print(f"\ndeployment B: {net.n} sensors, all ids genuinely unique")
    print(f"  -> verdict: {'all distinct' if result.all_distinct else result.pair}"
          f" ({result.rounds} rounds)")

    print("\n=== Why classical protocols cannot keep up (Lemma 15) ===")
    inst = random_instance(16, np.random.default_rng(1), force_intersecting=True)
    gadget = build_ed_nodes_gadget(inst)
    print(f"two-star gadget: {gadget.network.n} nodes, every bit of the "
          "disjointness instance must cross the single center-center edge")
    check = distinctness_between_nodes(
        gadget.network, gadget.values, gadget.max_value, seed=2
    )
    print(f"our algorithm on the gadget: duplicate {check.pair} "
          f"<-> sets intersect = {inst.intersecting}")
    print("classical bound: Ω(n/log n) rounds through that edge; quantum "
          "needs Ω(∛(nD²) + √n) [MN20] — matched by Corollary 14 up to "
          "polylog for small D.")


if __name__ == "__main__":
    main()
