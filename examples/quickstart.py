"""Quickstart: distributed quantum queries in three acts.

1. Build a CONGEST network and run a classical primitive on the real
   round engine (BFS with echo).
2. Run a quantum application end to end: meeting scheduling (Lemma 10),
   with the per-phase round breakdown the framework charges.
3. Compare against the classical streaming baseline to see the √(kD)-vs-k
   separation appear as k grows.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.meeting import quantum_round_bound, schedule_meeting
from repro.baselines.streaming import classical_meeting
from repro.congest import topologies
from repro.congest.algorithms import bfs_with_echo, elect_leader


def act_one_classical_substrate():
    print("=== Act 1: the CONGEST substrate ===")
    net = topologies.grid(6, 6)
    print(f"network: {net.n} nodes, diameter {net.diameter}, "
          f"bandwidth {net.bandwidth} bits/edge/round")

    leader = elect_leader(net, seed=0)
    print(f"leader election: node {leader.leader} in {leader.rounds} rounds")

    tree = bfs_with_echo(net, leader.leader, seed=0)
    print(f"BFS + echo from the leader: {tree.rounds} rounds, "
          f"eccentricity {tree.eccentricity} (true: "
          f"{net.eccentricities[leader.leader]})")
    print()


def act_two_quantum_meeting():
    print("=== Act 2: meeting scheduling (Lemma 10) ===")
    net = topologies.grid(6, 6)
    k = 200  # time slots
    rng = np.random.default_rng(7)
    calendars = {
        v: [int(rng.random() < 0.45) for _ in range(k)] for v in net.nodes()
    }

    result = schedule_meeting(net, calendars, seed=7)
    totals = [sum(calendars[v][i] for v in net.nodes()) for i in range(k)]
    print(f"{net.n} participants, {k} slots")
    print(f"chosen slot {result.best_slot} with {result.availability} "
          f"available (true best: {max(totals)})")
    print(f"total rounds: {result.rounds} "
          f"(bound ~ (sqrt(kD)+D)·ceil(log k/log n) = "
          f"{quantum_round_bound(k, net.diameter, net.n):.0f} pre-constant)")
    print(f"oracle batches: {result.batches} of width <= {net.diameter}")
    print("round breakdown by phase:")
    for phase, rounds in sorted(result.run.rounds.by_phase().items()):
        print(f"  {phase:28s} {rounds}")
    print()


def act_three_separation():
    print("=== Act 3: quantum vs classical as k grows ===")
    net = topologies.path_with_endpoints(6)
    rng = np.random.default_rng(11)
    print(f"{'k':>8} {'quantum':>10} {'classical':>10} {'winner':>10}")
    for k in [256, 1024, 4096, 16384]:
        calendars = {
            v: [int(rng.random() < 0.5) for _ in range(k)] for v in net.nodes()
        }
        quantum = schedule_meeting(net, calendars, seed=3).rounds
        classical = classical_meeting(net, calendars, seed=3)[2]
        winner = "quantum" if quantum < classical else "classical"
        print(f"{k:>8} {quantum:>10} {classical:>10} {winner:>10}")
    print("\nclassical pays Θ(k/log n); quantum pays Õ(√(kD)) — the "
          "crossover is exactly the paper's Lemma 10 vs Lemma 11 picture.")


if __name__ == "__main__":
    act_one_classical_substrate()
    act_two_quantum_meeting()
    act_three_separation()
