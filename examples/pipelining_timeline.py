"""Seeing Lemma 7's pipelining: an edge-by-edge message timeline.

The difference between D·⌈q/log n⌉ and D + ⌈q/log n⌉ is easiest to see,
not prove: trace every message of the register stream and print which
edges were busy in which rounds.  Pipelined, the chunks fill the path
like a bucket brigade; naive, they travel in waves and every edge idles
most of the time.

Run:  python examples/pipelining_timeline.py
"""

from repro.congest import topologies
from repro.congest.algorithms import bfs_with_echo
from repro.congest.tracing import run_traced
from repro.core.state_transfer import RegisterStreamProgram, _chunk_register


def stream_trace(pipelined: bool):
    net = topologies.path(8)
    tree = bfs_with_echo(net, 0)
    children = tree.children()
    q_bits = 180
    chunk_bits = net.bandwidth - 8
    chunks = _chunk_register([1] * q_bits, chunk_bits)
    programs = {
        v: RegisterStreamProgram(
            v, tree.parent.get(v), children.get(v, []),
            chunks if v == 0 else None, len(chunks),
            1 << chunk_bits, pipelined=pipelined,
        )
        for v in net.nodes()
    }
    result, trace = run_traced(net, programs, seed=0)
    return net, result, trace, len(chunks)


def main():
    edges = [(i, i + 1) for i in range(7)]

    net, result, trace, chunks = stream_trace(pipelined=True)
    print(f"=== Pipelined (Lemma 7): {chunks} chunks over a depth-7 path ===")
    print(trace.render_timeline(edges))
    print(f"total rounds: {result.rounds}  "
          f"(bound depth + chunks = {7 + chunks})")
    print(f"edge (0,1) utilization: {trace.edge_utilization(0, 1):.0%}\n")

    net, result, trace, chunks = stream_trace(pipelined=False)
    print("=== Naive (the proof's strawman): forward only when complete ===")
    print(trace.render_timeline(edges))
    print(f"total rounds: {result.rounds}  "
          f"(≈ depth × chunks = {7 * chunks}, plus per-hop latency)")
    print(f"edge (0,1) utilization: {trace.edge_utilization(0, 1):.0%}")
    print("\nEach '#' is a delivered chunk. The pipelined run is a solid "
          "diagonal band; the naive run is a staircase of idle edges — "
          "that gap is exactly the D·⌈q/log n⌉ vs D + ⌈q/log n⌉ of Lemma 7.")


if __name__ == "__main__":
    main()
