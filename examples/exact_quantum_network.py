"""Watching the actual quantum state of a CONGEST network (Lemma 7, Thm 17).

Most of this library emulates quantum protocols at scale; this example
runs the real thing on a small network.  One global statevector holds
every node's register, Lemma 7's CNOT cascade spreads the leader's
superposition down the BFS tree, each node applies its private phase
oracle with zero communication, and the uncompute returns the register to
the leader — the full Theorem 17 circuit, exactly.

Run:  python examples/exact_quantum_network.py
"""

import numpy as np

from repro.congest import topologies
from repro.congest.algorithms import bfs_with_echo
from repro.quantum.distributed import (
    DistributedRegisters,
    apply_local_phase_oracle,
    distributed_deutsch_jozsa_exact,
    is_shared_state,
    load_leader_state,
    share_register,
    unshare_register,
)


def lemma7_live():
    print("=== Lemma 7, live: sharing a 2-qubit register over 5 nodes ===")
    net = topologies.path(5)
    tree = bfs_with_echo(net, 2)  # leader in the middle
    print(f"network: path of {net.n}; leader = node 2; tree depth = "
          f"{tree.eccentricity}")

    rng = np.random.default_rng(1)
    amps = rng.normal(size=4) + 1j * rng.normal(size=4)
    amps = amps / np.linalg.norm(amps)
    print("leader register amplitudes:",
          np.round(amps, 3))

    regs = DistributedRegisters.all_zero(net.n, 2)
    load_leader_state(regs, 2, amps)
    layers = share_register(regs, tree)
    print(f"shared in {layers} CNOT layers (= tree depth); "
          f"state is Σᵢ αᵢ|i⟩^⊗5: {is_shared_state(regs, amps)}")
    print("node 0's local measurement distribution now equals the "
          "leader's:", np.round(regs.node_marginal(0), 3))

    unshare_register(regs, tree)
    print("uncomputed; every non-leader register is |00⟩ again, leader "
          "marginal:", np.round(regs.node_marginal(2), 3))
    print()


def theorem17_live():
    print("=== Theorem 17, live: exact distributed Deutsch–Jozsa ===")
    net = topologies.star(5)
    tree = bfs_with_echo(net, 0)
    k = 4

    balanced_inputs = {v: [0] * k for v in net.nodes()}
    balanced_inputs[1] = [1, 0, 1, 0]
    balanced_inputs[3] = [0, 0, 1, 1]  # xor = [1,0,0,1]: balanced
    out = distributed_deutsch_jozsa_exact(net, tree, balanced_inputs)
    print(f"balanced promise input over {net.n} nodes "
          f"({out.total_qubits} simulated qubits):")
    print(f"  leader |0..0> probability = {out.leader_zero_probability:.10f}"
          f" -> classified {'constant' if out.constant else 'balanced'}")

    constant_inputs = {v: [0] * k for v in net.nodes()}
    constant_inputs[2] = [1, 1, 1, 1]
    constant_inputs[4] = [1, 1, 1, 1]  # xor cancels: constant zero
    out = distributed_deutsch_jozsa_exact(net, tree, constant_inputs)
    print("constant promise input:")
    print(f"  leader |0..0> probability = {out.leader_zero_probability:.10f}"
          f" -> classified {'constant' if out.constant else 'balanced'}")
    print("\nProbabilities are exactly 0 and 1 — the zero-error separation "
          "of Theorems 17/18 is not statistical.\n")


def phases_cost_nothing():
    print("=== The punchline: the query itself is communication-free ===")
    net = topologies.path(3)
    tree = bfs_with_echo(net, 0)
    regs = DistributedRegisters.all_zero(net.n, 2)
    uniform = np.full(4, 0.5)
    load_leader_state(regs, 0, uniform)
    share_register(regs, tree)
    for v in net.nodes():
        apply_local_phase_oracle(regs, v, [0, v % 2, 0, v % 2])
    print("three nodes each applied a private phase oracle to the shared "
          "state — 0 messages, 0 rounds.")
    print("Theorem 8's per-batch cost is purely the register transport "
          "(D + p word-rounds), which is what the framework meters.")


if __name__ == "__main__":
    lemma7_live()
    theorem17_live()
    phases_cost_nothing()
