"""Setuptools shim for legacy editable installs (pip install -e .).

All project metadata lives in pyproject.toml; this file only exists so that
environments without the ``wheel`` package can still do editable installs
through the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
