"""The experiment harness: one module per paper result (see DESIGN.md §5).

Each module exposes ``run(quick=True, seed=0)`` returning a result object
with a formatted :class:`~repro.analysis.report.ExperimentTable` plus the
key fitted quantities the reproduction criteria check.  ``quick=True``
keeps each experiment under ~a minute; ``quick=False`` is the full sweep
used to regenerate EXPERIMENTS.md.
"""

from . import (
    e01_parallel_grover,
    e02_parallel_minimum,
    e03_parallel_ed,
    e04_mean_estimation,
    e05_state_transfer,
    e06_framework,
    e07_meeting,
    e08_element_distinctness,
    e09_deutsch_jozsa,
    e10_diameter,
    e11_avg_eccentricity,
    e12_cycles,
    e13_girth,
    e14_amplitude,
    e15_lowerbounds,
    e16_even_cycles,
    e17_triangles,
    e18_boosting,
    e19_resilience,
    e20_diameter,
    e21_apsp,
    e22_scenarios,
    e23_sketches,
)

ALL_EXPERIMENTS = {
    "E1": e01_parallel_grover,
    "E2": e02_parallel_minimum,
    "E3": e03_parallel_ed,
    "E4": e04_mean_estimation,
    "E5": e05_state_transfer,
    "E6": e06_framework,
    "E7": e07_meeting,
    "E8": e08_element_distinctness,
    "E9": e09_deutsch_jozsa,
    "E10": e10_diameter,
    "E11": e11_avg_eccentricity,
    "E12": e12_cycles,
    "E13": e13_girth,
    "E14": e14_amplitude,
    "E15": e15_lowerbounds,
    "E16": e16_even_cycles,
    "E17": e17_triangles,
    "E18": e18_boosting,
    "E19": e19_resilience,
    "E20": e20_diameter,
    "E21": e21_apsp,
    "E22": e22_scenarios,
    "E23": e23_sketches,
}

# Imported after ALL_EXPERIMENTS exists: runner reads the registry at
# import time, so the order here is load-bearing.
from .runner import (  # noqa: E402
    RunRequest,
    Verdict,
    run_experiment,
    run_instrumented,
    verify_all,
    verify_experiment,
    verify_sweep,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "RunRequest",
    "Verdict",
    "run_experiment",
    "run_instrumented",
    "verify_all",
    "verify_experiment",
    "verify_sweep",
] + [m.__name__.split(".")[-1] for m in ALL_EXPERIMENTS.values()]
