"""E11 — Lemma 22: ε-additive average eccentricity in Õ(D^{3/2}/ε) rounds.

Claims under test: rounds grow like 1/ε at fixed D and like D^{3/2} at
fixed ε; estimates land within ε with probability ≥ 2/3; the estimator
beats exact diameter computation when n is large and D, 1/ε small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.eccentricity import (
    compute_diameter,
    estimate_average_eccentricity,
    quantum_avg_ecc_bound,
)
from ..congest import topologies
from ..core.framework import FrameworkConfig


@dataclass
class E11Result:
    table: ExperimentTable
    eps_exponent: float  # fitted rounds ~ ε^x; paper ≈ −1


def run(quick: bool = True, seed: int = 0) -> E11Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    trials = 5 if quick else 12
    table = ExperimentTable(
        "E11",
        "Average eccentricity (Lemma 22): rounds vs epsilon and D",
        ["n", "D", "epsilon", "rounds", "bound D^1.5/eps", "hit-rate"],
    )

    # ε sweep at fixed topology.
    net = topologies.diameter_controlled(200, 8, seed=seed)
    # One frozen base config per topology; trials swap only the seed.
    base = FrameworkConfig(parallelism=max(net.diameter, 1), seed=seed)
    eps_rounds: List[float] = []
    epsilons = [2.0, 1.0, 0.5, 0.25]
    for eps in epsilons:
        total, hits = 0.0, 0
        for trial in range(trials):
            res = estimate_average_eccentricity(
                net, eps, config=base.replace(seed=seed + trial)
            )
            total += res.rounds
            hits += res.error_against(net) <= eps
        table.add_row(net.n, net.diameter, eps, total / trials,
                      quantum_avg_ecc_bound(net.diameter, eps), hits / trials)
        eps_rounds.append(total / trials)
    fit = fit_power_law(epsilons, eps_rounds)
    table.add_note(
        f"fitted rounds ~ eps^{fit.exponent:.2f} (paper: eps^-1 · polylog), "
        f"R²={fit.r_squared:.3f}"
    )

    # D sweep at fixed ε.
    eps = 1.0
    for d in [4, 8, 16]:
        net_d = topologies.diameter_controlled(200, d, seed=seed + 1)
        base_d = FrameworkConfig(
            parallelism=max(net_d.diameter, 1), seed=seed
        )
        total, hits = 0.0, 0
        for trial in range(trials):
            res = estimate_average_eccentricity(
                net_d, eps, config=base_d.replace(seed=seed + trial)
            )
            total += res.rounds
            hits += res.error_against(net_d) <= eps
        table.add_row(net_d.n, net_d.diameter, eps, total / trials,
                      quantum_avg_ecc_bound(net_d.diameter, eps), hits / trials)
    table.add_note("last rows sweep D at eps=1; expect ~D^1.5 growth")

    # Comparison: cheaper than exact diameter on a large low-D graph.
    big = topologies.diameter_controlled(600, 4, seed=seed + 2)
    avg_rounds = estimate_average_eccentricity(big, 1.0, seed=seed).rounds
    diam_rounds = compute_diameter(big, seed=seed).rounds
    table.add_note(
        f"n=600, D=4: avg-ecc estimate {avg_rounds} rounds vs exact diameter "
        f"{diam_rounds} rounds"
    )
    return E11Result(table=table, eps_exponent=fit.exponent)
