"""E1 — Lemma 2: parallel Grover search scaling.

Claims under test:
* find-one uses b = O(⌈√(k/(tp))⌉) batches — halving exponent in p,
* find-all uses O(√(kt/p) + t),
* the paper's subset strategy beats the [Zal99; GR04] split strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.fitting import PowerLawFit, fit_power_law
from ..analysis.report import ExperimentTable
from ..queries.grover import (
    expected_batches_all,
    expected_batches_one,
    find_all,
    find_one,
    find_one_split,
)
from ..queries.ledger import QueryLedger
from ..queries.oracle import StringOracle

IS_ONE = staticmethod(lambda v: v == 1)


@dataclass
class E01Result:
    table: ExperimentTable
    p_exponent: float  # fitted b ~ p^x; paper predicts x ≈ −1/2


def _avg_batches(k: int, t: int, p: int, trials: int, seed: int, split=False):
    total_batches = 0.0
    successes = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        values = [0] * k
        for i in rng.choice(k, size=t, replace=False):
            values[i] = 1
        oracle = StringOracle(values, QueryLedger(p))
        fn = find_one_split if split else find_one
        out = fn(oracle, lambda v: v == 1, rng)
        total_batches += out.batches_used
        successes += out.found
    return total_batches / trials, successes / trials


def run(quick: bool = True, seed: int = 0) -> E01Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    k = 2048 if quick else 8192
    t = 4
    ps = [1, 4, 16, 64] if quick else [1, 4, 16, 64, 256]
    trials = 12 if quick else 30

    table = ExperimentTable(
        "E1",
        "Parallel Grover (Lemma 2): batches vs parallelism",
        ["k", "t", "p", "measured b", "bound sqrt(k/(tp))", "success",
         "split-ablation b"],
    )
    measured: List[float] = []
    for p in ps:
        avg, rate = _avg_batches(k, t, p, trials, seed)
        split_avg, _ = _avg_batches(k, t, p, max(trials // 2, 4), seed, split=True)
        table.add_row(k, t, p, avg, expected_batches_one(k, t, p), rate, split_avg)
        measured.append(avg)

    fit = fit_power_law(ps, measured)
    table.add_note(
        f"fitted b ~ p^{fit.exponent:.2f} (paper: p^-0.5), R²={fit.r_squared:.3f}"
    )

    # find-all at one operating point.
    rng = np.random.default_rng(seed)
    values = [0] * k
    marked = set(int(i) for i in rng.choice(k, size=8, replace=False))
    for i in marked:
        values[i] = 1
    oracle = StringOracle(values, QueryLedger(32))
    found, batches = find_all(oracle, lambda v: v == 1, rng, unmarked_value=0)
    table.add_note(
        f"find-all: {len(found)}/8 found in {batches} batches "
        f"(bound {expected_batches_all(k, 8, 32):.1f})"
    )
    return E01Result(table=table, p_exponent=fit.exponent)
