"""E6 — Theorem 8 / Corollary 9: framework batch costs, engine vs formula.

Claims under test: per-batch cost (D + p)·⌈q/log n⌉ + p·⌈log k/log n⌉
matches engine-measured rounds within constants, and p = Θ(D) is the
per-query-efficiency sweet spot the applications rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.report import ExperimentTable
from ..congest import topologies
from ..core.cost import CostModel
from ..core.framework import DistributedInput, FrameworkConfig, run_framework
from ..core.semigroup import sum_semigroup


@dataclass
class E06Result:
    table: ExperimentTable
    max_engine_formula_ratio: float


def _batch_cost(net, config, p, mode):
    def algorithm(oracle, _rng):
        oracle.query_batch(list(range(p)), label="probe")
        return None

    run = run_framework(net, algorithm,
                        config=config.replace(parallelism=p, mode=mode))
    phases = run.rounds.by_phase()
    if mode == "formula":
        return phases["batch:probe"]
    return sum(v for key, v in phases.items() if not key.startswith("setup"))


def run(quick: bool = True, seed: int = 0) -> E06Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    net = topologies.grid(5, 5) if quick else topologies.grid(8, 8)
    d = net.diameter
    k = 64
    rng = np.random.default_rng(seed)
    vectors = {
        v: [int(rng.integers(0, 2)) for _ in range(k)] for v in net.nodes()
    }
    di = DistributedInput(vectors, sum_semigroup(net.n))
    base = FrameworkConfig(
        parallelism=1, dist_input=di, seed=seed, leader=0
    )
    cm = CostModel.for_network(net)

    table = ExperimentTable(
        "E6",
        "Theorem 8 batch cost: engine-measured vs formula; p sweep",
        ["p", "formula rounds", "engine rounds", "ratio", "rounds per query"],
    )
    worst = 0.0
    for p in [1, max(d // 2, 1), d, 2 * d, 4 * d]:
        p = min(p, k)
        formula = _batch_cost(net, base, p, "formula")
        engine = _batch_cost(net, base, p, "engine")
        ratio = engine / formula
        worst = max(worst, max(ratio, 1 / ratio))
        table.add_row(p, formula, engine, ratio, formula / p)
    table.add_note(
        f"D = {d}; per-query efficiency saturates once p reaches Θ(D) — "
        "the paper's choice p = D in Lemmas 10/12/21"
    )
    return E06Result(table=table, max_engine_formula_ratio=worst)
