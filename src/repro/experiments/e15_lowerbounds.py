"""E15 — Lemmas 11/13/15 + Theorem 18: lower-bound machinery, end to end.

Claims under test: each reduction gadget maps disjointness instances to
the distributed problem such that our (boosted) algorithms recover the
disjointness answer; the DJ fooling-set certificate verifies and grows
with k; the bound formulas order quantum below classical where claimed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import ExperimentTable
from ..apps.deutsch_jozsa import solve_distributed_dj
from ..apps.element_distinctness import (
    distinctness_between_nodes,
    distinctness_distributed_vector,
)
from ..apps.meeting import schedule_meeting
from ..lowerbounds.disjointness import (
    classical_congest_lower_bound,
    quantum_line_lower_bound,
    random_instance,
)
from ..lowerbounds.rank_certificate import certify_dj_lower_bound
from ..lowerbounds.reductions import (
    build_dj_gadget,
    build_ed_nodes_gadget,
    build_ed_vector_gadget,
    build_meeting_gadget,
)


@dataclass
class E15Result:
    table: ExperimentTable
    all_reductions_sound: bool


def _boosted(fn, tries):
    return any(fn(s) for s in range(tries))


def run(quick: bool = True, seed: int = 0) -> E15Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    k = 12
    distance = 5
    cases = 6 if quick else 16
    tries = 5 if quick else 8
    rng = np.random.default_rng(seed)

    table = ExperimentTable(
        "E15",
        "Lower-bound reductions (Lemmas 11/13/15, Thm 18): soundness",
        ["reduction", "instances", "correct", "all sound"],
    )
    sound_all = True

    correct = 0
    for case in range(cases):
        inst = random_instance(k, rng, force_intersecting=bool(case % 2))
        gadget = build_meeting_gadget(inst, distance)
        answer = _boosted(
            lambda s: gadget.interpret(
                schedule_meeting(gadget.network, gadget.calendars, seed=s).availability
            ),
            tries,
        )
        correct += answer == inst.intersecting
    table.add_row("disjointness → meeting (Lem 11)", cases, correct,
                  correct == cases)
    sound_all &= correct == cases

    correct = 0
    for case in range(cases):
        inst = random_instance(k, rng, force_intersecting=bool(case % 2))
        gadget = build_ed_vector_gadget(inst, distance)
        answer = _boosted(
            lambda s: gadget.interpret(
                distinctness_distributed_vector(
                    gadget.network, gadget.vectors, gadget.max_value, seed=s
                ).pair
            ),
            tries,
        )
        correct += answer == inst.intersecting
    table.add_row("disjointness → ED vector (Lem 13)", cases, correct,
                  correct == cases)
    sound_all &= correct == cases

    correct = 0
    for case in range(cases):
        inst = random_instance(k, rng, force_intersecting=bool(case % 2))
        gadget = build_ed_nodes_gadget(inst)
        answer = _boosted(
            lambda s: gadget.interpret(
                distinctness_between_nodes(
                    gadget.network, gadget.values, gadget.max_value, seed=s
                ).pair
            ),
            tries,
        )
        correct += answer == inst.intersecting
    table.add_row("disjointness → ED nodes (Lem 15)", cases, correct,
                  correct == cases)
    sound_all &= correct == cases

    correct = 0
    for case in range(cases):
        balanced = bool(case % 2)
        half = [1, 0] * (k // 2) if balanced else [0] * k
        gadget = build_dj_gadget(half, [0] * k, distance)
        res = solve_distributed_dj(gadget.network, gadget.inputs, seed=case)
        correct += res.constant == gadget.constant_truth
    table.add_row("two-party DJ → distributed DJ (Thm 18)", cases, correct,
                  correct == cases)
    sound_all &= correct == cases

    for kk in [8, 16, 32]:
        cert = certify_dj_lower_bound(kk)
        table.add_note(
            f"DJ fooling certificate k={kk}: set size {cert.set_size}, "
            f"≥ {cert.bits_lower_bound:.1f} bits, verified={cert.verified} "
            "(machine-checkable log₂k bound; the full Ω(k) is cited)"
        )
    table.add_note(
        "bound ordering at k=10^5, D=10, n=10^3: classical "
        f"Ω {classical_congest_lower_bound(10**5, 10, 10**3):.0f} rounds vs "
        f"quantum-line Ω {quantum_line_lower_bound(10**5, 10):.0f} rounds"
    )
    return E15Result(table=table, all_reductions_sound=sound_all)
