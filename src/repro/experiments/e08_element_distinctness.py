"""E8 — Lemmas 12–15: distributed element distinctness, quantum vs classical.

Claims under test: quantum Õ(k^{2/3}D^{1/3} + D) (fitted k^{2/3} growth)
against the classical Θ(k·⌈log N/log n⌉ + D) streaming baseline; plus the
Corollary 14 between-nodes variant on the two-star gadget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.element_distinctness import (
    distinctness_between_nodes,
    distinctness_distributed_vector,
    quantum_round_bound_vector,
)
from ..baselines.streaming import classical_element_distinctness
from ..congest import topologies


@dataclass
class E08Result:
    table: ExperimentTable
    k_exponent: float  # fitted quantum rounds ~ k^x; paper ≈ 2/3


MAX_VALUE = 10**6


def _planted(net, k, rng):
    vectors = {v: [0] * k for v in net.nodes()}
    base = list(rng.choice(MAX_VALUE - 1, size=k, replace=False))
    i, j = rng.choice(k, size=2, replace=False)
    base[j] = base[i]
    for idx, value in enumerate(base):
        vectors[int(rng.integers(0, net.n))][idx] = value
    return vectors


def run(quick: bool = True, seed: int = 0) -> E08Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    distance = 4
    net = topologies.path_with_endpoints(distance)
    ks = [512, 2048, 8192] if quick else [512, 2048, 8192, 32768]
    trials = 4 if quick else 10

    table = ExperimentTable(
        "E8",
        "Element distinctness (Lemma 12): quantum vs classical rounds",
        ["k", "D", "quantum rounds", "bound", "classical rounds",
         "quantum wins", "found rate"],
    )
    quantum_rounds: List[float] = []
    for k in ks:
        q_total, found = 0.0, 0
        c_rounds = None
        for trial in range(trials):
            rng = np.random.default_rng(seed + trial)
            vectors = _planted(net, k, rng)
            res = distinctness_distributed_vector(
                net, vectors, MAX_VALUE, seed=seed + trial
            )
            q_total += res.rounds
            found += res.pair is not None
            if c_rounds is None:
                _, c_rounds = classical_element_distinctness(
                    net, vectors, MAX_VALUE, seed=seed
                )
        avg_q = q_total / trials
        table.add_row(
            k, distance, avg_q,
            quantum_round_bound_vector(k, distance, net.n, MAX_VALUE),
            c_rounds, avg_q < c_rounds, found / trials,
        )
        quantum_rounds.append(avg_q)

    fit = fit_power_law(ks, quantum_rounds)
    table.add_note(
        f"fitted quantum rounds ~ k^{fit.exponent:.2f} (paper: k^(2/3)), "
        f"R²={fit.r_squared:.3f}"
    )

    # Corollary 14 between-nodes on the two-star Lemma 15 gadget.
    star = topologies.two_stars(12, 12)
    values = {v: 1000 + v for v in star.nodes()}
    values[5] = values[20]
    found = 0
    for trial in range(trials):
        res = distinctness_between_nodes(star, values, 2000, seed=seed + trial)
        found += res.pair is not None
    table.add_note(
        f"Corollary 14 on the two-star gadget (n={star.n}): planted "
        f"duplicate found in {found}/{trials} runs"
    )
    return E08Result(table=table, k_exponent=fit.exponent)
