"""E17 — triangle finding: the Corollary 26 subroutine, measured.

Claims under test: the folklore classical O(Δ) neighborhood-exchange
protocol is exact and its *measured* engine rounds track the maximum
degree; the cited quantum bound Õ(n^{1/5}) [CFGLO22] sits below both the
classical Õ(n^{1/3}) detection bound and the earlier quantum Õ(n^{1/4})
[IGM19]; the one-sided quantum emulation never reports a ghost triangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import ExperimentTable
from ..apps.triangles import (
    classical_triangle_bound,
    detect_triangle_local,
    detect_triangle_quantum,
    find_triangle_truth,
    quantum_triangle_bound,
    quantum_triangle_bound_igm,
)
from ..congest import topologies


@dataclass
class E17Result:
    table: ExperimentTable
    local_exact: bool
    no_false_positives: bool


def run(quick: bool = True, seed: int = 0) -> E17Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    trials = 5 if quick else 10
    table = ExperimentTable(
        "E17",
        "Triangle finding: measured local-exchange vs cited quantum bounds",
        ["graph", "n", "max deg", "has triangle", "local rounds",
         "local found", "quantum hit-rate"],
    )
    local_exact = True
    no_false_pos = True
    cases = [
        ("complete-8", topologies.complete(8)),
        ("petersen (triangle-free)", topologies.petersen()),
        ("grid 5x5 (triangle-free)", topologies.grid(5, 5)),
        ("random-regular d=4", topologies.random_regular(40, 4, seed=seed)),
        ("lollipop", topologies.lollipop(6, 10)),
    ]
    for name, net in cases:
        truth = find_triangle_truth(net.graph)
        local = detect_triangle_local(net, seed=seed)
        local_exact &= local.found == (truth is not None)
        hits = 0
        for trial in range(trials):
            q = detect_triangle_quantum(net, seed=seed + trial)
            if truth is None:
                no_false_pos &= not q.found
            else:
                hits += q.found
        max_deg = max(net.degree(v) for v in net.nodes())
        table.add_row(
            name, net.n, max_deg, truth is not None, local.rounds,
            local.found, (hits / trials) if truth is not None else 1.0,
        )
        # The local protocol runs in ≈ Δ + O(1) rounds.
        assert local.rounds <= max_deg + 3

    table.add_note(
        "bounds at n=10^6: quantum n^{1/5} "
        f"{quantum_triangle_bound(10**6):.0f} < quantum n^{{1/4}} [IGM19] "
        f"{quantum_triangle_bound_igm(10**6):.0f} < classical n^{{1/3}} "
        f"{classical_triangle_bound(10**6):.0f} rounds"
    )
    table.add_note("local-exchange rounds ≈ max degree + O(1), exact answer")
    return E17Result(
        table=table, local_exact=local_exact, no_false_positives=no_false_pos
    )
