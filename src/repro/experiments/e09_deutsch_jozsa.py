"""E9 — Theorems 17/18: distributed Deutsch–Jozsa, the exponential separation.

Claims under test: quantum rounds O(D·⌈log k/log n⌉) — essentially flat in
k — with zero error on every run, against the exact classical
Θ(k/log n + D) baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.deutsch_jozsa import quantum_round_bound, solve_distributed_dj
from ..baselines.streaming import classical_deutsch_jozsa
from ..congest import topologies


@dataclass
class E09Result:
    table: ExperimentTable
    quantum_k_exponent: float  # ≈ 0 expected
    classical_k_exponent: float  # ≈ 1 expected
    zero_error: bool


def _promise_inputs(net, k, rng, balanced):
    inputs = {
        v: [int(b) for b in rng.integers(0, 2, size=k)] for v in net.nodes()
    }
    xor = [0] * k
    for vec in inputs.values():
        xor = [a ^ b for a, b in zip(xor, vec)]
    target = ([1] * (k // 2) + [0] * (k // 2)) if balanced else [0] * k
    inputs[0] = [a ^ b ^ c for a, b, c in zip(inputs[0], xor, target)]
    return inputs


def run(quick: bool = True, seed: int = 0) -> E09Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    distance = 6
    net = topologies.path_with_endpoints(distance)
    ks = [64, 512, 4096, 32768] if quick else [64, 512, 4096, 32768, 262144]
    trials = 6 if quick else 15

    table = ExperimentTable(
        "E9",
        "Distributed Deutsch–Jozsa (Thm 17/18): exact quantum vs exact classical",
        ["k", "quantum rounds", "bound D*ceil(logk/logn)", "classical rounds",
         "speedup", "errors"],
    )
    q_rounds: List[float] = []
    c_rounds: List[float] = []
    all_correct = True
    for k in ks:
        errors = 0
        q_last = c_last = 0
        for trial in range(trials):
            rng = np.random.default_rng(seed + trial)
            balanced = bool(trial % 2)
            inputs = _promise_inputs(net, k, rng, balanced)
            q = solve_distributed_dj(net, inputs, seed=seed + trial)
            errors += q.balanced != balanced
            c_answer, c_last = classical_deutsch_jozsa(net, inputs, seed=seed)
            errors += (not c_answer) != balanced
            q_last = q.rounds
        all_correct = all_correct and errors == 0
        table.add_row(
            k, q_last, quantum_round_bound(k, distance, net.n), c_last,
            c_last / q_last, errors,
        )
        q_rounds.append(q_last)
        c_rounds.append(c_last)

    q_fit = fit_power_law(ks, q_rounds)
    c_fit = fit_power_law(ks, c_rounds)
    table.add_note(
        f"quantum rounds ~ k^{q_fit.exponent:.2f} (≈0: only the word factor), "
        f"classical ~ k^{c_fit.exponent:.2f} (≈1) — exponential separation in "
        "round growth; both sides exact (zero errors column)"
    )
    return E09Result(
        table=table,
        quantum_k_exponent=q_fit.exponent,
        classical_k_exponent=c_fit.exponent,
        zero_error=all_correct,
    )
