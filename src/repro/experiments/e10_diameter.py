"""E10 — Lemma 21: diameter and radius in O(√(nD)) rounds vs classical Θ(n).

Claims under test: quantum rounds grow like √n at fixed D (fit), beat the
all-sources-BFS classical baseline for large n, and stay correct w.p. ≥ 2/3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.eccentricity import compute_diameter, compute_radius, quantum_diameter_bound
from ..baselines.diameter import classical_all_eccentricities, classical_diameter_bound
from ..congest import topologies
from ..core.framework import FrameworkConfig


@dataclass
class E10Result:
    table: ExperimentTable
    n_exponent: float  # fitted quantum rounds ~ n^x at fixed D; paper ≈ 1/2


def run(quick: bool = True, seed: int = 0) -> E10Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    diameter = 6
    ns = [100, 400, 1600] if quick else [100, 400, 1600, 6400]
    trials = 4 if quick else 10

    table = ExperimentTable(
        "E10",
        "Diameter/radius (Lemma 21): quantum O(sqrt(nD)) vs classical O(n)",
        ["n", "D", "quantum rounds", "bound sqrt(nD)", "classical rounds",
         "quantum wins", "diam acc", "radius acc"],
    )
    q_rounds: List[float] = []
    for n in ns:
        net = topologies.diameter_controlled(n, diameter, seed=seed)
        # One frozen base config per topology; trials swap only the seed.
        base = FrameworkConfig(
            parallelism=max(net.diameter, 1), seed=seed
        )
        q_total, diam_ok, rad_ok = 0.0, 0, 0
        for trial in range(trials):
            d_res = compute_diameter(
                net, config=base.replace(seed=seed + trial)
            )
            r_res = compute_radius(
                net, config=base.replace(seed=seed + 100 + trial)
            )
            q_total += d_res.rounds
            diam_ok += d_res.value == net.diameter
            rad_ok += r_res.value == net.radius
        classical = classical_all_eccentricities(net)
        avg_q = q_total / trials
        table.add_row(
            n, net.diameter, avg_q, quantum_diameter_bound(n, net.diameter),
            classical.rounds, avg_q < classical.rounds,
            diam_ok / trials, rad_ok / trials,
        )
        q_rounds.append(avg_q)

    fit = fit_power_law(ns, q_rounds)
    table.add_note(
        f"fitted quantum rounds ~ n^{fit.exponent:.2f} (paper: n^0.5), "
        f"R²={fit.r_squared:.3f}; classical baseline is 2n + 3D"
    )
    return E10Result(table=table, n_exponent=fit.exponent)
