"""E14 — Lemmas 27–30: non-oracle techniques in CONGEST.

Claims under test: amplification rounds ~ (R + D)/√p·log(1/δ); phase
estimation rounds ~ (R/ε)·log(1/δ) + D; amplitude estimation accuracy ±ε
at (R + D)·√p_max/ε·log(1/δ) — plus a small exact-quantum cross-check of
the amplification law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.amplitude_apps import (
    DistributedSubroutine,
    amplification_round_bound,
    amplify,
    estimate_amplitude_distributed,
    estimate_phase_distributed,
    phase_estimation_round_bound,
)
from ..congest import topologies
from ..quantum.amplitude import (
    good_probability,
    theoretical_amplified_probability,
)
from ..quantum.circuits import qft_matrix


@dataclass
class E14Result:
    table: ExperimentTable
    p_exponent: float  # amplification rounds ~ p^x; paper ≈ −1/2


def run(quick: bool = True, seed: int = 0) -> E14Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    net = topologies.grid(5, 5)
    trials = 8 if quick else 20
    delta = 0.1
    table = ExperimentTable(
        "E14",
        "Amplitude techniques (Lemmas 27-30): rounds and accuracy",
        ["technique", "parameter", "measured rounds", "bound", "success/err"],
    )

    # Amplification: sweep subroutine success probability p.
    probs = [0.2, 0.05, 0.0125]
    rounds_by_p: List[float] = []
    for p in probs:
        sub = DistributedSubroutine(rounds=6, success_probability=p)
        total, wins = 0.0, 0
        for trial in range(trials):
            out = amplify(net, sub, delta, np.random.default_rng(seed + trial))
            total += out.rounds
            wins += out.succeeded
        table.add_row("amplify (Cor 28)", f"p={p}", total / trials,
                      amplification_round_bound(net, sub, delta), wins / trials)
        rounds_by_p.append(total / trials)
    fit = fit_power_law(probs, rounds_by_p)
    table.add_note(
        f"amplification rounds ~ p^{fit.exponent:.2f} (paper: p^-0.5), "
        f"R²={fit.r_squared:.3f}"
    )

    # Phase estimation: sweep ε.
    for eps in [0.05, 0.01]:
        total, hits = 0.0, 0
        for trial in range(trials):
            out = estimate_phase_distributed(
                net, unitary_rounds=4, true_theta=0.3111, epsilon=eps,
                delta=delta, rng=np.random.default_rng(seed + trial),
            )
            total += out.rounds
            err = min(abs(out.theta_estimate - 0.3111),
                      1 - abs(out.theta_estimate - 0.3111))
            hits += err <= eps
        table.add_row("phase est (Lem 29)", f"eps={eps}", total / trials,
                      phase_estimation_round_bound(net, 4, eps, delta),
                      hits / trials)

    # Amplitude estimation: error vs ε.
    sub = DistributedSubroutine(rounds=4, success_probability=0.04)
    for eps in [0.02, 0.005]:
        errs = []
        for trial in range(trials):
            out = estimate_amplitude_distributed(
                net, sub, p_max=0.1, epsilon=eps, delta=delta,
                rng=np.random.default_rng(seed + trial),
            )
            errs.append(abs(out.p_estimate - 0.04))
        table.add_row("amp est (Cor 30)", f"eps={eps}", 0.0, 0.0,
                      float(sorted(errs)[len(errs) // 2]))
    table.add_note("amp-est rows report the median |p̂ − p| in the last column")

    # Exact-quantum cross-check (Level E): the sin((2j+1)θ) law.
    a = qft_matrix(3)
    good = {2, 5}
    p0 = good_probability(a, good)
    from ..quantum.amplitude import amplification_iterate

    q = amplification_iterate(a, good)
    vec = a[:, 0].copy()
    max_dev = 0.0
    for j in range(4):
        measured = sum(abs(vec[i]) ** 2 for i in good)
        max_dev = max(
            max_dev, abs(measured - theoretical_amplified_probability(p0, j))
        )
        vec = q @ vec
    table.add_note(
        f"Level-E cross-check: statevector vs sin²((2j+1)θ) max deviation "
        f"{max_dev:.2e}"
    )
    return E14Result(table=table, p_exponent=fit.exponent)
