"""E22 — scenario matrix: fidelity, wall-clock crossovers, adversaries.

The paper's round counts assume perfect unit-cost links; E22 sweeps the
three axes of :mod:`repro.scenarios` and tests that the reproduction can
say *where* the asymptotic quantum win survives contact with practice:

* **fidelity axis** — link fidelity F against the Lemma 7
  re-amplification bill: the total round cost must grow monotonically as
  F drops (boosting repetitions kick in);
* **practicality axis ("Mind the Õ")** — the E20 diameter duel re-priced
  in wall-clock microseconds on explicit link models.  Claims under
  test: there is a *rounds-advantage regime* (quantum wins rounds from
  some n₀) whose practicality depends on the per-round premium — under
  the mature-quantum link the wall-clock crossover exists (measured in
  range or predicted by the fitted break-even curve f*(n)), while under
  the near-term link the same sweep is *latency-dominated* (quantum
  wins rounds yet never wall clock in the swept range);
* **adversary axis** — link flaps, node churn, and Byzantine senders as
  scenario cells fanned across :func:`repro.scenarios.run_matrix`; every
  honest cell (no Byzantine nodes) must still compute correct BFS
  distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.report import ExperimentTable
from ..apps.diameter import sweep_diameter
from ..congest import topologies
from ..core.cost import CLASSICAL_METRO, QUANTUM_MATURE, QUANTUM_NEAR_TERM
from ..parallel import TaskFailure
from ..scenarios import (
    CrossoverReport,
    Scenario,
    ScenarioOutcome,
    byzantine_nodes,
    churn_schedule,
    crossover_report,
    fidelity_sweep,
    link_flap_model,
    price_duels,
    run_matrix,
)


@dataclass
class E22Result:
    """The three-axis scenario sweep plus its crossover verdicts."""

    table: ExperimentTable
    fidelity_monotone: bool        # round bill non-decreasing as F drops
    fidelity_max_overhead: float   # bill inflation at the worst swept F
    rounds_crossover_n: Optional[int]
    mature: CrossoverReport        # wall-clock verdict, mature link
    near_term: CrossoverReport     # wall-clock verdict, near-term link
    break_even_exponent: float     # fitted slope of f*(n)
    matrix: List[ScenarioOutcome]
    honest_cells_correct: bool     # non-Byzantine cells all exact

    @property
    def mature_crossover_known(self) -> bool:
        """The mature-link wall-clock crossover is measured or predicted."""
        return (
            self.mature.wall_clock_crossover_n is not None
            or self.mature.predicted_crossover_n is not None
        )


def _fidelity_axis(table: ExperimentTable, seed: int) -> tuple:
    net = topologies.grid(3, 4)
    fidelities = [1.0, 0.999, 0.99, 0.95]
    cells = fidelity_sweep(net, fidelities, q_bits=32, seed=seed)
    for c in cells:
        table.add_row(
            "fidelity", f"F={c.fidelity:g}", c.total_rounds,
            f"S={c.security} reps={c.repetitions}",
            f"overhead x{c.overhead:.1f}",
        )
    bills = [c.total_rounds for c in cells]
    monotone = all(a <= b for a, b in zip(bills, bills[1:]))
    return monotone, cells[-1].overhead


def _matrix_axis(
    table: ExperimentTable, seed: int, jobs: int
) -> tuple:
    n = 16
    scenarios = [
        Scenario("clean"),
        Scenario(
            "flaps", fidelity=0.99,
            fault_model=link_flap_model(0.05, mean_outage_rounds=3.0),
        ),
        Scenario(
            "churn",
            crash_schedule=churn_schedule(n, 0.2, horizon=8, seed=seed),
        ),
        Scenario(
            "byzantine",
            byzantine=byzantine_nodes(n, 0.15, seed=seed),
        ),
    ]
    results = run_matrix(
        scenarios, topology="grid", n=n, seed=seed, jobs=jobs
    )
    outcomes = [r for r in results if not isinstance(r, TaskFailure)]
    for out in outcomes:
        table.add_row(
            "adversary", out.scenario, out.rounds,
            f"faults={out.dropped + out.corrupted + out.delayed}"
            f" crashes={out.crashes}",
            f"correct={out.correct} overhead x{out.overhead:.1f}",
        )
    byz = {s.name for s in scenarios if s.byzantine}
    honest_ok = (
        len(outcomes) == len(scenarios)
        and all(out.correct for out in outcomes if out.scenario not in byz)
    )
    return outcomes, honest_ok


def run(quick: bool = True, seed: int = 0) -> E22Result:
    """Run the three-axis sweep; quick mode keeps it well under a minute."""
    table = ExperimentTable(
        "E22",
        "Scenario matrix: fidelity bill, wall-clock crossovers, adversaries",
        ["axis", "point", "rounds", "detail", "verdict"],
    )

    monotone, max_overhead = _fidelity_axis(table, seed)

    ns = [256, 512, 1024, 2048] if quick else [512, 1024, 2048, 4096]
    duels = sweep_diameter(ns, diameter=4, trials=1, seed=seed)
    mature = crossover_report(duels, CLASSICAL_METRO, QUANTUM_MATURE)
    near_term = crossover_report(duels, CLASSICAL_METRO, QUANTUM_NEAR_TERM)
    for duel, priced in zip(
        duels, price_duels(duels, CLASSICAL_METRO, QUANTUM_MATURE)
    ):
        table.add_row(
            "wall-clock", f"n={duel.n}", duel.quantum_rounds,
            f"q={priced.quantum_us / 1e3:.0f}ms "
            f"c={priced.classical_us / 1e3:.0f}ms",
            f"f*={priced.break_even_premium:.2f} vs f={priced.premium:.2f}",
        )
    table.add_note(
        f"rounds crossover n={mature.rounds_crossover_n}; mature link "
        f"(premium {mature.premium:.2f}): wall-clock crossover "
        f"n={mature.wall_clock_crossover_n} "
        f"(predicted {mature.predicted_crossover_n}); near-term link "
        f"(premium {near_term.premium:.0f}): latency-dominated="
        f"{near_term.latency_dominated}"
    )
    exponent = (
        mature.break_even_fit.exponent if mature.break_even_fit else 0.0
    )

    outcomes, honest_ok = _matrix_axis(table, seed, jobs=1 if quick else 2)

    return E22Result(
        table=table,
        fidelity_monotone=monotone,
        fidelity_max_overhead=max_overhead,
        rounds_crossover_n=mature.rounds_crossover_n,
        mature=mature,
        near_term=near_term,
        break_even_exponent=exponent,
        matrix=outcomes,
        honest_cells_correct=honest_ok,
    )
