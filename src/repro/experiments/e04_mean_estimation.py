"""E4 — Lemma 6: parallel mean estimation scaling.

Claims under test: b = Õ(σ/(√p·ε)) batches for an ε-additive estimate
with probability ≥ 2/3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..queries.ledger import QueryLedger
from ..queries.mean_estimation import batch_count, estimate_mean
from ..queries.oracle import StringOracle


@dataclass
class E04Result:
    table: ExperimentTable
    eps_exponent: float  # fitted b ~ ε^x; paper predicts x ≈ −1


def run(quick: bool = True, seed: int = 0) -> E04Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    k = 4000
    sigma = 3.0
    trials = 12 if quick else 30
    epsilons = [0.4, 0.2, 0.1, 0.05]
    ps = [1, 16, 64]

    table = ExperimentTable(
        "E4",
        "Parallel mean estimation (Lemma 6): batches and accuracy",
        ["p", "epsilon", "b (formula)", "measured b", "hit-rate (err<=eps)"],
    )

    eps_measured: List[float] = []
    for eps in epsilons:
        p = 16
        hits = 0
        used = 0.0
        for trial in range(trials):
            rng = np.random.default_rng(seed + trial)
            values = list(rng.uniform(0, 10, size=k))
            mu = sum(values) / k
            est = estimate_mean(
                StringOracle(values, QueryLedger(p)), sigma, eps, rng
            )
            hits += abs(est.estimate - mu) <= eps
            used += est.batches_used
        table.add_row(p, eps, batch_count(sigma, p, eps), used / trials,
                      hits / trials)
        eps_measured.append(used / trials)

    fit = fit_power_law(epsilons, eps_measured)
    table.add_note(
        f"fitted b ~ eps^{fit.exponent:.2f} (paper: eps^-1 times polylog), "
        f"R²={fit.r_squared:.3f}"
    )

    for p in ps:
        eps = 0.1
        table.add_row(p, eps, batch_count(sigma, p, eps),
                      float(batch_count(sigma, p, eps)), 1.0)
    table.add_note("p rows: formula only — b shrinks like 1/sqrt(p)")
    return E04Result(table=table, eps_exponent=fit.exponent)
