"""E16 — the post-Lemma-25 remark: exact even-cycle detection.

Claims under test: C_k detection for k = 4, 6, 8, 10 at quantum cost
O(n^{1/2 − 1/(2k+2)}) — below the classical Ω̃(√n) [KR18] — with one-sided
error, on graphs with and without the target cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..analysis.report import ExperimentTable
from ..apps.even_cycles import (
    SUPPORTED_LENGTHS,
    classical_even_cycle_bound,
    detect_even_cycle,
    quantum_even_cycle_bound,
)
from ..congest import topologies
from ..congest.network import Network


@dataclass
class E16Result:
    table: ExperimentTable
    all_sound: bool
    quantum_below_classical: bool


def _instance_with_ck(n: int, k: int, seed: int) -> Network:
    """A sparse graph whose only cycle has length exactly k."""
    return topologies.planted_cycle(n, k, seed=seed)


def _instance_without_ck(n: int, k: int, seed: int) -> Network:
    """A tree plus one cycle of a different (odd) length: no C_k."""
    return topologies.planted_cycle(n, k + 1, seed=seed)


def run(quick: bool = True, seed: int = 0) -> E16Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    n = 120 if quick else 400
    trials = 6 if quick else 12
    table = ExperimentTable(
        "E16",
        "Exact even-cycle detection (post-Lemma-25 remark)",
        ["k", "instance", "hit-rate", "false positives",
         "quantum bound n^(1/2-1/(2k+2))", "classical bound sqrt(n)"],
    )
    all_sound = True
    below = True
    for k in SUPPORTED_LENGTHS:
        hits = 0
        for trial in range(trials):
            net = _instance_with_ck(n, k, seed + trial)
            res = detect_even_cycle(net, k, seed=seed + trial)
            all_sound &= res.sound
            hits += res.found
        false_pos = 0
        for trial in range(trials):
            net = _instance_without_ck(n, k, seed + 100 + trial)
            res = detect_even_cycle(net, k, seed=seed + trial)
            all_sound &= res.sound
            false_pos += res.found
        q_bound = quantum_even_cycle_bound(10**6, k)
        c_bound = classical_even_cycle_bound(10**6)
        below &= q_bound < c_bound
        table.add_row(
            k, f"planted C{k} / C{k+1}", hits / trials, false_pos,
            q_bound, c_bound,
        )
    table.add_note(
        "hit-rate on yes-instances must be ≥ 2/3; false positives must be 0 "
        "(one-sided error); bounds evaluated at n = 10^6"
    )
    return E16Result(
        table=table, all_sound=all_sound, quantum_below_classical=below
    )
