"""E5 — Lemma 7: register distribution, pipelined vs naive.

Claims under test: pipelined streaming costs O(D + q/log n) rounds while
the naive scheme costs D·⌈q/log n⌉ — the additive-vs-multiplicative
separation, measured with real engine messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.report import ExperimentTable
from ..congest import topologies
from ..congest.algorithms.bfs import bfs_with_echo
from ..core.cost import CostModel
from ..core.state_transfer import distribute_register


@dataclass
class E05Result:
    table: ExperimentTable
    max_pipelined_ratio: float  # measured / (D + words) — should be O(1)


def run(quick: bool = True, seed: int = 0) -> E05Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    net = topologies.path(24 if quick else 48)
    tree = bfs_with_echo(net, 0)
    cm = CostModel.for_network(net)
    qs = [16, 64, 256, 1024] if quick else [16, 64, 256, 1024, 4096]

    table = ExperimentTable(
        "E5",
        "Lemma 7 register distribution: pipelined vs naive (measured rounds)",
        ["q bits", "pipelined", "bound D+q/B", "naive", "bound D*q/B"],
    )
    worst_ratio = 0.0
    rng = np.random.default_rng(seed)
    for q in qs:
        value = int.from_bytes(rng.bytes(q // 8 or 1), "big") % (1 << q)
        pipe = distribute_register(net, tree, value, q, pipelined=True)
        naive = distribute_register(net, tree, value, q, pipelined=False)
        bound_pipe = tree.eccentricity + pipe.chunks
        bound_naive = tree.eccentricity * pipe.chunks
        table.add_row(q, pipe.rounds, bound_pipe, naive.rounds, bound_naive)
        worst_ratio = max(worst_ratio, pipe.rounds / bound_pipe)
    table.add_note(
        "B here is the engine bandwidth (4 log n + tag bits); the paper's "
        "unit is log n, so chunk counts differ from q/log n by a constant"
    )
    return E05Result(table=table, max_pipelined_ratio=worst_ratio)
