"""E18 — the paper's boosting remark, measured.

"there will always be some central leader that can combine the results of
multiple independent runs to boost this to a success probability of
1 − n^{−c} at the cost of an extra log(n)-factor."

Claims under test: repeated 2/3-success protocols combined at a leader
reach failure rate ≤ (1/3)^r (measured against the predicted curve), and
the round cost grows linearly in the repetition count — i.e. the log(n)
factor buys the n^{−c} confidence, no more and no less.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.report import ExperimentTable
from ..apps.eccentricity import compute_diameter
from ..congest import topologies
from ..core.boosting import boost_maximum, repetitions_for


@dataclass
class E18Result:
    table: ExperimentTable
    failure_rates_decrease: bool
    rounds_linear_in_reps: bool


def run(quick: bool = True, seed: int = 0) -> E18Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    net = topologies.grid(4, 4)
    truth = net.diameter
    trials = 40 if quick else 120

    table = ExperimentTable(
        "E18",
        "Boosting (leader combines runs): failure rate vs repetitions",
        ["repetitions", "delta target", "measured failures", "predicted bound",
         "avg rounds"],
    )

    def protocol(run_seed: int):
        res = compute_diameter(net, seed=run_seed)
        return res.value, res.rounds

    failure_rates: List[float] = []
    avg_rounds: List[float] = []
    deltas = [1 / 3, 1 / 9, 1 / 27]
    for delta in deltas:
        reps = repetitions_for(delta)
        failures = 0
        rounds_total = 0.0
        for trial in range(trials):
            out = boost_maximum(protocol, delta=delta, seed=seed + trial * 100)
            failures += out.value != truth
            rounds_total += out.rounds
        rate = failures / trials
        failure_rates.append(rate)
        avg_rounds.append(rounds_total / trials)
        table.add_row(reps, delta, rate, delta, rounds_total / trials)

    decreasing = all(
        failure_rates[i] >= failure_rates[i + 1] - 0.05
        for i in range(len(failure_rates) - 1)
    ) and failure_rates[-1] <= deltas[-1] + 0.05
    # Rounds must scale ~linearly with repetitions (1, 2, 3 here).
    linear = avg_rounds[1] <= 2.4 * avg_rounds[0] and (
        avg_rounds[2] <= 3.6 * avg_rounds[0]
    )
    table.add_note(
        "the min/max combiner is sound for one-sided searches, so the "
        "failure rate is at most (per-run failure)^repetitions"
    )
    return E18Result(
        table=table,
        failure_rates_decrease=decreasing,
        rounds_linear_in_reps=linear,
    )
