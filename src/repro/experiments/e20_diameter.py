"""E20 — diameter duel: quantum √(nD) slope vs the classical Θ(n) slope.

E10 fits the quantum side alone; E20 (PR 8) runs the
:mod:`repro.apps.diameter` workload family head-to-head and fits *both*
log–log exponents on the same sweep.  Claims under test: the measured
quantum slope beats the measured classical slope (≈ 1/2 vs ≈ 1 at fixed
D), and the duel stays exact on every trial.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.diameter import crossover_n, sweep_diameter


@dataclass
class E20Result:
    """Sweep table plus the two fitted log–log slopes."""

    table: ExperimentTable
    quantum_exponent: float    # fitted quantum rounds ~ n^x; paper ≈ 1/2
    classical_exponent: float  # fitted classical rounds ~ n^x; ≈ 1
    min_accuracy: float        # worst per-n exactness across trials


def run(quick: bool = True, seed: int = 0) -> E20Result:
    """Run the duel sweep; quick mode keeps it under a minute."""
    diameter = 6
    ns = [100, 400, 1600] if quick else [100, 400, 1600, 6400]
    trials = 3 if quick else 8

    duels = sweep_diameter(ns, diameter=diameter, trials=trials, seed=seed)

    table = ExperimentTable(
        "E20",
        "Diameter duel: quantum sqrt(nD) slope vs classical Theta(n) slope",
        ["n", "D", "quantum rounds", "classical rounds",
         "bound sqrt(nD)", "bound 2n+3D", "accuracy"],
    )
    for duel in duels:
        table.add_row(
            duel.n, duel.diameter, duel.quantum_rounds,
            duel.classical_rounds, duel.quantum_bound,
            duel.classical_bound, duel.accuracy,
        )

    q_fit = fit_power_law(ns, [d.quantum_rounds for d in duels])
    c_fit = fit_power_law(ns, [float(d.classical_rounds) for d in duels])
    cross = crossover_n(duels)
    table.add_note(
        f"quantum rounds ~ n^{q_fit.exponent:.2f} (paper: 0.5, "
        f"R²={q_fit.r_squared:.3f}); classical ~ n^{c_fit.exponent:.2f} "
        f"(≈ 1); crossover at n={cross}"
    )
    return E20Result(
        table=table,
        quantum_exponent=q_fit.exponent,
        classical_exponent=c_fit.exponent,
        min_accuracy=min(d.accuracy for d in duels),
    )
