"""E13 — Corollary 26: girth computation, quantum vs classical.

Claims under test: correct girth with probability ≥ 2/3 and one-sided
error; quantum round bounds below the classical Ω(√n) regime for small
girth; μ trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.graphtruth import girth as true_girth
from ..analysis.report import ExperimentTable
from ..apps.girth import compute_girth, quantum_girth_bound, verify_girth
from ..baselines.cycles import compute_girth_classical
from ..congest import topologies


@dataclass
class E13Result:
    table: ExperimentTable
    soundness_violations: int


def run(quick: bool = True, seed: int = 0) -> E13Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    trials = 4 if quick else 8
    table = ExperimentTable(
        "E13",
        "Girth (Corollary 26): quantum vs classical, per girth family",
        ["graph", "n", "true girth", "hit-rate", "sound", "quantum rounds",
         "classical rounds"],
    )
    violations = 0
    cases = [
        ("petersen", topologies.petersen()),
        ("girth4", topologies.known_girth(4, copies=4, tail=4)),
        ("girth6", topologies.known_girth(6, copies=3, tail=4)),
        ("girth7", topologies.known_girth(7, copies=3, tail=4)),
        ("planted-c5", topologies.planted_cycle(120, 5, seed=seed)),
        ("incidence-g8", topologies.bipartite_incidence(3)),
    ]
    for name, net in cases:
        truth = true_girth(net.graph)
        hits, sound, q_total = 0, 0, 0.0
        for trial in range(trials):
            res = compute_girth(net, seed=seed + trial)
            q_total += res.rounds
            hits += res.girth == truth
            ok = verify_girth(net, res)
            sound += ok
            if not ok:
                violations += 1
        c_girth, c_rounds = compute_girth_classical(net, seed=seed)
        table.add_row(
            name, net.n, truth, hits / trials, sound == trials,
            q_total / trials, c_rounds,
        )

    table.add_note(
        "soundness = reported girth never undershoots the truth "
        "(one-sided error, Corollary 26)"
    )
    table.add_note(
        "bounds at n=10^6, g=4: quantum "
        f"{quantum_girth_bound(10**6, 4):.0f} vs classical Ω(√n) = 1000"
    )

    # μ trade-off on one family.
    net = topologies.known_girth(9, copies=2, tail=3)
    for mu in [1.0, 0.5, 0.25]:
        res = compute_girth(net, mu=mu, seed=seed)
        table.add_note(
            f"mu={mu}: girth {res.girth} in {res.rounds} rounds, "
            f"ks tried {res.ks_tried}"
        )
    return E13Result(table=table, soundness_violations=violations)
