"""E3 — Lemma 5: parallel element distinctness scaling and walk balance.

Claims under test: b = O(⌈(k/p)^{2/3}⌉); the subset size
z = k^{2/3} p^{1/3} minimizes S + (1/√ε)(C + U/√δ).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..queries.element_distinctness import (
    expected_batches,
    find_collision,
    walk_parameters,
)
from ..queries.ledger import QueryLedger
from ..queries.oracle import StringOracle


@dataclass
class E03Result:
    table: ExperimentTable
    k_exponent: float  # fitted b ~ k^x; paper predicts x ≈ 2/3


def _avg(k: int, p: int, trials: int, seed: int):
    batches = 0.0
    found = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        values = list(rng.choice(10**9, size=k, replace=False))
        i, j = rng.choice(k, size=2, replace=False)
        values[j] = values[i]
        out = find_collision(StringOracle(values, QueryLedger(p)), rng)
        batches += out.batches_used
        found += out.found
    return batches / trials, found / trials


def _analytic_walk_cost(k: int, p: int, z: int) -> float:
    """S + (1/√ε)(C + U/√δ) in batches, for an arbitrary subset size z."""
    setup = math.ceil(z / p)
    epsilon = (z / k) ** 2
    delta = p / z
    return setup + math.sqrt(1 / epsilon) * math.sqrt(1 / delta)


def run(quick: bool = True, seed: int = 0) -> E03Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    ks = [512, 2048, 8192] if quick else [512, 2048, 8192, 32768]
    p = 8
    trials = 8 if quick else 20

    table = ExperimentTable(
        "E3",
        "Parallel element distinctness (Lemma 5): batches vs k + z balance",
        ["k", "p", "measured b", "bound (k/p)^(2/3)", "success"],
    )
    measured: List[float] = []
    for k in ks:
        avg, rate = _avg(k, p, trials, seed)
        table.add_row(k, p, avg, expected_batches(k, p), rate)
        measured.append(avg)
    fit = fit_power_law(ks, measured)
    table.add_note(
        f"fitted b ~ k^{fit.exponent:.2f} (paper: k^(2/3)), R²={fit.r_squared:.3f}"
    )

    # Ablation: cost of the walk as z moves off the balanced choice.
    k = 4096
    z_star, _, _ = walk_parameters(k, p)
    costs = {}
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0]:
        z = max(p + 1, min(k // 2, int(z_star * factor)))
        costs[factor] = _analytic_walk_cost(k, p, z)
    balanced = costs[1.0]
    assert all(balanced <= cost * 1.35 for cost in costs.values())
    table.add_note(
        "z-balance ablation at k=4096: cost(z*·f) for f=0.25/0.5/1/2/4 = "
        + "/".join(f"{costs[f]:.0f}" for f in [0.25, 0.5, 1.0, 2.0, 4.0])
        + " (minimum at the paper's z* up to rounding)"
    )
    return E03Result(table=table, k_exponent=fit.exponent)
