"""E19 — resilience: round overhead to keep outputs intact under loss.

The paper's round bounds (Lemma 7, Theorem 8, Corollary 9) assume a
perfectly synchronous, lossless network.  This experiment injects
Bernoulli message loss through :mod:`repro.faults` and measures what the
assumption hides: how many extra physical rounds the reliable-link
resilience layer (ack/retransmission, timeouts with backoff, an
α-synchronizer) charges so that the paper's CONGEST workhorses — BFS
tree construction, convergecast aggregation, leader election — still
produce their exact lossless outputs at loss probability p.

Also reported: the Lemma 7 state-transfer fidelity decay at each p and
the repetition count the leader must schedule (via the boosting
machinery) to restore 99% confidence — quantum registers cannot be
retransmitted from a local copy, so repetition is the only remedy.

Claims under test: with p = 0 the fault-injecting engine is
byte-for-byte the plain engine (rounds, outputs, traffic stats); with
p ∈ {0.01, 0.05, 0.1} every protected algorithm still reaches its exact
faultless output, at a measured round overhead that is reported per p.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.report import ExperimentTable
from ..congest import topologies
from ..congest.algorithms.aggregate import aggregate_single
from ..congest.algorithms.bfs import BFSEchoProgram, bfs_with_echo
from ..congest.engine import run_program
from ..faults import (
    BernoulliLoss,
    NoFaults,
    reamplified_transfer,
    resilient_bfs,
    resilient_convergecast,
    resilient_leader,
    run_with_faults,
)
from ..parallel.seeds import derive_seed

#: Convergecast value domain (fits comfortably next to the resilience
#: frame header within the default CONGEST bandwidth).
VALUE_DOMAIN = 256


@dataclass
class E19Result:
    """Outcome of the resilience sweep."""

    table: ExperimentTable
    zero_loss_identical: bool
    all_correct: bool
    overheads: Dict[float, float]


def _zero_loss_identity(network, root: int, seed: int) -> bool:
    """p = 0 through the fault engine must equal the plain engine exactly."""
    plain = run_program(
        network,
        {v: BFSEchoProgram(v, root) for v in network.nodes()},
        seed=seed,
    )
    faulty, _, _ = run_with_faults(
        network,
        {v: BFSEchoProgram(v, root) for v in network.nodes()},
        fault_model=NoFaults(),
        seed=seed,
    )
    return (
        plain.rounds == faulty.rounds
        and plain.outputs == faulty.outputs
        and plain.stats == faulty.stats
    )


def run(quick: bool = True, seed: int = 0) -> E19Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    net = topologies.grid(4, 4) if quick else topologies.grid(5, 5)
    root = 0
    losses = [0.0, 0.01, 0.05, 0.1] if quick else [0.0, 0.01, 0.02, 0.05, 0.1]

    identity = _zero_loss_identity(net, root, seed)

    # Faultless baselines: what the paper's model charges.
    tree = bfs_with_echo(net, root, seed=seed)
    truth_dist = net.distances_from(root)
    truth_ecc = net.eccentricities[root]
    values = {v: (7 * v + 3) % VALUE_DOMAIN for v in net.nodes()}
    truth_agg = max(values.values())
    _, conv_baseline = aggregate_single(
        net, tree, values, max, VALUE_DOMAIN, seed=seed
    )

    table = ExperimentTable(
        "E19",
        "Resilience under Bernoulli loss: rounds to keep outputs intact",
        ["loss p", "bfs rounds", "bfs x", "cast rounds", "cast x",
         "leader rounds", "dropped", "correct", "transfer reps"],
    )

    all_correct = True
    overheads: Dict[float, float] = {}
    for i, p in enumerate(losses):
        model = BernoulliLoss(p)
        # One independent fault stream per (root seed, sweep point,
        # algorithm) — derive_seed replaces the old `seed * 1000 + i`
        # (+500/+900 offsets) arithmetic, whose streams collided across
        # adjacent root seeds.
        bfs_res, bfs_run = resilient_bfs(
            net, root, fault_model=model, seed=seed,
            fault_seed=derive_seed(seed, "E19", "bfs", i),
        )
        bfs_ok = (
            bfs_res.dist == truth_dist and bfs_res.eccentricity == truth_ecc
        )

        agg, conv_run = resilient_convergecast(
            net, tree, values, max, VALUE_DOMAIN,
            fault_model=BernoulliLoss(p),
            seed=seed, fault_seed=derive_seed(seed, "E19", "convergecast", i),
        )
        conv_ok = agg == truth_agg

        leader, leader_run = resilient_leader(
            net, fault_model=BernoulliLoss(p),
            seed=seed, fault_seed=derive_seed(seed, "E19", "leader", i),
        )
        leader_ok = leader == net.n - 1

        transfer = reamplified_transfer(
            net, tree, register_value=0x5A5A, q_bits=32,
            loss_p=p, delta=0.01, seed=seed,
        )

        correct = bfs_ok and conv_ok and leader_ok
        all_correct = all_correct and correct
        dropped = (
            bfs_run.fault_stats.dropped
            + conv_run.fault_stats.dropped
            + leader_run.fault_stats.dropped
        )
        overheads[p] = bfs_res.rounds / tree.rounds
        table.add_row(
            p,
            bfs_res.rounds,
            bfs_res.rounds / tree.rounds,
            conv_run.rounds,
            conv_run.rounds / max(conv_baseline, 1),
            leader_run.rounds,
            dropped,
            correct,
            transfer.repetitions,
        )

    table.add_note(
        f"faultless baselines: bfs {tree.rounds} rounds, convergecast "
        f"{conv_baseline} rounds; overhead columns are physical rounds "
        f"over these"
    )
    table.add_note(
        "p=0 through the fault-injecting engine is byte-for-byte the "
        f"plain engine: {'yes' if identity else 'NO'}"
    )
    table.add_note(
        "transfer reps: Lemma 7 state-transfer repetitions restoring 99% "
        "confidence via the boosting combiner (registers cannot be "
        "retransmitted — no cloning)"
    )
    return E19Result(
        table=table,
        zero_loss_identical=identity,
        all_correct=all_correct,
        overheads=overheads,
    )
