"""E7 — Lemma 10/11: meeting scheduling, quantum vs classical.

Claims under test: quantum rounds Õ(√(kD) + D) (fitted √k growth) against
the classical Θ(k/log n + D) streaming baseline; crossover in k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.meeting import quantum_round_bound, schedule_meeting
from ..baselines.streaming import classical_meeting
from ..congest import topologies


@dataclass
class E07Result:
    table: ExperimentTable
    k_exponent: float  # fitted quantum rounds ~ k^x; paper ≈ 1/2
    crossover_k: Optional[int]


def run(quick: bool = True, seed: int = 0) -> E07Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    distance = 6
    net = topologies.path_with_endpoints(distance)
    ks = [256, 1024, 4096, 16384] if quick else [256, 1024, 4096, 16384, 65536]
    trials = 5 if quick else 12

    table = ExperimentTable(
        "E7",
        "Meeting scheduling (Lemma 10): quantum vs classical rounds",
        ["k", "D", "quantum rounds", "bound sqrt(kD)+D", "classical rounds",
         "quantum wins", "accuracy"],
    )
    quantum_rounds: List[float] = []
    crossover = None
    for k in ks:
        q_total, correct = 0.0, 0
        c_rounds = None
        for trial in range(trials):
            rng = np.random.default_rng(seed + trial)
            cal = {
                v: [int(rng.random() < 0.5) for _ in range(k)]
                for v in net.nodes()
            }
            res = schedule_meeting(net, cal, seed=seed + trial)
            q_total += res.rounds
            correct += res.correct_against(cal)
            if c_rounds is None:
                c_rounds = classical_meeting(net, cal, seed=seed)[2]
        avg_q = q_total / trials
        wins = avg_q < c_rounds
        if wins and crossover is None:
            crossover = k
        table.add_row(
            k, distance, avg_q, quantum_round_bound(k, distance, net.n),
            c_rounds, wins, correct / trials,
        )
        quantum_rounds.append(avg_q)

    fit = fit_power_law(ks, quantum_rounds)
    table.add_note(
        f"fitted quantum rounds ~ k^{fit.exponent:.2f} (paper: k^0.5), "
        f"R²={fit.r_squared:.3f}; classical grows linearly in k"
    )

    # D sweep at fixed k: the √(kD) + D shape in the other variable.
    k = 4096
    for d in [2, 8, 32]:
        net_d = topologies.path_with_endpoints(d)
        rng = np.random.default_rng(seed)
        cal = {v: [int(rng.random() < 0.5) for _ in range(k)] for v in net_d.nodes()}
        res = schedule_meeting(net_d, cal, seed=seed)
        c_rounds = classical_meeting(net_d, cal, seed=seed)[2]
        table.add_row(k, d, res.rounds, quantum_round_bound(k, d, net_d.n),
                      c_rounds, res.rounds < c_rounds, 1.0)
    table.add_note("last rows sweep D at k=4096")
    return E07Result(table=table, k_exponent=fit.exponent, crossover_k=crossover)
