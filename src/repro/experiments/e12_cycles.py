"""E12 — Lemmas 23–25: bounded-length cycle detection, quantum vs classical.

Claims under test: quantum rounds ~ (kn)^{1/2 − 1/(4⌈k/2⌉+2)} (sublinear-
in-√(kn) fit) against the classical sampling baseline ~ n^{1 − 1/Θ(k)};
the β balancing ablation; detection reliability ≥ 2/3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.cycles import (
    balanced_beta,
    detect_cycle,
    detect_cycle_clustered,
    quantum_cycle_bound,
)
from ..baselines.cycles import classical_cycle_bound, detect_cycle_classical
from ..congest import topologies


@dataclass
class E12Result:
    table: ExperimentTable
    n_exponent: float  # fitted quantum rounds ~ n^x


def run(quick: bool = True, seed: int = 0) -> E12Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    k = 6
    girth = 5
    ns = [100, 200, 400] if quick else [100, 200, 400, 800]
    trials = 4 if quick else 8

    table = ExperimentTable(
        "E12",
        "Cycle detection (Lemma 23/25): quantum vs classical rounds",
        ["n", "k", "quantum rounds", "bound (kn)^(1/2-1/Θ(k))",
         "classical rounds", "hit-rate q", "hit-rate c"],
    )
    q_rounds: List[float] = []
    for n in ns:
        net = topologies.planted_cycle(n, girth, seed=seed)
        q_total, q_hits, c_total, c_hits = 0.0, 0, 0.0, 0
        for trial in range(trials):
            q = detect_cycle(net, k, seed=seed + trial)
            q_total += q.rounds
            q_hits += q.length == girth
            c = detect_cycle_classical(net, k, seed=seed + trial)
            c_total += c.rounds
            c_hits += c.length == girth
        table.add_row(
            n, k, q_total / trials, quantum_cycle_bound(n, k),
            c_total / trials, q_hits / trials, c_hits / trials,
        )
        q_rounds.append(q_total / trials)

    fit = fit_power_law(ns, q_rounds)
    table.add_note(
        f"fitted quantum rounds ~ n^{fit.exponent:.2f} "
        f"(bound exponent {0.5 - 1/(4*(k//2)+2):.3f}), R²={fit.r_squared:.3f}"
    )
    table.add_note(
        "bound comparison at n=10^6: quantum "
        f"{quantum_cycle_bound(10**6, k):.0f} vs classical "
        f"{classical_cycle_bound(10**6, k):.0f}"
    )

    # β ablation: the balanced choice vs off-balance settings.
    net = topologies.planted_cycle(200, girth, seed=seed + 5)
    beta_star = balanced_beta(net.n, net.diameter, k)
    costs = {}
    for factor, label in [(0.5, "β*/2"), (1.0, "β*"), (2.0, "2β*")]:
        beta = min(0.95, beta_star * factor)
        res = detect_cycle(net, k, seed=seed, beta=beta)
        costs[label] = res.rounds
    table.add_note(
        "β ablation at n=200: rounds for β*/2, β*, 2β* = "
        + ", ".join(f"{costs[label]}" for label in ["β*/2", "β*", "2β*"])
    )

    # Lemma 25 clustered variant sanity.
    res = detect_cycle_clustered(net, k, seed=seed)
    table.add_note(
        f"clustered (Lemma 25) on n=200: found length {res.length}, "
        f"{res.rounds} rounds ({res.detail.get('colors', '?')} colors)"
    )
    return E12Result(table=table, n_exponent=fit.exponent)
