"""E23 — amplitude sketches: Theorem 1 space–accuracy tradeoff.

The sketching view of the paper's framework (DESIGN.md §6k): a sketch is
a bank of ``m`` single-qubit phase accumulators, inserts are ``Rz``
rotations at ``k`` hashed buckets, and a query reads interference
overlap against the item's reference phases.  Theorem 1's tradeoff is
that ``m ≍ log(1/α)`` qubits buy error ``α``: with hashing, a
non-member's overlap deviates from its empty-sketch baseline only
through bucket collisions, whose mass shrinks as ``m`` grows at fixed
load.  E23 measures exactly that:

* **accuracy axis** — fixed insert load ``N``, a ladder of widths ``m``;
  α(m) = mean |overlap − baseline| over non-member probes must be
  non-increasing along the ladder and strictly smaller at the top than
  at the bottom;
* **fidelity-level axis** — at overlapping widths (``m ≤ 10``) the exact
  statevector backend and the stochastic phase-vector emulation must
  agree: raw overlaps within 1e-9 and *decision-level outputs*
  (membership verdicts, Q-Count estimates) bit-identical — the
  emulation's correctness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.report import ExperimentTable
from ..apps.sketches import (
    AmplitudeSketch,
    QCount,
    SketchSpec,
    theorem1_min_qubits,
)


@dataclass
class E23Result:
    """The width ladder plus the exact-vs-emulated agreement verdict."""

    table: ExperimentTable
    alphas: Dict[int, float]        # m -> measured non-member error α(m)
    alpha_non_increasing: bool      # α never rises along the ladder
    alpha_shrinks: bool             # α strictly smaller at top than bottom
    backend_agreement: bool         # decisions bit-identical on overlap m
    max_backend_delta: float        # worst raw-overlap gap, exact vs emul

    @property
    def tradeoff_holds(self) -> bool:
        return self.alpha_non_increasing and self.alpha_shrinks


def _keys(prefix: str, count: int) -> List[str]:
    return [f"{prefix}-{i}" for i in range(count)]


def _alpha_at(
    m: int, inserts: int, probes: int, seed: int, trials: int = 1
) -> float:
    """Mean non-member overlap deviation from baseline at width ``m``.

    Averaged over ``trials`` independent hash families (consecutive
    seeds): a single family's collision pattern is lumpy enough to make
    adjacent ladder rungs swap places; the family-averaged error is the
    quantity Theorem 1 speaks about.
    """
    total = 0.0
    for trial in range(trials):
        sk = AmplitudeSketch(
            SketchSpec(
                family="qcount", m=m, k=3, seed=seed + trial,
                backend="emulated",
            )
        )
        for x in _keys("member", inserts):
            sk.insert(x)
        for y in _keys("probe", probes):
            total += abs(sk.query(y) - sk.baseline_overlap(y))
    return total / (probes * trials)


def _backend_agreement(
    table: ExperimentTable, inserts: int, probes: int, seed: int
) -> tuple:
    """Exact vs emulated on overlapping widths: the bit-identity oracle."""
    agree = True
    worst = 0.0
    for m in (8, 10):
        pair = [
            QCount(m=m, k=3, seed=seed, backend=backend)
            for backend in ("exact", "emulated")
        ]
        members = _keys("member", inserts)
        for sk in pair:
            for x in members:
                sk.insert(x)
        ex, em = pair
        delta = 0.0
        decisions_ok = True
        for y in members + _keys("probe", probes):
            delta = max(delta, abs(ex.query(y) - em.query(y)))
            if ex.contains(y) != em.contains(y):
                decisions_ok = False
            if ex.estimate(y) != em.estimate(y):
                decisions_ok = False
        agree = agree and decisions_ok and delta <= 1e-9
        worst = max(worst, delta)
        table.add_row(
            "fidelity", f"m={m}", 0,
            f"max |Δoverlap|={delta:.2e}",
            f"decisions identical={decisions_ok}",
        )
    return agree, worst


def run(quick: bool = True, seed: int = 0) -> E23Result:
    """Run the width ladder and the backend-agreement check."""
    table = ExperimentTable(
        "E23",
        "Amplitude sketches: space-accuracy tradeoff and fidelity levels",
        ["axis", "point", "rounds", "detail", "verdict"],
    )

    ladder = [8, 16, 32, 64] if quick else [8, 16, 32, 64, 128, 256]
    inserts = 8
    probes = 64 if quick else 128
    trials = 3 if quick else 5

    alphas: Dict[int, float] = {}
    for m in ladder:
        alpha = _alpha_at(m, inserts, probes, seed, trials=trials)
        alphas[m] = alpha
        predicted = theorem1_min_qubits(max(alpha, 1e-12))
        table.add_row(
            "accuracy", f"m={m}", 0,
            f"alpha={alpha:.4f} (N={inserts}, Q={probes}, "
            f"families={trials})",
            f"Theorem 1 min qubits for this alpha: {predicted}",
        )

    levels = [alphas[m] for m in ladder]
    non_increasing = all(a >= b for a, b in zip(levels, levels[1:]))
    shrinks = levels[-1] < levels[0]
    table.add_note(
        f"alpha ladder {['%.4f' % a for a in levels]}: "
        f"non-increasing={non_increasing}, top<bottom={shrinks}"
    )

    agree, worst = _backend_agreement(
        table, inserts=3, probes=probes, seed=seed
    )
    table.add_note(
        f"exact vs emulated on m in (8, 10): max raw-overlap gap "
        f"{worst:.2e}, decision-level bit-identity={agree}"
    )

    return E23Result(
        table=table,
        alphas=alphas,
        alpha_non_increasing=non_increasing,
        alpha_shrinks=shrinks,
        backend_agreement=agree,
        max_backend_delta=worst,
    )
