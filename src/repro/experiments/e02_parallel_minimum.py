"""E2 — Lemma 3: parallel minimum finding scaling.

Claims under test: b = O(⌈√(k/p)⌉), and with multiplicity ℓ of the
minimum, b = O(⌈√(k/(ℓp))⌉).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..queries.ledger import QueryLedger
from ..queries.minimum import expected_batches, find_minimum
from ..queries.oracle import StringOracle


@dataclass
class E02Result:
    table: ExperimentTable
    k_exponent: float  # fitted b ~ k^x; paper predicts x ≈ 1/2


def _avg(k: int, p: int, multiplicity: int, trials: int, seed: int):
    batches = 0.0
    correct = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        values = list(rng.integers(100, 10**6, size=k))
        plant = rng.choice(k, size=multiplicity, replace=False)
        for i in plant:
            values[i] = 1
        out = find_minimum(
            StringOracle(values, QueryLedger(p)), rng, multiplicity=multiplicity
        )
        batches += out.batches_used
        correct += out.value == 1
    return batches / trials, correct / trials


def run(quick: bool = True, seed: int = 0) -> E02Result:
    """Run the experiment sweep; quick mode keeps it under a minute."""
    ks = [256, 1024, 4096] if quick else [256, 1024, 4096, 16384]
    p = 16
    trials = 10 if quick else 25

    table = ExperimentTable(
        "E2",
        "Parallel minimum finding (Lemma 3): batches vs k, p, multiplicity",
        ["k", "p", "multiplicity", "measured b", "bound sqrt(k/(l*p))", "success"],
    )
    measured: List[float] = []
    for k in ks:
        avg, rate = _avg(k, p, 1, trials, seed)
        table.add_row(k, p, 1, avg, expected_batches(k, p, 1), rate)
        measured.append(avg)
    fit = fit_power_law(ks, measured)
    table.add_note(
        f"fitted b ~ k^{fit.exponent:.2f} (paper: k^0.5), R²={fit.r_squared:.3f}"
    )

    k = ks[-1]
    for ell in [1, 16, 64]:
        avg, rate = _avg(k, p, ell, trials, seed + 999)
        table.add_row(k, p, ell, avg, expected_batches(k, p, ell), rate)
    table.add_note("multiplicity rows: budget shrinks like 1/sqrt(l)")
    return E02Result(table=table, k_exponent=fit.exponent)
