"""E21 — CONGEST-CLIQUE APSP: Õ(n^{1/4}) quantum vs Õ(n^{1/3}) classical.

The PR 8 communication-model layer's flagship experiment.  Sweeps
:func:`repro.apps.apsp.sweep_apsp` over n, fits both charged round
columns on a log–log scale (expect slopes ≈ 1/4 and ≈ 1/3 plus a small
log-factor drift), and — at the sizes where the engine harness runs —
checks that the row-broadcast clique algorithm's APSP output matches
ground truth, i.e. the all-pairs logical links really deliver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis.fitting import fit_power_law
from ..analysis.report import ExperimentTable
from ..apps.apsp import sweep_apsp


@dataclass
class E21Result:
    """Sweep table, the two fitted slopes, and engine validation status."""

    table: ExperimentTable
    quantum_exponent: float    # charged rounds ~ n^x; [IL19] ≈ 1/4
    classical_exponent: float  # charged rounds ~ n^x; [CKK+15] ≈ 1/3
    all_validated: bool        # every engine-harness run exact


def run(quick: bool = True, seed: int = 0) -> E21Result:
    """Run the APSP sweep; quick mode keeps it well under a minute."""
    ns = [16, 32, 64, 256, 1024] if quick else [16, 32, 64, 256, 1024, 4096]

    duels = sweep_apsp(ns, seed=seed)

    table = ExperimentTable(
        "E21",
        "CONGEST-CLIQUE APSP: quantum n^(1/4) vs classical n^(1/3) rounds",
        ["n", "quantum rounds", "classical rounds",
         "engine rounds", "validated"],
    )
    for duel in duels:
        table.add_row(
            duel.n, duel.quantum_rounds, duel.classical_rounds,
            duel.engine_rounds if duel.engine_rounds is not None else "-",
            duel.correct if duel.correct is not None else "-",
        )

    # Õ hides the log factor; divide it out before fitting so the slope
    # is the polynomial exponent (at these n the raw fit drifts ≈ +0.2).
    logs = [math.ceil(math.log2(max(n, 2))) for n in ns]
    q_fit = fit_power_law(
        ns, [d.quantum_rounds / lg for d, lg in zip(duels, logs)]
    )
    c_fit = fit_power_law(
        ns, [d.classical_rounds / lg for d, lg in zip(duels, logs)]
    )
    validated = [d for d in duels if d.correct is not None]
    all_ok = bool(validated) and all(d.correct for d in validated)
    table.add_note(
        f"quantum rounds ~ n^{q_fit.exponent:.2f}·log n ([IL19]: 0.25, "
        f"R²={q_fit.r_squared:.3f}); classical ~ n^{c_fit.exponent:.2f}"
        f"·log n ([CKK+15]: 0.33); engine harness validated at "
        f"{len(validated)} sizes"
    )
    return E21Result(
        table=table,
        quantum_exponent=q_fit.exponent,
        classical_exponent=c_fit.exponent,
        all_validated=all_ok,
    )
