"""Programmatic verification of the reproduction criteria.

The pytest-benchmark wrappers under ``benchmarks/`` assert one criterion
per experiment; this module exposes the same checks as plain callables so
they can run inside the test suite, a CI gate, or a notebook without the
benchmark harness.

All entrypoints take one frozen :class:`RunRequest` describing *what* to
run (experiment ids, quick/full, seed) and *how* (worker ``jobs``,
per-task ``timeout``/``retries``, ``checkpoint`` resume file, merged
``jsonl`` trace) — the ``--jobs/--resume/--jsonl`` plumbing exists here
exactly once and the CLI, the parallel sweep, and the test suite all pass
through it:

* :func:`run_experiment` — run experiments, no criteria.
* :func:`run_instrumented` — run one experiment under the observability
  spine (:mod:`repro.obs`); ``python -m repro trace`` is a thin CLI over
  it.
* :func:`verify_experiment` / :func:`verify_all` / :func:`verify_sweep`
  — run and evaluate reproduction criteria, serial or fanned across
  worker processes.

The historical flat signatures (``verify_experiment("E7", quick, seed)``,
``verify_all(quick=..., only=..., jobs=...)``) survive as thin
deprecation shims that build a :class:`RunRequest` internally and warn;
results are bit-identical either way.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..obs import JSONLSink, MemorySink, MetricsSink, Recorder, install
from . import ALL_EXPERIMENTS


@dataclass
class Verdict:
    """Outcome of one experiment's reproduction check."""

    experiment: str
    passed: bool
    detail: str


#: criterion name -> (experiment id, check on the result object)
CRITERIA: Dict[str, Callable] = {
    "E1": lambda r: (-0.8 <= r.p_exponent <= -0.25,
                     f"b ~ p^{r.p_exponent:.2f} (want ≈ -0.5)"),
    "E2": lambda r: (0.3 <= r.k_exponent <= 0.75,
                     f"b ~ k^{r.k_exponent:.2f} (want ≈ 0.5)"),
    "E3": lambda r: (0.45 <= r.k_exponent <= 0.9,
                     f"b ~ k^{r.k_exponent:.2f} (want ≈ 0.67)"),
    "E4": lambda r: (-1.8 <= r.eps_exponent <= -0.7,
                     f"b ~ eps^{r.eps_exponent:.2f} (want ≈ -1)"),
    "E5": lambda r: (r.max_pipelined_ratio <= 2.0,
                     f"pipelined/bound ratio {r.max_pipelined_ratio:.2f}"),
    "E6": lambda r: (r.max_engine_formula_ratio <= 5.0,
                     f"engine/formula ratio {r.max_engine_formula_ratio:.2f}"),
    "E7": lambda r: (0.3 <= r.k_exponent <= 0.7 and r.crossover_k is not None,
                     f"rounds ~ k^{r.k_exponent:.2f}, crossover at k={r.crossover_k}"),
    "E8": lambda r: (0.45 <= r.k_exponent <= 0.9,
                     f"rounds ~ k^{r.k_exponent:.2f} (want ≈ 0.67)"),
    "E9": lambda r: (r.quantum_k_exponent <= 0.25
                     and r.classical_k_exponent >= 0.75 and r.zero_error,
                     f"q ~ k^{r.quantum_k_exponent:.2f}, "
                     f"c ~ k^{r.classical_k_exponent:.2f}, "
                     f"zero-error={r.zero_error}"),
    "E10": lambda r: (0.3 <= r.n_exponent <= 0.7,
                      f"rounds ~ n^{r.n_exponent:.2f} (want ≈ 0.5)"),
    "E11": lambda r: (-1.8 <= r.eps_exponent <= -0.5,
                      f"rounds ~ eps^{r.eps_exponent:.2f} (want ≈ -1)"),
    "E12": lambda r: (0.15 <= r.n_exponent <= 0.75,
                      f"rounds ~ n^{r.n_exponent:.2f} (bound exponent ≈ 0.43)"),
    "E13": lambda r: (r.soundness_violations == 0,
                      f"{r.soundness_violations} soundness violations"),
    "E14": lambda r: (-0.8 <= r.p_exponent <= -0.25,
                      f"rounds ~ p^{r.p_exponent:.2f} (want ≈ -0.5)"),
    "E15": lambda r: (r.all_reductions_sound, "reductions sound"),
    "E16": lambda r: (r.all_sound and r.quantum_below_classical,
                      f"sound={r.all_sound}, quantum<classical="
                      f"{r.quantum_below_classical}"),
    "E17": lambda r: (r.local_exact and r.no_false_positives,
                      f"local exact={r.local_exact}, "
                      f"one-sided={r.no_false_positives}"),
    "E18": lambda r: (r.failure_rates_decrease and r.rounds_linear_in_reps,
                      f"failures decrease={r.failure_rates_decrease}, "
                      f"linear rounds={r.rounds_linear_in_reps}"),
    "E19": lambda r: (r.zero_loss_identical and r.all_correct
                      and all(x >= 1.0 for x in r.overheads.values()),
                      f"p=0 identical={r.zero_loss_identical}, "
                      f"outputs intact={r.all_correct}, overhead at max p "
                      f"= {max(r.overheads.values()):.1f}x"),
    "E20": lambda r: (r.quantum_exponent < r.classical_exponent
                      and 0.3 <= r.quantum_exponent <= 0.7
                      and r.classical_exponent >= 0.8
                      and r.min_accuracy == 1.0,
                      f"q ~ n^{r.quantum_exponent:.2f} < "
                      f"c ~ n^{r.classical_exponent:.2f}, "
                      f"accuracy={r.min_accuracy:.2f}"),
    "E21": lambda r: (r.quantum_exponent < r.classical_exponent
                      and 0.15 <= r.quantum_exponent <= 0.4
                      and 0.25 <= r.classical_exponent <= 0.5
                      and r.all_validated,
                      f"q ~ n^{r.quantum_exponent:.2f} < "
                      f"c ~ n^{r.classical_exponent:.2f}, "
                      f"engine validated={r.all_validated}"),
    "E22": lambda r: (r.rounds_crossover_n is not None
                      and r.mature_crossover_known
                      and r.near_term.latency_dominated
                      and r.break_even_exponent >= 0.2
                      and r.fidelity_monotone
                      and r.honest_cells_correct,
                      f"rounds crossover n={r.rounds_crossover_n}, "
                      f"mature wall-clock n="
                      f"{r.mature.wall_clock_crossover_n or r.mature.predicted_crossover_n}, "
                      f"near-term latency-dominated="
                      f"{r.near_term.latency_dominated}, "
                      f"f* ~ n^{r.break_even_exponent:.2f}, "
                      f"fidelity bill monotone={r.fidelity_monotone}, "
                      f"honest cells exact={r.honest_cells_correct}"),
    "E23": lambda r: (r.tradeoff_holds and r.backend_agreement
                      and r.max_backend_delta <= 1e-9,
                      f"alpha non-increasing={r.alpha_non_increasing}, "
                      f"top<bottom={r.alpha_shrinks}, exact/emulated "
                      f"decisions identical={r.backend_agreement} "
                      f"(max |Δoverlap|={r.max_backend_delta:.1e})"),
}


@dataclass(frozen=True)
class RunRequest:
    """Everything that parameterizes one experiment run or sweep, frozen.

    The canonical currency of the experiment layer::

        verify_all(RunRequest(experiments=("E10", "E11"), jobs=4,
                              checkpoint="sweep.ckpt.jsonl"))

    A request is immutable and reusable; derive variants with
    :meth:`replace` (``req.replace(seed=trial)``) instead of re-spelling
    eight keyword arguments per call.  The same object drives
    :func:`run_experiment`, :func:`run_instrumented`,
    :func:`verify_experiment`, :func:`verify_all`, and the ``python -m
    repro run/trace/verify`` commands, so worker-pool and trace plumbing
    is spelled in exactly one place.

    Attributes:
        experiments: experiment ids to target, upper-cased on
            construction; ``()`` (default) targets every registered
            experiment.  A bare string is accepted and treated as one id.
        quick: quick sweeps (default) vs full sweeps.
        seed: root seed, forwarded verbatim to every experiment.
        jobs: worker processes for verification sweeps (1 = in-process).
        timeout: per-experiment wall-clock budget in seconds.
        retries: re-attempts per experiment after a failure or timeout.
        checkpoint: JSONL checkpoint path for resumable sweeps.
        jsonl: when set, run instrumented and merge every event into one
            ``repro-trace/1`` stream at this path.
        keep_events: retain raw event objects on instrumented runs.
    """

    experiments: Tuple[str, ...] = ()
    quick: bool = True
    seed: int = 0
    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    checkpoint: Optional[str] = None
    jsonl: Optional[str] = None
    keep_events: bool = False

    def __post_init__(self):
        exps = self.experiments
        if isinstance(exps, str):
            exps = (exps,)
        object.__setattr__(
            self, "experiments", tuple(e.upper() for e in exps)
        )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    def replace(self, **changes) -> "RunRequest":
        """A copy with the given fields swapped (sweep-friendly)."""
        return dataclasses.replace(self, **changes)

    @property
    def targets(self) -> List[str]:
        """The validated experiment ids this request names, in order."""
        if not self.experiments:
            return list(ALL_EXPERIMENTS)
        unknown = [e for e in self.experiments if e not in ALL_EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiment(s) {unknown}; "
                f"available: {list(ALL_EXPERIMENTS)}"
            )
        return list(self.experiments)

    def single_target(self) -> str:
        """The one experiment id, for single-experiment entrypoints."""
        targets = self.targets
        if len(targets) != 1:
            raise ValueError(
                f"this entrypoint takes exactly one experiment, the "
                f"request names {len(targets)}: {targets}"
            )
        return targets[0]


def _legacy_request(fn: str, **fields) -> RunRequest:
    """Build a RunRequest from a deprecated flat call and warn once per site."""
    warnings.warn(
        f"{fn} with flat parameters is deprecated; pass a "
        f"RunRequest(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return RunRequest(**fields)


@dataclass
class InstrumentedRun:
    """One experiment execution plus its unified event-stream products."""

    experiment: str
    result: object
    metrics: MetricsSink
    events: Optional[List[object]]  # raw events when keep_events=True
    jsonl_path: Optional[str]


def run_experiment(
    request: Union[RunRequest, str],
    quick: Optional[bool] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Run the requested experiments; no criteria are evaluated.

    Canonical form: ``run_experiment(RunRequest(...))`` returns
    ``{experiment id: result object}`` in target order.  The flat form
    ``run_experiment("E7", quick=..., seed=...)`` is a deprecation shim.
    """
    if not isinstance(request, RunRequest):
        request = _legacy_request(
            "run_experiment",
            experiments=(request,),
            quick=True if quick is None else quick,
            seed=0 if seed is None else seed,
        )
    elif quick is not None or seed is not None:
        raise TypeError(
            "run_experiment: quick/seed ride on the RunRequest; "
            "use request.replace(...)"
        )
    return {
        name: ALL_EXPERIMENTS[name].run(quick=request.quick,
                                        seed=request.seed)
        for name in request.targets
    }


def run_instrumented(
    request: Union[RunRequest, str],
    quick: bool = True,
    seed: int = 0,
    jsonl_path: Optional[str] = None,
    keep_events: bool = False,
) -> InstrumentedRun:
    """Run one experiment with the observability spine recording.

    Canonical form: ``run_instrumented(RunRequest(experiments=("E7",),
    jsonl=..., keep_events=...))``.  The spine captures every engine
    round, fault, query batch, coalesce, and ledger charge the experiment
    triggers — however deep in the stack — in one metrics registry and
    (with ``jsonl`` set) one ``repro-trace/1`` stream.  The flat form
    ``run_instrumented("E7", quick, seed, jsonl_path, keep_events)`` is a
    deprecation shim.
    """
    if not isinstance(request, RunRequest):
        request = _legacy_request(
            "run_instrumented",
            experiments=(request,),
            quick=quick,
            seed=seed,
            jsonl=jsonl_path,
            keep_events=keep_events,
        )
    experiment = request.single_target()
    metrics = MetricsSink()
    sinks: List[object] = [metrics]
    memory = MemorySink() if request.keep_events else None
    if memory is not None:
        sinks.append(memory)
    if request.jsonl is not None:
        sinks.append(JSONLSink(request.jsonl))
    recorder = Recorder(sinks)
    try:
        with install(recorder):
            result = ALL_EXPERIMENTS[experiment].run(
                quick=request.quick, seed=request.seed
            )
    finally:
        recorder.close()
    return InstrumentedRun(
        experiment=experiment,
        result=result,
        metrics=metrics,
        events=memory.events if memory is not None else None,
        jsonl_path=request.jsonl,
    )


def _check_criterion(experiment: str) -> None:
    """Fail fast on registry drift, before any (expensive) run."""
    if experiment not in CRITERIA:
        raise KeyError(
            f"experiment {experiment!r} is registered in ALL_EXPERIMENTS "
            f"but has no reproduction criterion in CRITERIA; add one to "
            f"repro.experiments.runner.CRITERIA before verifying it"
        )


def verify_experiment(
    request: Union[RunRequest, str],
    quick: bool = True,
    seed: int = 0,
) -> Verdict:
    """Run one experiment and evaluate its reproduction criterion.

    Canonical form: ``verify_experiment(RunRequest(experiments=("E7",),
    ...))``.  Both registries are validated *before* the (possibly
    expensive) run: an experiment registered in ``ALL_EXPERIMENTS`` but
    missing from ``CRITERIA`` — the exact drift a newly added E20 would
    cause — is reported as such up front instead of surfacing as a bare
    ``KeyError`` after minutes of sweep work.  The flat form
    ``verify_experiment("E7", quick, seed)`` is a deprecation shim.
    """
    if not isinstance(request, RunRequest):
        if request not in ALL_EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {request!r}; "
                f"available: {list(ALL_EXPERIMENTS)}"
            )
        request = _legacy_request(
            "verify_experiment",
            experiments=(request,), quick=quick, seed=seed,
        )
    experiment = request.single_target()
    _check_criterion(experiment)
    result = ALL_EXPERIMENTS[experiment].run(
        quick=request.quick, seed=request.seed
    )
    passed, detail = CRITERIA[experiment](result)
    return Verdict(experiment=experiment, passed=passed, detail=detail)


def verify_sweep(request: RunRequest):
    """Run a verification sweep exactly as the request describes it.

    The one place the ``--jobs/--resume/--jsonl`` plumbing lives: serial
    in-process when nothing asks for workers, timeouts, checkpoints, or a
    merged trace; otherwise fanned out through
    :func:`repro.parallel.verify.verify_parallel` (verdicts bit-identical
    to serial, in the same order).

    Returns a :class:`repro.parallel.verify.VerifySweep`.
    """
    targets = request.targets
    for name in targets:
        _check_criterion(name)
    from ..parallel.verify import VerifySweep, verify_parallel

    if (
        request.jobs == 1
        and request.timeout is None
        and request.checkpoint is None
        and request.jsonl is None
    ):
        verdicts = [
            verify_experiment(request.replace(experiments=(name,)))
            for name in targets
        ]
        return VerifySweep(verdicts=verdicts, metrics=None, jsonl_path=None)
    return verify_parallel(
        quick=request.quick,
        seed=request.seed,
        only=targets,
        jobs=request.jobs,
        timeout=request.timeout,
        retries=request.retries,
        checkpoint=request.checkpoint,
        jsonl_path=request.jsonl,
    )


def verify_all(
    request: Optional[RunRequest] = None,
    quick: bool = True,
    seed: int = 0,
    only: Optional[List[str]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint: Optional[str] = None,
) -> List[Verdict]:
    """Run every requested experiment and check its reproduction criterion.

    Canonical form: ``verify_all(RunRequest(...))`` — a thin list-valued
    view over :func:`verify_sweep`.  The flat keyword form
    (``verify_all(quick=..., only=..., jobs=...)``) is a deprecation
    shim.  Failed or timed-out tasks come back as
    :class:`~repro.parallel.executor.TaskFailure` entries in their slots
    instead of killing the sweep.
    """
    if request is None:
        request = _legacy_request(
            "verify_all",
            experiments=tuple(only) if only is not None else (),
            quick=quick,
            seed=seed,
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            checkpoint=checkpoint,
        )
    return verify_sweep(request).verdicts
