"""Programmatic verification of the reproduction criteria.

The pytest-benchmark wrappers under ``benchmarks/`` assert one criterion
per experiment; this module exposes the same checks as plain callables so
they can run inside the test suite, a CI gate, or a notebook without the
benchmark harness.

:func:`run_instrumented` runs any experiment under the observability
spine (:mod:`repro.obs`): it installs a recorder for the duration of the
run, so every engine round, fault, query batch, and ledger charge the
experiment triggers — however deep in the stack — lands in one metrics
registry and (optionally) one JSONL stream.  ``python -m repro trace``
is a thin CLI over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..obs import JSONLSink, MemorySink, MetricsSink, Recorder, install
from . import ALL_EXPERIMENTS


@dataclass
class Verdict:
    """Outcome of one experiment's reproduction check."""

    experiment: str
    passed: bool
    detail: str


#: criterion name -> (experiment id, check on the result object)
CRITERIA: Dict[str, Callable] = {
    "E1": lambda r: (-0.8 <= r.p_exponent <= -0.25,
                     f"b ~ p^{r.p_exponent:.2f} (want ≈ -0.5)"),
    "E2": lambda r: (0.3 <= r.k_exponent <= 0.75,
                     f"b ~ k^{r.k_exponent:.2f} (want ≈ 0.5)"),
    "E3": lambda r: (0.45 <= r.k_exponent <= 0.9,
                     f"b ~ k^{r.k_exponent:.2f} (want ≈ 0.67)"),
    "E4": lambda r: (-1.8 <= r.eps_exponent <= -0.7,
                     f"b ~ eps^{r.eps_exponent:.2f} (want ≈ -1)"),
    "E5": lambda r: (r.max_pipelined_ratio <= 2.0,
                     f"pipelined/bound ratio {r.max_pipelined_ratio:.2f}"),
    "E6": lambda r: (r.max_engine_formula_ratio <= 5.0,
                     f"engine/formula ratio {r.max_engine_formula_ratio:.2f}"),
    "E7": lambda r: (0.3 <= r.k_exponent <= 0.7 and r.crossover_k is not None,
                     f"rounds ~ k^{r.k_exponent:.2f}, crossover at k={r.crossover_k}"),
    "E8": lambda r: (0.45 <= r.k_exponent <= 0.9,
                     f"rounds ~ k^{r.k_exponent:.2f} (want ≈ 0.67)"),
    "E9": lambda r: (r.quantum_k_exponent <= 0.25
                     and r.classical_k_exponent >= 0.75 and r.zero_error,
                     f"q ~ k^{r.quantum_k_exponent:.2f}, "
                     f"c ~ k^{r.classical_k_exponent:.2f}, "
                     f"zero-error={r.zero_error}"),
    "E10": lambda r: (0.3 <= r.n_exponent <= 0.7,
                      f"rounds ~ n^{r.n_exponent:.2f} (want ≈ 0.5)"),
    "E11": lambda r: (-1.8 <= r.eps_exponent <= -0.5,
                      f"rounds ~ eps^{r.eps_exponent:.2f} (want ≈ -1)"),
    "E12": lambda r: (0.15 <= r.n_exponent <= 0.75,
                      f"rounds ~ n^{r.n_exponent:.2f} (bound exponent ≈ 0.43)"),
    "E13": lambda r: (r.soundness_violations == 0,
                      f"{r.soundness_violations} soundness violations"),
    "E14": lambda r: (-0.8 <= r.p_exponent <= -0.25,
                      f"rounds ~ p^{r.p_exponent:.2f} (want ≈ -0.5)"),
    "E15": lambda r: (r.all_reductions_sound, "reductions sound"),
    "E16": lambda r: (r.all_sound and r.quantum_below_classical,
                      f"sound={r.all_sound}, quantum<classical="
                      f"{r.quantum_below_classical}"),
    "E17": lambda r: (r.local_exact and r.no_false_positives,
                      f"local exact={r.local_exact}, "
                      f"one-sided={r.no_false_positives}"),
    "E18": lambda r: (r.failure_rates_decrease and r.rounds_linear_in_reps,
                      f"failures decrease={r.failure_rates_decrease}, "
                      f"linear rounds={r.rounds_linear_in_reps}"),
    "E19": lambda r: (r.zero_loss_identical and r.all_correct
                      and all(x >= 1.0 for x in r.overheads.values()),
                      f"p=0 identical={r.zero_loss_identical}, "
                      f"outputs intact={r.all_correct}, overhead at max p "
                      f"= {max(r.overheads.values()):.1f}x"),
}


@dataclass
class InstrumentedRun:
    """One experiment execution plus its unified event-stream products."""

    experiment: str
    result: object
    metrics: MetricsSink
    events: Optional[List[object]]  # raw events when keep_events=True
    jsonl_path: Optional[str]


def run_instrumented(
    experiment: str,
    quick: bool = True,
    seed: int = 0,
    jsonl_path: Optional[str] = None,
    keep_events: bool = False,
) -> InstrumentedRun:
    """Run one experiment with the observability spine recording.

    Args:
        experiment: experiment id (``"E1"`` .. ``"E19"``).
        quick: forwarded to the experiment's ``run``.
        seed: forwarded to the experiment's ``run``.
        jsonl_path: when set, stream every event to this file in the
            ``repro-trace/1`` schema (:mod:`repro.obs.jsonl`).
        keep_events: when True, additionally retain the raw event objects
            (``InstrumentedRun.events``); off by default since large
            engine-mode runs can emit hundreds of thousands of events.
    """
    if experiment not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment!r}")
    metrics = MetricsSink()
    sinks: List[object] = [metrics]
    memory = MemorySink() if keep_events else None
    if memory is not None:
        sinks.append(memory)
    if jsonl_path is not None:
        sinks.append(JSONLSink(jsonl_path))
    recorder = Recorder(sinks)
    try:
        with install(recorder):
            result = ALL_EXPERIMENTS[experiment].run(quick=quick, seed=seed)
    finally:
        recorder.close()
    return InstrumentedRun(
        experiment=experiment,
        result=result,
        metrics=metrics,
        events=memory.events if memory is not None else None,
        jsonl_path=jsonl_path,
    )


def verify_experiment(
    experiment: str, quick: bool = True, seed: int = 0
) -> Verdict:
    """Run one experiment and evaluate its reproduction criterion.

    Both registries are validated *before* the (possibly expensive)
    run: an experiment registered in ``ALL_EXPERIMENTS`` but missing
    from ``CRITERIA`` — the exact drift a newly added E20 would cause —
    is reported as such up front instead of surfacing as a bare
    ``KeyError`` after minutes of sweep work.
    """
    if experiment not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment!r}; "
            f"available: {list(ALL_EXPERIMENTS)}"
        )
    if experiment not in CRITERIA:
        raise KeyError(
            f"experiment {experiment!r} is registered in ALL_EXPERIMENTS "
            f"but has no reproduction criterion in CRITERIA; add one to "
            f"repro.experiments.runner.CRITERIA before verifying it"
        )
    result = ALL_EXPERIMENTS[experiment].run(quick=quick, seed=seed)
    passed, detail = CRITERIA[experiment](result)
    return Verdict(experiment=experiment, passed=passed, detail=detail)


def verify_all(
    quick: bool = True,
    seed: int = 0,
    only: Optional[List[str]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint: Optional[str] = None,
) -> List[Verdict]:
    """Run every experiment (or ``only`` the listed ones) and check all
    reproduction criteria.

    With ``jobs > 1`` the sweep fans out across worker processes via
    :mod:`repro.parallel`; verdicts are bit-identical to the serial run
    and come back in the same order.  ``timeout``/``retries`` bound each
    task (an exhausted task yields a
    :class:`~repro.parallel.executor.TaskFailure` in its slot instead of
    killing the sweep), and ``checkpoint`` names a JSONL file that lets
    an interrupted sweep resume from its completed experiments.
    """
    targets = only if only is not None else list(ALL_EXPERIMENTS)
    if jobs == 1 and timeout is None and checkpoint is None:
        return [
            verify_experiment(name, quick=quick, seed=seed)
            for name in targets
        ]
    from ..parallel.verify import verify_parallel

    sweep = verify_parallel(
        quick=quick,
        seed=seed,
        only=targets,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        checkpoint=checkpoint,
    )
    return sweep.verdicts
