"""Round-cost formulas (Lemma 7, Theorem 8, Corollary 9) and the ledger.

The paper charges rounds in units of ⌈log2 n⌉-bit messages.  The
:class:`CostModel` evaluates the closed-form bounds against a concrete
network; the :class:`RoundLedger` accumulates charges phase by phase so
applications can report a per-phase breakdown (setup / index distribution
/ aggregation / on-the-fly computation) and benchmarks can compare each
phase to its formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..congest.network import Network
from ..obs.recorder import Recorder, current_recorder


@dataclass
class CostModel:
    """Closed-form round costs for a concrete network.

    Args:
        n: number of nodes.
        diameter: network diameter D.
        word_bits: message size unit; the paper's ⌈log2 n⌉.
    """

    n: int
    diameter: int
    word_bits: int

    @staticmethod
    def for_network(network: Network) -> "CostModel":
        return CostModel(
            n=network.n,
            diameter=max(network.diameter, 1),
            word_bits=network.log_n_bits,
        )

    def words(self, bits: int) -> int:
        """⌈q / log n⌉ — rounds to push ``bits`` over one edge."""
        return max(1, math.ceil(bits / self.word_bits))

    def index_words(self, k: int) -> int:
        """⌈log(k) / log(n)⌉ — rounds per index in [k]."""
        return self.words(max(1, math.ceil(math.log2(max(k, 2)))))

    # ------------------------------------------------------------------
    # Lemma 7
    # ------------------------------------------------------------------

    def state_distribution_rounds(self, q_bits: int, pipelined: bool = True) -> int:
        """Lemma 7: O(D + q/log n) pipelined; naive is D·⌈q/log n⌉."""
        if pipelined:
            return self.diameter + self.words(q_bits)
        return self.diameter * self.words(q_bits)

    # ------------------------------------------------------------------
    # Theorem 8 / Corollary 9
    # ------------------------------------------------------------------

    def batch_rounds(
        self, p: int, q_bits: int, k: int, alpha: int = 0
    ) -> int:
        """Per-batch cost: (D + p)·⌈q/log n⌉ + p·⌈log k/log n⌉ + α(p)."""
        return (
            (self.diameter + p) * self.words(q_bits)
            + p * self.index_words(k)
            + alpha
        )

    def framework_rounds(
        self, b: int, p: int, q_bits: int, k: int, alpha: int = 0
    ) -> int:
        """Theorem 8 / Corollary 9 total: D + b·(batch cost)."""
        return self.diameter + b * self.batch_rounds(p, q_bits, k, alpha)

    # ------------------------------------------------------------------
    # Cited subroutine costs (substitutions; see DESIGN.md §2)
    # ------------------------------------------------------------------

    def clustering_rounds(self, d: int) -> int:
        """Lemma 24 [EFFKO21]: O(d log² n)."""
        log_n = max(1, math.ceil(math.log2(max(self.n, 2))))
        return d * log_n * log_n

    def quantum_triangle_rounds(self) -> int:
        """[CFGLO22]: Õ(n^{1/5}) quantum triangle finding, charged as cited."""
        log_n = max(1, math.ceil(math.log2(max(self.n, 2))))
        return math.ceil(self.n ** 0.2) * log_n


@dataclass
class RoundLedger:
    """Accumulates charged rounds by phase.

    Every :meth:`charge` is also emitted as a ``charge`` event on the
    observability spine (:mod:`repro.obs`): the explicit ``recorder``
    field if set, otherwise the ambient recorder resolved at charge time.
    The ledger's list-of-charges semantics are unchanged — emission is a
    side channel, and the spine's charge stream matches ``self.charges``
    entry for entry (merges excepted, see :meth:`merge`).
    """

    charges: List[Tuple[str, int]] = field(default_factory=list)
    recorder: Optional[Recorder] = field(default=None, compare=False, repr=False)
    #: Communication-model tag stamped on every emitted charge event
    #: ("" for the default CONGEST model, so pre-model charge streams
    #: are byte-identical; see :class:`repro.obs.events.ChargeEvent`).
    #: The list-of-charges semantics ignore it entirely.
    model: str = field(default="", compare=False)

    def charge(self, phase: str, rounds: int) -> None:
        """Record ``rounds`` against ``phase`` and emit a charge event."""
        if rounds < 0:
            raise ValueError(f"negative round charge for phase {phase!r}")
        self.charges.append((phase, rounds))
        rec = self.recorder if self.recorder is not None else current_recorder()
        if rec.active:
            rec.charge(phase, rounds, self.model)

    @property
    def total(self) -> int:
        return sum(r for _, r in self.charges)

    def by_phase(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for phase, rounds in self.charges:
            out[phase] = out.get(phase, 0) + rounds
        return out

    def merge(
        self,
        other: "RoundLedger",
        prefix: str = "",
        on_collision: str = "add",
    ) -> None:
        """Append ``other``'s charges, phase keys prefixed by ``prefix``.

        Phase-key collisions (a prefixed incoming key equal to a phase
        already charged on this ledger) are never silent:

        * ``on_collision="add"`` (default) — the charges coexist in the
          list and :meth:`by_phase` *adds* them under the shared key,
          which is the documented aggregation rule;
        * ``on_collision="error"`` — raise :class:`ValueError` listing
          the colliding keys, for callers that rely on phase keys being
          disjoint (e.g. one-prefix-per-subprotocol reports).

        Merged charges were already validated (and already emitted on the
        spine) by ``other``'s own :meth:`charge` calls, so they are
        appended directly rather than re-charged — the event stream never
        double-counts a merge.
        """
        if on_collision not in ("add", "error"):
            raise ValueError(
                f"on_collision must be 'add' or 'error', got {on_collision!r}"
            )
        if on_collision == "error":
            existing = {phase for phase, _ in self.charges}
            colliding = sorted(
                {prefix + phase for phase, _ in other.charges} & existing
            )
            if colliding:
                raise ValueError(
                    f"phase key collision on merge: {colliding}; use "
                    f"on_collision='add' to aggregate or a distinct prefix"
                )
        for phase, rounds in other.charges:
            if rounds < 0:
                raise ValueError(f"negative round charge for phase {phase!r}")
            self.charges.append((prefix + phase, rounds))
