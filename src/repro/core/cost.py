"""Round-cost formulas (Lemma 7, Theorem 8, Corollary 9) and the ledger.

The paper charges rounds in units of ⌈log2 n⌉-bit messages.  The
:class:`CostModel` evaluates the closed-form bounds against a concrete
network; the :class:`RoundLedger` accumulates charges phase by phase so
applications can report a per-phase breakdown (setup / index distribution
/ aggregation / on-the-fly computation) and benchmarks can compare each
phase to its formula.

:class:`LinkCostModel` (PR 9) is the practicality overlay — the "Mind
the Õ" critique of Kerger et al. made chargeable: a round is not a unit,
it costs per-message latency plus serialization time plus the constant
factors the Õ hides, and quantum links are priced separately from
classical ones.  :meth:`RoundLedger.wall_clock_us` re-denominates any
ledger from rounds into microseconds, which is how the scenario matrix
(:mod:`repro.scenarios`) turns every quantum-vs-classical round duel
into a wall-clock crossover curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..congest.network import Network
from ..obs.recorder import Recorder, current_recorder


@dataclass(frozen=True)
class LinkCostModel:
    """Wall-clock price of one CONGEST message on a concrete link.

    The paper (and E20/E21) count *rounds*; Kerger et al. point out that
    a quantum CONGEST round is not the same animal as a classical one —
    entanglement distribution, transduction, and error correction all
    hide inside the Õ.  This model charges them explicitly:

        message_time_us(bits) = constant_factor
                                · (latency_us + bits / bandwidth + overhead_us)

    ``latency_us`` is the per-message propagation/handshake latency,
    ``bandwidth_bits_per_us`` the serialization rate, ``overhead_us`` a
    fixed per-message processing cost (e.g. entanglement-swap bookkeeping
    on a quantum link), and ``constant_factor`` the dimensionless
    multiplier the asymptotic analysis suppressed.  In a synchronous
    round every edge fires in parallel, so one round costs one message
    time at the round's word size.
    """

    name: str
    latency_us: float
    bandwidth_bits_per_us: float
    overhead_us: float = 0.0
    constant_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_us < 0:
            raise ValueError("latency_us must be >= 0")
        if self.bandwidth_bits_per_us <= 0:
            raise ValueError("bandwidth_bits_per_us must be > 0")
        if self.overhead_us < 0:
            raise ValueError("overhead_us must be >= 0")
        if self.constant_factor <= 0:
            raise ValueError("constant_factor must be > 0")

    def message_time_us(self, bits: int) -> float:
        """Wall-clock microseconds to push one ``bits``-bit message."""
        if bits < 0:
            raise ValueError("bits must be >= 0")
        return self.constant_factor * (
            self.latency_us + bits / self.bandwidth_bits_per_us + self.overhead_us
        )

    def round_time_us(self, word_bits: int) -> float:
        """One synchronous round at the model's word size (all edges in
        parallel ⇒ a round costs exactly one message time)."""
        return self.message_time_us(word_bits)

    def wall_clock_us(self, rounds: float, word_bits: int) -> float:
        """Total wall clock for ``rounds`` synchronous rounds."""
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        return rounds * self.round_time_us(word_bits)


#: Reference link presets for scenario sweeps.  Absolute values are
#: order-of-magnitude placeholders (a metro fiber link and a
#: repeater-based quantum link); what the crossover analysis consumes is
#: their *ratio* — the per-round premium a quantum message pays.
CLASSICAL_DATACENTER = LinkCostModel(
    name="classical-datacenter",
    latency_us=5.0,
    bandwidth_bits_per_us=10_000.0,  # ~10 Gbit/s
)
CLASSICAL_METRO = LinkCostModel(
    name="classical-metro",
    latency_us=250.0,
    bandwidth_bits_per_us=1_000.0,  # ~1 Gbit/s
)
QUANTUM_MATURE = LinkCostModel(
    name="quantum-mature",
    latency_us=250.0,
    bandwidth_bits_per_us=1.0,  # ~1 Mqubit/s effective
    overhead_us=150.0,
    constant_factor=1.0,
)
QUANTUM_OPTIMISTIC = LinkCostModel(
    name="quantum-optimistic",
    latency_us=250.0,
    bandwidth_bits_per_us=1.0,  # ~1 Mqubit/s effective
    overhead_us=100.0,
    constant_factor=10.0,
)
QUANTUM_NEAR_TERM = LinkCostModel(
    name="quantum-near-term",
    latency_us=250.0,
    bandwidth_bits_per_us=0.01,  # ~10 kqubit/s effective
    overhead_us=1_000.0,
    constant_factor=100.0,
)

LINK_PRESETS: Dict[str, LinkCostModel] = {
    m.name: m
    for m in (
        CLASSICAL_DATACENTER,
        CLASSICAL_METRO,
        QUANTUM_MATURE,
        QUANTUM_OPTIMISTIC,
        QUANTUM_NEAR_TERM,
    )
}


@dataclass
class CostModel:
    """Closed-form round costs for a concrete network.

    Args:
        n: number of nodes.
        diameter: network diameter D.
        word_bits: message size unit; the paper's ⌈log2 n⌉.
    """

    n: int
    diameter: int
    word_bits: int

    @staticmethod
    def for_network(network: Network) -> "CostModel":
        return CostModel(
            n=network.n,
            diameter=max(network.diameter, 1),
            word_bits=network.log_n_bits,
        )

    def words(self, bits: int) -> int:
        """⌈q / log n⌉ — rounds to push ``bits`` over one edge."""
        return max(1, math.ceil(bits / self.word_bits))

    def index_words(self, k: int) -> int:
        """⌈log(k) / log(n)⌉ — rounds per index in [k]."""
        return self.words(max(1, math.ceil(math.log2(max(k, 2)))))

    # ------------------------------------------------------------------
    # Lemma 7
    # ------------------------------------------------------------------

    def state_distribution_rounds(self, q_bits: int, pipelined: bool = True) -> int:
        """Lemma 7: O(D + q/log n) pipelined; naive is D·⌈q/log n⌉."""
        if pipelined:
            return self.diameter + self.words(q_bits)
        return self.diameter * self.words(q_bits)

    # ------------------------------------------------------------------
    # Theorem 8 / Corollary 9
    # ------------------------------------------------------------------

    def batch_rounds(
        self, p: int, q_bits: int, k: int, alpha: int = 0
    ) -> int:
        """Per-batch cost: (D + p)·⌈q/log n⌉ + p·⌈log k/log n⌉ + α(p)."""
        return (
            (self.diameter + p) * self.words(q_bits)
            + p * self.index_words(k)
            + alpha
        )

    def framework_rounds(
        self, b: int, p: int, q_bits: int, k: int, alpha: int = 0
    ) -> int:
        """Theorem 8 / Corollary 9 total: D + b·(batch cost)."""
        return self.diameter + b * self.batch_rounds(p, q_bits, k, alpha)

    # ------------------------------------------------------------------
    # Cited subroutine costs (substitutions; see DESIGN.md §2)
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Wall-clock re-denomination ("Mind the Õ")
    # ------------------------------------------------------------------

    def round_time_us(self, link: LinkCostModel) -> float:
        """One round of this model's ⌈log n⌉-bit words on ``link``."""
        return link.round_time_us(self.word_bits)

    def wall_clock_us(self, rounds: float, link: LinkCostModel) -> float:
        """Re-denominate a round count into microseconds on ``link``."""
        return link.wall_clock_us(rounds, self.word_bits)

    def clustering_rounds(self, d: int) -> int:
        """Lemma 24 [EFFKO21]: O(d log² n)."""
        log_n = max(1, math.ceil(math.log2(max(self.n, 2))))
        return d * log_n * log_n

    def quantum_triangle_rounds(self) -> int:
        """[CFGLO22]: Õ(n^{1/5}) quantum triangle finding, charged as cited."""
        log_n = max(1, math.ceil(math.log2(max(self.n, 2))))
        return math.ceil(self.n ** 0.2) * log_n


@dataclass
class RoundLedger:
    """Accumulates charged rounds by phase.

    Every :meth:`charge` is also emitted as a ``charge`` event on the
    observability spine (:mod:`repro.obs`): the explicit ``recorder``
    field if set, otherwise the ambient recorder resolved at charge time.
    The ledger's list-of-charges semantics are unchanged — emission is a
    side channel, and the spine's charge stream matches ``self.charges``
    entry for entry (merges excepted, see :meth:`merge`).
    """

    charges: List[Tuple[str, int]] = field(default_factory=list)
    recorder: Optional[Recorder] = field(default=None, compare=False, repr=False)
    #: Communication-model tag stamped on every emitted charge event
    #: ("" for the default CONGEST model, so pre-model charge streams
    #: are byte-identical; see :class:`repro.obs.events.ChargeEvent`).
    #: The list-of-charges semantics ignore it entirely.
    model: str = field(default="", compare=False)

    def charge(self, phase: str, rounds: int) -> None:
        """Record ``rounds`` against ``phase`` and emit a charge event."""
        if rounds < 0:
            raise ValueError(f"negative round charge for phase {phase!r}")
        self.charges.append((phase, rounds))
        rec = self.recorder if self.recorder is not None else current_recorder()
        if rec.active:
            rec.charge(phase, rounds, self.model)

    @property
    def total(self) -> int:
        return sum(r for _, r in self.charges)

    def by_phase(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for phase, rounds in self.charges:
            out[phase] = out.get(phase, 0) + rounds
        return out

    def wall_clock_us(self, link: LinkCostModel, word_bits: int) -> float:
        """Total charged rounds re-denominated into microseconds."""
        return link.wall_clock_us(self.total, word_bits)

    def wall_clock_by_phase(
        self, link: LinkCostModel, word_bits: int
    ) -> Dict[str, float]:
        """Per-phase wall-clock breakdown on ``link``."""
        return {
            phase: link.wall_clock_us(rounds, word_bits)
            for phase, rounds in self.by_phase().items()
        }

    def merge(
        self,
        other: "RoundLedger",
        prefix: str = "",
        on_collision: str = "add",
    ) -> None:
        """Append ``other``'s charges, phase keys prefixed by ``prefix``.

        Phase-key collisions (a prefixed incoming key equal to a phase
        already charged on this ledger) are never silent:

        * ``on_collision="add"`` (default) — the charges coexist in the
          list and :meth:`by_phase` *adds* them under the shared key,
          which is the documented aggregation rule;
        * ``on_collision="error"`` — raise :class:`ValueError` listing
          the colliding keys, for callers that rely on phase keys being
          disjoint (e.g. one-prefix-per-subprotocol reports).

        Merged charges were already validated (and already emitted on the
        spine) by ``other``'s own :meth:`charge` calls, so they are
        appended directly rather than re-charged — the event stream never
        double-counts a merge.
        """
        if on_collision not in ("add", "error"):
            raise ValueError(
                f"on_collision must be 'add' or 'error', got {on_collision!r}"
            )
        if on_collision == "error":
            existing = {phase for phase, _ in self.charges}
            colliding = sorted(
                {prefix + phase for phase, _ in other.charges} & existing
            )
            if colliding:
                raise ValueError(
                    f"phase key collision on merge: {colliding}; use "
                    f"on_collision='add' to aggregate or a distinct prefix"
                )
        for phase, rounds in other.charges:
            if rounds < 0:
                raise ValueError(f"negative round charge for phase {phase!r}")
            self.charges.append((prefix + phase, rounds))
