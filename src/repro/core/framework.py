"""Theorem 8 / Corollary 9: running parallel-query algorithms over CONGEST.

The central construction of the paper.  A leader runs a (b, p)-parallel-
query quantum algorithm for F; each batch of p queries j₁..j_p ∈ [k] is
served by the network:

1. the indices are distributed down the BFS tree (Lemma 7 on ⊗ᵢ|jᵢ>,
   p·⌈log k/log n⌉ + D rounds),
2. every node contributes x^{(v)}_{jᵢ} and the tree convergecasts the
   semigroup combination ⊕_v x^{(v)}_{jᵢ}, pipelined over the p values
   ((D + p)·⌈q/log n⌉ rounds), with the children's values uncomputed on
   the way back down,
3. the index distribution is reversed (uncompute).

Total: O(D + b·((D + p)·⌈q/log n⌉ + p·⌈log k/log n⌉ [+ α(p)])) rounds.

Two execution modes:

* ``formula`` — the batch cost is charged from :class:`CostModel` (exact
  paper formula); values are aggregated centrally.  Scales to large n, k.
* ``engine`` — every batch runs *real node programs*: a pipelined downcast
  of the indices, a chunked pipelined upcast of the ⊕-aggregation, and the
  two uncompute passes; rounds are measured, not assumed.  Tests assert
  engine-measured ≈ formula within constant factors.

The oracle handed to the algorithm implements
:class:`repro.queries.oracle.BatchOracle`, so every Section 2 algorithm
runs unchanged over the network.
"""

from __future__ import annotations

import dataclasses
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..congest.algorithms.aggregate import (
    downcast_steps,
    drive,
    upcast_steps,
)
from ..congest.algorithms.bfs import BFSResult, bfs_with_echo
from ..congest.algorithms.leader import elect_leader
from ..congest.csr import CSRAdjacency, csr_for, invalidate_csr
from ..congest.engine import SCHEDULES
from ..congest.errors import CongestError
from ..congest.models import CommModel, resolve_model
from ..congest.network import Network
from ..obs.recorder import Recorder, current_recorder, install
from ..queries.ledger import QueryLedger
from .cost import CostModel, RoundLedger
from .semigroup import Semigroup


@dataclass
class DistributedInput:
    """Per-node input vectors x^{(v)} ∈ A^k and the semigroup that joins them."""

    vectors: Dict[int, List[int]]
    semigroup: Semigroup

    def __post_init__(self):
        lengths = {len(v) for v in self.vectors.values()}
        if len(lengths) != 1:
            raise ValueError(f"all nodes must hold length-k vectors, got {lengths}")
        self.k = lengths.pop()
        if self.k == 0:
            raise ValueError("input vectors must be non-empty")

    def aggregated(self) -> List[int]:
        """⊕_v x^{(v)}, the effective input string (ground truth)."""
        nodes = sorted(self.vectors)
        out = list(self.vectors[nodes[0]])
        for v in nodes[1:]:
            vec = self.vectors[v]
            out = [self.semigroup.combine(a, b) for a, b in zip(out, vec)]
        return out


class ValueComputer:
    """Corollary 9 hook: compute a batch of values on the fly.

    ``compute(indices)`` returns ``(values, rounds)`` where ``values`` maps
    each index j to a sparse per-node dict {v: x_j^{(v)}} (nodes absent
    from the dict hold the semigroup identity).  Graph applications
    implement this with multi-source BFS etc.; ``rounds`` is the measured
    or charged α cost of computing that batch.
    """

    def compute(
        self, indices: Sequence[int]
    ) -> Tuple[Dict[int, Dict[int, int]], int]:
        raise NotImplementedError

    def alpha(self, p: int) -> int:
        """The formula-mode α(p) charge."""
        raise NotImplementedError


class CongestBatchOracle:
    """A :class:`BatchOracle` whose queries cost CONGEST rounds.

    Not constructed directly — use :func:`run_framework`.
    """

    def __init__(
        self,
        network: Network,
        dist_input: Optional[DistributedInput],
        parallelism: int,
        mode: str,
        tree: BFSResult,
        cost_model: CostModel,
        round_ledger: RoundLedger,
        computer: Optional[ValueComputer] = None,
        k: Optional[int] = None,
        seed: Optional[int] = None,
        semigroup: Optional[Semigroup] = None,
        recorder: Optional[Recorder] = None,
        engine_schedule: str = "active",
    ):
        if mode not in ("formula", "engine"):
            raise ValueError(f"unknown mode {mode!r}")
        if engine_schedule not in SCHEDULES:
            raise ValueError(
                f"unknown engine_schedule {engine_schedule!r}; "
                f"expected one of {SCHEDULES}"
            )
        if dist_input is None and computer is None:
            raise ValueError("need either a DistributedInput or a ValueComputer")
        self.network = network
        self.dist_input = dist_input
        self.semigroup = dist_input.semigroup if dist_input is not None else semigroup
        self.recorder = recorder if recorder is not None else current_recorder()
        self.ledger = QueryLedger(parallelism, recorder=self.recorder)
        self.mode = mode
        self.tree = tree
        self.cost_model = cost_model
        self.rounds = round_ledger
        self.computer = computer
        self._k = k if k is not None else dist_input.k
        self._seed = seed
        #: Engine scheduling strategy for every per-batch protocol run
        #: (downcast / upcast / uncompute).  ``"vectorized"`` bulk-executes
        #: each of those protocols column-major; they are bit-identical to
        #: the per-node schedules, so charges and values are unchanged.
        self.engine_schedule = engine_schedule
        self._cache: Dict[int, int] = {}
        self._cache_vectors: Dict[int, Dict[int, int]] = {}
        self._full: Optional[List[int]] = (
            dist_input.aggregated() if dist_input is not None else None
        )

    # -- BatchOracle interface ------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    def query_batch(self, indices: Sequence[int], label: str = "") -> List:
        return drive(self.query_batch_steps(indices, label=label))

    def query_batch_steps(
        self, indices: Sequence[int], label: str = ""
    ) -> Iterator[Tuple[str, int]]:
        """Stepwise :meth:`query_batch`: one engine round per ``next()``.

        Yields ``(phase, round_no)`` pairs — phase is ``distribute``,
        ``convergecast``, or ``uncompute`` — while the real node programs
        execute, and returns the batch values via ``StopIteration``.
        Formula-mode batches have no engine rounds and return without
        yielding.  :meth:`query_batch` drives this same generator, so the
        stepwise path is bit-identical (values, charges, events) to the
        blocking one; the :mod:`repro.serve` daemon interleaves many of
        these generators on one event loop.
        """
        indices = list(indices)
        for j in indices:
            if not 0 <= j < self._k:
                raise IndexError(f"query index {j} out of range [0, {self._k})")
        self.ledger.record(len(indices), label=label)
        semigroup = self.semigroup
        q_bits = semigroup.bits if semigroup is not None else self.cost_model.word_bits

        alpha_rounds = 0
        if self.computer is not None:
            missing = [j for j in indices if j not in self._cache]
            if missing:
                computed, _ = self.computer.compute(missing)
                # Values are deterministic so they are cached, but α is
                # charged on *every* batch, exactly as the paper's
                # algorithm recomputes them (Corollary 9).
                self._merge_computed(computed)
            alpha_rounds = self.computer.alpha(self.ledger.parallelism)

        if self.mode == "formula":
            self.rounds.charge(
                f"batch:{label or 'query'}",
                self.cost_model.batch_rounds(
                    self.ledger.parallelism, q_bits, self._k, alpha=alpha_rounds
                ),
            )
            return [self._value_of(j) for j in indices]

        # ---- engine mode: run the real protocols --------------------
        if alpha_rounds:
            self.rounds.charge("alpha", alpha_rounds)
        # 1. distribute indices (downcast), then 4. its uncompute.
        with self.recorder.span("distribute"):
            gen = downcast_steps(
                self.network, self.tree, indices, domain=max(self._k, 2),
                seed=self._seed, schedule=self.engine_schedule,
            )
            down_rounds = None
            while down_rounds is None:
                try:
                    round_no = next(gen)
                except StopIteration as stop:
                    _, down_rounds = stop.value
                else:
                    yield ("distribute", round_no)
            self.rounds.charge("index-distribute", down_rounds)
        # 2. chunked pipelined ⊕-convergecast of the p values, and
        # 3. the send-back-down uncompute pass.
        values = yield from self._engine_aggregate_steps(indices, semigroup)
        # Uncompute passes mirror the forward passes round-for-round.
        with self.recorder.span("uncompute"):
            self.rounds.charge("index-uncompute", down_rounds)
        return values

    def query_superposed(self, label: str = "") -> None:
        """Meter one *superposed* batch (no concrete indices; DJ-style).

        A single query in superposition over all of [k] costs one batch of
        width 1: the register of ⌈log k⌉ qubits is distributed and
        un-distributed regardless of which indices carry amplitude, so the
        network charge is the standard p = 1 batch cost.
        """
        self.ledger.record(1, label=label)
        semigroup = self.semigroup
        q_bits = (
            semigroup.bits if semigroup is not None else self.cost_model.word_bits
        )
        self.rounds.charge(
            f"batch:{label or 'superposed'}",
            self.cost_model.batch_rounds(1, q_bits, self._k),
        )

    def peek_all(self) -> Sequence:
        if self._full is not None:
            return self._full
        # On-the-fly inputs: the physics peek needs every value; compute
        # them without charging (outcome simulation only, DESIGN.md §3).
        missing = [j for j in range(self._k) if j not in self._cache]
        if missing:
            computed, _ = self.computer.compute(missing)
            self._merge_computed(computed)
        return [self._cache[j] for j in range(self._k)]

    # -- internals -------------------------------------------------------

    def _merge_computed(self, computed: Dict[int, Dict[int, int]]) -> None:
        semigroup = self.semigroup
        for j, per_node in computed.items():
            self._cache_vectors[j] = dict(per_node)
            column = list(per_node.values())
            if semigroup is not None:
                self._cache[j] = semigroup.fold(column)
            elif column:
                # With no semigroup supplied the computer's values must
                # already be node-disjoint single contributions.
                if len(column) != 1:
                    raise ValueError(
                        "a ValueComputer without a semigroup must return "
                        "exactly one contribution per index"
                    )
                self._cache[j] = column[0]
            else:
                raise ValueError(f"computer returned no value for index {j}")

    def _value_of(self, j: int) -> int:
        if self._full is not None:
            return self._full[j]
        return self._cache[j]

    def _engine_aggregate_steps(
        self, indices: Sequence[int], semigroup: Optional[Semigroup]
    ) -> Iterator[Tuple[str, int]]:
        if semigroup is None:
            raise ValueError("engine mode requires a semigroup")
        if semigroup.identity is None:
            raise ValueError(
                "engine-mode chunked streaming requires a monoid identity"
            )
        words = self.cost_model.words(semigroup.bits)
        identity = semigroup.identity
        domain = max(semigroup.domain_size or (1 << semigroup.bits), 2)
        # Each logical value occupies `words` slots; the value rides in the
        # last slot, identity pads the rest (combine(identity, ·) = id).
        per_node_vectors: Dict[int, List[int]] = {}
        for v in self.network.nodes():
            row = []
            for j in indices:
                row.extend([identity] * (words - 1))
                if self.dist_input is not None:
                    row.append(self.dist_input.vectors[v][j])
                else:
                    row.append(self._cache_vectors[j].get(v, identity))
            per_node_vectors[v] = row
        with self.recorder.span("convergecast"):
            gen = upcast_steps(
                self.network,
                self.tree,
                per_node_vectors,
                combine=semigroup.combine,
                domain=domain,
                seed=self._seed,
                schedule=self.engine_schedule,
            )
            combined = None
            while combined is None:
                try:
                    round_no = next(gen)
                except StopIteration as stop:
                    combined, up_rounds = stop.value
                else:
                    yield ("convergecast", round_no)
            self.rounds.charge("value-upcast", up_rounds)
        # Theorem 8's "sends the x^{(w)} back to the children, who
        # uncompute it": a mirrored downcast of the same volume.
        with self.recorder.span("uncompute"):
            gen = downcast_steps(
                self.network,
                self.tree,
                list(combined),
                domain=domain,
                seed=self._seed,
                schedule=self.engine_schedule,
            )
            down_rounds = None
            while down_rounds is None:
                try:
                    round_no = next(gen)
                except StopIteration as stop:
                    _, down_rounds = stop.value
                else:
                    yield ("uncompute", round_no)
            self.rounds.charge("value-uncompute", down_rounds)
        values = [combined[i * words + (words - 1)] for i in range(len(indices))]
        return values


@dataclass(frozen=True)
class FrameworkConfig:
    """Everything that parameterizes one framework execution, frozen.

    The canonical way to call the framework is::

        run_framework(network, algorithm, config=FrameworkConfig(
            parallelism=p, dist_input=di, mode="engine", seed=0,
        ))

    A config is immutable and reusable: sweeps derive variants with
    :meth:`replace` (``cfg.replace(seed=trial)``) instead of re-spelling
    ten keyword arguments per call, and the :mod:`repro.sched` scheduler
    takes the same object to describe the shared oracle it serves.  The
    legacy flat keyword signature of :func:`run_framework` survives as a
    deprecation shim that builds one of these internally.

    Attributes mirror the historical ``run_framework`` parameters; see
    that function's docstring for their semantics.
    """

    parallelism: int
    dist_input: Optional[DistributedInput] = None
    computer: Optional[ValueComputer] = None
    k: Optional[int] = None
    mode: str = "formula"
    seed: Optional[int] = None
    leader: Optional[int] = None
    semigroup: Optional[Semigroup] = None
    prepared: Optional["PreparedNetwork"] = None
    reuse_setup: bool = True
    recorder: Optional[Recorder] = None
    #: Engine scheduling strategy for engine-mode batch protocols:
    #: ``"active"`` (default), ``"dense"``, or ``"vectorized"``
    #: (column-major bulk rounds; bit-identical results and charges).
    #: Ignored in formula mode, which runs no engine rounds.
    engine_schedule: str = "active"
    #: Communication model this run is declared for: a
    #: :class:`~repro.congest.models.CommModel` instance, a registered
    #: model name (``"congest"``, ``"congest-clique"``, ``"local"``), or
    #: ``None`` (the default) to accept whatever model the network
    #: carries.  When set, :func:`build_oracle` rejects a network whose
    #: model differs — a sweep config can't silently run under the wrong
    #: rules.  Names are normalized to model instances at construction,
    #: so two configs naming the same model compare equal.
    comm_model: "CommModel | str | None" = None
    #: Declared scenario (:class:`repro.scenarios.Scenario`) or ``None``
    #: (the default, and the paper's perfect-unit-cost setting).  When
    #: set, :func:`run_framework` additionally prices the run's charged
    #: rounds on the scenario's classical and quantum links
    #: (:attr:`FrameworkRun.wall_clock_us`) and emits ``scenario``
    #: events on the spine — pure annotation: round accounting, results,
    #: and scenario-free traces are byte-identical with or without it.
    scenario: "object | None" = None

    def __post_init__(self):
        if self.parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.mode not in ("formula", "engine"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.engine_schedule not in SCHEDULES:
            raise ValueError(
                f"unknown engine_schedule {self.engine_schedule!r}; "
                f"expected one of {SCHEDULES}"
            )
        if self.comm_model is not None:
            # Normalize (and validate) once, under frozen semantics.
            object.__setattr__(
                self, "comm_model", resolve_model(self.comm_model)
            )
        if self.scenario is not None:
            # Deferred import: repro.scenarios imports this module's
            # siblings, so validating here with a top-level import would
            # be circular.
            from ..scenarios.spec import Scenario

            if not isinstance(self.scenario, Scenario):
                raise TypeError(
                    f"scenario must be a repro.scenarios.Scenario, got "
                    f"{type(self.scenario).__name__}"
                )

    def replace(self, **changes) -> "FrameworkConfig":
        """A copy with the given fields swapped (sweep-friendly)."""
        return dataclasses.replace(self, **changes)


@dataclass
class FrameworkRun:
    """Everything a framework execution produced.

    ``wall_clock_us`` is populated only when the config declared a
    :class:`~repro.scenarios.Scenario`: the charged rounds priced on the
    scenario's links, keyed by link name ("Mind the Õ" annotation; the
    round ledger itself is unchanged).
    """

    result: object
    rounds: RoundLedger
    query_ledger: QueryLedger
    leader: int
    tree_depth: int
    mode: str
    wall_clock_us: Optional[Dict[str, float]] = None

    @property
    def total_rounds(self) -> int:
        return self.rounds.total

    @property
    def batches(self) -> int:
        return self.query_ledger.batches


@dataclass(frozen=True)
class PreparedNetwork:
    """The reusable setup phase of Theorem 8: leader + BFS tree.

    Leader election and BFS-with-echo are deterministic given
    ``(network, seed, leader)``, so repeated :func:`run_framework` calls on
    the same topology redo identical work.  A :class:`PreparedNetwork`
    carries the elected leader, the tree, and the round counts the setup
    *would* cost, so a cached replay charges exactly what a fresh run
    charges — cost accounting is unchanged, only wall-time is saved.
    """

    leader: int
    election_rounds: Optional[int]  # None when the leader was designated
    tree: BFSResult
    seed: Optional[int]
    #: Topology fingerprint of the network the tree was built on (the
    #: staleness tripwire); None for hand-built PreparedNetworks.
    topology_fingerprint: Optional[str] = None
    #: Column-major adjacency of the same topology, shared with the
    #: vectorized engine's CSR cache (PR 7).  Attached by
    #: :class:`PreparedCache` so engine-mode batches under
    #: ``engine_schedule="vectorized"`` never rebuild adjacency; ``None``
    #: for hand-built PreparedNetworks (the engine then builds/caches its
    #: own).  Carries no round charges — CSR is a simulator-side layout,
    #: not a protocol.
    csr: Optional[CSRAdjacency] = None

    def charge_setup(self, rounds: RoundLedger) -> None:
        """Replay the setup charges exactly as a fresh run would."""
        if self.election_rounds is not None:
            rounds.charge("setup:leader-election", self.election_rounds)
        rounds.charge("setup:bfs-tree", self.tree.rounds)


class StalePreparedNetworkError(RuntimeError):
    """A cached PreparedNetwork no longer matches its network's topology.

    Raised by :func:`prepare_network` when the fingerprint recorded at
    cache-fill time differs from the network's current edge set — i.e.
    the graph was mutated in place without :func:`invalidate_prepared`.
    Before this tripwire existed the stale BFS tree was silently reused.
    """


#: Default entry bound of the process-wide setup cache.  Generous for
#: interactive sweeps, and finite so a long-lived daemon serving a churn
#: of topologies (:mod:`repro.serve`) cannot grow setup state without
#: bound — the warm-pool satellite of ISSUE 6.
DEFAULT_PREPARED_CACHE_ENTRIES = 256


class PreparedCache:
    """A bounded LRU of setup phases, keyed by topology fingerprint.

    Keys are ``(topology fingerprint, seed, leader)``: the setup
    protocols are deterministic in exactly those inputs, so two distinct
    :class:`~repro.congest.network.Network` objects with identical edge
    sets share one cached :class:`PreparedNetwork` — which is what lets
    the :mod:`repro.serve` daemon keep a warm pool across reconnecting
    tenants that each hand it their own Network instance.

    Eviction is least-recently-*used* (a lookup hit refreshes the entry)
    and only ever costs wall-time: a re-prepared setup is bit-identical
    to the evicted one, and charges are replayed identically either way.
    ``hits``/``misses``/``evictions`` counters feed
    :func:`prepared_cache_stats` and the daemon's pool report.

    The staleness tripwire survives the fingerprint keying: a weak side
    table remembers which fingerprint each *Network object* was last
    prepared with under each ``(seed, leader)``; preparing the same
    object after an in-place graph mutation raises
    :class:`StalePreparedNetworkError` instead of silently rebuilding,
    because an in-place mutation is almost always an accounting bug in
    the caller (see :func:`invalidate_prepared`).
    """

    def __init__(self, max_entries: Optional[int] = DEFAULT_PREPARED_CACHE_ENTRIES):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when set")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, PreparedNetwork]" = OrderedDict()
        self._seen: "weakref.WeakKeyDictionary[Network, Dict[Tuple, str]]" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def prepare(
        self,
        network: Network,
        seed: Optional[int] = None,
        leader: Optional[int] = None,
    ) -> PreparedNetwork:
        """Fetch the cached setup phase for ``network``, building on miss."""
        fingerprint = network.topology_fingerprint()
        seen = self._seen.get(network)
        key = (seed, leader)
        if seen is not None and seen.get(key) not in (None, fingerprint):
            raise StalePreparedNetworkError(
                f"network {network!r} was mutated in place after its setup "
                f"phase was cached (fingerprint {seen[key]} -> "
                f"{fingerprint}); call repro.core.framework."
                f"invalidate_prepared(network) after mutating a topology"
            )
        cache_key = (fingerprint, seed, leader)
        prepared = self._entries.get(cache_key)
        if prepared is not None:
            self._entries.move_to_end(cache_key)
            self.hits += 1
        else:
            self.misses += 1
            if leader is None:
                election = elect_leader(network, seed=seed)
                prepared_leader = election.leader
                election_rounds: Optional[int] = election.rounds
            else:
                prepared_leader = leader
                election_rounds = None
            tree = bfs_with_echo(network, prepared_leader, seed=seed)
            prepared = PreparedNetwork(
                leader=prepared_leader,
                election_rounds=election_rounds,
                tree=tree,
                seed=seed,
                topology_fingerprint=fingerprint,
                csr=csr_for(network, fingerprint=fingerprint),
            )
            self._entries[cache_key] = prepared
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                self._entries.popitem(last=False)
                self.evictions += 1
        if seen is None:
            seen = {}
            self._seen[network] = seen
        seen[key] = fingerprint
        return prepared

    def invalidate(self, network: Optional[Network] = None) -> None:
        """Drop cached setup state — for one network, or all of it.

        Also drops the matching CSR adjacency entries: both caches key on
        the topology fingerprint, so a mutation that stales one stales
        the other.
        """
        if network is None:
            self._entries.clear()
            # WeakKeyDictionary.clear() while other threads hold refs is
            # fine; the tripwire table is advisory state only.
            self._seen = weakref.WeakKeyDictionary()
            invalidate_csr(None)
            return
        seen = self._seen.pop(network, None)
        stale = set(seen.values()) if seen else set()
        stale.add(network.topology_fingerprint())
        for cache_key in [
            k for k in self._entries if k[0] in stale
        ]:
            del self._entries[cache_key]
        invalidate_csr(network)

    def stats(self) -> Dict[str, Optional[int]]:
        """Counters for observability: size, bound, hits/misses/evictions."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: The process-wide setup cache behind ``reuse_setup=True``.
_PREPARED = PreparedCache()


def prepare_network(
    network: Network,
    seed: Optional[int] = None,
    leader: Optional[int] = None,
) -> PreparedNetwork:
    """Run (or fetch the cached) setup phase for a network.

    The process-wide :class:`PreparedCache` is keyed by ``(topology
    fingerprint, seed, leader)``: the setup protocols are deterministic
    in those inputs, so the cached tree is bit-identical to a recomputed
    one.  Mutating a network's graph in place without
    :func:`invalidate_prepared` raises
    :class:`StalePreparedNetworkError` on the next lookup — the cached
    tree describes an edge set that no longer exists.
    """
    return _PREPARED.prepare(network, seed=seed, leader=leader)


def invalidate_prepared(network: Optional[Network] = None) -> None:
    """Drop cached setup state — for one network, or all of them.

    Call this after mutating a network's graph in place; otherwise cached
    BFS trees would describe the old topology.
    """
    _PREPARED.invalidate(network)


def prepared_cache_stats() -> Dict[str, Optional[int]]:
    """Hit/miss/eviction counters of the process-wide setup cache."""
    return _PREPARED.stats()


def configure_prepared_cache(max_entries: Optional[int]) -> None:
    """Re-bound the process-wide setup cache (None = unbounded).

    Shrinking below the current population evicts oldest-first
    immediately, so a daemon can tighten its memory ceiling live.
    """
    if max_entries is not None and max_entries < 1:
        raise ValueError("max_entries must be positive when set")
    _PREPARED.max_entries = max_entries
    while (
        max_entries is not None and len(_PREPARED._entries) > max_entries
    ):
        _PREPARED._entries.popitem(last=False)
        _PREPARED.evictions += 1


#: Legacy keyword parameters of :func:`run_framework`, in historical
#: positional order — the deprecation shim maps them onto FrameworkConfig.
_LEGACY_PARAMS = (
    "parallelism", "dist_input", "computer", "k", "mode", "seed", "leader",
    "semigroup", "prepared", "reuse_setup", "recorder",
)

def setup_network(
    network: Network, config: FrameworkConfig, rounds: RoundLedger
) -> PreparedNetwork:
    """Resolve (and charge) the setup phase a config asks for.

    Shared by :func:`run_framework` and the :mod:`repro.sched` scheduler
    so both charge setup identically: an explicit ``config.prepared``
    wins, else the process-wide cache (``reuse_setup=True``), else a
    fresh election + BFS.
    """
    prepared = config.prepared
    if prepared is None:
        if config.reuse_setup:
            prepared = prepare_network(
                network, seed=config.seed, leader=config.leader
            )
        elif config.leader is None:
            election = elect_leader(network, seed=config.seed)
            prepared = PreparedNetwork(
                leader=election.leader,
                election_rounds=election.rounds,
                tree=bfs_with_echo(network, election.leader, seed=config.seed),
                seed=config.seed,
                topology_fingerprint=network.topology_fingerprint(),
            )
        else:
            prepared = PreparedNetwork(
                leader=config.leader,
                election_rounds=None,
                tree=bfs_with_echo(network, config.leader, seed=config.seed),
                seed=config.seed,
                topology_fingerprint=network.topology_fingerprint(),
            )
    prepared.charge_setup(rounds)
    return prepared


def build_oracle(
    network: Network,
    config: FrameworkConfig,
    tree: BFSResult,
    rounds: RoundLedger,
    recorder: Recorder,
) -> CongestBatchOracle:
    """The shared-oracle constructor both execution paths use."""
    if config.comm_model is not None and config.comm_model != network.model:
        raise CongestError(
            f"config declares comm_model={config.comm_model.name!r} but the "
            f"network runs {network.model.name!r} "
            f"({network.model!r}); build the network with "
            f"comm_model={config.comm_model.name!r} or drop the declaration"
        )
    return CongestBatchOracle(
        network=network,
        dist_input=config.dist_input,
        parallelism=config.parallelism,
        mode=config.mode,
        tree=tree,
        cost_model=CostModel.for_network(network),
        round_ledger=rounds,
        computer=config.computer,
        k=config.k,
        seed=config.seed,
        semigroup=config.semigroup,
        recorder=recorder,
        engine_schedule=config.engine_schedule,
    )


def run_framework(
    network: Network,
    algorithm: Callable[[CongestBatchOracle, np.random.Generator], object],
    *legacy_args,
    config: Optional[FrameworkConfig] = None,
    **legacy_kwargs,
) -> FrameworkRun:
    """Evaluate f(x) = F(⊕_v x^{(v)}) per Theorem 8 / Corollary 9.

    Canonical signature (keyword-only)::

        run_framework(network, algorithm, config=FrameworkConfig(...))

    Args:
        network: the CONGEST network.
        algorithm: a parallel-query algorithm ``(oracle, rng) -> result``
            (any of :mod:`repro.queries`, or custom).
        config: a frozen :class:`FrameworkConfig` carrying everything
            else — parallelism p (the paper's applications use p=D),
            ``dist_input`` (Theorem 8 per-node vectors + semigroup) or
            ``computer``/``k`` (Corollary 9 on-the-fly values), ``mode``
            (``formula`` charged costs vs ``engine`` measured costs),
            ``seed``, an optional designated ``leader``, an explicit
            ``prepared`` setup to reuse, ``reuse_setup`` (the process
            cache), and the observability ``recorder`` (defaults to the
            ambient one; the run is wrapped in ``setup``/``query`` spans
            with ``distribute``/``convergecast``/``uncompute`` sub-spans
            per engine-mode batch).

    The pre-config flat keyword/positional signature
    (``run_framework(net, algo, parallelism=..., dist_input=..., ...)``)
    still works as a thin shim that builds the config internally, but
    emits a :class:`DeprecationWarning`; results are bit-identical either
    way (the shim-equivalence tests pin this).

    Returns:
        a :class:`FrameworkRun` with the algorithm result, per-phase round
        ledger, and query ledger.
    """
    if legacy_args or legacy_kwargs:
        if config is not None:
            raise TypeError(
                "run_framework: pass either config=FrameworkConfig(...) or "
                "the legacy flat parameters, not both"
            )
        config = _config_from_legacy(legacy_args, legacy_kwargs)
    elif config is None:
        raise TypeError(
            "run_framework() needs config=FrameworkConfig(...) (or the "
            "deprecated flat parallelism/dist_input/... parameters)"
        )

    rec = (
        config.recorder if config.recorder is not None else current_recorder()
    )
    with install(rec):
        rounds = RoundLedger(recorder=rec, model=network.model.event_token)
        rng = np.random.default_rng(config.seed)

        with rec.span("setup"):
            prepared = setup_network(network, config, rounds)
        tree = prepared.tree

        oracle = build_oracle(network, config, tree, rounds, rec)
        with rec.span("query"):
            result = algorithm(oracle, rng)

        wall_clock: Optional[Dict[str, float]] = None
        if config.scenario is not None:
            # "Mind the Õ": price the charged rounds on the scenario's
            # links and annotate the spine.  Quantum links carry the
            # framework's quantum traffic; the classical link prices the
            # same round count as the commodity-network control.
            scenario = config.scenario
            word_bits = network.log_n_bits
            total = rounds.total
            wall_clock = {}
            for link in (scenario.classical_link, scenario.quantum_link):
                us = rounds.wall_clock_us(link, word_bits)
                wall_clock[link.name] = us
                if rec.active:
                    rec.scenario(scenario.name, link.name, total, us)
    return FrameworkRun(
        result=result,
        rounds=rounds,
        query_ledger=oracle.ledger,
        leader=prepared.leader,
        tree_depth=tree.eccentricity,
        mode=config.mode,
        wall_clock_us=wall_clock,
    )


def _config_from_legacy(args: tuple, kwargs: dict) -> FrameworkConfig:
    """Map the historical flat signature onto a FrameworkConfig."""
    if len(args) > len(_LEGACY_PARAMS):
        raise TypeError(
            f"run_framework() takes at most {2 + len(_LEGACY_PARAMS)} "
            f"positional arguments ({2 + len(args)} given)"
        )
    merged: Dict[str, object] = {}
    for name, value in zip(_LEGACY_PARAMS, args):
        merged[name] = value
    for name, value in kwargs.items():
        if name not in _LEGACY_PARAMS:
            raise TypeError(
                f"run_framework() got an unexpected keyword argument "
                f"{name!r}"
            )
        if name in merged:
            raise TypeError(
                f"run_framework() got multiple values for argument {name!r}"
            )
        merged[name] = value
    if "parallelism" not in merged:
        raise TypeError(
            "run_framework() missing required argument: 'parallelism' "
            "(or pass config=FrameworkConfig(...))"
        )
    warnings.warn(
        "run_framework(network, algorithm, parallelism=..., ...) is "
        "deprecated; pass config=FrameworkConfig(parallelism=..., ...) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return FrameworkConfig(**merged)
