"""The paper's framework (Section 3): parallel queries over CONGEST."""

from .boosting import (
    BoostedOutcome,
    boost_first_found,
    boost_majority,
    boost_maximum,
    boost_median,
    boost_minimum,
    repetitions_for,
)
from .cost import CostModel, RoundLedger
from .framework import (
    CongestBatchOracle,
    DistributedInput,
    FrameworkConfig,
    FrameworkRun,
    PreparedNetwork,
    StalePreparedNetworkError,
    ValueComputer,
    invalidate_prepared,
    prepare_network,
    run_framework,
)
from .semigroup import (
    Semigroup,
    and_semigroup,
    max_semigroup,
    min_semigroup,
    or_semigroup,
    sum_semigroup,
    xor_semigroup,
)
from .state_transfer import TransferResult, collect_register, distribute_register

__all__ = [
    "BoostedOutcome",
    "boost_first_found",
    "boost_majority",
    "boost_maximum",
    "boost_median",
    "boost_minimum",
    "repetitions_for",
    "CostModel",
    "RoundLedger",
    "CongestBatchOracle",
    "DistributedInput",
    "FrameworkConfig",
    "FrameworkRun",
    "PreparedNetwork",
    "StalePreparedNetworkError",
    "ValueComputer",
    "invalidate_prepared",
    "prepare_network",
    "run_framework",
    "Semigroup",
    "and_semigroup",
    "max_semigroup",
    "min_semigroup",
    "or_semigroup",
    "sum_semigroup",
    "xor_semigroup",
    "TransferResult",
    "collect_register",
    "distribute_register",
]
