"""Commutative semigroups (A, ⊕) for Theorem 8.

Theorem 8 evaluates f(x) = F(⊕_{v∈V} x^{(v)}) for an elementwise
commutative semigroup operation ⊕ on a domain A with q = ⌈log|A|⌉ bits per
element.  The semigroup's bit-width drives the framework's round cost
(the ⌈q/log n⌉ factors), so it is part of the type.

Engine-mode aggregation streams values in ⌈q/log n⌉ chunks with identity
padding, so engine mode requires an identity element; all the semigroups
used by the paper's applications (+, XOR, max, min, AND, OR) have one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class Semigroup:
    """A commutative semigroup with explicit bit-width.

    Attributes:
        name: human-readable label.
        combine: the associative commutative operation ⊕.
        bits: q = ⌈log2 |A|⌉, the width of one element on the wire.
        identity: neutral element if the semigroup is a monoid (required
            for engine-mode chunked streaming).
        domain_size: |A|, used for payload Field sizing in engine mode.
    """

    name: str
    combine: Callable[[int, int], int]
    bits: int
    identity: Optional[int] = None
    domain_size: Optional[int] = None

    def fold(self, values) -> int:
        it = iter(values)
        try:
            acc = next(it)
        except StopIteration:
            if self.identity is None:
                raise ValueError(f"empty fold over {self.name} with no identity")
            return self.identity
        for v in it:
            acc = self.combine(acc, v)
        return acc


def _bits_for(domain_size: int) -> int:
    return max(1, math.ceil(math.log2(max(domain_size, 2))))


# Named combine operations.  These are module-level (rather than lambdas
# inside the constructors below) so they have a stable identity: the
# vectorized engine (:mod:`repro.congest.vectorized`) maps each combine
# *callable* to its numpy ufunc, and a fresh lambda per Semigroup instance
# would defeat that registry.  Two semigroups built from the same factory
# now share one combine function.


def combine_sum(a: int, b: int) -> int:
    """⊕ = + (vectorizes as ``np.add``)."""
    return a + b


def combine_xor(a: int, b: int) -> int:
    """⊕ = bitwise XOR (vectorizes as ``np.bitwise_xor``)."""
    return a ^ b


def combine_max(a: int, b: int) -> int:
    """⊕ = max (vectorizes as ``np.maximum``)."""
    return a if a >= b else b


def combine_min(a: int, b: int) -> int:
    """⊕ = min (vectorizes as ``np.minimum``)."""
    return a if a <= b else b


def combine_and(a: int, b: int) -> int:
    """⊕ = bitwise AND (vectorizes as ``np.bitwise_and``)."""
    return a & b


def combine_or(a: int, b: int) -> int:
    """⊕ = bitwise OR (vectorizes as ``np.bitwise_or``)."""
    return a | b


def sum_semigroup(max_total: int) -> Semigroup:
    """(ℕ∩[0,max_total], +).  Lemma 10 uses A = [n]; Lemma 12 uses A = [Nn]."""
    return Semigroup(
        name=f"sum[0,{max_total}]",
        combine=combine_sum,
        bits=_bits_for(max_total + 1),
        identity=0,
        domain_size=max_total + 1,
    )


def xor_semigroup(width_bits: int) -> Semigroup:
    """({0,1}^w, ⊕) — Problem 16's elementwise XOR."""
    return Semigroup(
        name=f"xor{width_bits}",
        combine=combine_xor,
        bits=width_bits,
        identity=0,
        domain_size=1 << width_bits,
    )


def max_semigroup(max_value: int) -> Semigroup:
    """([0, max_value], max) with identity 0."""
    return Semigroup(
        name=f"max[0,{max_value}]",
        combine=combine_max,
        bits=_bits_for(max_value + 1),
        identity=0,
        domain_size=max_value + 1,
    )


def min_semigroup(max_value: int) -> Semigroup:
    """Min with ``max_value`` doubling as +∞ (and the monoid identity)."""
    return Semigroup(
        name=f"min[0,{max_value}]",
        combine=combine_min,
        bits=_bits_for(max_value + 1),
        identity=max_value,
        domain_size=max_value + 1,
    )


def and_semigroup() -> Semigroup:
    """({0,1}, AND) with identity 1 — distributed all-zero tests (Lemma 27)."""
    return Semigroup(
        name="and", combine=combine_and, bits=1, identity=1, domain_size=2
    )


def or_semigroup() -> Semigroup:
    """({0,1}, OR) with identity 0."""
    return Semigroup(
        name="or", combine=combine_or, bits=1, identity=0, domain_size=2
    )
