"""The canonical streaming request API: frozen ``Operation`` objects.

PR 5 froze the *configuration* currency (:class:`~repro.core.framework.
FrameworkConfig`, :class:`~repro.experiments.RunRequest`); this module
freezes the *traffic* currency.  Before it, the serving stack only knew
read queries, spelled as loose ``(caller, indices, label)`` tuples in
three different signatures (``CoalescingScheduler.submit``,
``QueryService.submit``, ``CallerOracle.query_batch``).  The amplitude
sketch layer (:mod:`repro.apps.sketches`) adds *writes* to the stream,
so requests now come in kinds — and the kinds deserve one canonical,
validated, hashable type instead of a fourth positional spelling.

An :class:`Operation` is one unit of client traffic:

* ``Operation.query(caller, indices)`` — a read against a batch oracle
  lane (the specialization every pre-existing call site maps onto; the
  experiment layer's :class:`~repro.experiments.RunRequest` is the same
  read-side discipline one level up),
* ``Operation.sketch_query(caller, items)`` — a read against an
  amplitude-sketch lane (payload is hashable items, not oracle indices),
* ``Operation.insert(caller, items)`` — a write into an amplitude
  sketch (the new kind; inserts invalidate the lane's result memo).

An :class:`OperationStream` is a frozen, iterable batch of operations —
what the load generator produces and what benches replay.  Both types
are plain values: hashable, comparable, safe to log, safe to key on.

The old positional signatures survive as ``DeprecationWarning`` shims on
the accepting side (scheduler/daemon), with equivalence pinned by
``tests/core/test_operation.py`` — the same migration pattern PR 5 used
for ``run_framework``'s legacy arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Sequence, Tuple

__all__ = ["Operation", "OperationStream", "OPERATION_KINDS"]

#: The two traffic kinds: reads ("query") and sketch writes ("insert").
OPERATION_KINDS = ("query", "insert")


@dataclass(frozen=True)
class Operation:
    """One unit of client traffic, frozen and validated on construction.

    Exactly one payload field is populated: ``indices`` for oracle reads,
    ``items`` for sketch reads and writes.  Build instances through the
    named constructors (:meth:`query`, :meth:`sketch_query`,
    :meth:`insert`) rather than spelling the fields out.
    """

    kind: str
    caller: str
    indices: Tuple[int, ...] = ()
    items: Tuple[Any, ...] = ()
    label: str = ""

    def __post_init__(self):
        if self.kind not in OPERATION_KINDS:
            raise ValueError(
                f"unknown operation kind {self.kind!r}; "
                f"expected one of {OPERATION_KINDS}"
            )
        if not isinstance(self.caller, str) or not self.caller:
            raise ValueError("caller must be a non-empty string")
        if self.indices and self.items:
            raise ValueError(
                "an operation carries either indices (oracle read) or "
                "items (sketch traffic), never both"
            )
        if self.kind == "insert" and not self.items:
            raise ValueError("insert operations must carry items")
        if not self.indices and not self.items:
            raise ValueError("empty operation (no indices, no items)")
        if self.indices and any(
            not isinstance(j, int) or isinstance(j, bool) for j in self.indices
        ):
            raise ValueError("indices must be plain ints")

    # -- named constructors ---------------------------------------------

    @classmethod
    def query(
        cls, caller: str, indices: Sequence[int], label: str = ""
    ) -> "Operation":
        """A read against a batch-oracle lane (the PR 5/6 read path)."""
        return cls(kind="query", caller=caller, indices=tuple(indices),
                   label=label)

    @classmethod
    def sketch_query(
        cls, caller: str, items: Sequence[Any], label: str = ""
    ) -> "Operation":
        """A read (overlap query) against an amplitude-sketch lane."""
        return cls(kind="query", caller=caller, items=tuple(items),
                   label=label)

    @classmethod
    def insert(
        cls, caller: str, items: Sequence[Any], label: str = ""
    ) -> "Operation":
        """A write (phase-accumulation insert) into an amplitude sketch."""
        return cls(kind="insert", caller=caller, items=tuple(items),
                   label=label)

    # -- derived --------------------------------------------------------

    @property
    def size(self) -> int:
        """Payload width: what admission control and quotas meter."""
        return len(self.indices) or len(self.items)

    @property
    def is_write(self) -> bool:
        return self.kind == "insert"

    def replace(self, **changes: Any) -> "Operation":
        """A copy with the given fields replaced (re-validated)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)


@dataclass(frozen=True)
class OperationStream:
    """A frozen, ordered batch of operations.

    The unit the load generator emits and benches replay: iteration
    yields operations in stream order (writes and reads interleaved
    exactly as offered — FIFO semantics downstream depend on it).
    """

    ops: Tuple[Operation, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "ops", tuple(self.ops))
        for op in self.ops:
            if not isinstance(op, Operation):
                raise TypeError(f"stream element {op!r} is not an Operation")

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, i: int) -> Operation:
        return self.ops[i]

    @property
    def counts(self) -> Dict[str, int]:
        """Operation counts by kind (``{"query": ..., "insert": ...}``)."""
        out: Dict[str, int] = {}
        for op in self.ops:
            out[op.kind] = out.get(op.kind, 0) + 1
        return out

    @property
    def insert_fraction(self) -> float:
        """Fraction of operations that are writes (0.0 for a read stream)."""
        if not self.ops:
            return 0.0
        return self.counts.get("insert", 0) / len(self.ops)

    def extended(self, more: Sequence[Operation]) -> "OperationStream":
        """A new stream with ``more`` appended (streams stay frozen)."""
        return OperationStream(self.ops + tuple(more))
