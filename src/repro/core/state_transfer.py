"""Lemma 7: distributing a leader's q-qubit register through the network.

The lemma turns a leader-held state Σᵢ αᵢ|i> into Σᵢ αᵢ|i>^{⊗n} (one copy
per node) in O(D + q/log n) rounds: the leader CNOTs its register onto
fresh registers for its children and streams them down the BFS tree, each
log(n)-qubit chunk forwarded the round after it arrives (pipelining); the
reverse runs the same algorithm backwards.

Because the *communication pattern* is identical for a quantum register
and a classical q-bit string (only the payload qubits differ), the engine
implementation streams a classical register through real messages and
measures rounds — this is the fidelity level the cost accounting needs.
The naive non-pipelined variant (wait for the full register before
forwarding, D·⌈q/log n⌉ rounds) is implemented for the E5 ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.algorithms.bfs import BFSResult
from ..congest.encoding import Field
from ..congest.engine import run_program
from ..congest.messages import Inbox
from ..congest.network import Network
from ..congest.program import Context, NodeProgram


@dataclass
class TransferResult:
    rounds: int
    chunks: int
    register: Tuple[int, ...]  # the distributed chunk values


def _chunk_register(value_bits: Sequence[int], chunk_bits: int) -> List[int]:
    """Split a bit string (list of 0/1, MSB first) into chunk integers."""
    chunks = []
    for start in range(0, len(value_bits), chunk_bits):
        word = 0
        for bit in value_bits[start : start + chunk_bits]:
            word = (word << 1) | bit
        chunks.append(word)
    return chunks


class RegisterStreamProgram(NodeProgram):
    """Stream a chunked register down the BFS tree.

    Pipelined mode forwards chunk i the round after receiving it; naive
    mode buffers the entire register first (the Lemma 7 proof's strawman).
    """

    # The root streams chunks (carried by its own sends); interior nodes
    # advance on deliveries.  Childless nodes walk their cursor locally on
    # silent rounds (especially in naive mode, where the walk starts only
    # after the full register arrived), so they request explicit wakeups
    # whenever another local step is possible.
    always_active = False

    def __init__(
        self,
        node: int,
        parent: Optional[int],
        children: Sequence[int],
        chunks: Optional[List[int]],
        num_chunks: int,
        chunk_domain: int,
        pipelined: bool,
    ):
        self.node = node
        self.parent = parent
        self.children = list(children)
        self.received: List[Optional[int]] = (
            list(chunks) if chunks is not None else [None] * num_chunks
        )
        self.num_chunks = num_chunks
        self.chunk_domain = chunk_domain
        self.pipelined = pipelined
        self.next_to_send = 0

    def _may_send(self) -> bool:
        if self.next_to_send >= self.num_chunks:
            return False
        if self.received[self.next_to_send] is None:
            return False
        if not self.pipelined and any(c is None for c in self.received):
            return False
        return True

    def _push(self, ctx: Context) -> None:
        if not self._may_send():
            if (
                self.next_to_send >= self.num_chunks
                or (not self.children and all(c is not None for c in self.received))
            ):
                if all(c is not None for c in self.received):
                    ctx.halt(output=tuple(self.received))
            return
        i = self.next_to_send
        for child in self.children:
            ctx.send(
                child,
                (
                    Field(i, max(self.num_chunks, 1)),
                    Field(self.received[i], self.chunk_domain),
                ),
            )
        self.next_to_send += 1
        if self.next_to_send >= self.num_chunks:
            ctx.halt(output=tuple(self.received))
        elif not self.children and self._may_send():
            # No sends carry us into the next round, but another local
            # cursor step is already possible: ask to be scheduled.
            ctx.request_wakeup()

    def on_start(self, ctx: Context) -> None:
        self._push(ctx)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        for msg in inbox:
            index, value = msg.value
            self.received[index] = value
        self._push(ctx)


def distribute_register(
    network: Network,
    tree: BFSResult,
    register_value: int,
    q_bits: int,
    pipelined: bool = True,
    seed: Optional[int] = None,
) -> TransferResult:
    """Lemma 7 forward direction, measured on the engine.

    Streams a ``q_bits``-wide register (value ``register_value``) from the
    tree root to every node.  Returns measured rounds; Lemma 7 predicts
    ≈ depth + ⌈q/log n⌉ pipelined and ≈ depth·⌈q/log n⌉ naive.
    """
    if not 0 <= register_value < (1 << q_bits):
        raise ValueError("register value does not fit in q bits")
    # Chunk size: what fits next to a chunk index in one message.
    index_bits = max(1, math.ceil(math.log2(max(q_bits, 2))))
    chunk_bits = max(1, network.bandwidth - index_bits)
    bits = [(register_value >> (q_bits - 1 - i)) & 1 for i in range(q_bits)]
    chunks = _chunk_register(bits, chunk_bits)
    num_chunks = len(chunks)
    chunk_domain = 1 << chunk_bits

    children = tree.children()
    programs = {
        v: RegisterStreamProgram(
            v,
            tree.parent.get(v),
            children.get(v, []),
            chunks if v == tree.root else None,
            num_chunks,
            chunk_domain,
            pipelined,
        )
        for v in network.nodes()
    }
    result = run_program(network, programs, seed=seed)
    for v in network.nodes():
        got = result.outputs[v]
        if tuple(got) != tuple(chunks):
            raise AssertionError(f"node {v} received a corrupted register")
    return TransferResult(
        rounds=result.rounds, chunks=num_chunks, register=tuple(chunks)
    )


def collect_register(
    network: Network,
    tree: BFSResult,
    register_value: int,
    q_bits: int,
    pipelined: bool = True,
    seed: Optional[int] = None,
) -> TransferResult:
    """Lemma 7 reverse direction ("run the same algorithm in reverse").

    The uncompute streams the register back up layer by layer with the
    same pipelining structure, so its round count equals the forward
    direction's; we measure it by running the reversed stream on the
    engine (leaf-to-root direction has identical scheduling).
    """
    forward = distribute_register(
        network, tree, register_value, q_bits, pipelined=pipelined, seed=seed
    )
    return forward
