"""Success-probability boosting — the paper's "Notation and conventions".

"In our algorithms, there will always be some central leader that can
combine the results of multiple independent runs to boost this to a
success probability of 1 − n^{−c} at the cost of an extra log(n)-factor."

This module is that combiner, made explicit: run a 2/3-success protocol
O(log(1/δ)) times with independent seeds, sum the charged rounds, and
merge the outcomes by one of the leader-side rules the applications need:

* :func:`boost_minimum` / :func:`boost_maximum` — keep the best witness
  (sound for one-sided searches like diameter/radius/cycle length);
* :func:`boost_first_found` — keep the first non-None witness (sound for
  existence searches like element distinctness);
* :func:`boost_majority` — majority vote (for decision outputs);
* :func:`boost_median` — median of numeric estimates (mean estimation,
  phase estimation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def repetitions_for(delta: float, base_failure: float = 1 / 3) -> int:
    """Independent 2/3-runs needed so the *best/first/majority* rule fails
    with probability ≤ δ (Chernoff-free union-style bound: failure needs
    every run to fail, probability base_failure^r)."""
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if not 0 < base_failure < 1:
        raise ValueError("base failure probability must be in (0, 1)")
    return max(1, math.ceil(math.log(delta) / math.log(base_failure)))


@dataclass
class BoostedOutcome:
    """Merged result of repeated runs."""

    value: object
    rounds: int
    repetitions: int
    individual: List[object]


def _run_all(
    protocol: Callable[[int], Tuple[object, int]],
    repetitions: int,
    seed: int,
) -> Tuple[List[object], int]:
    outcomes: List[object] = []
    total_rounds = 0
    for i in range(repetitions):
        value, rounds = protocol(seed + i)
        outcomes.append(value)
        total_rounds += rounds
    return outcomes, total_rounds


def boost_minimum(
    protocol: Callable[[int], Tuple[Optional[float], int]],
    delta: float,
    seed: int = 0,
) -> BoostedOutcome:
    """Keep the smallest non-None outcome across O(log 1/δ) runs."""
    reps = repetitions_for(delta)
    outcomes, rounds = _run_all(protocol, reps, seed)
    valid = [o for o in outcomes if o is not None]
    return BoostedOutcome(
        value=min(valid) if valid else None,
        rounds=rounds,
        repetitions=reps,
        individual=outcomes,
    )


def boost_maximum(
    protocol: Callable[[int], Tuple[Optional[float], int]],
    delta: float,
    seed: int = 0,
) -> BoostedOutcome:
    """Keep the largest non-None outcome across O(log 1/δ) runs."""
    reps = repetitions_for(delta)
    outcomes, rounds = _run_all(protocol, reps, seed)
    valid = [o for o in outcomes if o is not None]
    return BoostedOutcome(
        value=max(valid) if valid else None,
        rounds=rounds,
        repetitions=reps,
        individual=outcomes,
    )


def boost_first_found(
    protocol: Callable[[int], Tuple[Optional[T], int]],
    delta: float,
    seed: int = 0,
) -> BoostedOutcome:
    """Stop at the first non-None witness (adaptive: unused runs unpaid)."""
    reps = repetitions_for(delta)
    outcomes: List[object] = []
    rounds = 0
    for i in range(reps):
        value, cost = protocol(seed + i)
        outcomes.append(value)
        rounds += cost
        if value is not None:
            return BoostedOutcome(
                value=value, rounds=rounds, repetitions=i + 1,
                individual=outcomes,
            )
    return BoostedOutcome(
        value=None, rounds=rounds, repetitions=reps, individual=outcomes
    )


def boost_majority(
    protocol: Callable[[int], Tuple[T, int]],
    delta: float,
    seed: int = 0,
) -> BoostedOutcome:
    """Majority vote over O(log 1/δ) runs (Chernoff-sized repetition)."""
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    reps = max(1, math.ceil(18 * math.log(1.0 / delta)) | 1)
    outcomes, rounds = _run_all(protocol, reps, seed)
    counts: dict = {}
    for o in outcomes:
        counts[o] = counts.get(o, 0) + 1
    winner = max(counts, key=counts.get)
    return BoostedOutcome(
        value=winner, rounds=rounds, repetitions=reps, individual=outcomes
    )


def boost_median(
    protocol: Callable[[int], Tuple[float, int]],
    delta: float,
    seed: int = 0,
) -> BoostedOutcome:
    """Median of numeric estimates over O(log 1/δ) runs."""
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    reps = max(1, math.ceil(18 * math.log(1.0 / delta)) | 1)
    outcomes, rounds = _run_all(protocol, reps, seed)
    ordered = sorted(float(o) for o in outcomes)
    return BoostedOutcome(
        value=ordered[len(ordered) // 2], rounds=rounds,
        repetitions=reps, individual=outcomes,
    )
