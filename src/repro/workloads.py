"""Workload generators for the paper's problems.

Every experiment and example needs the same few input families: random
calendars, planted-collision vectors spread over nodes, DJ promise inputs
with a prescribed aggregate, per-vertex cycle instances.  This module is
their single public home; all generators take an explicit seed or
``numpy.random.Generator`` and document the distribution they sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .congest.network import Network


def random_calendars(
    network: Network,
    slots: int,
    rng: np.random.Generator,
    density: float = 0.5,
) -> Dict[int, List[int]]:
    """I.i.d. Bernoulli(density) availability bits per node and slot."""
    if not 0 <= density <= 1:
        raise ValueError("density must lie in [0, 1]")
    return {
        v: [int(b) for b in rng.random(slots) < density]
        for v in network.nodes()
    }


def weighted_preferences(
    network: Network,
    slots: int,
    max_weight: int,
    rng: np.random.Generator,
) -> Dict[int, List[int]]:
    """Uniform integer preferences in [0, max_weight]."""
    return {
        v: [int(w) for w in rng.integers(0, max_weight + 1, size=slots)]
        for v in network.nodes()
    }


@dataclass
class PlantedEDInstance:
    """A distributed element-distinctness instance with ground truth."""

    vectors: Dict[int, List[int]]
    aggregated: List[int]
    collision: Optional[Tuple[int, int]]
    max_value: int


def planted_ed_vectors(
    network: Network,
    length: int,
    rng: np.random.Generator,
    max_value: int = 10**6,
    collide: bool = True,
) -> PlantedEDInstance:
    """A global vector of distinct values, optionally with one planted
    collision, each coordinate owned by a uniformly random node."""
    base = [int(v) for v in rng.choice(max_value - 1, size=length, replace=False)]
    collision = None
    if collide:
        i, j = (int(x) for x in rng.choice(length, size=2, replace=False))
        base[j] = base[i]
        collision = (min(i, j), max(i, j))
    vectors = {v: [0] * length for v in network.nodes()}
    for idx, value in enumerate(base):
        vectors[int(rng.integers(0, network.n))][idx] = value
    return PlantedEDInstance(
        vectors=vectors, aggregated=base, collision=collision,
        max_value=max_value,
    )


def node_values_with_duplicate(
    network: Network,
    rng: np.random.Generator,
    max_value: int = 10**6,
    duplicate: bool = True,
) -> Tuple[Dict[int, int], Optional[Tuple[int, int]]]:
    """One value per node (Corollary 14's input), optionally two equal."""
    raw = rng.choice(max_value - 1, size=network.n, replace=False)
    values = {v: int(raw[v]) for v in network.nodes()}
    pair = None
    if duplicate and network.n >= 2:
        a, b = (int(x) for x in rng.choice(network.n, size=2, replace=False))
        values[b] = values[a]
        pair = (min(a, b), max(a, b))
    return values, pair


def dj_promise_inputs(
    network: Network,
    length: int,
    rng: np.random.Generator,
    balanced: bool,
) -> Dict[int, List[int]]:
    """Random per-node strings whose XOR is exactly constant-0 or balanced.

    All nodes draw uniform strings; node 0 is repaired so the aggregate
    matches the promise — the marginal of every other node stays uniform.
    """
    if length % 2:
        raise ValueError("the DJ promise needs an even length")
    inputs = {
        v: [int(b) for b in rng.integers(0, 2, size=length)]
        for v in network.nodes()
    }
    xor = [0] * length
    for vec in inputs.values():
        xor = [a ^ b for a, b in zip(xor, vec)]
    if balanced:
        positions = rng.choice(length, size=length // 2, replace=False)
        target = [0] * length
        for pos in positions:
            target[int(pos)] = 1
    else:
        target = [0] * length
    inputs[0] = [a ^ b ^ c for a, b, c in zip(inputs[0], xor, target)]
    return inputs


def disjointness_pair(
    length: int,
    rng: np.random.Generator,
    intersecting: Optional[bool] = None,
    density: float = 0.3,
):
    """Re-export of the disjointness instance sampler (Lemmas 11/13/15)."""
    from .lowerbounds.disjointness import random_instance

    return random_instance(
        length, rng, force_intersecting=intersecting, density=density
    )
