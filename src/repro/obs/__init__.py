"""repro.obs — the unified instrumentation spine.

One event bus for everything the repository accounts: engine rounds and
deliveries, injected faults, oracle query batches, and ledger round
charges, with span-based phase attribution (DESIGN.md §"Observability
spine").

Quick tour::

    from repro.obs import MetricsSink, Recorder, install

    metrics = MetricsSink()
    with install(Recorder([metrics])):
        run_framework(...)            # or any experiment / engine run
    print(metrics.summary())

Sinks are pluggable: :class:`MemorySink` keeps raw events,
:class:`MetricsSink` aggregates counters, :class:`JSONLSink` streams the
``repro-trace/1`` schema to disk, and
:class:`repro.congest.tracing.TraceSink` rebuilds the classic
:class:`~repro.congest.tracing.Trace`.  With no recorder installed the
:data:`NULL_RECORDER` is ambient and the whole spine reduces to one
boolean check on every hot path.
"""

from .events import (
    CHARGE,
    COALESCE,
    DELIVER,
    EVENT_KINDS,
    FAULT,
    QUERY_BATCH,
    ROUND,
    SCENARIO,
    SERVE_BATCH,
    SERVE_DRAIN,
    SERVE_REQUEST,
    SKETCH,
    SPAN,
    ChargeEvent,
    CoalesceEvent,
    DeliverEvent,
    FaultEvent,
    QueryBatchEvent,
    RoundEvent,
    ScenarioEvent,
    ServeBatchEvent,
    ServeDrainEvent,
    ServeRequestEvent,
    SketchEvent,
    SpanEvent,
    to_json,
)
from .jsonl import SCHEMA, JSONLSink, merge_jsonl_shards, validate_jsonl
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    current_recorder,
    install,
)
from .sinks import MemorySink, MetricsSink, Sink

__all__ = [
    "CHARGE",
    "COALESCE",
    "DELIVER",
    "EVENT_KINDS",
    "FAULT",
    "QUERY_BATCH",
    "ROUND",
    "SCENARIO",
    "SERVE_BATCH",
    "SERVE_DRAIN",
    "SERVE_REQUEST",
    "SKETCH",
    "SPAN",
    "SCHEMA",
    "ChargeEvent",
    "CoalesceEvent",
    "DeliverEvent",
    "FaultEvent",
    "JSONLSink",
    "MemorySink",
    "MetricsSink",
    "NULL_RECORDER",
    "NullRecorder",
    "QueryBatchEvent",
    "Recorder",
    "RoundEvent",
    "ScenarioEvent",
    "ServeBatchEvent",
    "ServeDrainEvent",
    "ServeRequestEvent",
    "Sink",
    "SketchEvent",
    "SpanEvent",
    "current_recorder",
    "install",
    "merge_jsonl_shards",
    "to_json",
    "validate_jsonl",
]
