"""The event bus: :class:`Recorder`, spans, and the ambient recorder.

A :class:`Recorder` fans typed events out to pluggable sinks and stamps
each event with the current span path.  The module-level
:data:`NULL_RECORDER` is the disabled bus: emitters guard their hot paths
on ``recorder.active`` (a plain class attribute), so the instrumentation
cost with recording off is one attribute load and branch — within the
< 5 % overhead budget enforced by ``python -m repro bench`` (workload
``obs_overhead``).

The *ambient* recorder makes the spine reach code that predates it:
:func:`install` pushes a recorder for the duration of a ``with`` block and
every Engine / ledger / framework run constructed inside resolves it via
:func:`current_recorder` (unless handed an explicit one).  This is how
``python -m repro trace`` instruments experiments whose ``run()`` signature
never mentions observability.  The ambient stack is process-global and not
thread-safe; the engine itself is single-threaded.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any, Iterable, List, Optional

from .events import (
    ChargeEvent,
    CoalesceEvent,
    DeliverEvent,
    FaultEvent,
    QueryBatchEvent,
    RoundEvent,
    ScenarioEvent,
    ServeBatchEvent,
    ServeDrainEvent,
    ServeRequestEvent,
    SketchEvent,
    SpanEvent,
)


class Recorder:
    """Dispatches typed events to sinks, tracking a span (phase) stack."""

    #: Emitters skip event construction entirely when this is False.
    active = True

    def __init__(self, sinks: Optional[Iterable] = None):
        self.sinks: List = list(sinks) if sinks is not None else []
        self._span_stack: List[str] = []
        self._span_path = ""

    # -- sink management ------------------------------------------------

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def close(self) -> None:
        """Close every sink that holds a resource (e.g. JSONL files)."""
        for sink in self.sinks:
            sink.close()

    def fork(self, *extra_sinks) -> "Recorder":
        """A recorder feeding this one's sinks plus ``extra_sinks``.

        The fork starts at this recorder's current span path, so events
        emitted through it attribute to the phase that was open when the
        fork was made.  An inactive recorder contributes no sinks.
        """
        sinks = list(self.sinks) if self.active else []
        sinks.extend(extra_sinks)
        fork = Recorder(sinks)
        fork._span_stack = list(self._span_stack)
        fork._span_path = self._span_path
        return fork

    # -- emission -------------------------------------------------------

    def emit(self, event) -> None:
        for sink in self.sinks:
            sink.handle(event)

    def round(
        self,
        round_no: int,
        messages: int,
        bits: int,
        mode: str = "",
        model: str = "",
    ) -> None:
        self.emit(
            RoundEvent(round_no, messages, bits, self._span_path, mode, model)
        )

    def deliver(
        self, round_no: int, src: int, dst: int, bits: int, value: Any = None
    ) -> None:
        self.emit(DeliverEvent(round_no, src, dst, bits, value, self._span_path))

    def fault(
        self,
        fault: str,
        round_no: int,
        src: int,
        dst: int,
        bits: int = 0,
        value: Any = None,
    ) -> None:
        self.emit(FaultEvent(fault, round_no, src, dst, bits, value, self._span_path))

    def query_batch(self, size: int, label: str = "") -> None:
        self.emit(QueryBatchEvent(size, label, self._span_path))

    def charge(self, phase: str, rounds: int, model: str = "") -> None:
        self.emit(ChargeEvent(phase, rounds, self._span_path, model))

    def coalesce(
        self,
        size: int,
        submissions: int,
        callers: int,
        rounds: int,
        memo: str = "miss",
    ) -> None:
        self.emit(
            CoalesceEvent(size, submissions, callers, rounds, memo,
                          self._span_path)
        )

    def serve_request(
        self, tenant: str, queries: int, status: str, wait_ms: float = 0.0
    ) -> None:
        self.emit(
            ServeRequestEvent(tenant, queries, status, wait_ms,
                              self._span_path)
        )

    def serve_batch(
        self, lane: str, size: int, tenants: int, rounds: int
    ) -> None:
        self.emit(ServeBatchEvent(lane, size, tenants, rounds, self._span_path))

    def serve_drain(self, reason: str, flushed: int, abandoned: int) -> None:
        self.emit(ServeDrainEvent(reason, flushed, abandoned, self._span_path))

    def scenario(
        self, scenario: str, link: str, rounds: int, wall_clock_us: float
    ) -> None:
        self.emit(
            ScenarioEvent(scenario, link, rounds, wall_clock_us,
                          self._span_path)
        )

    def sketch(
        self, sketch: str, op: str, count: int, memo: str = ""
    ) -> None:
        self.emit(SketchEvent(sketch, op, count, memo, self._span_path))

    # -- spans ----------------------------------------------------------

    @property
    def span_path(self) -> str:
        """The ``/``-joined path of currently open spans ("" at top level)."""
        return self._span_path

    @contextmanager
    def span(self, name: str):
        """Open a named phase; events emitted inside carry its path."""
        self._span_stack.append(name)
        self._span_path = "/".join(self._span_stack)
        self.emit(SpanEvent(name, "begin", self._span_path))
        try:
            yield self
        finally:
            self.emit(SpanEvent(name, "end", self._span_path))
            self._span_stack.pop()
            self._span_path = "/".join(self._span_stack)


class NullRecorder(Recorder):
    """The disabled bus: every operation is a no-op.

    Emitters should still guard on :attr:`active` so the disabled path
    never constructs event objects; these overrides are the backstop for
    call sites that don't.
    """

    active = False

    def __init__(self):
        super().__init__()

    def add_sink(self, sink) -> None:  # pragma: no cover - defensive
        raise ValueError("cannot attach sinks to the null recorder")

    def emit(self, event) -> None:
        pass

    def round(self, round_no, messages, bits, mode="", model="") -> None:
        pass

    def deliver(self, round_no, src, dst, bits, value=None) -> None:
        pass

    def fault(self, fault, round_no, src, dst, bits=0, value=None) -> None:
        pass

    def query_batch(self, size, label="") -> None:
        pass

    def charge(self, phase, rounds, model="") -> None:
        pass

    def coalesce(self, size, submissions, callers, rounds, memo="miss") -> None:
        pass

    def serve_request(self, tenant, queries, status, wait_ms=0.0) -> None:
        pass

    def serve_batch(self, lane, size, tenants, rounds) -> None:
        pass

    def serve_drain(self, reason, flushed, abandoned) -> None:
        pass

    def scenario(self, scenario, link, rounds, wall_clock_us) -> None:
        pass

    def sketch(self, sketch, op, count, memo="") -> None:
        pass

    def span(self, name: str):
        return nullcontext(self)


#: The process-wide disabled recorder (shared; stateless).
NULL_RECORDER = NullRecorder()

#: Ambient recorder stack; the top entry is what unparameterized
#: constructors pick up.  Bottom entry is the null recorder, so recording
#: is off unless something :func:`install`\ s a live recorder.
_AMBIENT: List[Recorder] = [NULL_RECORDER]


def current_recorder() -> Recorder:
    """The recorder new engines/ledgers adopt when none is passed."""
    return _AMBIENT[-1]


@contextmanager
def install(recorder: Recorder):
    """Make ``recorder`` ambient for the duration of the ``with`` block."""
    _AMBIENT.append(recorder)
    try:
        yield recorder
    finally:
        _AMBIENT.pop()
