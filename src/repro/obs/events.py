"""Typed events carried by the observability spine.

Every accounting mechanism in the repository speaks through these twelve
event kinds (DESIGN.md §"Observability spine"):

* ``round`` — one engine communication round (message count, payload bits),
* ``deliver`` — one message delivered by the engine,
* ``fault`` — one injected fault (drop / corrupt / delay / crash / recover),
* ``query_batch`` — one application of the parallel oracle O^{⊗p},
* ``charge`` — one :class:`~repro.core.cost.RoundLedger` phase charge,
* ``span`` — begin/end of a named phase opened on the recorder,
* ``coalesce`` — one :mod:`repro.sched` scheduler action: a physical
  coalesced batch executed on the shared oracle (``memo="miss"``), a
  submission served straight from the content-addressed result memo
  (``memo="hit"``, zero rounds), or an LRU eviction from that memo
  (``memo="evict"``),
* ``serve.request`` — one request's admission verdict or completion in
  the :mod:`repro.serve` daemon,
* ``serve.batch`` — one physical batch executed by a daemon lane,
* ``serve.drain`` — the daemon's shutdown handshake (what was flushed,
  what was abandoned),
* ``scenario`` — one wall-clock pricing of a run under a scenario's
  :class:`~repro.core.cost.LinkCostModel` (PR 9's "Mind the Õ" layer):
  which scenario, which link, the charged rounds, and what they cost in
  microseconds once per-message latency and constant factors are paid,
* ``sketch`` — one amplitude-sketch operation (:mod:`repro.apps.
  sketches`): a physical ``insert``/``query``/``compose`` on a sketch,
  or a sketch-lane memo edge (``memo="hit"`` for a query served without
  touching the state, ``memo="invalidate"`` for entries dropped by a
  write — the PR 10 write-path invalidation protocol).

Events are small frozen dataclasses.  Each carries a ``span`` string — the
``/``-joined path of recorder spans open when it was emitted — so any sink
can attribute costs to phases without coordinating with the emitters.

:func:`to_json` maps an event onto the stable ``repro-trace/1`` JSONL
record documented in :mod:`repro.obs.jsonl`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict

#: The twelve event kinds, as they appear in JSONL ``type`` fields.
ROUND = "round"
DELIVER = "deliver"
FAULT = "fault"
QUERY_BATCH = "query_batch"
CHARGE = "charge"
SPAN = "span"
COALESCE = "coalesce"
SERVE_REQUEST = "serve.request"
SERVE_BATCH = "serve.batch"
SERVE_DRAIN = "serve.drain"
SCENARIO = "scenario"
SKETCH = "sketch"

EVENT_KINDS = (
    ROUND, DELIVER, FAULT, QUERY_BATCH, CHARGE, SPAN, COALESCE,
    SERVE_REQUEST, SERVE_BATCH, SERVE_DRAIN, SCENARIO, SKETCH,
)


@dataclass(frozen=True)
class RoundEvent:
    """One engine communication round: its delivery count and bit volume.

    ``mode`` names the execution path that ran the round: ``""`` for the
    per-node loops (dense/active — indistinguishable by construction) or
    ``"vectorized"`` for the column-major bulk loop.  The mode is
    advisory metadata: schedule-equivalence comparisons exclude it, and
    the JSONL record omits it when empty so per-node traces are
    byte-identical to pre-vectorization ones.

    ``model`` names the communication model the round ran under —
    ``""`` for the default CONGEST model (omitted from the JSONL record,
    keeping pre-model traces byte-identical), else the model name
    (``"congest-clique"``, ``"local"``).
    """

    kind: ClassVar[str] = ROUND

    round_no: int
    messages: int
    bits: int
    span: str = ""
    mode: str = ""
    model: str = ""


@dataclass(frozen=True)
class DeliverEvent:
    """One message delivered to a node at the start of a round."""

    kind: ClassVar[str] = DELIVER

    round_no: int
    src: int
    dst: int
    bits: int
    value: Any = None
    span: str = ""


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``fault`` names the fault kind (``drop``, ``corrupt``, ``delay``,
    ``crash``, ``recover``); node-level faults set ``src == dst``.
    """

    kind: ClassVar[str] = FAULT

    fault: str
    round_no: int
    src: int
    dst: int
    bits: int = 0
    value: Any = None
    span: str = ""


@dataclass(frozen=True)
class QueryBatchEvent:
    """One metered application of the parallel oracle (Definition 1)."""

    kind: ClassVar[str] = QUERY_BATCH

    size: int
    label: str = ""
    span: str = ""


@dataclass(frozen=True)
class ChargeEvent:
    """One phase charge on a :class:`~repro.core.cost.RoundLedger`.

    ``model`` tags the communication model whose rounds were charged —
    ``""`` for the default CONGEST model (omitted from the JSONL record)
    so pre-model trace streams stay byte-identical.
    """

    kind: ClassVar[str] = CHARGE

    phase: str
    rounds: int
    span: str = ""
    model: str = ""


@dataclass(frozen=True)
class SpanEvent:
    """Begin or end of a recorder span.

    ``span`` is the full path of the span itself (including ``name``), so
    a stream of span events reconstructs the phase tree on its own.
    """

    kind: ClassVar[str] = SPAN

    name: str
    phase: str  # "begin" | "end"
    span: str = ""


@dataclass(frozen=True)
class CoalesceEvent:
    """One scheduler coalescing action (:mod:`repro.sched`).

    ``memo="miss"`` marks a physical coalesced batch — ``size`` queries
    from ``submissions`` caller submissions across ``callers`` distinct
    callers, executed for ``rounds`` network rounds.  ``memo="hit"``
    marks a submission answered from the content-addressed result memo
    (``rounds == 0``, ``submissions == callers == 1``).
    """

    kind: ClassVar[str] = COALESCE

    size: int
    submissions: int
    callers: int
    rounds: int
    memo: str = "miss"  # "hit" | "miss" | "evict" | "invalidate"
    span: str = ""


@dataclass(frozen=True)
class ServeRequestEvent:
    """One request's life-cycle edge inside the serving daemon.

    ``status`` is one of ``"accepted"`` (admitted to the tenant queue),
    ``"rejected"`` (quota exceeded or queue full — backpressure),
    ``"completed"`` (values delivered; ``wait_ms`` is submit-to-result
    latency) or ``"abandoned"`` (daemon drained before execution).
    """

    kind: ClassVar[str] = SERVE_REQUEST

    tenant: str
    queries: int
    status: str
    wait_ms: float = 0.0
    span: str = ""


@dataclass(frozen=True)
class ServeBatchEvent:
    """One physical batch stepped to completion by a daemon lane."""

    kind: ClassVar[str] = SERVE_BATCH

    lane: str
    size: int
    tenants: int
    rounds: int
    span: str = ""


@dataclass(frozen=True)
class ServeDrainEvent:
    """The daemon's shutdown handshake.

    ``reason`` names the trigger (``"signal"``, ``"close"``); ``flushed``
    counts requests completed during the drain window and ``abandoned``
    those cancelled because their tenant queue never emptied.
    """

    kind: ClassVar[str] = SERVE_DRAIN

    reason: str
    flushed: int
    abandoned: int
    span: str = ""


@dataclass(frozen=True)
class ScenarioEvent:
    """One wall-clock pricing of a run under a scenario's link model.

    ``scenario`` names the declared :class:`~repro.scenarios.Scenario`,
    ``link`` the :class:`~repro.core.cost.LinkCostModel` the rounds were
    priced on, ``rounds`` the round count being re-denominated, and
    ``wall_clock_us`` the resulting microseconds.  The event is emitted
    *in addition to* the underlying round/charge stream — pricing is an
    annotation, never a replacement, so scenario-free traces are
    byte-identical to pre-scenario ones.
    """

    kind: ClassVar[str] = SCENARIO

    scenario: str
    link: str
    rounds: int
    wall_clock_us: float
    span: str = ""


@dataclass(frozen=True)
class SketchEvent:
    """One amplitude-sketch operation or sketch-lane memo edge.

    ``sketch`` names the sketch (lane), ``op`` the operation kind
    (``insert`` / ``query`` / ``compose``), ``count`` the payload width
    (items inserted or queried; for ``compose``, the absorbed sketch's
    insert count; for ``memo="invalidate"``, the memo entries dropped).
    ``memo`` is ``""`` for a physical state operation, ``"hit"`` for a
    query served from the lane memo without touching the state, or
    ``"invalidate"`` for the write-path protocol dropping stale entries.
    The JSONL record omits ``memo`` when empty, keeping the common
    physical-op records minimal.
    """

    kind: ClassVar[str] = SKETCH

    sketch: str
    op: str
    count: int
    memo: str = ""  # "" | "hit" | "invalidate"
    span: str = ""


def _jsonable(value: Any) -> Any:
    """Coerce an arbitrary payload into a JSON-serializable shape."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def to_json(event: Any) -> Dict[str, Any]:
    """The stable ``repro-trace/1`` JSONL record for one event."""
    kind = event.kind
    if kind == ROUND:
        record = {"type": ROUND, "round": event.round_no,
                  "messages": event.messages, "bits": event.bits,
                  "span": event.span}
        if event.mode:
            record["mode"] = event.mode
        if event.model:
            record["model"] = event.model
        return record
    if kind == DELIVER:
        return {"type": DELIVER, "round": event.round_no, "src": event.src,
                "dst": event.dst, "bits": event.bits,
                "value": _jsonable(event.value), "span": event.span}
    if kind == FAULT:
        return {"type": FAULT, "fault": event.fault, "round": event.round_no,
                "src": event.src, "dst": event.dst, "bits": event.bits,
                "value": _jsonable(event.value), "span": event.span}
    if kind == QUERY_BATCH:
        return {"type": QUERY_BATCH, "size": event.size,
                "label": event.label, "span": event.span}
    if kind == CHARGE:
        record = {"type": CHARGE, "phase": event.phase,
                  "rounds": event.rounds, "span": event.span}
        if event.model:
            record["model"] = event.model
        return record
    if kind == SPAN:
        return {"type": SPAN, "name": event.name, "phase": event.phase,
                "span": event.span}
    if kind == COALESCE:
        return {"type": COALESCE, "size": event.size,
                "submissions": event.submissions, "callers": event.callers,
                "rounds": event.rounds, "memo": event.memo,
                "span": event.span}
    if kind == SERVE_REQUEST:
        return {"type": SERVE_REQUEST, "tenant": event.tenant,
                "queries": event.queries, "status": event.status,
                "wait_ms": event.wait_ms, "span": event.span}
    if kind == SERVE_BATCH:
        return {"type": SERVE_BATCH, "lane": event.lane, "size": event.size,
                "tenants": event.tenants, "rounds": event.rounds,
                "span": event.span}
    if kind == SERVE_DRAIN:
        return {"type": SERVE_DRAIN, "reason": event.reason,
                "flushed": event.flushed, "abandoned": event.abandoned,
                "span": event.span}
    if kind == SCENARIO:
        return {"type": SCENARIO, "scenario": event.scenario,
                "link": event.link, "rounds": event.rounds,
                "wall_clock_us": event.wall_clock_us, "span": event.span}
    if kind == SKETCH:
        record = {"type": SKETCH, "sketch": event.sketch, "op": event.op,
                  "count": event.count, "span": event.span}
        if event.memo:
            record["memo"] = event.memo
        return record
    raise ValueError(f"unknown event kind {kind!r}")
