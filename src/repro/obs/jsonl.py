"""JSONL event streams: the ``repro-trace/1`` schema, writer, validator.

One record per line.  The first line is a header::

    {"type": "meta", "schema": "repro-trace/1"}

and every subsequent line is one event record as produced by
:func:`repro.obs.events.to_json` — its ``type`` is one of the twelve
event kinds and its remaining fields are fixed per type (``_REQUIRED``).
The CI ``trace-smoke`` and ``serve-smoke`` jobs round-trip real
experiments through this schema with :func:`validate_jsonl`.

The ``serve.*`` record types (``serve.request``, ``serve.batch``,
``serve.drain``) were added by the serving daemon (PR 6).  They are a
pure extension: every pre-existing record type is unchanged, so older
``repro-trace/1`` streams still validate.

The optional ``model`` field on ``round`` and ``charge`` records was
added by the communication-model layer (PR 8), following the precedent
of ``round``'s optional ``mode`` (PR 7): omitted under the default
CONGEST model, so pre-model streams are byte-identical and still
validate; present (and type-checked) for non-default models.

The ``scenario`` record type (PR 9) prices charged rounds in wall-clock
microseconds under a scenario's link model — the same pure-extension
discipline: emitted only when a scenario is declared, so scenario-free
streams are byte-identical to pre-scenario ones and still validate.

The ``sketch`` record type (PR 10) carries amplitude-sketch operations
(insert/query/compose) and sketch-lane memo edges; its optional ``memo``
field (``"hit"`` / ``"invalidate"``) is omitted for physical state
operations.  ``coalesce`` records additionally admit
``memo="invalidate"`` for the write-path memo protocol.  Pure extension
again: sketch-free streams are byte-identical to pre-sketch ones.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable

from .events import (
    CHARGE,
    COALESCE,
    DELIVER,
    EVENT_KINDS,
    FAULT,
    QUERY_BATCH,
    ROUND,
    SCENARIO,
    SERVE_BATCH,
    SERVE_DRAIN,
    SERVE_REQUEST,
    SKETCH,
    SPAN,
    to_json,
)
from .sinks import Sink

SCHEMA = "repro-trace/1"

#: required field -> type (or tuple of types), per record type ("value"
#: is unconstrained).  ``wait_ms`` admits int because JSON has one number
#: type and a whole-millisecond latency serializes without a fraction.
_REQUIRED = {
    ROUND: {"round": int, "messages": int, "bits": int, "span": str},
    DELIVER: {"round": int, "src": int, "dst": int, "bits": int, "span": str},
    FAULT: {"fault": str, "round": int, "src": int, "dst": int, "bits": int,
            "span": str},
    QUERY_BATCH: {"size": int, "label": str, "span": str},
    CHARGE: {"phase": str, "rounds": int, "span": str},
    SPAN: {"name": str, "phase": str, "span": str},
    COALESCE: {"size": int, "submissions": int, "callers": int,
               "rounds": int, "memo": str, "span": str},
    SERVE_REQUEST: {"tenant": str, "queries": int, "status": str,
                    "wait_ms": (int, float), "span": str},
    SERVE_BATCH: {"lane": str, "size": int, "tenants": int, "rounds": int,
                  "span": str},
    SERVE_DRAIN: {"reason": str, "flushed": int, "abandoned": int,
                  "span": str},
    SCENARIO: {"scenario": str, "link": str, "rounds": int,
               "wall_clock_us": (int, float), "span": str},
    SKETCH: {"sketch": str, "op": str, "count": int, "span": str},
}

#: optional field -> type, per record type.  Optional fields are omitted
#: from the record when they hold their default (so pre-extension streams
#: stay byte-identical and older validators keep passing), but when
#: present they must type-check.  ``mode`` (PR 7) marks vectorized
#: rounds; ``model`` (PR 8) names a non-default communication model on
#: round/charge records.
_OPTIONAL = {
    ROUND: {"mode": str, "model": str},
    CHARGE: {"model": str},
    SKETCH: {"memo": str},
}


class JSONLSink(Sink):
    """Writes the event stream to a file, one JSON record per line."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w")
        self._fh.write(json.dumps({"type": "meta", "schema": SCHEMA}) + "\n")

    def handle(self, event) -> None:
        self._fh.write(json.dumps(to_json(event)) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def merge_jsonl_shards(shards: Iterable[str], out_path: str) -> int:
    """Stitch per-task ``repro-trace/1`` shards into one valid stream.

    Parallel sweep workers each write their own JSONL shard (one meta
    header plus that task's events).  This concatenates the shards'
    event records under a single header, in shard order, so the merged
    file passes :func:`validate_jsonl` exactly like a one-process trace.
    Event order *within* a shard is preserved; shards are separated
    streams, so no cross-shard interleaving is lost.

    Each shard is validated as it is read: a shard with a missing or
    mismatched schema header is an error (it would silently poison the
    merged stream otherwise).

    Returns the number of event records written (excluding the header).
    """
    written = 0
    with open(out_path, "w") as out:
        out.write(json.dumps({"type": "meta", "schema": SCHEMA}) + "\n")
        for shard in shards:
            with open(shard) as fh:
                header = fh.readline().strip()
                try:
                    meta = json.loads(header) if header else None
                except json.JSONDecodeError:
                    meta = None
                if (
                    not isinstance(meta, dict)
                    or meta.get("type") != "meta"
                    or meta.get("schema") != SCHEMA
                ):
                    raise ValueError(
                        f"{shard}: not a {SCHEMA!r} stream (bad header "
                        f"{header!r})"
                    )
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    out.write(line + "\n")
                    written += 1
    return written


def validate_jsonl(path: str) -> Dict[str, int]:
    """Validate a ``repro-trace/1`` stream; return record counts by type.

    Raises:
        ValueError: on a malformed line, a missing/mis-typed field, an
            unknown record type, or a missing/mismatched schema header.
    """
    counts: Dict[str, int] = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}")
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(f"{path}:{lineno}: record missing 'type'")
            rtype = record["type"]
            if lineno == 1:
                if rtype != "meta" or record.get("schema") != SCHEMA:
                    raise ValueError(
                        f"{path}:1: expected meta header with schema "
                        f"{SCHEMA!r}, got {record!r}"
                    )
                counts["meta"] = 1
                continue
            if rtype not in EVENT_KINDS:
                raise ValueError(f"{path}:{lineno}: unknown type {rtype!r}")
            for field, ftype in _REQUIRED[rtype].items():
                if field not in record:
                    raise ValueError(
                        f"{path}:{lineno}: {rtype} record missing {field!r}"
                    )
                value = record[field]
                # bool is an int subclass; trace integers are never bools.
                if not isinstance(value, ftype) or isinstance(value, bool):
                    expected = (
                        "/".join(t.__name__ for t in ftype)
                        if isinstance(ftype, tuple) else ftype.__name__
                    )
                    raise ValueError(
                        f"{path}:{lineno}: field {field!r} should be "
                        f"{expected}, got {value!r}"
                    )
            for field, ftype in _OPTIONAL.get(rtype, {}).items():
                if field in record and not isinstance(record[field], ftype):
                    raise ValueError(
                        f"{path}:{lineno}: optional field {field!r} should "
                        f"be {ftype.__name__}, got {record[field]!r}"
                    )
            counts[rtype] = counts.get(rtype, 0) + 1
    if counts.get("meta") != 1:
        raise ValueError(f"{path}: empty stream (no meta header)")
    return counts
