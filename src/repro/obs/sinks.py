"""Sinks: where recorded events land.

The sink contract is two methods — ``handle(event)`` called synchronously
per event, and ``close()`` called when the owning recorder is closed.
Sinks must not mutate events (they are shared between sinks) and must not
assume any particular emitter: a sink sees whatever mixture of engine,
fault, query, and ledger events the run produces.

This module holds the dependency-free sinks; the ``Trace``-compatible
sink lives in :mod:`repro.congest.tracing` (:class:`TraceSink`) next to
the :class:`~repro.congest.tracing.Trace` type it builds, and the JSONL
writer in :mod:`repro.obs.jsonl` next to its schema validator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .events import (
    CHARGE,
    COALESCE,
    DELIVER,
    FAULT,
    QUERY_BATCH,
    ROUND,
    SCENARIO,
    SERVE_BATCH,
    SERVE_DRAIN,
    SERVE_REQUEST,
    SKETCH,
    SPAN,
)


class Sink:
    """Base sink: subclasses override :meth:`handle`."""

    def handle(self, event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (default: nothing to release)."""


class MemorySink(Sink):
    """Keeps every event in an in-memory list, in emission order."""

    def __init__(self):
        self.events: List = []

    def handle(self, event) -> None:
        self.events.append(event)

    def events_of_kind(self, kind: str) -> List:
        return [e for e in self.events if e.kind == kind]


class MetricsSink(Sink):
    """Aggregating counters: the one-pass metrics registry.

    Accumulates everything ``python -m repro trace`` reports — engine
    round/message/bit totals, per-edge bit volume, fault counts by kind,
    query-batch counts, and per-phase round charges (with the span each
    phase was first charged under) — without retaining the events.
    """

    def __init__(self):
        self.engine_rounds = 0
        self.vectorized_rounds = 0
        #: rounds executed under a *non-default* communication model,
        #: keyed by model name (``"congest-clique"``, ``"local"``);
        #: default-CONGEST rounds carry no model tag and are not counted
        #: here (they are the pre-model baseline).
        self.rounds_by_model: Dict[str, int] = {}
        #: ledger rounds charged under a non-default model, per model.
        self.charged_by_model: Dict[str, int] = {}
        self.messages = 0
        self.bits = 0
        self.edge_bits: Dict[Tuple[int, int], int] = {}
        self.fault_counts: Dict[str, int] = {}
        self.query_batches = 0
        self.total_queries = 0
        self.batches_by_label: Dict[str, int] = {}
        self.charge_events = 0
        self.charges_by_phase: Dict[str, int] = {}
        self.phase_span: Dict[str, str] = {}
        self.charged_by_span: Dict[str, int] = {}
        self.span_names: List[str] = []
        self.coalesced_batches = 0
        self.coalesced_queries = 0
        self.coalesced_submissions = 0
        self.coalesce_rounds = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        self.serve_requests: Dict[str, int] = {}  # status -> count
        self.serve_queries = 0
        self.serve_batches = 0
        self.serve_batch_rounds = 0
        self.serve_drains = 0
        self.scenario_events = 0
        #: accumulated wall-clock microseconds per link model name.
        self.wall_clock_by_link: Dict[str, float] = {}
        #: physical sketch operations by op kind (insert/query/compose),
        #: summing payload widths.  Memo-edge sketch events (``memo``
        #: non-empty) are *not* counted here — a memo-hit query never
        #: touches the state — they land in ``sketch_memo`` instead.
        self.sketch_ops: Dict[str, int] = {}
        #: sketch-lane memo edges by outcome ("hit"/"invalidate").
        self.sketch_memo: Dict[str, int] = {}
        #: memo entries dropped by write-path invalidation (``coalesce``
        #: events with ``memo="invalidate"``, sized by entries dropped).
        self.memo_invalidations = 0

    def handle(self, event) -> None:
        kind = event.kind
        if kind == DELIVER:
            self.messages += 1
            self.bits += event.bits
            edge = (event.src, event.dst)
            self.edge_bits[edge] = self.edge_bits.get(edge, 0) + event.bits
        elif kind == ROUND:
            if event.round_no > self.engine_rounds:
                self.engine_rounds = event.round_no
            # getattr: tolerate pre-vectorization RoundEvents replayed
            # from old traces (no ``mode`` field).
            if getattr(event, "mode", "") == "vectorized":
                self.vectorized_rounds += 1
            # Same tolerance for pre-model events (no ``model`` field).
            model = getattr(event, "model", "")
            if model:
                self.rounds_by_model[model] = (
                    self.rounds_by_model.get(model, 0) + 1
                )
        elif kind == CHARGE:
            self.charge_events += 1
            model = getattr(event, "model", "")
            if model:
                self.charged_by_model[model] = (
                    self.charged_by_model.get(model, 0) + event.rounds
                )
            self.charges_by_phase[event.phase] = (
                self.charges_by_phase.get(event.phase, 0) + event.rounds
            )
            self.phase_span.setdefault(event.phase, event.span)
            self.charged_by_span[event.span] = (
                self.charged_by_span.get(event.span, 0) + event.rounds
            )
        elif kind == QUERY_BATCH:
            self.query_batches += 1
            self.total_queries += event.size
            self.batches_by_label[event.label] = (
                self.batches_by_label.get(event.label, 0) + 1
            )
        elif kind == FAULT:
            self.fault_counts[event.fault] = (
                self.fault_counts.get(event.fault, 0) + 1
            )
        elif kind == SPAN:
            if event.phase == "begin" and event.span not in self.span_names:
                self.span_names.append(event.span)
        elif kind == COALESCE:
            if event.memo == "hit":
                self.memo_hits += 1
            elif event.memo == "evict":
                self.memo_evictions += 1
            elif event.memo == "invalidate":
                self.memo_invalidations += event.size
            else:
                self.memo_misses += 1
                self.coalesced_batches += 1
                self.coalesced_queries += event.size
                self.coalesced_submissions += event.submissions
                self.coalesce_rounds += event.rounds
        elif kind == SERVE_REQUEST:
            self.serve_requests[event.status] = (
                self.serve_requests.get(event.status, 0) + 1
            )
            if event.status == "accepted":
                self.serve_queries += event.queries
        elif kind == SERVE_BATCH:
            self.serve_batches += 1
            self.serve_batch_rounds += event.rounds
        elif kind == SERVE_DRAIN:
            self.serve_drains += 1
        elif kind == SCENARIO:
            self.scenario_events += 1
            self.wall_clock_by_link[event.link] = (
                self.wall_clock_by_link.get(event.link, 0.0)
                + event.wall_clock_us
            )
        elif kind == SKETCH:
            if event.memo:
                self.sketch_memo[event.memo] = (
                    self.sketch_memo.get(event.memo, 0) + 1
                )
            else:
                self.sketch_ops[event.op] = (
                    self.sketch_ops.get(event.op, 0) + event.count
                )

    # -- cross-process merge --------------------------------------------

    def merge(self, other: "MetricsSink") -> "MetricsSink":
        """Fold another sink's counters into this one, in place.

        The invariant: merging equals handling.  After
        ``a.merge(b)``, ``a`` holds exactly what it would hold had it
        handled ``b``'s event stream after its own — counters sum,
        per-key dicts sum per key, ``engine_rounds`` takes the max
        (``handle`` tracks the highest round number seen, and round
        counters restart per engine run), first-span attribution keeps
        the earlier sink's answer, and span names append in order
        without duplicates.  This is what stitches per-task
        :class:`MetricsSink` shards from parallel sweep workers into
        the single registry a one-process run would have produced.

        Returns ``self`` so merges chain/reduce.
        """
        self.engine_rounds = max(self.engine_rounds, other.engine_rounds)
        # Unlike the high-water engine_rounds, fast-path rounds are a
        # plain event count, so shards sum.
        self.vectorized_rounds += other.vectorized_rounds
        for model, count in other.rounds_by_model.items():
            self.rounds_by_model[model] = (
                self.rounds_by_model.get(model, 0) + count
            )
        for model, rounds in other.charged_by_model.items():
            self.charged_by_model[model] = (
                self.charged_by_model.get(model, 0) + rounds
            )
        self.messages += other.messages
        self.bits += other.bits
        for edge, bits in other.edge_bits.items():
            self.edge_bits[edge] = self.edge_bits.get(edge, 0) + bits
        for fault, count in other.fault_counts.items():
            self.fault_counts[fault] = self.fault_counts.get(fault, 0) + count
        self.query_batches += other.query_batches
        self.total_queries += other.total_queries
        for label, count in other.batches_by_label.items():
            self.batches_by_label[label] = (
                self.batches_by_label.get(label, 0) + count
            )
        self.charge_events += other.charge_events
        for phase, rounds in other.charges_by_phase.items():
            self.charges_by_phase[phase] = (
                self.charges_by_phase.get(phase, 0) + rounds
            )
        for phase, span in other.phase_span.items():
            self.phase_span.setdefault(phase, span)
        for span, rounds in other.charged_by_span.items():
            self.charged_by_span[span] = (
                self.charged_by_span.get(span, 0) + rounds
            )
        for name in other.span_names:
            if name not in self.span_names:
                self.span_names.append(name)
        self.coalesced_batches += other.coalesced_batches
        self.coalesced_queries += other.coalesced_queries
        self.coalesced_submissions += other.coalesced_submissions
        self.coalesce_rounds += other.coalesce_rounds
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.memo_evictions += other.memo_evictions
        for status, count in other.serve_requests.items():
            self.serve_requests[status] = (
                self.serve_requests.get(status, 0) + count
            )
        self.serve_queries += other.serve_queries
        self.serve_batches += other.serve_batches
        self.serve_batch_rounds += other.serve_batch_rounds
        self.serve_drains += other.serve_drains
        self.scenario_events += other.scenario_events
        for link, us in other.wall_clock_by_link.items():
            self.wall_clock_by_link[link] = (
                self.wall_clock_by_link.get(link, 0.0) + us
            )
        for op, count in other.sketch_ops.items():
            self.sketch_ops[op] = self.sketch_ops.get(op, 0) + count
        for outcome, count in other.sketch_memo.items():
            self.sketch_memo[outcome] = (
                self.sketch_memo.get(outcome, 0) + count
            )
        self.memo_invalidations += other.memo_invalidations
        return self

    # -- checkpoint serialization ---------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Lossless JSON-safe snapshot of every counter.

        Unlike :meth:`summary` (a human-facing digest), this round-trips
        through :meth:`from_state` exactly; edge keys are rendered as
        ``"src,dst"`` strings because JSON objects cannot key on tuples.
        """
        return {
            "engine_rounds": self.engine_rounds,
            "vectorized_rounds": self.vectorized_rounds,
            "rounds_by_model": dict(self.rounds_by_model),
            "charged_by_model": dict(self.charged_by_model),
            "messages": self.messages,
            "bits": self.bits,
            "edge_bits": {
                f"{src},{dst}": bits
                for (src, dst), bits in self.edge_bits.items()
            },
            "fault_counts": dict(self.fault_counts),
            "query_batches": self.query_batches,
            "total_queries": self.total_queries,
            "batches_by_label": dict(self.batches_by_label),
            "charge_events": self.charge_events,
            "charges_by_phase": dict(self.charges_by_phase),
            "phase_span": dict(self.phase_span),
            "charged_by_span": dict(self.charged_by_span),
            "span_names": list(self.span_names),
            "coalesced_batches": self.coalesced_batches,
            "coalesced_queries": self.coalesced_queries,
            "coalesced_submissions": self.coalesced_submissions,
            "coalesce_rounds": self.coalesce_rounds,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_evictions": self.memo_evictions,
            "serve_requests": dict(self.serve_requests),
            "serve_queries": self.serve_queries,
            "serve_batches": self.serve_batches,
            "serve_batch_rounds": self.serve_batch_rounds,
            "serve_drains": self.serve_drains,
            "scenario_events": self.scenario_events,
            "wall_clock_by_link": dict(self.wall_clock_by_link),
            "sketch_ops": dict(self.sketch_ops),
            "sketch_memo": dict(self.sketch_memo),
            "memo_invalidations": self.memo_invalidations,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "MetricsSink":
        """Rebuild a sink from a :meth:`to_state` snapshot."""
        sink = cls()
        sink.engine_rounds = state["engine_rounds"]
        # Vectorized-round accounting arrived with the bulk engine
        # (PR 7); default so earlier snapshots still load.
        sink.vectorized_rounds = state.get("vectorized_rounds", 0)
        # Per-model accounting arrived with the communication-model
        # layer (PR 8); same backward-compat defaulting.
        sink.rounds_by_model = dict(state.get("rounds_by_model", {}))
        sink.charged_by_model = dict(state.get("charged_by_model", {}))
        sink.messages = state["messages"]
        sink.bits = state["bits"]
        sink.edge_bits = {
            tuple(int(part) for part in key.split(",")): bits
            for key, bits in state["edge_bits"].items()
        }
        sink.fault_counts = dict(state["fault_counts"])
        sink.query_batches = state["query_batches"]
        sink.total_queries = state["total_queries"]
        sink.batches_by_label = dict(state["batches_by_label"])
        sink.charge_events = state["charge_events"]
        sink.charges_by_phase = dict(state["charges_by_phase"])
        sink.phase_span = dict(state["phase_span"])
        sink.charged_by_span = dict(state["charged_by_span"])
        sink.span_names = list(state["span_names"])
        # Coalesce counters arrived after repro-checkpoint/1 shipped;
        # default to zero so pre-scheduler snapshots still load.
        sink.coalesced_batches = state.get("coalesced_batches", 0)
        sink.coalesced_queries = state.get("coalesced_queries", 0)
        sink.coalesced_submissions = state.get("coalesced_submissions", 0)
        sink.coalesce_rounds = state.get("coalesce_rounds", 0)
        sink.memo_hits = state.get("memo_hits", 0)
        sink.memo_misses = state.get("memo_misses", 0)
        # Memo eviction and serve counters arrived with the serving
        # daemon (PR 6); same backward-compat defaulting.
        sink.memo_evictions = state.get("memo_evictions", 0)
        sink.serve_requests = dict(state.get("serve_requests", {}))
        sink.serve_queries = state.get("serve_queries", 0)
        sink.serve_batches = state.get("serve_batches", 0)
        sink.serve_batch_rounds = state.get("serve_batch_rounds", 0)
        sink.serve_drains = state.get("serve_drains", 0)
        # Scenario counters arrived with the scenario matrix (PR 9);
        # same backward-compat defaulting.
        sink.scenario_events = state.get("scenario_events", 0)
        sink.wall_clock_by_link = dict(state.get("wall_clock_by_link", {}))
        # Sketch counters arrived with the sketch serving layer (PR 10);
        # same backward-compat defaulting.
        sink.sketch_ops = dict(state.get("sketch_ops", {}))
        sink.sketch_memo = dict(state.get("sketch_memo", {}))
        sink.memo_invalidations = state.get("memo_invalidations", 0)
        return sink

    # -- derived --------------------------------------------------------

    @property
    def total_charged(self) -> int:
        """Total rounds charged across every ledger phase."""
        return sum(self.charges_by_phase.values())

    @property
    def total_faults(self) -> int:
        return sum(self.fault_counts.values())

    def busiest_edge(self) -> Tuple[Optional[Tuple[int, int]], int]:
        """(directed edge, bits) carrying the most payload bits.

        Ties break deterministically to the lowest ``(src, dst)`` pair;
        returns ``(None, 0)`` when no message was delivered.
        """
        if not self.edge_bits:
            return (None, 0)
        edge = min(self.edge_bits, key=lambda e: (-self.edge_bits[e], e))
        return (edge, self.edge_bits[edge])

    def summary(self) -> Dict[str, Any]:
        """A plain-dict digest (JSON-ready except the edge tuple)."""
        edge, edge_bits = self.busiest_edge()
        return {
            "engine_rounds": self.engine_rounds,
            "vectorized_rounds": self.vectorized_rounds,
            "rounds_by_model": dict(self.rounds_by_model),
            "messages": self.messages,
            "bits": self.bits,
            "busiest_edge": edge,
            "busiest_edge_bits": edge_bits,
            "fault_counts": dict(self.fault_counts),
            "query_batches": self.query_batches,
            "total_queries": self.total_queries,
            "charged_rounds": self.total_charged,
            "charges_by_phase": dict(self.charges_by_phase),
            "charged_by_span": dict(self.charged_by_span),
            "spans": list(self.span_names),
            "coalesced_batches": self.coalesced_batches,
            "coalesced_queries": self.coalesced_queries,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_evictions": self.memo_evictions,
            "serve_requests": dict(self.serve_requests),
            "serve_batches": self.serve_batches,
            "wall_clock_by_link": dict(self.wall_clock_by_link),
            "sketch_ops": dict(self.sketch_ops),
            "sketch_memo": dict(self.sketch_memo),
            "memo_invalidations": self.memo_invalidations,
        }
