"""Sinks: where recorded events land.

The sink contract is two methods — ``handle(event)`` called synchronously
per event, and ``close()`` called when the owning recorder is closed.
Sinks must not mutate events (they are shared between sinks) and must not
assume any particular emitter: a sink sees whatever mixture of engine,
fault, query, and ledger events the run produces.

This module holds the dependency-free sinks; the ``Trace``-compatible
sink lives in :mod:`repro.congest.tracing` (:class:`TraceSink`) next to
the :class:`~repro.congest.tracing.Trace` type it builds, and the JSONL
writer in :mod:`repro.obs.jsonl` next to its schema validator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .events import CHARGE, DELIVER, FAULT, QUERY_BATCH, ROUND, SPAN


class Sink:
    """Base sink: subclasses override :meth:`handle`."""

    def handle(self, event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (default: nothing to release)."""


class MemorySink(Sink):
    """Keeps every event in an in-memory list, in emission order."""

    def __init__(self):
        self.events: List = []

    def handle(self, event) -> None:
        self.events.append(event)

    def events_of_kind(self, kind: str) -> List:
        return [e for e in self.events if e.kind == kind]


class MetricsSink(Sink):
    """Aggregating counters: the one-pass metrics registry.

    Accumulates everything ``python -m repro trace`` reports — engine
    round/message/bit totals, per-edge bit volume, fault counts by kind,
    query-batch counts, and per-phase round charges (with the span each
    phase was first charged under) — without retaining the events.
    """

    def __init__(self):
        self.engine_rounds = 0
        self.messages = 0
        self.bits = 0
        self.edge_bits: Dict[Tuple[int, int], int] = {}
        self.fault_counts: Dict[str, int] = {}
        self.query_batches = 0
        self.total_queries = 0
        self.batches_by_label: Dict[str, int] = {}
        self.charge_events = 0
        self.charges_by_phase: Dict[str, int] = {}
        self.phase_span: Dict[str, str] = {}
        self.charged_by_span: Dict[str, int] = {}
        self.span_names: List[str] = []

    def handle(self, event) -> None:
        kind = event.kind
        if kind == DELIVER:
            self.messages += 1
            self.bits += event.bits
            edge = (event.src, event.dst)
            self.edge_bits[edge] = self.edge_bits.get(edge, 0) + event.bits
        elif kind == ROUND:
            if event.round_no > self.engine_rounds:
                self.engine_rounds = event.round_no
        elif kind == CHARGE:
            self.charge_events += 1
            self.charges_by_phase[event.phase] = (
                self.charges_by_phase.get(event.phase, 0) + event.rounds
            )
            self.phase_span.setdefault(event.phase, event.span)
            self.charged_by_span[event.span] = (
                self.charged_by_span.get(event.span, 0) + event.rounds
            )
        elif kind == QUERY_BATCH:
            self.query_batches += 1
            self.total_queries += event.size
            self.batches_by_label[event.label] = (
                self.batches_by_label.get(event.label, 0) + 1
            )
        elif kind == FAULT:
            self.fault_counts[event.fault] = (
                self.fault_counts.get(event.fault, 0) + 1
            )
        elif kind == SPAN:
            if event.phase == "begin" and event.span not in self.span_names:
                self.span_names.append(event.span)

    # -- derived --------------------------------------------------------

    @property
    def total_charged(self) -> int:
        """Total rounds charged across every ledger phase."""
        return sum(self.charges_by_phase.values())

    @property
    def total_faults(self) -> int:
        return sum(self.fault_counts.values())

    def busiest_edge(self) -> Tuple[Optional[Tuple[int, int]], int]:
        """(directed edge, bits) carrying the most payload bits.

        Ties break deterministically to the lowest ``(src, dst)`` pair;
        returns ``(None, 0)`` when no message was delivered.
        """
        if not self.edge_bits:
            return (None, 0)
        edge = min(self.edge_bits, key=lambda e: (-self.edge_bits[e], e))
        return (edge, self.edge_bits[edge])

    def summary(self) -> Dict[str, Any]:
        """A plain-dict digest (JSON-ready except the edge tuple)."""
        edge, edge_bits = self.busiest_edge()
        return {
            "engine_rounds": self.engine_rounds,
            "messages": self.messages,
            "bits": self.bits,
            "busiest_edge": edge,
            "busiest_edge_bits": edge_bits,
            "fault_counts": dict(self.fault_counts),
            "query_batches": self.query_batches,
            "total_queries": self.total_queries,
            "charged_rounds": self.total_charged,
            "charges_by_phase": dict(self.charges_by_phase),
            "charged_by_span": dict(self.charged_by_span),
            "spans": list(self.span_names),
        }
