"""Lemma 3: parallel-query minimum/maximum finding (Dürr–Høyer [DH96]).

The threshold-descent algorithm: keep a current best value y and run the
parallel Grover search of Lemma 2 for an index with x_i < y; every success
lowers the threshold, and the standard Dürr–Høyer analysis bounds the total
expected parallel queries by O(⌈√(k/p)⌉).  When the minimum is attained by
at least ℓ elements the final (dominant) searches have ℓ marked items, so
the budget drops to O(⌈√(k/(ℓp))⌉) — the second part of Lemma 3, which is
what the graph applications (Lemma 23's heavy-cycle search) exploit.

Level-S fidelity notes: every Grover iteration is a metered batch of p
queries, success probabilities follow the exact sin²((2j+1)θ) law for the
current marked fraction, and the values of all queried indices are used
classically (taking a batch's minimum is free post-processing, exactly as
a real implementation would keep measured registers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from .grover import _sample_marked_subset, _sample_subset, marked_subset_fraction
from .oracle import BatchOracle

#: Budget multiplier: Dürr–Høyer's expected total is a small constant times
#: √(k/(ℓp)); tripling for Markov gives failure probability ≤ 1/3.
BUDGET_FACTOR = 10.0


@dataclass
class MinimumOutcome:
    index: Optional[int]
    value: object
    batches_used: int
    threshold_updates: int


def expected_batches(k: int, p: int, multiplicity: int = 1) -> float:
    """The Lemma 3 bound O(⌈√(k/(ℓp))⌉), without the hidden constant."""
    return max(1.0, math.sqrt(k / (max(multiplicity, 1) * p)))


def find_minimum(
    oracle: BatchOracle,
    rng: np.random.Generator,
    multiplicity: int = 1,
    key: Callable = lambda v: v,
) -> MinimumOutcome:
    """Find argmin over the oracle's values with probability ≥ 2/3.

    Args:
        oracle: metered input access.
        rng: randomness source.
        multiplicity: a known lower bound ℓ on how many indices attain the
            minimum; the budget shrinks by √ℓ (Lemma 3, second part).
        key: comparison key applied to oracle values (e.g. ``lambda v: -v``
            turns this into maximum finding; infinities mark invalid).
    """
    k = oracle.k
    p = oracle.ledger.parallelism
    start = oracle.ledger.batches

    if p >= k:
        values = oracle.query_batch(range(k), label="min-full")
        best = min(range(k), key=lambda i: key(values[i]))
        return MinimumOutcome(best, values[best], oracle.ledger.batches - start, 0)

    # Initial threshold: one batch over a random subset.
    subset = _sample_subset(rng, k, p)
    values = oracle.query_batch(subset, label="min-init")
    best_pos = min(range(len(subset)), key=lambda i: key(values[i]))
    best_index, best_value = subset[best_pos], values[best_pos]
    updates = 0

    truth = list(oracle.peek_all())
    budget = math.ceil(BUDGET_FACTOR * expected_batches(k, p, multiplicity)) + 5
    m = 1.0
    m_cap = 2.0 * math.sqrt(k / p) + 1.0
    while oracle.ledger.batches - start < budget:
        marked = [i for i in range(k) if key(truth[i]) < key(best_value)]
        if not marked:
            # The threshold is already the minimum; remaining budget would
            # be spent confirming.  A real run cannot know this, so we
            # keep paying search costs until a confirmation cutoff — the
            # same 3×-expectation Markov cutoff as Lemma 2 — then stop.
            confirm = math.ceil(
                3 * math.sqrt(k / (max(multiplicity, 1) * p))
            ) + 2
            remaining = min(confirm, budget - (oracle.ledger.batches - start))
            for _ in range(max(0, remaining)):
                oracle.query_batch(
                    _sample_subset(rng, k, p), label="min-confirm"
                )
            break

        f = marked_subset_fraction(k, len(marked), p)
        theta = math.asin(math.sqrt(f))
        j = int(rng.integers(0, max(1, math.ceil(m))))
        j = min(j, budget - (oracle.ledger.batches - start))
        improved = False
        for _ in range(j):
            batch = _sample_subset(rng, k, p)
            batch_values = oracle.query_batch(batch, label="min-iterate")
            # Free classical use of measured registers: a batch may reveal
            # a better threshold directly.
            pos = min(range(len(batch)), key=lambda i: key(batch_values[i]))
            if key(batch_values[pos]) < key(best_value):
                best_index, best_value = batch[pos], batch_values[pos]
                improved = True
        if improved:
            updates += 1
            m = 1.0
            continue
        if oracle.ledger.batches - start >= budget:
            break
        if rng.random() < math.sin((2 * j + 1) * theta) ** 2:
            subset = _sample_marked_subset(rng, k, p, marked)
            values = oracle.query_batch(subset, label="min-verify")
            pos = min(range(len(subset)), key=lambda i: key(values[i]))
            if key(values[pos]) < key(best_value):
                best_index, best_value = subset[pos], values[pos]
                updates += 1
            m = 1.0
        else:
            oracle.query_batch(_sample_subset(rng, k, p), label="min-verify")
            m = min(6 / 5 * m, m_cap)

    return MinimumOutcome(
        best_index, best_value, oracle.ledger.batches - start, updates
    )


def find_maximum(
    oracle: BatchOracle,
    rng: np.random.Generator,
    multiplicity: int = 1,
) -> MinimumOutcome:
    """Lemma 3's 'equivalently, the maximum': minimum under a negated key."""
    outcome = find_minimum(
        oracle, rng, multiplicity=multiplicity, key=_NegatedKey()
    )
    return outcome


class _NegatedKey:
    """Order-reversing key that tolerates mixed int/float values."""

    def __call__(self, v):
        return -float(v)
