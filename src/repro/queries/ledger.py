"""Query accounting for (b, p)-parallel-query algorithms (Definition 1).

A :class:`QueryLedger` meters every use of the input oracle.  One *batch*
is one application of O^{⊗p}: up to ``p`` simultaneous queries.  The
ledger records each batch so benchmarks can verify the paper's (b, p)
bounds — b is ``ledger.batches`` — and so the CONGEST framework can charge
network rounds per batch.

Each recorded batch is also emitted as a ``query_batch`` event on the
observability spine (:mod:`repro.obs`), so a single event stream carries
query accounting next to engine rounds and ledger charges.  The ledger's
own records and semantics (including :class:`ParallelismViolation`) are
unchanged; emission happens only after a batch passes validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs.recorder import Recorder, current_recorder


class ParallelismViolation(ValueError):
    """An algorithm put more than p queries in one batch."""

    def __init__(self, size: int, parallelism: int):
        self.size = size
        self.parallelism = parallelism
        super().__init__(
            f"batch of {size} queries exceeds parallelism p = {parallelism}"
        )


@dataclass
class BatchRecord:
    """One recorded oracle batch."""

    size: int
    label: str = ""


class QueryLedger:
    """Meters batches of parallel queries against a parallelism cap p.

    Args:
        parallelism: the cap p on simultaneous queries per batch.
        recorder: observability bus to emit ``query_batch`` events on;
            ``None`` (default) resolves the ambient recorder at record
            time, so ledgers built before a recorder is installed still
            report into it.
    """

    def __init__(self, parallelism: int, recorder: Optional[Recorder] = None):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        self.records: List[BatchRecord] = []
        self.recorder = recorder

    def record(self, size: int, label: str = "") -> None:
        if size < 1:
            raise ValueError("a batch must contain at least one query")
        if size > self.parallelism:
            raise ParallelismViolation(size, self.parallelism)
        self.records.append(BatchRecord(size=size, label=label))
        rec = self.recorder if self.recorder is not None else current_recorder()
        if rec.active:
            rec.query_batch(size, label)

    @property
    def batches(self) -> int:
        """b — the number of O^{⊗p} applications so far."""
        return len(self.records)

    @property
    def total_queries(self) -> int:
        return sum(r.size for r in self.records)

    def batches_labeled(self, label: str) -> int:
        return sum(1 for r in self.records if r.label == label)

    def signature(self) -> tuple:
        """The hashable ``((size, label), ...)`` record trace.

        Two ledgers with equal signatures metered byte-for-byte the same
        batch sequence.  The :mod:`repro.sched` equivalence verifier pins
        coalesced-vs-serial runs on this: a caller's ledger under the
        scheduler must carry the *exact* signature its private serial
        oracle would have produced.
        """
        return tuple((r.size, r.label) for r in self.records)

    def reset(self) -> None:
        self.records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryLedger(p={self.parallelism}, b={self.batches}, "
            f"queries={self.total_queries})"
        )
