"""Query accounting for (b, p)-parallel-query algorithms (Definition 1).

A :class:`QueryLedger` meters every use of the input oracle.  One *batch*
is one application of O^{⊗p}: up to ``p`` simultaneous queries.  The
ledger records each batch so benchmarks can verify the paper's (b, p)
bounds — b is ``ledger.batches`` — and so the CONGEST framework can charge
network rounds per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


class ParallelismViolation(ValueError):
    """An algorithm put more than p queries in one batch."""

    def __init__(self, size: int, parallelism: int):
        self.size = size
        self.parallelism = parallelism
        super().__init__(
            f"batch of {size} queries exceeds parallelism p = {parallelism}"
        )


@dataclass
class BatchRecord:
    """One recorded oracle batch."""

    size: int
    label: str = ""


class QueryLedger:
    """Meters batches of parallel queries against a parallelism cap p."""

    def __init__(self, parallelism: int):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        self.records: List[BatchRecord] = []

    def record(self, size: int, label: str = "") -> None:
        if size < 1:
            raise ValueError("a batch must contain at least one query")
        if size > self.parallelism:
            raise ParallelismViolation(size, self.parallelism)
        self.records.append(BatchRecord(size=size, label=label))

    @property
    def batches(self) -> int:
        """b — the number of O^{⊗p} applications so far."""
        return len(self.records)

    @property
    def total_queries(self) -> int:
        return sum(r.size for r in self.records)

    def batches_labeled(self, label: str) -> int:
        return sum(1 for r in self.records if r.label == label)

    def reset(self) -> None:
        self.records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryLedger(p={self.parallelism}, b={self.batches}, "
            f"queries={self.total_queries})"
        )
