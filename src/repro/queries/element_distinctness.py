"""Lemma 5: parallel-query element distinctness (Ambainis walk, rebalanced).

The paper reproves [JMW16]'s optimal (O(⌈(k/p)^{2/3}⌉), p) bound by taking
p classical random-walk steps on the Johnson graph J(k, z) per quantum
step, with the subset size rebalanced to z = k^{2/3} p^{1/3}:

    cost = S + (1/√ε)(C + U/√δ)
         = z/p  +  (k/z)·√(z/p)·1      (ε = z²/k², δ = p/z)
         = O((k/p)^{2/3}).

Level-S fidelity: the walk is *actually run* — a real z-subset is
maintained, setup queries it in ⌈z/p⌉ metered batches, and each of the
⌈√(1/ε)⌉·⌈√(1/δ)⌉ update steps replaces p elements with p freshly queried
ones, checking the register for collisions for free (C = 0 queries, as in
the paper).  If the classical trajectory happens to hit a collision it is
returned directly; otherwise the quantum walk's success guarantee is
emulated at the end of the budget: with probability ``success_probability``
(≥ 2/3, as the lemma states) the collision the amplified walk would have
measured is produced, then *re-verified through metered queries* before
being reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .oracle import BatchOracle

#: Emulated success probability of the amplified quantum walk; the lemma
#: guarantees ≥ 2/3 and a real implementation can boost it, so we model a
#: modestly amplified walk.
DEFAULT_SUCCESS_PROBABILITY = 0.80


@dataclass
class CollisionOutcome:
    pair: Optional[Tuple[int, int]]
    value: object
    batches_used: int
    walk_steps: int
    found_classically: bool

    @property
    def found(self) -> bool:
        return self.pair is not None


def walk_parameters(k: int, p: int) -> Tuple[int, int, int]:
    """(z, setup_batches, update_steps) per the Lemma 5 balance."""
    z = max(p + 1, min(k // 2, math.ceil(k ** (2 / 3) * p ** (1 / 3))))
    setup_batches = math.ceil(z / p)
    epsilon = (z / k) ** 2
    delta = p / z
    update_steps = math.ceil(math.sqrt(1.0 / epsilon)) * math.ceil(
        math.sqrt(1.0 / delta)
    )
    return z, setup_batches, update_steps


def expected_batches(k: int, p: int) -> float:
    """The Lemma 5 bound O(⌈(k/p)^{2/3}⌉), without the hidden constant."""
    return max(1.0, (k / p) ** (2 / 3))


def _collision_in(indices: Sequence[int], values: Sequence) -> Optional[Tuple[int, int]]:
    seen: Dict[object, int] = {}
    for i, v in zip(indices, values):
        if v in seen and seen[v] != i:
            return (min(seen[v], i), max(seen[v], i))
        seen[v] = i
    return None


def _true_collision(
    oracle: BatchOracle, rng: np.random.Generator
) -> Optional[Tuple[int, int]]:
    """Physics peek: a uniformly random colliding pair, if any exists."""
    positions: Dict[object, List[int]] = {}
    for i, v in enumerate(oracle.peek_all()):
        positions.setdefault(v, []).append(i)
    pairs = []
    for idxs in positions.values():
        if len(idxs) > 1:
            pairs.extend(
                (idxs[a], idxs[b])
                for a in range(len(idxs))
                for b in range(a + 1, len(idxs))
            )
    if not pairs:
        return None
    return pairs[int(rng.integers(0, len(pairs)))]


def find_collision(
    oracle: BatchOracle,
    rng: np.random.Generator,
    success_probability: float = DEFAULT_SUCCESS_PROBABILITY,
) -> CollisionOutcome:
    """Find a pair i ≠ j with x_i = x_j (Lemma 5), or report none found.

    A (O(⌈(k/p)^{2/3}⌉), p)-parallel-query algorithm succeeding with
    probability ≥ 2/3 whenever a collision exists.
    """
    k = oracle.k
    p = oracle.ledger.parallelism
    start = oracle.ledger.batches

    if p >= k:
        values = oracle.query_batch(range(k), label="ed-full")
        pair = _collision_in(range(k), values)
        return CollisionOutcome(
            pair,
            values[pair[0]] if pair else None,
            oracle.ledger.batches - start,
            0,
            True,
        )

    if p >= (k + 1) // 2:
        # Two parallel queries read the whole input: deterministic.  (The
        # paper handles large p with an ε = 1/64 subset query repeated a
        # constant number of times; a full read is within the same O(1)
        # batch budget and has one-sided zero error, so we use it for all
        # p ≥ k/2 and let the z-clamped walk below cover k/8 ≤ p < k/2 —
        # its z = p+1 setup is ⌈z/p⌉ = 2 batches and its step count is
        # O(1) there, matching the lemma's constant-regime claim.)
        half = (k + 1) // 2
        values_lo = oracle.query_batch(range(half), label="ed-full")
        values_hi = oracle.query_batch(range(half, k), label="ed-full")
        values = list(values_lo) + list(values_hi)
        pair = _collision_in(range(k), values)
        return CollisionOutcome(
            pair,
            values[pair[0]] if pair else None,
            oracle.ledger.batches - start,
            0,
            True,
        )

    z, setup_batches, update_steps = walk_parameters(k, p)

    # Setup S: query a random z-subset in ⌈z/p⌉ batches.
    subset = list(rng.choice(k, size=z, replace=False))
    register: Dict[int, object] = {}
    for chunk_start in range(0, z, p):
        chunk = subset[chunk_start : chunk_start + p]
        values = oracle.query_batch(chunk, label="ed-setup")
        register.update(zip(chunk, values))

    pair = _collision_in(list(register), list(register.values()))
    steps = 0
    while pair is None and steps < update_steps:
        steps += 1
        # Update U: p replacements = one parallel query (paper, Lemma 5).
        inside = list(register)
        outside = [i for i in range(k) if i not in register]
        leave = rng.choice(len(inside), size=min(p, len(outside)), replace=False)
        enter = rng.choice(len(outside), size=min(p, len(outside)), replace=False)
        enter_ids = [outside[i] for i in enter]
        values = oracle.query_batch(enter_ids, label="ed-update")
        for slot, new_id, value in zip(leave, enter_ids, values):
            register.pop(inside[slot])
            register[new_id] = value
        # Check C: free, the register values are held classically.
        pair = _collision_in(list(register), list(register.values()))

    if pair is not None:
        return CollisionOutcome(
            pair, register[pair[0]], oracle.ledger.batches - start, steps, True
        )

    # The classical trajectory exhausted the quantum budget without luck;
    # emulate the amplified walk's measurement outcome.
    truth_pair = _true_collision(oracle, rng)
    if truth_pair is not None and rng.random() < success_probability:
        i, j = truth_pair
        values = oracle.query_batch([i, j], label="ed-verify")
        if values[0] == values[1]:
            return CollisionOutcome(
                (i, j), values[0], oracle.ledger.batches - start, steps, False
            )
    return CollisionOutcome(
        None, None, oracle.ledger.batches - start, steps, False
    )
