"""Lemma 6: parallel-query mean estimation (Montanaro [Mon15], parallelized).

The paper's one-line parallelization: let Y be the average of p samples of
X; then Var(Y) = σ²/p, and running Montanaro's ε-additive mean estimator
([Mon15] Theorem 5) on Y with σ' = σ/√p gives a

    ( O(⌈ (σ/(√p·ε)) · log^{3/2}(σ/(√p·ε)) · loglog(σ/(√p·ε)) ⌉), p )

parallel-query algorithm for estimating E[X] to additive error ε with
probability ≥ 2/3.

Level-S fidelity: the batch count b is computed from the paper's formula
and each batch queries p independent sample indices through the metered
oracle (one U_Y application = p U_X applications).  The returned estimate
is drawn from an error model matching the guarantee: ε-additive with the
configured success probability, with the estimator's sub-ε concentration
taken from the classical mean of the actually-queried samples where that
is already strong enough (free classical post-processing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .oracle import BatchOracle

DEFAULT_SUCCESS_PROBABILITY = 0.85


@dataclass
class MeanEstimate:
    estimate: float
    batches_used: int
    epsilon: float
    samples_queried: int


def batch_count(sigma: float, p: int, epsilon: float) -> int:
    """b from Lemma 6: ⌈(σ/(√p ε))·log^{3/2}(σ/(√p ε))·loglog(σ/(√p ε))⌉."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    base = sigma / (math.sqrt(p) * epsilon)
    if base <= 1.0:
        return 1
    log_term = max(math.log(base), 1.0)
    loglog_term = max(math.log(log_term), 1.0)
    return math.ceil(base * log_term ** 1.5 * loglog_term)


def estimate_mean(
    oracle: BatchOracle,
    sigma: float,
    epsilon: float,
    rng: np.random.Generator,
    success_probability: float = DEFAULT_SUCCESS_PROBABILITY,
) -> MeanEstimate:
    """Estimate the mean of the oracle's values to additive error ε.

    ``sigma`` is a known upper bound on the standard deviation of a value
    drawn at a uniformly random index (the paper's applications always
    have one: σ ≤ D for eccentricities).
    """
    k = oracle.k
    p = oracle.ledger.parallelism
    start = oracle.ledger.batches

    b = batch_count(sigma, p, epsilon)
    queried = []
    for _ in range(b):
        batch = [int(i) for i in rng.integers(0, k, size=p)]
        values = oracle.query_batch(batch, label="mean-batch")
        queried.extend(float(v) for v in values)

    truth = [float(v) for v in oracle.peek_all()]
    true_mean = sum(truth) / len(truth)

    classical_mean = sum(queried) / len(queried)
    classical_error = sigma / math.sqrt(len(queried))
    if classical_error <= epsilon / 3:
        # The metered samples alone already concentrate within ε/3; no
        # quantum magic needed (this regime occurs for large p or loose ε).
        estimate = classical_mean
    elif rng.random() < success_probability:
        # Quantum-amplified estimate: within ε of the truth, concentrated
        # like the amplitude-estimation output (uniform over the ε-ball is
        # a conservative model of the discretized phase readout).
        estimate = true_mean + float(rng.uniform(-epsilon, epsilon)) * (2 / 3)
    else:
        # Failure mode: an estimate off by between ε and a few ε, as a
        # mis-rounded phase bin would produce.
        sign = 1.0 if rng.random() < 0.5 else -1.0
        estimate = true_mean + sign * epsilon * float(rng.uniform(1.0, 3.0))

    return MeanEstimate(
        estimate=estimate,
        batches_used=oracle.ledger.batches - start,
        epsilon=epsilon,
        samples_queried=len(queried),
    )
