"""Oracle abstractions for parallel-query algorithms.

Two faces, one contract:

* **Algorithm-facing** — :meth:`BatchOracle.query_batch` answers up to p
  concrete index queries and meters them on the ledger.  Everything an
  algorithm *learns about the input* must arrive through this method.
* **Physics-facing** — :meth:`BatchOracle.peek_all` exposes the full input
  to the *emulation machinery only*.  A quantum computer evolves amplitudes
  that depend on the whole input; a classical simulation of its outcome
  distribution therefore needs the whole input too.  The rule enforced
  across :mod:`repro.queries` is: ``peek_all`` may be used to compute the
  probability distribution of an outcome (e.g. Grover's success chance, or
  which marked index a measurement collapses to), never to shortcut the
  metered learning of a value the algorithm then reports.  Reported
  indices are always re-verified through metered queries.

The CONGEST framework provides its own :class:`BatchOracle` implementation
whose ``query_batch`` additionally charges network rounds (Theorem 8), and
:class:`repro.sched.CallerOracle` adapts one caller's slot on a shared
query-batch coalescing scheduler to this same interface — algorithms never
see which implementation answers them.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

from .ledger import QueryLedger


@runtime_checkable
class BatchOracle(Protocol):
    """The oracle interface consumed by all parallel-query algorithms."""

    ledger: QueryLedger

    @property
    def k(self) -> int:
        """Input length."""
        ...

    def query_batch(self, indices: Sequence[int], label: str = "") -> List:
        """Answer up to p queries; meters one batch on the ledger."""
        ...

    def peek_all(self) -> Sequence:
        """Physics backdoor: the full input, for outcome simulation only."""
        ...


class StringOracle:
    """A :class:`BatchOracle` over an in-memory input string x ∈ A^k."""

    def __init__(self, values: Sequence, ledger: QueryLedger):
        if len(values) == 0:
            raise ValueError("oracle input must be non-empty")
        self._values = list(values)
        self.ledger = ledger

    @property
    def k(self) -> int:
        return len(self._values)

    def query_batch(self, indices: Sequence[int], label: str = "") -> List:
        indices = list(indices)
        for i in indices:
            if not 0 <= i < self.k:
                raise IndexError(f"query index {i} out of range [0, {self.k})")
        self.ledger.record(len(indices), label=label)
        return [self._values[i] for i in indices]

    def peek_all(self) -> Sequence:
        return self._values


class MaskedOracle:
    """A view of another oracle with some indices masked out.

    Used by find-all Grover to exclude already-found indices: masked
    positions read as the supplied ``mask_value``.  Queries are metered on
    the *underlying* oracle's ledger (masking is free classical
    post-processing by the querier).
    """

    def __init__(self, base: BatchOracle, masked: set, mask_value):
        self.base = base
        self.masked = set(masked)
        self.mask_value = mask_value

    @property
    def ledger(self) -> QueryLedger:
        return self.base.ledger

    @property
    def k(self) -> int:
        return self.base.k

    def query_batch(self, indices: Sequence[int], label: str = "") -> List:
        raw = self.base.query_batch(indices, label=label)
        return [
            self.mask_value if i in self.masked else v
            for i, v in zip(indices, raw)
        ]

    def peek_all(self) -> Sequence:
        return [
            self.mask_value if i in self.masked else v
            for i, v in enumerate(self.base.peek_all())
        ]
