"""Lemma 2: parallel-query Grover search.

The paper's improvement over the split-into-p-parts approach of
[Zal99; GR04] is to run one Grover search over *p-subsets* of [k]: a
subset is marked iff it contains a marked index, so the marked fraction is
f = 1 − C(k−t, p)/C(k, p) ≥ min(1, tp/k)/e and a single parallel query
(one application of O^{⊗p}) fully evaluates a subset.  BBHT exponential
search then finds a marked subset in O(√(1/f)) = O(⌈√(k/(tp))⌉) batches
in expectation, and Markov's cutoff at 3× the t=1 expectation makes the
worst case O(⌈√(k/p)⌉) with failure probability ≤ 1/3.

Emulation fidelity (Level S, see DESIGN.md §3): every Grover iteration is
metered as one batch of p queries through the oracle; the measurement
outcome is sampled from the *exact* amplitude law sin²((2j+1)·asin(√f)) —
the same law validated against the statevector simulator in
``tests/quantum`` — and any reported index is re-verified with a metered
query batch before being returned.

The legacy split-input strategy is also provided (:func:`find_one_split`)
for the E1 ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .oracle import BatchOracle, MaskedOracle

#: Cutoff multiplier implementing the paper's "stopping any of the
#: algorithms after 3 times their expected number" Markov argument (the
#: extra headroom covers the BBHT constant).
CUTOFF_FACTOR = 9.0


@dataclass
class SearchOutcome:
    """Result of a parallel Grover search."""

    index: Optional[int]
    value: object = None
    batches_used: int = 0

    @property
    def found(self) -> bool:
        return self.index is not None


def marked_subset_fraction(k: int, t: int, p: int) -> float:
    """f = 1 − C(k−t, p)/C(k, p): probability a random p-subset is marked."""
    if t <= 0:
        return 0.0
    if p >= k - t + 1:
        return 1.0
    log_unmarked = 0.0
    for i in range(p):
        log_unmarked += math.log((k - t - i) / (k - i))
    return -math.expm1(log_unmarked)


def expected_batches_one(k: int, t: int, p: int) -> float:
    """The paper's O(⌈√(k/(tp))⌉) expectation (up to the hidden constant)."""
    f = marked_subset_fraction(k, max(t, 1), p)
    return max(1.0, math.sqrt(1.0 / f)) if f > 0 else float("inf")


def expected_batches_all(k: int, t: int, p: int) -> float:
    """The paper's O(√(kt/p) + t) bound for finding all marked indices."""
    return sum(
        max(1.0, math.sqrt(k / (p * tau))) for tau in range(1, t + 1)
    ) + t


def _sample_subset(rng: np.random.Generator, k: int, p: int) -> List[int]:
    return list(rng.choice(k, size=min(p, k), replace=False))


def _sample_marked_subset(
    rng: np.random.Generator, k: int, p: int, marked: Sequence[int]
) -> List[int]:
    """A p-subset guaranteed to contain a marked index.

    Approximates the conditional distribution of a uniformly random marked
    subset: one uniformly random marked index plus p−1 others.
    """
    anchor = int(rng.choice(list(marked)))
    others = [i for i in range(k) if i != anchor]
    rest = list(rng.choice(others, size=min(p, k) - 1, replace=False))
    subset = rest + [anchor]
    rng.shuffle(subset)
    return subset


def _marked_indices(oracle: BatchOracle, predicate: Callable) -> List[int]:
    """Physics peek: which indices are marked (outcome simulation only)."""
    return [i for i, v in enumerate(oracle.peek_all()) if predicate(v)]


def find_one(
    oracle: BatchOracle,
    predicate: Callable,
    rng: np.random.Generator,
    growth: float = 6 / 5,
) -> SearchOutcome:
    """Find one index with ``predicate(x_i)`` true, or report none exists.

    A (O(⌈√(k/(tp))⌉), p)-parallel-query algorithm with success
    probability ≥ 2/3 (Lemma 2, first part).
    """
    k = oracle.k
    p = oracle.ledger.parallelism
    start = oracle.ledger.batches

    if p >= k:
        values = oracle.query_batch(range(k), label="grover-full")
        for i, v in enumerate(values):
            if predicate(v):
                return SearchOutcome(i, v, oracle.ledger.batches - start)
        return SearchOutcome(None, None, oracle.ledger.batches - start)

    marked = _marked_indices(oracle, predicate)
    f = marked_subset_fraction(k, len(marked), p)
    theta = math.asin(math.sqrt(f)) if f > 0 else 0.0

    cutoff = math.ceil(CUTOFF_FACTOR * math.sqrt(k / p)) + 3
    m = 1.0
    m_cap = 2.0 * math.sqrt(k / p) + 1.0
    while oracle.ledger.batches - start < cutoff:
        j = int(rng.integers(0, max(1, math.ceil(m))))
        j = min(j, cutoff - (oracle.ledger.batches - start))
        for _ in range(j):
            oracle.query_batch(_sample_subset(rng, k, p), label="grover-iterate")
        success = marked and rng.random() < math.sin((2 * j + 1) * theta) ** 2
        if oracle.ledger.batches - start >= cutoff:
            break
        if success:
            subset = _sample_marked_subset(rng, k, p, marked)
        else:
            subset = _sample_subset(rng, k, p)
        values = oracle.query_batch(subset, label="grover-verify")
        hits = [(i, v) for i, v in zip(subset, values) if predicate(v)]
        if hits:
            i, v = hits[int(rng.integers(0, len(hits)))]
            return SearchOutcome(i, v, oracle.ledger.batches - start)
        m = min(growth * m, m_cap)
    return SearchOutcome(None, None, oracle.ledger.batches - start)


def find_all(
    oracle: BatchOracle,
    predicate: Callable,
    rng: np.random.Generator,
    unmarked_value,
    confirmations: int = 2,
) -> Tuple[List[SearchOutcome], int]:
    """Find all marked indices (Lemma 2, second part).

    Runs :func:`find_one` repeatedly, masking found indices with
    ``unmarked_value`` (which must make ``predicate`` false), until
    ``confirmations`` consecutive searches report nothing.  Expected
    batches O(√(kt/p) + t).

    Returns:
        (list of found outcomes, total batches used).
    """
    if predicate(unmarked_value):
        raise ValueError("unmarked_value must not satisfy the predicate")
    start = oracle.ledger.batches
    found: List[SearchOutcome] = []
    found_set: Set[int] = set()
    misses = 0
    while misses < confirmations and len(found_set) < oracle.k:
        view = MaskedOracle(oracle, found_set, unmarked_value)
        outcome = find_one(view, predicate, rng)
        if outcome.found:
            misses = 0
            if outcome.index not in found_set:
                found_set.add(outcome.index)
                found.append(outcome)
        else:
            misses += 1
    return found, oracle.ledger.batches - start


def find_one_split(
    oracle: BatchOracle,
    predicate: Callable,
    rng: np.random.Generator,
) -> SearchOutcome:
    """The [Zal99; GR04] baseline: split [k] into p parts, Grover each.

    Ablation comparator for E1.  The split strategy commits to a fixed
    schedule up front: every part runs ⌈log(3p)⌉ repetitions of a
    full-length Grover search (so that each part fails with probability
    ≤ 1/(3p) and a union bound covers all p parts simultaneously) — the
    extra log(p) factor the paper's subset strategy avoids.  Because the
    parts run in lockstep and must all be driven to high confidence, no
    early exit is possible; every scheduled iteration is a metered batch.
    """
    k = oracle.k
    p = oracle.ledger.parallelism
    start = oracle.ledger.batches
    if p >= k:
        return find_one(oracle, predicate, rng)

    marked = set(_marked_indices(oracle, predicate))
    parts = np.array_split(np.arange(k), p)
    part_size = max(len(part) for part in parts)
    repetitions = max(1, math.ceil(math.log(3 * p)))
    # Without knowing t a part commits to the t = 1 iteration count; the
    # repetitions cover the failure probability.
    per_run = max(1, int(math.floor(math.pi / 4 * math.sqrt(part_size))))

    # The whole schedule is paid regardless of outcomes.
    for _ in range(repetitions * per_run):
        batch = [int(rng.choice(part)) for part in parts]
        oracle.query_batch(batch, label="grover-split")

    # Outcome: the part holding marked items succeeds per repetition with
    # the exact amplitude law; any repetition succeeding suffices.
    hit: Optional[int] = None
    for part in parts:
        candidates = [i for i in part if i in marked]
        if not candidates:
            continue
        theta = math.asin(math.sqrt(len(candidates) / len(part)))
        p_run = math.sin((2 * per_run + 1) * theta) ** 2
        if rng.random() < 1.0 - (1.0 - p_run) ** repetitions:
            hit = int(rng.choice(candidates))
            break

    # One final verification batch reads every part's measured index.
    verify = [int(rng.choice(part_ids)) for part_ids in parts]
    if hit is not None:
        verify[0] = hit
    values = oracle.query_batch(verify, label="grover-split-verify")
    if hit is not None and predicate(values[0]):
        return SearchOutcome(hit, values[0], oracle.ledger.batches - start)
    return SearchOutcome(None, None, oracle.ledger.batches - start)
