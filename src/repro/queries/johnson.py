"""Johnson graph J(k, z) spectral facts used by Lemma 5, verified numerically.

Lemma 5's proof leans on three quantitative claims about the walk space:

1. the spectral gap of J(k, z) is δ = Ω(1/z) for z ≤ k/2 [BH12] — in fact
   exactly δ = k / (z(k − z)) for the normalized walk;
2. the p-th power of the walk has gap ≥ 1 − (1 − δ)^p = Ω(pδ) = Ω(p/z)
   for p < z;
3. the marked fraction is ε ≥ z(z−1)/(k(k−1)) ≈ z²/k² when one colliding
   pair exists (a random z-subset contains both endpoints).

This module constructs J(k, z) explicitly for small parameters, computes
the exact spectra, and exposes the closed forms, so the repository's use
of these constants in :mod:`repro.queries.element_distinctness` rests on
machine-checked numerics rather than citation alone.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


def johnson_vertices(k: int, z: int) -> List[frozenset]:
    """All z-subsets of [k] (keep k ≤ ~12)."""
    if not 1 <= z <= k:
        raise ValueError(f"need 1 <= z <= k, got z={z}, k={k}")
    return [frozenset(c) for c in itertools.combinations(range(k), z)]


def johnson_walk_matrix(k: int, z: int) -> np.ndarray:
    """The normalized random-walk matrix of J(k, z).

    Vertices are z-subsets; edges join subsets differing by one swap, so
    the graph is z·(k−z)-regular and the walk matrix is A/(z(k−z)).
    """
    vertices = johnson_vertices(k, z)
    index = {v: i for i, v in enumerate(vertices)}
    size = len(vertices)
    degree = z * (k - z)
    walk = np.zeros((size, size))
    for v in vertices:
        inside = sorted(v)
        outside = [x for x in range(k) if x not in v]
        for leave in inside:
            for enter in outside:
                u = (v - {leave}) | {enter}
                walk[index[v], index[u]] = 1.0 / degree
    return walk


def spectral_gap(walk: np.ndarray) -> float:
    """1 − λ₂ of a stochastic symmetric walk matrix."""
    eigenvalues = np.sort(np.linalg.eigvalsh(walk))[::-1]
    return float(1.0 - eigenvalues[1])


def johnson_gap_closed_form(k: int, z: int) -> float:
    """The exact J(k, z) walk gap: k / (z(k − z)).

    Follows from the Johnson-scheme eigenvalues λ_j of the adjacency
    operator; the second-largest gives 1 − λ₁/deg = k/(z(k−z)) ≥ 1/z for
    z ≤ k/2 — the Ω(1/z) of [BH12] with its constant.
    """
    return k / (z * (k - z))


def power_walk_gap(walk: np.ndarray, p: int) -> float:
    """Spectral gap of the p-step walk."""
    return spectral_gap(np.linalg.matrix_power(walk, p))


@dataclass
class MarkedFraction:
    epsilon: float
    closed_form: float


def marked_fraction_one_pair(k: int, z: int) -> MarkedFraction:
    """Exact fraction of z-subsets containing both ends of one fixed pair.

    Counting: C(k−2, z−2)/C(k, z) = z(z−1)/(k(k−1)) ≥ (z/k)²·(1−1/z),
    the ε = z²/k² of Lemma 5 up to the paper's constants.
    """
    total = math.comb(k, z)
    containing = math.comb(k - 2, z - 2) if z >= 2 else 0
    return MarkedFraction(
        epsilon=containing / total,
        closed_form=z * (z - 1) / (k * (k - 1)),
    )


@dataclass
class WalkCostCheck:
    """All three Lemma 5 ingredients evaluated on one (k, z, p) instance."""

    k: int
    z: int
    p: int
    gap: float
    gap_closed_form: float
    power_gap: float
    power_gap_lower_bound: float
    epsilon: float

    @property
    def consistent(self) -> bool:
        return (
            abs(self.gap - self.gap_closed_form) < 1e-9
            and self.power_gap >= self.power_gap_lower_bound - 1e-9
            and self.gap >= 1.0 / self.z - 1e-9
        )


def check_walk_parameters(k: int, z: int, p: int) -> WalkCostCheck:
    """Compute exact spectra for one instance and compare to the claims."""
    walk = johnson_walk_matrix(k, z)
    gap = spectral_gap(walk)
    power_gap = power_walk_gap(walk, p)
    return WalkCostCheck(
        k=k,
        z=z,
        p=p,
        gap=gap,
        gap_closed_form=johnson_gap_closed_form(k, z),
        power_gap=power_gap,
        power_gap_lower_bound=1.0 - (1.0 - gap) ** p,
        epsilon=marked_fraction_one_pair(k, z).epsilon,
    )
