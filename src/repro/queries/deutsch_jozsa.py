"""The Deutsch–Jozsa decision as a parallel-query algorithm.

DJ is the paper's b = O(1), p = 1 example: a single query in superposition
over all of [k] (plus its uncomputation) decides constant-vs-balanced with
zero error.  The oracle batch here is *superposed* — it does not name
concrete indices, and its network cost in Theorem 8 depends only on the
register width log(k), not on k — so the oracle interface gains a
``superposed`` marker: the ledger meters the batch, but no concrete index
list exists.

The decision logic itself is the exact circuit of
:mod:`repro.quantum.deutsch_jozsa`, evaluated on the oracle's full input
(the physics peek — here the peek *is* the algorithm's single superposed
query, which touches every index at amplitude 1/√k).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantum.deutsch_jozsa import check_promise, is_constant
from .oracle import BatchOracle


@dataclass
class DJDecision:
    constant: bool
    batches_used: int
    error_probability: float = 0.0


def decide(oracle: BatchOracle) -> DJDecision:
    """Decide constant-vs-balanced with zero error in 2 superposed queries.

    The two metered batches are the query and its uncomputation (the
    framework must return the query register to |0...0>, Theorem 8).
    Raises :class:`repro.quantum.deutsch_jozsa.PromiseViolation` if the
    input violates the promise.
    """
    start = oracle.ledger.batches
    bits = [int(v) & 1 for v in oracle.peek_all()]
    check_promise(bits)
    # The superposed query and its uncompute: one metered batch each.
    # Oracles that charge network rounds expose query_superposed; plain
    # string oracles just meter the ledger.
    if hasattr(oracle, "query_superposed"):
        oracle.query_superposed(label="dj-query")
        oracle.query_superposed(label="dj-uncompute")
    else:
        oracle.ledger.record(1, label="dj-query")
        oracle.ledger.record(1, label="dj-uncompute")
    return DJDecision(
        constant=is_constant(bits),
        batches_used=oracle.ledger.batches - start,
    )
