"""Level-S parallel-query quantum algorithms (paper Section 2).

Each module implements one lemma as a stochastic process whose outcome
distribution follows the exact amplitude laws validated in
``tests/quantum``, with every oracle access metered by a
:class:`~repro.queries.ledger.QueryLedger` so the (b, p) bounds are
measurable.
"""

from . import (
    deutsch_jozsa,
    element_distinctness,
    grover,
    johnson,
    mean_estimation,
    minimum,
)
from .ledger import BatchRecord, ParallelismViolation, QueryLedger
from .oracle import BatchOracle, MaskedOracle, StringOracle

__all__ = [
    "deutsch_jozsa",
    "johnson",
    "element_distinctness",
    "grover",
    "mean_estimation",
    "minimum",
    "BatchRecord",
    "ParallelismViolation",
    "QueryLedger",
    "BatchOracle",
    "MaskedOracle",
    "StringOracle",
]
