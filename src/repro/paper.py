"""Paper-to-code index: where each result of the paper lives.

A reproduction repository should be navigable by the paper's own
numbering.  ``where_is("Lemma 10")`` returns the implementing objects,
the experiment that measures the result, and its tests; the registry is
itself tested (every referenced object must import and resolve).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ResultEntry:
    """One paper result mapped into the repository."""

    result: str
    statement: str
    implementations: Tuple[str, ...]
    experiment: Optional[str] = None
    notes: str = ""


REGISTRY: Dict[str, ResultEntry] = {
    entry.result: entry
    for entry in [
        ResultEntry(
            "Definition 1",
            "(b, p)-parallel-query quantum algorithms",
            ("repro.queries.ledger.QueryLedger", "repro.queries.oracle.BatchOracle"),
        ),
        ResultEntry(
            "Lemma 2",
            "parallel Grover search: find-one in O(⌈√(k/(tp))⌉) batches, "
            "find-all in O(√(kt/p)+t)",
            ("repro.queries.grover.find_one", "repro.queries.grover.find_all",
             "repro.queries.grover.find_one_split"),
            experiment="E1",
        ),
        ResultEntry(
            "Lemma 3",
            "parallel minimum/maximum finding, O(⌈√(k/(ℓp))⌉) with "
            "multiplicity ℓ",
            ("repro.queries.minimum.find_minimum",
             "repro.queries.minimum.find_maximum"),
            experiment="E2",
        ),
        ResultEntry(
            "Lemma 5",
            "parallel element distinctness via the rebalanced Johnson walk, "
            "O(⌈(k/p)^{2/3}⌉) batches",
            ("repro.queries.element_distinctness.find_collision",
             "repro.queries.element_distinctness.walk_parameters",
             "repro.queries.johnson.check_walk_parameters"),
            experiment="E3",
        ),
        ResultEntry(
            "Lemma 6",
            "parallel mean estimation, Õ(σ/(√p·ε)) batches",
            ("repro.queries.mean_estimation.estimate_mean",
             "repro.queries.mean_estimation.batch_count"),
            experiment="E4",
        ),
        ResultEntry(
            "Lemma 7",
            "distributing a leader's q-qubit register in O(D + q/log n)",
            ("repro.core.state_transfer.distribute_register",
             "repro.core.state_transfer.collect_register",
             "repro.quantum.distributed.share_register",
             "repro.quantum.distributed.unshare_register"),
            experiment="E5",
        ),
        ResultEntry(
            "Theorem 8",
            "framework: evaluating F(⊕_v x^{(v)}) in "
            "O(D + b((D+p)⌈q/log n⌉ + p⌈log k/log n⌉))",
            ("repro.core.framework.run_framework",
             "repro.core.framework.CongestBatchOracle",
             "repro.core.cost.CostModel.batch_rounds"),
            experiment="E6",
        ),
        ResultEntry(
            "Corollary 9",
            "framework with on-the-fly value computation (+α(p) per batch)",
            ("repro.core.framework.ValueComputer",
             "repro.apps.eccentricity.EccentricityComputer"),
            experiment="E6",
        ),
        ResultEntry(
            "Lemma 10",
            "meeting scheduling in Õ((√(kD)+D)⌈log k/log n⌉)",
            ("repro.apps.meeting.schedule_meeting",),
            experiment="E7",
        ),
        ResultEntry(
            "Lemma 11",
            "meeting scheduling lower bounds: classical Ω(k/log n + D), "
            "quantum Ω(∛(kD²)+√k)",
            ("repro.lowerbounds.reductions.build_meeting_gadget",
             "repro.lowerbounds.disjointness.classical_congest_lower_bound",
             "repro.lowerbounds.disjointness.quantum_line_lower_bound"),
            experiment="E15",
        ),
        ResultEntry(
            "Lemma 12",
            "element distinctness in distributed vector, "
            "Õ((k^{2/3}D^{1/3}+D)(⌈log N/log n⌉+⌈log k/log n⌉))",
            ("repro.apps.element_distinctness.distinctness_distributed_vector",),
            experiment="E8",
        ),
        ResultEntry(
            "Lemma 13",
            "ED-vector lower bounds via disjointness",
            ("repro.lowerbounds.reductions.build_ed_vector_gadget",),
            experiment="E15",
        ),
        ResultEntry(
            "Corollary 14",
            "element distinctness between nodes, Õ(n^{2/3}D^{1/3}+D)",
            ("repro.apps.element_distinctness.distinctness_between_nodes",),
            experiment="E8",
        ),
        ResultEntry(
            "Lemma 15",
            "ED-between-nodes lower bound on the two-star gadget",
            ("repro.lowerbounds.reductions.build_ed_nodes_gadget",
             "repro.congest.topologies.two_stars"),
            experiment="E15",
        ),
        ResultEntry(
            "Problem 16",
            "distributed Deutsch–Jozsa promise problem",
            ("repro.apps.deutsch_jozsa.aggregated_input",
             "repro.quantum.deutsch_jozsa.check_promise"),
        ),
        ResultEntry(
            "Theorem 17",
            "distributed DJ solved exactly in O(D⌈log k/log n⌉)",
            ("repro.apps.deutsch_jozsa.solve_distributed_dj",
             "repro.quantum.distributed.distributed_deutsch_jozsa_exact"),
            experiment="E9",
        ),
        ResultEntry(
            "Theorem 18",
            "exact classical DJ needs Ω(k/log n + D)",
            ("repro.lowerbounds.reductions.build_dj_gadget",
             "repro.lowerbounds.rank_certificate.certify_dj_lower_bound",
             "repro.baselines.streaming.classical_deutsch_jozsa"),
            experiment="E9",
            notes="fooling certificate is log₂k, the full Ω(k) is cited",
        ),
        ResultEntry(
            "Lemma 20",
            "eccentricities of |S| nodes in O(|S|+D) classical rounds",
            ("repro.congest.algorithms.multibfs.eccentricities_of_sources",
             "repro.congest.algorithms.multibfs.multi_source_bfs"),
            experiment="E10",
        ),
        ResultEntry(
            "Lemma 21",
            "diameter and radius in O(√(nD)) [recovers LM18]",
            ("repro.apps.eccentricity.compute_diameter",
             "repro.apps.eccentricity.compute_radius"),
            experiment="E10",
        ),
        ResultEntry(
            "Lemma 22",
            "ε-additive average eccentricity in Õ(D^{3/2}/ε)",
            ("repro.apps.eccentricity.estimate_average_eccentricity",),
            experiment="E11",
        ),
        ResultEntry(
            "Lemma 23",
            "cycles of length ≤ k in O(D + (Dn)^{1/2−1/(4⌈k/2⌉+2)})",
            ("repro.apps.cycles.detect_cycle",
             "repro.apps.cycles.light_cycle_scan",
             "repro.apps.cycles.heavy_cycle_search"),
            experiment="E12",
        ),
        ResultEntry(
            "Lemma 24",
            "d-separated O(d log n)-diameter clustering [EFFKO21], "
            "substituted by MPX ball carving (DESIGN.md §2)",
            ("repro.congest.algorithms.clustering.build_clustering",
             "repro.congest.algorithms.clustering.verify_clustering"),
            experiment="E12",
        ),
        ResultEntry(
            "Lemma 25",
            "diameter-independent cycle detection via clustering",
            ("repro.apps.cycles.detect_cycle_clustered",),
            experiment="E12",
        ),
        ResultEntry(
            "Corollary 26",
            "girth in Õ((1/μ)(g + (gn)^{1/2−1/Θ(g)}))",
            ("repro.apps.girth.compute_girth",
             "repro.apps.triangles.detect_triangle_quantum"),
            experiment="E13",
        ),
        ResultEntry(
            "Lemma 27",
            "amplitude amplification iterate in O(R + D) rounds",
            ("repro.apps.amplitude_apps.iterate_rounds",
             "repro.quantum.amplitude.amplification_iterate"),
            experiment="E14",
        ),
        ResultEntry(
            "Corollary 28",
            "amplitude amplification, O((R+D)·(1/√p)·log(1/δ))",
            ("repro.apps.amplitude_apps.amplify",
             "repro.quantum.amplitude.amplify"),
            experiment="E14",
        ),
        ResultEntry(
            "Lemma 29",
            "distributed phase estimation, O((R/ε)log(1/δ) + D)",
            ("repro.apps.amplitude_apps.estimate_phase_distributed",
             "repro.quantum.phase_estimation.estimate_phase_boosted"),
            experiment="E14",
        ),
        ResultEntry(
            "Corollary 30",
            "distributed amplitude estimation, O((R+D)·(√p_max/ε)·log(1/δ))",
            ("repro.apps.amplitude_apps.estimate_amplitude_distributed",
             "repro.quantum.amplitude.estimate_amplitude"),
            experiment="E14",
        ),
        ResultEntry(
            "Remark (even cycles)",
            "exact C_k detection, k=4,6,8,10, in O(n^{1/2−1/(2k+2)})",
            ("repro.apps.even_cycles.detect_even_cycle",),
            experiment="E16",
        ),
        ResultEntry(
            "Remark (boosting)",
            "leader combines runs to reach success 1 − n^{−c}",
            ("repro.core.boosting.boost_maximum",
             "repro.core.boosting.boost_median"),
        ),
    ]
}


def where_is(result: str) -> ResultEntry:
    """Look up a paper result ("Lemma 10", "Theorem 8", ...)."""
    key = result.strip()
    if key not in REGISTRY:
        raise KeyError(
            f"unknown result {result!r}; known: {sorted(REGISTRY)}"
        )
    return REGISTRY[key]


def resolve(dotted: str):
    """Import the object behind a dotted registry path."""
    module_path, _, attr = dotted.rpartition(".")
    obj = importlib.import_module(module_path) if not attr else None
    if attr:
        module = importlib.import_module(module_path)
        obj = getattr(module, attr)
        # Method references like CostModel.batch_rounds: resolve one level.
        return obj
    return obj


def verify_registry() -> List[str]:
    """Import every referenced object; return the list of failures."""
    failures = []
    for entry in REGISTRY.values():
        for dotted in entry.implementations:
            try:
                _resolve_maybe_method(dotted)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(f"{entry.result}: {dotted} ({exc})")
    return failures


def _resolve_maybe_method(dotted: str):
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_path = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_path)
        except ImportError:
            continue
        for attr in parts[split:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(f"cannot resolve {dotted}")
