"""Command-line entry point.

Usage::

    python -m repro list                 # list experiments
    python -m repro run E7 [--full]     # run one experiment, print its table
    python -m repro run all [--full]    # run everything
    python -m repro faults --losses 0,0.05,0.1   # loss-rate sweep under
                                         # the resilience layer
    python -m repro bench [--quick]      # hot-path micro-benchmarks,
                                         # writes BENCH_PR2.json
    python -m repro trace E7 [--jsonl trace.jsonl]
                                         # run one experiment under the
                                         # observability spine and print
                                         # its per-phase cost breakdown
    python -m repro verify --jobs 4      # check every reproduction
                                         # criterion, fanned across
                                         # worker processes
    python -m repro verify --jobs 4 --resume verify.ckpt.jsonl
                                         # ... checkpointing completed
                                         # experiments so a killed sweep
                                         # resumes where it stopped
    python -m repro serve --clients 1000 --tenants 4 --jsonl serve.jsonl
                                         # run the multi-tenant serving
                                         # daemon against a deterministic
                                         # open-loop load, drain cleanly,
                                         # print qps + latency percentiles
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    bounds_parser = sub.add_parser(
        "bounds", help="print the paper's bound table at given parameters"
    )
    bounds_parser.add_argument("--n", type=int, default=4096)
    bounds_parser.add_argument("--k", type=int, default=65536)
    bounds_parser.add_argument("--diameter", type=int, default=16)
    bounds_parser.add_argument("--epsilon", type=float, default=0.5)
    bounds_parser.add_argument("--girth", type=int, default=6)
    run_parser = sub.add_parser("run", help="run an experiment")
    run_parser.add_argument("experiment", help="experiment id (E1..E23) or 'all'")
    run_parser.add_argument("--full", action="store_true", help="full sweep")
    run_parser.add_argument("--seed", type=int, default=0)
    faults_parser = sub.add_parser(
        "faults",
        help="sweep a channel loss rate against the resilience-layer "
        "round overhead on one algorithm",
    )
    faults_parser.add_argument(
        "--losses", default="0,0.01,0.05,0.1",
        help="comma-separated per-message loss probabilities",
    )
    faults_parser.add_argument(
        "--algorithm", choices=["bfs", "convergecast", "leader"],
        default="bfs",
    )
    faults_parser.add_argument(
        "--model", choices=["bernoulli", "burst", "corrupt", "delay"],
        default="bernoulli",
        help="channel fault model driven by the loss/fault probability",
    )
    faults_parser.add_argument("--rows", type=int, default=4)
    faults_parser.add_argument("--cols", type=int, default=4)
    faults_parser.add_argument("--seed", type=int, default=0)
    bench_parser = sub.add_parser(
        "bench",
        help="run the hot-path micro-benchmarks and write a JSON report "
        "(schema: benchmarks/perf/README.md)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="small instances; a correctness smoke check, not a perf claim",
    )
    bench_parser.add_argument(
        "--out", default=None,
        help="report output path (default BENCH_PR2.json; a serve-only "
        "run defaults to BENCH_PR6.json)",
    )
    bench_parser.add_argument(
        "--workload", action="append", dest="workloads", default=None,
        metavar="NAME",
        help="run only this workload (repeatable): engine (alias "
        "engine_flooding), gates, framework, obs, parallel, sched, "
        "serve, scaling_ceiling, scenarios, sketches",
    )
    serve_parser = sub.add_parser(
        "serve",
        help="run the multi-tenant query-serving daemon against a "
        "deterministic open-loop synthetic load, drain on completion "
        "(or SIGINT/SIGTERM), and print throughput and latency "
        "percentiles",
    )
    serve_parser.add_argument("--clients", type=int, default=1000,
                              help="simulated client requests to offer")
    serve_parser.add_argument("--tenants", type=int, default=4)
    serve_parser.add_argument("--rate-hz", type=float, default=2000.0,
                              help="aggregate Poisson arrival rate")
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--rows", type=int, default=4)
    serve_parser.add_argument("--cols", type=int, default=4)
    serve_parser.add_argument("--k", type=int, default=64,
                              help="query index domain size")
    serve_parser.add_argument("--parallelism", type=int, default=8,
                              help="oracle batch width p")
    serve_parser.add_argument("--mode", choices=["formula", "engine"],
                              default="formula")
    serve_parser.add_argument(
        "--max-pending", type=int, default=1 << 16,
        help="per-tenant queue bound (lower it to see backpressure)",
    )
    serve_parser.add_argument(
        "--time-scale", type=float, default=0.0,
        help="virtual-to-wall clock factor for arrivals (0 = as fast "
        "as the loop allows)",
    )
    serve_parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="stream the session's serve.*/coalesce/charge events to "
        "PATH in the repro-trace/1 schema (validated after the run)",
    )
    serve_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the session report as pure JSON to PATH "
        "(stdout mixes the report with human-readable summary lines)",
    )
    verify_parser = sub.add_parser(
        "verify",
        help="run the reproduction criteria sweep (optionally in "
        "parallel worker processes with checkpoint/resume)",
    )
    verify_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = in-process serial sweep)",
    )
    verify_parser.add_argument(
        "--only", nargs="+", default=None, metavar="EXP",
        help="verify only these experiment ids (e.g. --only E1 E13 E15)",
    )
    verify_parser.add_argument("--full", action="store_true",
                               help="full (non-quick) sweeps")
    verify_parser.add_argument("--seed", type=int, default=0)
    verify_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment wall-clock budget; over-budget tasks are "
        "terminated, retried, then reported as failures",
    )
    verify_parser.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts per experiment after a failure or timeout",
    )
    verify_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="JSONL checkpoint file; completed experiments recorded "
        "there are replayed instead of re-run (the file is created on "
        "first use)",
    )
    verify_parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="run instrumented and merge every worker's trace shard "
        "into one repro-trace/1 stream at PATH",
    )
    trace_parser = sub.add_parser(
        "trace",
        help="run one experiment under the observability spine and print "
        "a per-phase cost breakdown (rounds, query batches, busiest "
        "edge, fault counts)",
    )
    trace_parser.add_argument("experiment", help="experiment id (E1..E23)")
    trace_parser.add_argument("--full", action="store_true", help="full sweep")
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="additionally stream every event to PATH in the "
        "repro-trace/1 JSONL schema (validated after the run)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:>4}  {doc}")
        return 0

    if args.command == "bounds":
        from .analysis.bounds import bounds_summary

        bounds_summary(
            n=args.n, k=args.k, diameter=args.diameter,
            epsilon=args.epsilon, girth=args.girth,
        ).show()
        return 0

    if args.command == "bench":
        from .perf import run_all, write_report
        from .perf.harness import format_summary

        out = args.out
        if out is None:
            # The serving and scaling workloads ship their own report
            # files so the PR 2 baseline report is never clobbered by a
            # single-workload run.
            if args.workloads == ["serve"]:
                out = "BENCH_PR6.json"
            elif args.workloads == ["scaling_ceiling"]:
                out = "BENCH_PR7.json"
            elif args.workloads == ["models"]:
                out = "BENCH_PR8.json"
            elif args.workloads == ["scenarios"]:
                out = "BENCH_PR9.json"
            elif args.workloads == ["sketches"]:
                out = "BENCH_PR10.json"
            else:
                out = "BENCH_PR2.json"
        start = time.time()
        report = run_all(quick=args.quick, workloads=args.workloads)
        write_report(report, out)
        print(format_summary(report))
        print(f"(wrote {out} in {time.time() - start:.1f}s)")
        return 0

    if args.command == "serve":
        import json

        from .serve import run_serve_session

        start = time.time()
        session = run_serve_session(
            clients=args.clients, tenants=args.tenants,
            rate_hz=args.rate_hz, seed=args.seed, rows=args.rows,
            cols=args.cols, k=args.k, parallelism=args.parallelism,
            mode=args.mode, max_pending=args.max_pending,
            time_scale=args.time_scale, jsonl=args.jsonl,
        )
        load = session["load"]
        if args.report is not None:
            with open(args.report, "w") as fh:
                json.dump(session, fh, indent=2, sort_keys=True, default=str)
                fh.write("\n")
        print(json.dumps(session, indent=2, sort_keys=True, default=str))
        print(
            f"(served {load['completed']}/{load['offered']} requests at "
            f"{load['qps']:.0f} q/s, p50 {load['p50_ms']:.2f}ms, "
            f"p99 {load['p99_ms']:.2f}ms, drained in "
            f"{time.time() - start:.1f}s)"
        )
        if args.jsonl is not None:
            total = sum(session["trace"]["records"].values())
            print(f"wrote {args.jsonl}: {total} records valid")
        return 0

    if args.command == "verify":
        from .experiments.runner import RunRequest, verify_sweep
        from .obs.jsonl import validate_jsonl
        from .parallel import TaskFailure

        request = RunRequest(
            experiments=tuple(args.only) if args.only is not None else (),
            quick=not args.full,
            seed=args.seed,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            checkpoint=args.resume,
            jsonl=args.jsonl,
        )
        try:
            request.targets
        except KeyError:
            unknown = [
                t for t in request.experiments if t not in ALL_EXPERIMENTS
            ]
            print(f"unknown experiment(s): {unknown}", file=sys.stderr)
            print(f"available: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        start = time.time()
        sweep = verify_sweep(request)
        failed = 0
        for verdict in sweep.verdicts:
            if isinstance(verdict, TaskFailure):
                failed += 1
                print(f"{verdict.key:>4}  ERROR  {verdict}")
            else:
                status = "ok" if verdict.passed else "FAIL"
                if not verdict.passed:
                    failed += 1
                print(f"{verdict.experiment:>4}  {status:<5} {verdict.detail}")
        if args.jsonl is not None and sweep.jsonl_path is not None:
            counts = validate_jsonl(sweep.jsonl_path)
            total = sum(counts.values())
            print(f"wrote {sweep.jsonl_path}: {total} records valid")
        n = len(sweep.verdicts)
        print(
            f"({n - failed}/{n} criteria ok, jobs={args.jobs}, "
            f"{time.time() - start:.1f}s)"
        )
        return 1 if failed else 0

    if args.command == "trace":
        from .analysis.report import cost_breakdown_table
        from .experiments.runner import RunRequest, run_instrumented
        from .obs.jsonl import validate_jsonl

        target = args.experiment.upper()
        if target not in ALL_EXPERIMENTS:
            print(f"unknown experiment: {target}", file=sys.stderr)
            print(f"available: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        start = time.time()
        run = run_instrumented(RunRequest(
            experiments=(target,), quick=not args.full, seed=args.seed,
            jsonl=args.jsonl,
        ))
        table = getattr(run.result, "table", None)
        if table is not None:
            table.show()
        cost_breakdown_table(target, run.metrics).show()
        if args.jsonl is not None:
            counts = validate_jsonl(args.jsonl)
            total = sum(counts.values())
            per_kind = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"wrote {args.jsonl}: {total} records valid ({per_kind})")
        print(f"({target} traced in {time.time() - start:.1f}s)")
        return 0

    if args.command == "faults":
        from .faults.sweep import fault_sweep

        fault_sweep(
            losses=[float(p) for p in args.losses.split(",")],
            algorithm=args.algorithm,
            model=args.model,
            rows=args.rows,
            cols=args.cols,
            seed=args.seed,
        ).show()
        return 0

    from .experiments.runner import RunRequest, run_experiment

    request = RunRequest(
        experiments=(
            () if args.experiment.lower() == "all"
            else (args.experiment,)
        ),
        quick=not args.full,
        seed=args.seed,
    )
    try:
        targets = request.targets
    except KeyError:
        unknown = [t for t in request.experiments if t not in ALL_EXPERIMENTS]
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        print(f"available: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    for target in targets:
        start = time.time()
        result = run_experiment(request.replace(experiments=(target,)))[target]
        result.table.show()
        print(f"({target} finished in {time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
