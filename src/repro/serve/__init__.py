"""``repro.serve`` — the always-on multi-tenant query-serving daemon.

The ROADMAP north star is the paper's framework as a *service*: many
callers, sustained traffic, measured throughput and tail latency — not
one blocking run at a time.  This package is that serving layer, built
on two substrates the rest of the repository provides:

* the **steppable engine** (:class:`repro.congest.engine.EngineStepper`
  and the generator chain up through
  :meth:`repro.sched.CoalescingScheduler.execute_batch_steps`), which
  lets one asyncio loop interleave many in-flight batches round by
  round, bit-identically to the monolithic loop;
* the **coalescing scheduler** (PR 5), which packs under-filled
  multi-tenant submissions into maximal width-``p`` physical batches.

Quick tour::

    from repro.core import Operation
    from repro.serve import LoadSpec, QueryService, TenantQuota, run_load

    service = QueryService(default_quota=TenantQuota("any", max_pending=32))
    service.add_profile(network, config)          # warm pool + scheduler

    async def main():
        fut = service.submit(Operation.query("alice", [0, 3, 5]))
        print((await fut).values)                 # fut: asyncio.Future
        report = await run_load(service, LoadSpec(clients=1000))
        print(report.qps, report.p99_ms)

Sketch lanes (PR 10) ride the same machinery:
:meth:`~repro.serve.daemon.QueryService.add_sketch_profile` pins an
amplitude-sketch lane, ``Operation.insert`` / ``Operation.sketch_query``
stream writes and reads through the same admission/fairness/drain path,
and :func:`~repro.serve.loadgen.run_operation_load` drives deterministic
mixed insert/query open-loop load (``bench --workload sketches``).

Layers: :mod:`~repro.serve.tenants` (quotas, stride fairness,
backpressure), :mod:`~repro.serve.pool` (warm LRU of prepared lanes),
:mod:`~repro.serve.daemon` (the asyncio service itself), and
:mod:`~repro.serve.loadgen` (deterministic open-loop Poisson load).
``python -m repro serve`` wires them into a runnable daemon and
``python -m repro bench --workload serve`` into BENCH_PR6.json.
"""

from .daemon import DEFAULT_PROFILE, QueryService, ServeResult, ServiceClosed
from .loadgen import (
    Arrival,
    LoadReport,
    LoadSpec,
    OperationArrival,
    SketchLoadSpec,
    generate_arrivals,
    generate_operation_arrivals,
    run_load,
    run_operation_load,
)
from .pool import Lane, PreparedPool
from .session import (
    build_profile,
    build_sketch_profile,
    run_serve_session,
    run_sketch_session,
)
from .tenants import AdmissionError, StridePicker, TenantQuota, TenantState

__all__ = [
    "AdmissionError",
    "Arrival",
    "DEFAULT_PROFILE",
    "Lane",
    "LoadReport",
    "LoadSpec",
    "OperationArrival",
    "PreparedPool",
    "QueryService",
    "ServeResult",
    "ServiceClosed",
    "SketchLoadSpec",
    "StridePicker",
    "TenantQuota",
    "TenantState",
    "build_profile",
    "build_sketch_profile",
    "generate_arrivals",
    "generate_operation_arrivals",
    "run_load",
    "run_operation_load",
    "run_serve_session",
    "run_sketch_session",
]
