"""Admission control and weighted fairness for the serving daemon.

Tenants are the daemon's isolation unit: each one gets a bounded request
queue (backpressure — a full queue *rejects*, it never silently grows), an
optional lifetime query quota, and a fair-share ``weight``.

Fairness is classic **stride scheduling** (Waldspurger & Weihl, OSDI '94):
tenant ``t`` has ``stride = STRIDE1 / weight``; whenever the daemon wants
the next request it picks the backlogged tenant with the smallest ``pass``
value and advances that tenant's pass by its stride.  Over any busy
interval each backlogged tenant is served in proportion to its weight, a
starved tenant's pass falls behind and it catches up deterministically,
and ties break by tenant name — no randomness, so a serving trace is
exactly reproducible from the arrival order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

__all__ = ["TenantQuota", "TenantState", "StridePicker", "AdmissionError"]

#: Stride numerator: large so integer-ish weights give well-separated
#: strides; floats are fine since passes only ever compare.
STRIDE1 = 1 << 20


class AdmissionError(Exception):
    """A request the daemon refused to queue (quota or backpressure).

    ``reason`` is machine-readable: ``"queue-full"`` (the tenant's
    bounded queue is at capacity — the backpressure signal clients are
    expected to back off on) or ``"quota"`` (the tenant exhausted its
    lifetime query allowance).
    """

    def __init__(self, tenant: str, reason: str, detail: str = ""):
        self.tenant = tenant
        self.reason = reason
        super().__init__(
            f"tenant {tenant!r} rejected ({reason})"
            + (f": {detail}" if detail else "")
        )


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission policy.

    Attributes:
        name: tenant identifier (the scheduler's caller name).
        weight: fair-share weight; a weight-2 tenant drains twice as fast
            as a weight-1 tenant while both are backlogged.
        max_pending: bound on queued (not yet executing) requests; the
            backpressure knob.
        max_queries: lifetime admission quota in *queries* (not
            requests); ``None`` = unlimited.
    """

    name: str
    weight: float = 1.0
    max_pending: int = 64
    max_queries: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.max_queries is not None and self.max_queries < 0:
            raise ValueError("max_queries must be >= 0 when set")


@dataclass
class TenantState:
    """One tenant's live serving state inside the daemon."""

    quota: TenantQuota
    queue: Deque = field(default_factory=deque)
    pass_value: float = 0.0
    queries_admitted: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    abandoned: int = 0

    @property
    def stride(self) -> float:
        return STRIDE1 / self.quota.weight

    def admit(self, queries: int) -> None:
        """Raise :class:`AdmissionError` unless this request may queue."""
        if len(self.queue) >= self.quota.max_pending:
            self.rejected += 1
            raise AdmissionError(
                self.quota.name, "queue-full",
                f"{len(self.queue)} pending >= max_pending "
                f"{self.quota.max_pending}",
            )
        if (
            self.quota.max_queries is not None
            and self.queries_admitted + queries > self.quota.max_queries
        ):
            self.rejected += 1
            raise AdmissionError(
                self.quota.name, "quota",
                f"{self.queries_admitted} + {queries} queries exceeds "
                f"max_queries {self.quota.max_queries}",
            )


class StridePicker:
    """Deterministic weighted-fair selection over backlogged tenants."""

    def __init__(self, tenants: Optional[Iterable[TenantState]] = None):
        self._tenants: Dict[str, TenantState] = {}
        for tenant in tenants or ():
            self.add(tenant)

    def add(self, tenant: TenantState) -> None:
        name = tenant.quota.name
        if name in self._tenants:
            raise ValueError(f"duplicate tenant {name!r}")
        # A joining tenant starts at the current minimum pass so it
        # cannot monopolize the picker by arriving with pass 0 after
        # everyone else accumulated strides.
        floor = min(
            (t.pass_value for t in self._tenants.values()), default=0.0
        )
        tenant.pass_value = max(tenant.pass_value, floor)
        self._tenants[name] = tenant

    def get(self, name: str) -> TenantState:
        return self._tenants[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def states(self) -> List[TenantState]:
        return list(self._tenants.values())

    @property
    def backlog(self) -> int:
        """Total queued requests across tenants."""
        return sum(len(t.queue) for t in self._tenants.values())

    def pick(self) -> Optional[TenantState]:
        """The backlogged tenant with the least pass; advances its pass.

        Returns None when no tenant has queued work.  Ties break by
        tenant name, so two equal-weight tenants alternate
        deterministically rather than depending on dict order.
        """
        backlogged = [
            t for t in self._tenants.values() if t.queue
        ]
        if not backlogged:
            return None
        chosen = min(
            backlogged, key=lambda t: (t.pass_value, t.quota.name)
        )
        chosen.pass_value += chosen.stride
        return chosen
