"""Open-loop synthetic load for the serving daemon.

*Open-loop* is the operative word: arrival times are drawn from a Poisson
process **before** the run and each simulated client submits at its
scheduled time whether or not earlier requests have completed.  A
closed-loop generator (submit → await → submit) self-throttles to the
service's speed and hides queueing collapse; open-loop load is what
exposes the latency percentiles the daemon's report is about (the
"coordinated omission" trap in benchmarking folklore, and the reason
Kerger et al. report sustained throughput *and* tail latency).

Determinism: every random draw derives from
:func:`repro.parallel.derive_seed` coordinates — ``(seed, "arrival", i)``
shapes never depend on how fast the service ran, so a load spec is an
exactly reproducible workload, not a fuzzer.

Scale: ``LoadSpec.clients`` is the number of simulated client requests
(10^3–10^5); tenants multiplex many clients, as real serving traffic
does.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.operation import Operation
from ..parallel import derive_seed
from .daemon import DEFAULT_PROFILE, QueryService
from .tenants import AdmissionError

__all__ = ["Arrival", "LoadSpec", "LoadReport", "OperationArrival",
           "SketchLoadSpec", "generate_arrivals",
           "generate_operation_arrivals", "run_load", "run_operation_load"]


@dataclass(frozen=True)
class Arrival:
    """One scheduled client request."""

    at_s: float  # offset from load start (virtual seconds)
    tenant: str
    indices: Tuple[int, ...]
    label: str


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop workload, fully determined by its fields.

    Attributes:
        clients: simulated client requests to offer.
        tenants: distinct tenant names to spread them over
            (``tenant0..tenantN-1``); weights cycle through
            ``tenant_weights``.
        rate_hz: aggregate Poisson arrival rate (virtual time).
        queries_min/queries_max: per-request query-set size range.
        seed: root seed for :func:`~repro.parallel.derive_seed`.
        time_scale: virtual-to-wall clock factor; ``0`` collapses the
            arrival schedule (submit as fast as the loop allows, in
            arrival order) — the right setting for throughput benches.
        label: charge label the requests carry.
    """

    clients: int = 1000
    tenants: int = 4
    rate_hz: float = 2000.0
    queries_min: int = 1
    queries_max: int = 4
    seed: int = 0
    time_scale: float = 0.0
    label: str = "load"
    tenant_weights: Tuple[float, ...] = (1.0,)

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if not 1 <= self.queries_min <= self.queries_max:
            raise ValueError("need 1 <= queries_min <= queries_max")


def generate_arrivals(spec: LoadSpec, k: int) -> List[Arrival]:
    """The spec's deterministic arrival schedule over index domain [0, k).

    Inter-arrival gaps are Exp(rate); tenant assignment, set size, and
    indices each draw from their own derived stream so changing one knob
    (say ``queries_max``) does not reshuffle unrelated draws.
    """
    gap_rng = random.Random(derive_seed(spec.seed, "serve-load", "gaps"))
    tenant_rng = random.Random(
        derive_seed(spec.seed, "serve-load", "tenants")
    )
    at = 0.0
    arrivals: List[Arrival] = []
    for i in range(spec.clients):
        at += gap_rng.expovariate(spec.rate_hz)
        tenant = f"tenant{tenant_rng.randrange(spec.tenants)}"
        body_rng = random.Random(
            derive_seed(spec.seed, "serve-load", "client", i)
        )
        size = body_rng.randint(spec.queries_min, spec.queries_max)
        indices = tuple(
            body_rng.randrange(k) for _ in range(size)
        )
        arrivals.append(
            Arrival(at_s=at, tenant=tenant, indices=indices,
                    label=spec.label)
        )
    return arrivals


@dataclass(frozen=True)
class OperationArrival:
    """One scheduled client operation (the write-capable arrival)."""

    at_s: float  # offset from load start (virtual seconds)
    op: Operation


@dataclass(frozen=True)
class SketchLoadSpec:
    """One open-loop mixed insert/query workload against a sketch lane.

    Attributes:
        clients: simulated client operations to offer.
        tenants: distinct tenant names to spread them over.
        rate_hz: aggregate Poisson arrival rate (virtual time).
        insert_fraction: probability an arrival is an ``insert`` (the
            rest are ``sketch_query``); the BENCH_PR10 mix knob.
        items_min/items_max: per-operation payload size range.
        universe: item-key space size (items are ``key-0..key-U-1``;
            smaller universes mean hotter keys, more memo traffic, and
            more insert/query interference).
        seed: root seed for :func:`~repro.parallel.derive_seed`.
        time_scale: virtual-to-wall clock factor; ``0`` collapses the
            schedule (throughput-bench setting).
        label: charge label the operations carry.
    """

    clients: int = 1000
    tenants: int = 4
    rate_hz: float = 2000.0
    insert_fraction: float = 0.5
    items_min: int = 1
    items_max: int = 4
    universe: int = 512
    seed: int = 0
    time_scale: float = 0.0
    label: str = "sketch-load"

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be in [0, 1]")
        if not 1 <= self.items_min <= self.items_max:
            raise ValueError("need 1 <= items_min <= items_max")
        if self.universe < 1:
            raise ValueError("universe must be >= 1")


def generate_operation_arrivals(spec: SketchLoadSpec) -> List[OperationArrival]:
    """The spec's deterministic mixed insert/query arrival schedule.

    Same derive_seed coordinate discipline as :func:`generate_arrivals`
    (gaps, tenants, and each client body draw from their own streams),
    plus a ``kind`` stream deciding insert vs query so changing the mix
    fraction does not reshuffle payloads.
    """
    gap_rng = random.Random(derive_seed(spec.seed, "serve-load", "gaps"))
    tenant_rng = random.Random(
        derive_seed(spec.seed, "serve-load", "tenants")
    )
    kind_rng = random.Random(derive_seed(spec.seed, "serve-load", "kinds"))
    at = 0.0
    arrivals: List[OperationArrival] = []
    for i in range(spec.clients):
        at += gap_rng.expovariate(spec.rate_hz)
        tenant = f"tenant{tenant_rng.randrange(spec.tenants)}"
        is_insert = kind_rng.random() < spec.insert_fraction
        body_rng = random.Random(
            derive_seed(spec.seed, "serve-load", "client", i)
        )
        size = body_rng.randint(spec.items_min, spec.items_max)
        items = tuple(
            f"key-{body_rng.randrange(spec.universe)}" for _ in range(size)
        )
        build = Operation.insert if is_insert else Operation.sketch_query
        arrivals.append(
            OperationArrival(at_s=at, op=build(tenant, items,
                                               label=spec.label))
        )
    return arrivals


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class LoadReport:
    """What one open-loop run produced (JSON-ready via ``to_json``)."""

    offered: int
    accepted: int
    rejected: int
    completed: int
    failed: int
    duration_s: float
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    @property
    def qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def p50_ms(self) -> float:
        lat = sorted(self.latencies_ms)
        return _percentile(lat, 50.0) if lat else 0.0

    @property
    def p99_ms(self) -> float:
        lat = sorted(self.latencies_ms)
        return _percentile(lat, 99.0) if lat else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


async def run_load(
    service: QueryService,
    spec: LoadSpec,
    k: Optional[int] = None,
    profile: str = DEFAULT_PROFILE,
    drain: bool = True,
) -> LoadReport:
    """Offer the spec's arrivals to a running service and measure.

    Rejections (backpressure/quota) are counted, not retried — open-loop
    means the offered load does not bend to the service.  With ``drain``
    (default) the service is drained after the last arrival so every
    accepted request resolves and the report is complete.
    """
    if k is None:
        k = service.pool.acquire(profile).scheduler.k
    arrivals = generate_arrivals(spec, k)
    futures: List[asyncio.Future] = []
    rejected = 0
    start = time.monotonic()
    for arrival in arrivals:
        if spec.time_scale > 0:
            target = start + arrival.at_s * spec.time_scale
            delay = target - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
        else:
            # Collapsed schedule: still let the loop breathe so lane
            # workers interleave with the submission flood.
            await asyncio.sleep(0)
        try:
            futures.append(
                service.submit(
                    Operation.query(
                        arrival.tenant, arrival.indices, label=arrival.label
                    ),
                    profile=profile,
                )
            )
        except AdmissionError:
            rejected += 1
    if drain:
        await service.drain(reason="close")
    results = await asyncio.gather(*futures, return_exceptions=True)
    duration = time.monotonic() - start
    latencies = [
        r.wait_ms for r in results if not isinstance(r, BaseException)
    ]
    failed = sum(1 for r in results if isinstance(r, BaseException))
    return LoadReport(
        offered=len(arrivals),
        accepted=len(futures),
        rejected=rejected,
        completed=len(latencies),
        failed=failed,
        duration_s=duration,
        latencies_ms=latencies,
    )


async def run_operation_load(
    service: QueryService,
    spec: SketchLoadSpec,
    profile: str,
    drain: bool = True,
) -> LoadReport:
    """Offer a mixed insert/query stream to a sketch profile and measure.

    The write-capable twin of :func:`run_load`: same open-loop
    discipline (rejections counted, never retried; offered load does not
    bend to the service), same report shape, but arrivals are canonical
    :class:`~repro.core.operation.Operation` objects so inserts and
    queries interleave through the daemon exactly as offered.
    """
    arrivals = generate_operation_arrivals(spec)
    futures: List[asyncio.Future] = []
    rejected = 0
    start = time.monotonic()
    for arrival in arrivals:
        if spec.time_scale > 0:
            target = start + arrival.at_s * spec.time_scale
            delay = target - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
        else:
            await asyncio.sleep(0)
        try:
            futures.append(service.submit(arrival.op, profile=profile))
        except AdmissionError:
            rejected += 1
    if drain:
        await service.drain(reason="close")
    results = await asyncio.gather(*futures, return_exceptions=True)
    duration = time.monotonic() - start
    latencies = [
        r.wait_ms for r in results if not isinstance(r, BaseException)
    ]
    failed = sum(1 for r in results if isinstance(r, BaseException))
    return LoadReport(
        offered=len(arrivals),
        accepted=len(futures),
        rejected=rejected,
        completed=len(latencies),
        failed=failed,
        duration_s=duration,
        latencies_ms=latencies,
    )
