"""One-shot serving sessions: the ``python -m repro serve`` back end.

The daemon has no network protocol — clients are coroutines on the same
loop (the repository reproduces round complexity, not RPC plumbing) — so
"running the daemon" means: build a synthetic serving profile, start a
:class:`~repro.serve.daemon.QueryService`, drive it with the deterministic
open-loop generator, drain cleanly, and report.  CI's ``serve-smoke`` job
and the ``serve`` bench workload both go through this module, so the CLI,
CI, and BENCH_PR6.json all describe the same code path.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Optional, Tuple

from ..apps.sketches import AmplitudeSketch, SketchSpec
from ..congest import topologies
from ..congest.network import Network
from ..core.framework import DistributedInput, FrameworkConfig
from ..core.semigroup import sum_semigroup
from ..obs import JSONLSink, MetricsSink, Recorder
from ..obs.jsonl import validate_jsonl
from .daemon import QueryService
from .loadgen import (
    LoadReport,
    LoadSpec,
    SketchLoadSpec,
    run_load,
    run_operation_load,
)
from .tenants import TenantQuota

__all__ = [
    "build_profile",
    "build_sketch_profile",
    "run_serve_session",
    "run_sketch_session",
]


def build_profile(
    rows: int = 4,
    cols: int = 4,
    k: int = 64,
    parallelism: int = 8,
    mode: str = "formula",
    seed: int = 4,
) -> Tuple[Network, FrameworkConfig]:
    """A deterministic synthetic serving profile (grid + random vectors).

    The same construction as the PR 5 scheduler bench, so serve numbers
    are directly comparable to the synchronous-scheduler ones.
    """
    net = topologies.grid(rows, cols)
    rnd = random.Random(11)
    vectors = {
        v: [rnd.randint(0, 7) for _ in range(k)] for v in net.nodes()
    }
    di = DistributedInput(vectors=vectors, semigroup=sum_semigroup(8 * net.n))
    return net, FrameworkConfig(
        parallelism=parallelism, dist_input=di, mode=mode, seed=seed,
        leader=0,
    )


def build_sketch_profile(
    family: str = "qcount",
    m: int = 64,
    k: int = 3,
    seed: int = 0,
    backend: str = "auto",
    recorder: Optional[Recorder] = None,
) -> AmplitudeSketch:
    """A deterministic shared sketch for a serving session.

    Pass the session's ``recorder`` so the sketch's physical
    insert/query events land in the same trace as the daemon's — the
    sketch emits those itself (the lane scheduler only emits memo-edge
    events).
    """
    return AmplitudeSketch(
        SketchSpec(family=family, m=m, k=k, seed=seed, backend=backend),
        name=f"{family}-m{m}",
        recorder=recorder,
    )


def run_sketch_session(
    clients: int = 1000,
    tenants: int = 4,
    rate_hz: float = 4000.0,
    insert_fraction: float = 0.5,
    seed: int = 0,
    family: str = "qcount",
    m: int = 64,
    k: int = 3,
    parallelism: int = 64,
    universe: int = 512,
    max_pending: int = 1 << 16,
    flush_after_ms: float = 2.0,
    time_scale: float = 0.0,
    jsonl: Optional[str] = None,
    items_max: int = 4,
    memo: Any = True,
) -> Dict[str, Any]:
    """Run one full mixed insert/query sketch-serving session.

    The write-capable twin of :func:`run_serve_session`: a shared
    :class:`~repro.apps.sketches.AmplitudeSketch` behind a pinned daemon
    lane, driven by the deterministic open-loop operation generator.
    The returned report adds the sketch-lane scheduler's accounting
    (including ``memo_invalidations`` — the write-path invariant CI's
    ``sketches-smoke`` asserts on) and the sink's sketch op counters.
    """
    metrics = MetricsSink()
    sinks: list = [metrics]
    if jsonl is not None:
        sinks.append(JSONLSink(jsonl))
    recorder = Recorder(sinks)
    sketch = build_sketch_profile(
        family=family, m=m, k=k, seed=seed, recorder=recorder,
    )
    service = QueryService(
        default_quota=TenantQuota("default", max_pending=max_pending),
        flush_after_ms=flush_after_ms,
        recorder=recorder,
        memo=memo,
    )
    service.add_sketch_profile("sketch", sketch, parallelism=parallelism)
    spec = SketchLoadSpec(
        clients=clients, tenants=tenants, rate_hz=rate_hz,
        insert_fraction=insert_fraction, items_max=items_max,
        universe=universe, seed=seed, time_scale=time_scale,
    )
    report: LoadReport = asyncio.run(
        run_operation_load(service, spec, profile="sketch")
    )
    recorder.close()
    lane_report = service.pool.acquire("sketch").scheduler.report()
    out: Dict[str, Any] = {
        "load": report.to_json(),
        "service": service.report(),
        "lane": lane_report.__dict__,
        "metrics": {
            "serve_requests": dict(metrics.serve_requests),
            "serve_batches": metrics.serve_batches,
            "serve_drains": metrics.serve_drains,
            "sketch_ops": dict(metrics.sketch_ops),
            "sketch_memo": dict(metrics.sketch_memo),
            "memo_invalidations": metrics.memo_invalidations,
        },
        "sketch": {
            "family": family, "m": m, "k": k,
            "backend": sketch.backend,
            "inserts": sketch.inserts,
            "queries": sketch.queries,
        },
    }
    if jsonl is not None:
        out["trace"] = {"path": jsonl, "records": validate_jsonl(jsonl)}
    return out


def run_serve_session(
    clients: int = 1000,
    tenants: int = 4,
    rate_hz: float = 2000.0,
    seed: int = 0,
    rows: int = 4,
    cols: int = 4,
    k: int = 64,
    parallelism: int = 8,
    mode: str = "formula",
    max_pending: int = 1 << 16,
    flush_after_ms: float = 2.0,
    time_scale: float = 0.0,
    jsonl: Optional[str] = None,
    queries_max: int = 4,
    memo: Any = True,
) -> Dict[str, Any]:
    """Run one full daemon session and return its JSON-ready report.

    ``max_pending`` defaults high because the canonical session measures
    an *offered* open-loop workload end to end; lower it to exercise
    backpressure.  When ``jsonl`` is set the whole session streams to a
    ``repro-trace/1`` file which is validated before returning (the
    ``serve-smoke`` CI contract).
    """
    net, cfg = build_profile(
        rows=rows, cols=cols, k=k, parallelism=parallelism, mode=mode,
    )
    metrics = MetricsSink()
    sinks: list = [metrics]
    if jsonl is not None:
        sinks.append(JSONLSink(jsonl))
    recorder = Recorder(sinks)
    service = QueryService(
        default_quota=TenantQuota("default", max_pending=max_pending),
        flush_after_ms=flush_after_ms,
        recorder=recorder,
        memo=memo,
    )
    service.add_profile(net, cfg)
    spec = LoadSpec(
        clients=clients, tenants=tenants, rate_hz=rate_hz, seed=seed,
        time_scale=time_scale, queries_max=min(queries_max, parallelism),
    )
    report: LoadReport = asyncio.run(run_load(service, spec))
    recorder.close()
    out: Dict[str, Any] = {
        "load": report.to_json(),
        "service": service.report(),
        "metrics": {
            "serve_requests": dict(metrics.serve_requests),
            "serve_batches": metrics.serve_batches,
            "serve_batch_rounds": metrics.serve_batch_rounds,
            "serve_drains": metrics.serve_drains,
            "memo": {
                "hits": metrics.memo_hits,
                "misses": metrics.memo_misses,
                "evictions": metrics.memo_evictions,
            },
        },
    }
    sched_report = service.pool.acquire("default").scheduler.report()
    out["amortized_rounds_per_query"] = (
        sched_report.amortized_rounds_per_query
    )
    if jsonl is not None:
        out["trace"] = {"path": jsonl, "records": validate_jsonl(jsonl)}
    return out
