"""One-shot serving sessions: the ``python -m repro serve`` back end.

The daemon has no network protocol — clients are coroutines on the same
loop (the repository reproduces round complexity, not RPC plumbing) — so
"running the daemon" means: build a synthetic serving profile, start a
:class:`~repro.serve.daemon.QueryService`, drive it with the deterministic
open-loop generator, drain cleanly, and report.  CI's ``serve-smoke`` job
and the ``serve`` bench workload both go through this module, so the CLI,
CI, and BENCH_PR6.json all describe the same code path.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Optional, Tuple

from ..congest import topologies
from ..congest.network import Network
from ..core.framework import DistributedInput, FrameworkConfig
from ..core.semigroup import sum_semigroup
from ..obs import JSONLSink, MetricsSink, Recorder
from ..obs.jsonl import validate_jsonl
from .daemon import QueryService
from .loadgen import LoadReport, LoadSpec, run_load
from .tenants import TenantQuota

__all__ = ["build_profile", "run_serve_session"]


def build_profile(
    rows: int = 4,
    cols: int = 4,
    k: int = 64,
    parallelism: int = 8,
    mode: str = "formula",
    seed: int = 4,
) -> Tuple[Network, FrameworkConfig]:
    """A deterministic synthetic serving profile (grid + random vectors).

    The same construction as the PR 5 scheduler bench, so serve numbers
    are directly comparable to the synchronous-scheduler ones.
    """
    net = topologies.grid(rows, cols)
    rnd = random.Random(11)
    vectors = {
        v: [rnd.randint(0, 7) for _ in range(k)] for v in net.nodes()
    }
    di = DistributedInput(vectors=vectors, semigroup=sum_semigroup(8 * net.n))
    return net, FrameworkConfig(
        parallelism=parallelism, dist_input=di, mode=mode, seed=seed,
        leader=0,
    )


def run_serve_session(
    clients: int = 1000,
    tenants: int = 4,
    rate_hz: float = 2000.0,
    seed: int = 0,
    rows: int = 4,
    cols: int = 4,
    k: int = 64,
    parallelism: int = 8,
    mode: str = "formula",
    max_pending: int = 1 << 16,
    flush_after_ms: float = 2.0,
    time_scale: float = 0.0,
    jsonl: Optional[str] = None,
    queries_max: int = 4,
    memo: Any = True,
) -> Dict[str, Any]:
    """Run one full daemon session and return its JSON-ready report.

    ``max_pending`` defaults high because the canonical session measures
    an *offered* open-loop workload end to end; lower it to exercise
    backpressure.  When ``jsonl`` is set the whole session streams to a
    ``repro-trace/1`` file which is validated before returning (the
    ``serve-smoke`` CI contract).
    """
    net, cfg = build_profile(
        rows=rows, cols=cols, k=k, parallelism=parallelism, mode=mode,
    )
    metrics = MetricsSink()
    sinks: list = [metrics]
    if jsonl is not None:
        sinks.append(JSONLSink(jsonl))
    recorder = Recorder(sinks)
    service = QueryService(
        default_quota=TenantQuota("default", max_pending=max_pending),
        flush_after_ms=flush_after_ms,
        recorder=recorder,
        memo=memo,
    )
    service.add_profile(net, cfg)
    spec = LoadSpec(
        clients=clients, tenants=tenants, rate_hz=rate_hz, seed=seed,
        time_scale=time_scale, queries_max=min(queries_max, parallelism),
    )
    report: LoadReport = asyncio.run(run_load(service, spec))
    recorder.close()
    out: Dict[str, Any] = {
        "load": report.to_json(),
        "service": service.report(),
        "metrics": {
            "serve_requests": dict(metrics.serve_requests),
            "serve_batches": metrics.serve_batches,
            "serve_batch_rounds": metrics.serve_batch_rounds,
            "serve_drains": metrics.serve_drains,
            "memo": {
                "hits": metrics.memo_hits,
                "misses": metrics.memo_misses,
                "evictions": metrics.memo_evictions,
            },
        },
    }
    sched_report = service.pool.acquire("default").scheduler.report()
    out["amortized_rounds_per_query"] = (
        sched_report.amortized_rounds_per_query
    )
    if jsonl is not None:
        out["trace"] = {"path": jsonl, "records": validate_jsonl(jsonl)}
    return out
