"""The always-on query-serving daemon (``python -m repro serve``).

:class:`QueryService` is a long-lived asyncio service that accepts
:class:`~repro.core.operation.Operation` streams from many concurrent
clients and serves them over the :class:`~repro.sched.CoalescingScheduler`
(oracle read profiles) or the :class:`~repro.sched.sketch.SketchScheduler`
(pinned amplitude-sketch profiles, :meth:`QueryService.add_sketch_profile`
— same admission, fairness, worker loop, and drain machinery, plus
write-path memo invalidation):

* **Admission** — every request passes its tenant's
  :class:`~repro.serve.tenants.TenantQuota`: a bounded pending queue
  (full queue ⇒ :class:`~repro.serve.tenants.AdmissionError`, the
  backpressure signal) and an optional lifetime query quota.
* **Weighted fairness** — queued requests drain into the scheduler in
  :class:`~repro.serve.tenants.StridePicker` order, so backlogged
  tenants share batch capacity in proportion to their weights.
* **Fill-or-flush** — a lane executes as soon as a full width-``p``
  batch is pending, or after ``flush_after_ms`` of arrival silence with
  a partial batch (the serving analogue of the scheduler's
  ``deadline_rounds``).
* **Stepwise execution** — batches run through
  :meth:`~repro.sched.CoalescingScheduler.execute_batch_steps`, the
  generator that suspends after every engine round; the worker yields to
  the event loop every ``yield_every`` rounds, so many lanes (and every
  client coroutine) interleave on one loop while a batch is in flight.
  Bit-identity of this path to the blocking scheduler is pinned by
  ``tests/congest/test_engine_step.py`` and
  ``tests/property/test_prop_sched.py``.
* **Results as futures** — :meth:`QueryService.submit` returns an
  ``asyncio.Future`` resolving to :class:`ServeResult`; memo hits
  resolve without touching the network.
* **Graceful drain** — :meth:`drain` stops admission, flushes every
  lane, resolves every future, and emits a ``serve.drain`` event;
  :meth:`serve_forever` wires SIGINT/SIGTERM to exactly that.  The
  impatient path (:meth:`abort`) cancels instead, failing outstanding
  futures with :class:`ServiceClosed` and counting them ``abandoned``.

Every life-cycle edge lands on the observability spine as ``serve.*``
events (schema: :mod:`repro.obs.jsonl`), so one JSONL trace tells the
whole story of a serving session.
"""

from __future__ import annotations

import asyncio
import signal
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..apps.sketches import AmplitudeSketch
from ..congest.network import Network
from ..core.framework import FrameworkConfig
from ..core.operation import Operation
from ..obs.recorder import Recorder, current_recorder
from ..sched.scheduler import Ticket
from .pool import Lane, PreparedPool
from .tenants import AdmissionError, StridePicker, TenantQuota, TenantState

__all__ = ["QueryService", "ServeResult", "ServiceClosed", "DEFAULT_PROFILE"]

DEFAULT_PROFILE = "default"


class ServiceClosed(Exception):
    """The daemon is draining or closed; no new work is admitted."""


@dataclass
class ServeResult:
    """What a resolved request future carries."""

    values: List[Any]
    tenant: str
    profile: str
    wait_ms: float


class _Request:
    __slots__ = ("op", "profile", "future", "submitted_at")

    def __init__(self, op, profile, future, submitted_at):
        self.op = op  # the canonical Operation (tenant == op.caller)
        self.profile = profile
        self.future = future
        self.submitted_at = submitted_at

    @property
    def tenant(self):
        return self.op.caller


@dataclass
class _LaneState:
    """Per-lane dispatch state: its picker and its arrival signal."""

    picker: StridePicker
    event: asyncio.Event = field(default_factory=asyncio.Event)


class QueryService:
    """The multi-tenant serving daemon.  See the module docstring.

    Args:
        tenants: quotas to pre-register; unknown tenants are admitted
            with ``default_quota`` when set, rejected otherwise.
        default_quota: template quota for auto-registered tenants (its
            ``name`` field is ignored).
        max_lanes: warm-pool bound (:class:`~repro.serve.pool.
            PreparedPool`).
        flush_after_ms: arrival silence after which a partial batch
            flushes anyway.
        yield_every: engine rounds stepped between event-loop yields;
            lower = fairer interleaving, higher = less loop overhead.
        recorder: observability bus (defaults to the ambient recorder).
        memo: forwarded to each lane's scheduler — ``True`` (default)
            for a private result memo, ``False`` to disable, or a shared
            :class:`~repro.sched.ResultMemo`.
    """

    def __init__(
        self,
        tenants: Sequence[TenantQuota] = (),
        default_quota: Optional[TenantQuota] = None,
        max_lanes: int = 8,
        flush_after_ms: float = 5.0,
        yield_every: int = 8,
        recorder: Optional[Recorder] = None,
        memo: Any = True,
    ):
        if flush_after_ms < 0:
            raise ValueError("flush_after_ms must be >= 0")
        if yield_every < 1:
            raise ValueError("yield_every must be >= 1")
        self._recorder = (
            recorder if recorder is not None else current_recorder()
        )
        self._quotas: Dict[str, TenantQuota] = {
            q.name: q for q in tenants
        }
        self._default_quota = default_quota
        self.pool = PreparedPool(
            max_lanes=max_lanes, recorder=self._recorder, memo=memo
        )
        self.flush_after_ms = flush_after_ms
        self.yield_every = yield_every
        self._lane_state: Dict[str, _LaneState] = {}
        self._workers: Dict[str, asyncio.Task] = {}
        self._draining = False
        self._drained: Optional[asyncio.Future] = None
        self._drain_reason = "close"
        self.completed = 0
        self._flushed_during_drain = 0
        self.abandoned = 0

    # -- profiles --------------------------------------------------------

    def add_profile(
        self,
        network: Network,
        config: FrameworkConfig,
        name: str = DEFAULT_PROFILE,
    ) -> Lane:
        """Register (or re-warm) a serving profile."""
        if self._draining:
            raise ServiceClosed("cannot add profiles while draining")
        lane = self.pool.acquire(name, network, config)
        if name not in self._lane_state:
            # Each lane gets its own picker so per-tenant queues bound
            # *per lane*; quotas themselves are shared definitions.
            self._lane_state[name] = _LaneState(picker=StridePicker())
        return lane

    def add_sketch_profile(
        self,
        name: str,
        sketch: AmplitudeSketch,
        parallelism: int = 64,
    ) -> Lane:
        """Register a pinned sketch lane serving insert/query streams.

        The lane's :class:`~repro.sched.sketch.SketchScheduler` holds
        ``sketch`` as authoritative shared state: inserts invalidate the
        lane memo before they are acknowledged, and the lane is never
        LRU-evicted.  Traffic arrives through the same :meth:`submit` as
        oracle reads, as ``Operation.insert`` / ``Operation.sketch_query``
        with ``profile=name``.
        """
        if self._draining:
            raise ServiceClosed("cannot add profiles while draining")
        lane = self.pool.add_sketch(name, sketch, parallelism=parallelism)
        if name not in self._lane_state:
            self._lane_state[name] = _LaneState(picker=StridePicker())
        return lane

    def _tenant(self, state: _LaneState, name: str) -> TenantState:
        if name in state.picker:
            return state.picker.get(name)
        quota = self._quotas.get(name)
        if quota is None:
            if self._default_quota is None:
                raise KeyError(
                    f"unknown tenant {name!r} and no default quota set"
                )
            quota = TenantQuota(
                name=name,
                weight=self._default_quota.weight,
                max_pending=self._default_quota.max_pending,
                max_queries=self._default_quota.max_queries,
            )
            self._quotas[name] = quota
        tenant = TenantState(quota=quota)
        state.picker.add(tenant)
        return tenant

    # -- client API ------------------------------------------------------

    def submit(
        self,
        operation: Any,
        indices: Optional[Sequence[int]] = None,
        label: str = "",
        profile: str = DEFAULT_PROFILE,
    ) -> "asyncio.Future[ServeResult]":
        """Admit one operation; returns the future carrying its values.

        The canonical form is ``submit(Operation.query(tenant, indices),
        profile=...)`` — or ``Operation.insert`` / ``Operation.
        sketch_query`` against a sketch profile.  The pre-PR 10
        positional form ``submit(tenant, indices, label=...)`` still
        works but raises a :class:`DeprecationWarning`; it builds the
        identical Operation internally.  The tenant is the operation's
        ``caller``.

        Must be called on the service's event loop.  Raises
        :class:`ServiceClosed` after drain starts,
        :class:`~repro.serve.tenants.AdmissionError` on backpressure or
        quota exhaustion, and ``KeyError`` for an unknown profile or an
        unknown tenant without a default quota.
        """
        if not isinstance(operation, Operation):
            warnings.warn(
                "QueryService.submit(tenant, indices, label=...) is "
                "deprecated; pass Operation.query(tenant, indices, label)",
                DeprecationWarning,
                stacklevel=2,
            )
            operation = Operation.query(
                str(operation), tuple(indices or ()), label=label
            )
        elif indices is not None:
            raise TypeError(
                "submit(Operation, ...) takes no separate indices; the "
                "payload lives inside the Operation"
            )
        if self._draining:
            raise ServiceClosed("service is draining; submission refused")
        if profile not in self._lane_state:
            raise KeyError(f"unknown profile {profile!r}")
        tenant = operation.caller
        state = self._lane_state[profile]
        tstate = self._tenant(state, tenant)
        try:
            tstate.admit(operation.size)
        except AdmissionError:
            if self._recorder.active:
                self._recorder.serve_request(
                    tenant, operation.size, "rejected"
                )
            raise
        tstate.accepted += 1
        tstate.queries_admitted += operation.size
        loop = asyncio.get_running_loop()
        request = _Request(
            operation, profile, loop.create_future(), time.monotonic(),
        )
        tstate.queue.append(request)
        if self._recorder.active:
            self._recorder.serve_request(tenant, operation.size, "accepted")
        self._ensure_worker(profile)
        state.event.set()
        return request.future

    # -- lane workers ----------------------------------------------------

    def _ensure_worker(self, profile: str) -> None:
        task = self._workers.get(profile)
        if task is None or task.done():
            self._workers[profile] = asyncio.get_running_loop().create_task(
                self._worker(profile), name=f"repro-serve-{profile}"
            )

    def _feed(self, lane: Lane, state: _LaneState) -> None:
        """Move queued requests into the scheduler, stride-fairly.

        Stops once a full batch is pending, so under backlog the tenant
        queues — not the scheduler — hold the excess and backpressure
        stays meaningful.
        """
        sched = lane.scheduler
        p = sched.parallelism
        while sched.pending_queries < p:
            tenant = state.picker.pick()
            if tenant is None:
                return
            request = tenant.queue.popleft()
            try:
                ticket = sched.submit(request.op)
            except Exception as exc:  # bad indices, width violation, ...
                if not request.future.done():
                    request.future.set_exception(exc)
                continue
            if sched.done(ticket):  # memo hit: zero rounds, resolve now
                self._complete(lane, state, ticket, request)
            else:
                lane.in_flight[ticket.id] = (ticket, request)

    def _complete(
        self, lane: Lane, state: _LaneState, ticket: Ticket, request: _Request
    ) -> None:
        values = lane.scheduler.result(ticket)
        wait_ms = (time.monotonic() - request.submitted_at) * 1000.0
        tenant = state.picker.get(request.tenant)
        tenant.completed += 1
        self.completed += 1
        if self._draining:
            self._flushed_during_drain += 1
        if not request.future.done():
            request.future.set_result(
                ServeResult(
                    values=values, tenant=request.tenant,
                    profile=lane.name, wait_ms=wait_ms,
                )
            )
        if self._recorder.active:
            self._recorder.serve_request(
                request.tenant, request.op.size, "completed",
                wait_ms=wait_ms,
            )

    async def _run_batch(self, lane: Lane, state: _LaneState) -> int:
        """Step one physical batch to completion, yielding between rounds."""
        sched = lane.scheduler
        before = sched.rounds.total
        gen = sched.execute_batch_steps()
        rounds = 0
        while True:
            try:
                next(gen)
            except StopIteration as stop:
                size = stop.value
                break
            rounds += 1
            if rounds % self.yield_every == 0:
                await asyncio.sleep(0)
        # Formula-mode batches never suspend above; still yield once per
        # batch so a flood of requests cannot starve client coroutines.
        await asyncio.sleep(0)
        delta = sched.rounds.total - before
        completed_ids = [
            tid for tid, (ticket, _req) in lane.in_flight.items()
            if sched.done(ticket)
        ]
        tenants = set()
        for tid in completed_ids:
            ticket, request = lane.in_flight.pop(tid)
            tenants.add(request.tenant)
            self._complete(lane, state, ticket, request)
        if size and self._recorder.active:
            self._recorder.serve_batch(
                lane.name, size, len(tenants), delta
            )
        if size:
            lane.batches += 1
        return size

    async def _worker(self, profile: str) -> None:
        lane = self.pool.acquire(profile)
        state = self._lane_state[profile]
        sched = lane.scheduler
        flush_now = False
        while True:
            self._feed(lane, state)
            pending = sched.pending_queries
            if pending >= sched.parallelism or (
                pending > 0 and (flush_now or self._draining)
            ):
                flush_now = False
                await self._run_batch(lane, state)
                continue
            if self._draining:
                if pending > 0 or state.picker.backlog > 0:
                    flush_now = True
                    continue
                return  # lane fully drained
            timeout = (
                self.flush_after_ms / 1000.0 if pending > 0 else None
            )
            state.event.clear()
            try:
                await asyncio.wait_for(state.event.wait(), timeout)
            except asyncio.TimeoutError:
                flush_now = True  # fill-or-flush: run the partial batch

    # -- shutdown --------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, reason: str = "close") -> None:
        """Stop admission, flush every lane, resolve every future."""
        if self._draining:
            if self._drained is not None:
                await asyncio.shield(self._drained)
            return
        self._draining = True
        self._drain_reason = reason
        self._drained = asyncio.get_running_loop().create_future()
        for state in self._lane_state.values():
            state.event.set()
        workers = [t for t in self._workers.values() if not t.done()]
        if workers:
            await asyncio.gather(*workers)
        if self._recorder.active:
            self._recorder.serve_drain(
                reason, self._flushed_during_drain, 0
            )
        if not self._drained.done():
            self._drained.set_result(None)

    async def abort(self, reason: str = "abort") -> None:
        """Cancel without flushing; outstanding futures fail."""
        self._draining = True
        self._drain_reason = reason
        for task in self._workers.values():
            task.cancel()
        await asyncio.gather(
            *self._workers.values(), return_exceptions=True
        )
        abandoned = 0
        for name, state in self._lane_state.items():
            lane = self.pool.acquire(name)
            for _tid, (_ticket, request) in lane.in_flight.items():
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosed(f"service aborted ({reason})")
                    )
                    abandoned += 1
            lane.in_flight.clear()
            for tenant in state.picker.states():
                while tenant.queue:
                    request = tenant.queue.popleft()
                    if not request.future.done():
                        request.future.set_exception(
                            ServiceClosed(f"service aborted ({reason})")
                        )
                    tenant.abandoned += 1
                    abandoned += 1
        self.abandoned += abandoned
        if self._recorder.active:
            self._recorder.serve_drain(
                reason, self._flushed_during_drain, abandoned
            )

    async def serve_forever(self) -> str:
        """Run until SIGINT/SIGTERM, then drain gracefully.

        Returns the name of the signal that triggered the drain.  Falls
        back to KeyboardInterrupt handling on loops without signal
        support.
        """
        loop = asyncio.get_running_loop()
        stop: "asyncio.Future[str]" = loop.create_future()

        def _trip(signame: str) -> None:
            if not stop.done():
                stop.set_result(signame)

        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, _trip, sig.name)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            signame = await stop
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
        await self.drain(reason="signal")
        return signame

    # -- introspection ---------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of serving state and pool stats."""
        tenants: Dict[str, Dict[str, int]] = {}
        for state in self._lane_state.values():
            for t in state.picker.states():
                agg = tenants.setdefault(
                    t.quota.name,
                    {"accepted": 0, "rejected": 0, "completed": 0,
                     "abandoned": 0, "pending": 0},
                )
                agg["accepted"] += t.accepted
                agg["rejected"] += t.rejected
                agg["completed"] += t.completed
                agg["abandoned"] += t.abandoned
                agg["pending"] += len(t.queue)
        return {
            "completed": self.completed,
            "abandoned": self.abandoned,
            "draining": self._draining,
            "tenants": tenants,
            "lanes": {
                lane.name: {
                    "batches": lane.batches,
                    "pending_queries": lane.scheduler.pending_queries,
                    "in_flight": len(lane.in_flight),
                    "report": lane.scheduler.report().__dict__,
                }
                for lane in self.pool.lanes()
            },
            "pool": self.pool.stats(),
        }
