"""The daemon's warm pool of prepared serving lanes.

A *lane* is one (network, :class:`~repro.core.framework.FrameworkConfig`)
profile with its own :class:`~repro.sched.CoalescingScheduler` — one
physical oracle whose batches the daemon steps round-by-round.  The pool
keeps lanes warm in an LRU bounded by ``max_lanes``: re-acquiring a
profile reuses its scheduler (and therefore its memo and setup), while
cold acquisition builds a scheduler whose setup phase hits the
process-wide :class:`~repro.core.framework.PreparedCache` — the bounded
LRU of BFS trees keyed by topology fingerprint — so even a freshly built
lane over a previously seen topology skips leader election and tree
construction.

Only *idle* lanes are evictable; a lane with queued or in-flight work is
pinned until it drains.  Evicting a lane costs nothing but warmth: the
PreparedCache below it usually still holds the topology's setup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..congest.network import Network
from ..core.framework import FrameworkConfig, prepared_cache_stats
from ..obs.recorder import Recorder, current_recorder
from ..sched import CoalescingScheduler

__all__ = ["Lane", "PreparedPool"]

DEFAULT_MAX_LANES = 8


@dataclass
class Lane:
    """One serving profile: a named scheduler over one prepared network."""

    name: str
    network: Network
    config: FrameworkConfig
    scheduler: CoalescingScheduler
    in_flight: Dict[int, Any] = field(default_factory=dict)  # ticket id -> req
    batches: int = 0

    @property
    def idle(self) -> bool:
        return not self.in_flight and self.scheduler.pack_would_be_empty()


class PreparedPool:
    """Bounded LRU of warm serving lanes keyed by profile name."""

    def __init__(
        self,
        max_lanes: int = DEFAULT_MAX_LANES,
        recorder: Optional[Recorder] = None,
        memo: Any = True,
    ):
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
        self.max_lanes = max_lanes
        self.memo = memo
        self._recorder = (
            recorder if recorder is not None else current_recorder()
        )
        self._lanes: "OrderedDict[str, Lane]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lanes)

    def __contains__(self, name: str) -> bool:
        return name in self._lanes

    def lanes(self) -> List[Lane]:
        return list(self._lanes.values())

    def acquire(
        self,
        name: str,
        network: Optional[Network] = None,
        config: Optional[FrameworkConfig] = None,
    ) -> Lane:
        """The warm lane for ``name``, building it on first acquisition.

        ``network``/``config`` are required on a cold acquire and
        ignored (the warm profile wins) afterwards.  Acquisition
        refreshes LRU recency; building past ``max_lanes`` evicts the
        least-recently-acquired *idle* lane — if every lane is busy the
        pool temporarily exceeds its bound rather than dropping live
        work.
        """
        lane = self._lanes.get(name)
        if lane is not None:
            self._lanes.move_to_end(name)
            return lane
        if network is None or config is None:
            raise KeyError(
                f"lane {name!r} is not warm; pass network and config to "
                f"build it"
            )
        # Each lane forks the recorder so interleaved lanes never share a
        # span stack; events still fan into the same sinks.
        scheduler = CoalescingScheduler(
            network, config, deadline_rounds=None, auto_flush=False,
            memo=self.memo, recorder=self._recorder.fork(),
        )
        lane = Lane(
            name=name, network=network, config=config, scheduler=scheduler
        )
        self._lanes[name] = lane
        if len(self._lanes) > self.max_lanes:
            for candidate in list(self._lanes):
                if candidate != name and self._lanes[candidate].idle:
                    del self._lanes[candidate]
                    self.evictions += 1
                    break
        return lane

    def stats(self) -> Dict[str, Any]:
        """Pool occupancy plus the PreparedCache counters beneath it."""
        return {
            "lanes": len(self._lanes),
            "max_lanes": self.max_lanes,
            "lane_evictions": self.evictions,
            "prepared_cache": prepared_cache_stats(),
        }
