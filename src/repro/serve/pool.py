"""The daemon's warm pool of prepared serving lanes.

A *lane* is one (network, :class:`~repro.core.framework.FrameworkConfig`)
profile with its own :class:`~repro.sched.CoalescingScheduler` — one
physical oracle whose batches the daemon steps round-by-round.  The pool
keeps lanes warm in an LRU bounded by ``max_lanes``: re-acquiring a
profile reuses its scheduler (and therefore its memo and setup), while
cold acquisition builds a scheduler whose setup phase hits the
process-wide :class:`~repro.core.framework.PreparedCache` — the bounded
LRU of BFS trees keyed by topology fingerprint — so even a freshly built
lane over a previously seen topology skips leader election and tree
construction.

Only *idle* lanes are evictable; a lane with queued or in-flight work is
busy until it drains.  Evicting a lane costs nothing but warmth: the
PreparedCache below it usually still holds the topology's setup.

Sketch lanes (PR 10) are different: a :class:`~repro.sched.sketch.
SketchScheduler` lane *holds authoritative data* (the accumulated sketch
state), so dropping it would lose inserts, not warmth.  Sketch lanes are
therefore ``pinned`` — never LRU-evicted — and carry no network/config
(sketch operations are local phase rotations, not oracle batches).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..apps.sketches import AmplitudeSketch
from ..congest.network import Network
from ..core.framework import FrameworkConfig, prepared_cache_stats
from ..obs.recorder import Recorder, current_recorder
from ..sched import CoalescingScheduler, SketchScheduler

__all__ = ["Lane", "PreparedPool"]

DEFAULT_MAX_LANES = 8


@dataclass
class Lane:
    """One serving profile: a named scheduler (oracle or sketch lane).

    Oracle lanes carry their network/config; sketch lanes carry neither
    (``None``) and are ``pinned`` because their scheduler's sketch is
    authoritative state, not a rebuildable cache.
    """

    name: str
    network: Optional[Network]
    config: Optional[FrameworkConfig]
    scheduler: Any  # CoalescingScheduler | SketchScheduler (duck-typed)
    in_flight: Dict[int, Any] = field(default_factory=dict)  # ticket id -> req
    batches: int = 0
    pinned: bool = False

    @property
    def idle(self) -> bool:
        return not self.in_flight and self.scheduler.pack_would_be_empty()


class PreparedPool:
    """Bounded LRU of warm serving lanes keyed by profile name."""

    def __init__(
        self,
        max_lanes: int = DEFAULT_MAX_LANES,
        recorder: Optional[Recorder] = None,
        memo: Any = True,
    ):
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
        self.max_lanes = max_lanes
        self.memo = memo
        self._recorder = (
            recorder if recorder is not None else current_recorder()
        )
        self._lanes: "OrderedDict[str, Lane]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lanes)

    def __contains__(self, name: str) -> bool:
        return name in self._lanes

    def lanes(self) -> List[Lane]:
        return list(self._lanes.values())

    def acquire(
        self,
        name: str,
        network: Optional[Network] = None,
        config: Optional[FrameworkConfig] = None,
    ) -> Lane:
        """The warm lane for ``name``, building it on first acquisition.

        ``network``/``config`` are required on a cold acquire and
        ignored (the warm profile wins) afterwards.  Acquisition
        refreshes LRU recency; building past ``max_lanes`` evicts the
        least-recently-acquired *idle* lane — if every lane is busy the
        pool temporarily exceeds its bound rather than dropping live
        work.
        """
        lane = self._lanes.get(name)
        if lane is not None:
            self._lanes.move_to_end(name)
            return lane
        if network is None or config is None:
            raise KeyError(
                f"lane {name!r} is not warm; pass network and config to "
                f"build it"
            )
        # Each lane forks the recorder so interleaved lanes never share a
        # span stack; events still fan into the same sinks.
        scheduler = CoalescingScheduler(
            network, config, deadline_rounds=None, auto_flush=False,
            memo=self.memo, recorder=self._recorder.fork(),
        )
        lane = Lane(
            name=name, network=network, config=config, scheduler=scheduler
        )
        self._lanes[name] = lane
        self._evict_if_over()
        return lane

    def add_sketch(
        self,
        name: str,
        sketch: AmplitudeSketch,
        parallelism: int = 64,
        memo: Any = None,
    ) -> Lane:
        """Register a *pinned* sketch lane serving ``sketch``.

        Re-adding a warm name returns the existing lane (the sketch
        argument must then be the same object — a lane's sketch is
        authoritative and cannot be swapped out from under its memo).
        ``memo=None`` inherits the pool's memo policy.
        """
        lane = self._lanes.get(name)
        if lane is not None:
            if getattr(lane.scheduler, "sketch", None) is not sketch:
                raise ValueError(
                    f"lane {name!r} already serves a different sketch"
                )
            self._lanes.move_to_end(name)
            return lane
        scheduler = SketchScheduler(
            sketch, parallelism=parallelism,
            memo=self.memo if memo is None else memo,
            recorder=self._recorder.fork(),
        )
        lane = Lane(
            name=name, network=None, config=None, scheduler=scheduler,
            pinned=True,
        )
        self._lanes[name] = lane
        self._evict_if_over()
        return lane

    def _evict_if_over(self) -> None:
        """Drop the LRU idle, unpinned lane when past ``max_lanes``.

        Pinned (sketch) lanes hold authoritative data and are never
        eviction candidates; if everything else is busy or pinned the
        pool temporarily exceeds its bound rather than dropping state.
        """
        if len(self._lanes) <= self.max_lanes:
            return
        newest = next(reversed(self._lanes))
        for candidate in list(self._lanes):
            lane = self._lanes[candidate]
            if candidate != newest and not lane.pinned and lane.idle:
                del self._lanes[candidate]
                self.evictions += 1
                break

    def stats(self) -> Dict[str, Any]:
        """Pool occupancy plus the PreparedCache counters beneath it."""
        return {
            "lanes": len(self._lanes),
            "max_lanes": self.max_lanes,
            "lane_evictions": self.evictions,
            "prepared_cache": prepared_cache_stats(),
        }
