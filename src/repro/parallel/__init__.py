"""repro.parallel — the process-pool sweep executor.

Everything in EXPERIMENTS.md comes from sweeps; this package is how
those sweeps use more than one core without giving up reproducibility
(DESIGN.md §6e):

* :func:`derive_seed` — the single documented child-seed derivation
  for sweep coordinates (replaces collision-prone ``seed * 1000 + i``
  arithmetic),
* :func:`run_parallel` — fan :class:`Task` lists across worker
  processes with per-task timeout, bounded retry, a
  :class:`TaskFailure` verdict instead of a sweep-killing exception,
  and JSONL checkpoint/resume,
* :func:`verify_parallel` — the verification sweep on top of it,
  returning verdicts bit-identical to the serial ``verify_all`` plus
  merged cross-process observability products.

Quick tour::

    from repro.parallel import derive_seed, verify_parallel

    seed = derive_seed(0, "bfs", 0.05, 3)      # stable, collision-free
    sweep = verify_parallel(jobs=4, checkpoint="verify.ckpt.jsonl")
    assert not sweep.failures
"""

from .executor import (
    CHECKPOINT_SCHEMA,
    Task,
    TaskFailure,
    load_checkpoint,
    run_parallel,
)
from .seeds import derive_seed
from .verify import VerifySweep, verify_parallel

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Task",
    "TaskFailure",
    "VerifySweep",
    "derive_seed",
    "load_checkpoint",
    "run_parallel",
    "verify_parallel",
]
